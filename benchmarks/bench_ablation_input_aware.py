"""Ablation: input-aware vs input-oblivious auto-tuning (§1-§2).

The paper's central thesis: classic auto-tuners produce one
hardware-optimal kernel and "generally do not retain optimal performance
across the wide range of problems encountered in practice".  This bench
freezes an empirically square-tuned kernel (ATLAS-style) and measures how
much of the Table 4 suite it loses to the input-aware tuner.
"""

import math


from repro.baselines.oblivious import ObliviousTuner
from repro.core.types import DType
from repro.harness.report import render_series
from repro.workloads.gemm_suites import TABLE4_TASKS


def _geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def test_ablation_input_aware(benchmark, results_recorder,
                              pascal_gemm_tuner):
    def run():
        oblivious = ObliviousTuner(
            pascal_gemm_tuner.device, sample_size=512, seed=9
        )
        oblivious.tune(DType.FP32)
        aware, frozen = [], []
        for task in TABLE4_TASKS:
            aware.append(
                pascal_gemm_tuner.best_kernel(task.shape, k=60).measured_tflops
            )
            frozen.append(oblivious.tflops(task.shape))
        return aware, frozen

    aware, frozen = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [f"{t.group} {t.label}" for t in TABLE4_TASKS]
    text = render_series(
        "task", labels,
        {"input-aware (ISAAC)": aware, "input-oblivious (square-tuned)": frozen},
        title="Ablation: input-aware vs input-oblivious tuning "
        "(Tesla P100, fp32)",
    )
    results_recorder("ablation_input_aware", text)

    by_label = dict(zip(labels, zip(aware, frozen)))
    # On its home turf the frozen kernel is competitive...
    a, f = by_label["LINPACK 2048"]
    assert f > 0.75 * a
    # ...but collapses off-distribution.
    a, f = by_label["ICA 16"]
    assert a > 3 * f
    assert _geomean(aware) > 1.3 * _geomean(frozen)
