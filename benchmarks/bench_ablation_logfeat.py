"""Ablation: the log feature transform (§5.2) at a fixed architecture.

Beyond Table 2's MSE columns, this measures the *selection* effect: both
models (log and raw features, same architecture, same data) rank the same
random sample of legal candidates per shape; we realize each model's
best-of-top-10 on the device.  The log-feature model must rank better.
"""

import math

import numpy as np

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.gpu.simulator import benchmark_gemm
from repro.harness.report import render_table
from repro.inference.search import legal_configs
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import generate_gemm_dataset
from repro.sampling.features import gemm_design_matrix

SHAPES = [
    GemmShape(2048, 2048, 2048, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 60000, DType.FP32, False, True),
]


def _best_of_topk(fit, log, configs, shape, k=10):
    design = gemm_design_matrix(configs, shape, log=log)
    z = fit.x_scaler.transform(design)
    preds = fit.model.predict(z)
    top = np.argsort(-preds)[:k]
    return max(
        benchmark_gemm(TESLA_P100, configs[i], shape, reps=3) for i in top
    )


def test_ablation_log_features(benchmark, results_recorder):
    def run():
        rng = np.random.default_rng(11)
        ds = generate_gemm_dataset(
            TESLA_P100, 10_000, rng, dtypes=(DType.FP32,)
        )
        tr, va = ds.split(0.1, rng)
        fits = {
            log: fit_regressor(
                tr.x, tr.y, va.x, va.y, hidden=(32, 64, 32),
                epochs=40, log_features=log,
            )
            for log in (True, False)
        }
        all_configs, _ = legal_configs(TESLA_P100, DType.FP32, "gemm")
        sample = [
            all_configs[i]
            for i in rng.choice(len(all_configs), size=2000, replace=False)
        ]
        rows = []
        realized = {True: [], False: []}
        for shape in SHAPES:
            vals = {
                log: _best_of_topk(fits[log], log, sample, shape)
                for log in (True, False)
            }
            realized[True].append(vals[True])
            realized[False].append(vals[False])
            rows.append(
                [shape.describe(), f"{vals[True]:.2f}", f"{vals[False]:.2f}"]
            )
        return rows, realized, fits[True].val_mse, fits[False].val_mse

    rows, realized, mse_log, mse_raw = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = render_table(
        ["shape", "log-features TFLOPS", "raw-features TFLOPS"],
        rows,
        title=(
            f"Ablation: log feature transform "
            f"(val MSE {mse_log:.3f} log vs {mse_raw:.3f} raw)"
        ),
    )
    results_recorder("ablation_logfeat", text)

    # Model quality: the paper's headline claim for the transform.
    assert mse_raw > 2 * mse_log
    # Selection quality: log features never pick worse kernels overall.
    geo = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))  # noqa
    assert geo(realized[True]) >= 0.95 * geo(realized[False])
