"""Ablation: discrete optimizer for runtime inference (§6).

The paper chose exhaustive search for its guarantees and batchability but
lists simulated annealing and genetic algorithms as alternatives.  This
bench compares all three at equal top-k, measuring realized kernel
performance and model evaluations spent.
"""

import math


from repro.inference.optimizers import SEARCH_METHODS
from repro.inference.search import ExhaustiveSearch
from repro.inference.topk import best_after_rerank
from repro.harness.report import render_series
from repro.workloads.gemm_suites import TABLE4_TASKS


def _geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def test_ablation_search_method(benchmark, results_recorder,
                                pascal_gemm_tuner):
    search = ExhaustiveSearch(
        pascal_gemm_tuner.fit_result, pascal_gemm_tuner.device, "gemm"
    )
    tasks = [t for t in TABLE4_TASKS
             if t.label in ("2048", "16", "64", "256", "4096")]

    def run():
        series = {name: [] for name in SEARCH_METHODS}
        for task in tasks:
            for name, method in SEARCH_METHODS.items():
                cands = method(search, task.shape, k=40)
                best = best_after_rerank(
                    pascal_gemm_tuner.device, task.shape, cands, reps=3
                )
                series[name].append(best.measured_tflops)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [f"{t.group} {t.label}" for t in tasks]
    text = render_series(
        "task", labels, series,
        title="Ablation: runtime search method (Tesla P100, fp32, k=40)",
    )
    results_recorder("ablation_search_method", text)

    g = {name: _geomean(vals) for name, vals in series.items()}
    # Exhaustive is the gold standard; heuristics must come close.
    assert g["annealing"] > 0.7 * g["exhaustive"]
    assert g["genetic"] > 0.7 * g["exhaustive"]
    assert g["exhaustive"] >= 0.95 * max(g.values())
