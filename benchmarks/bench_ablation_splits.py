"""Ablation: reduction splitting (§3.2, §8.2).

The paper singles out KS/KL/KG as the parameterization feature "too often
overlooked by automatically tuned on-node software libraries".  This
ablation re-runs the ICA and DeepBench tasks with the tuner's candidate
set restricted to KL = KG = 1 and measures what is lost.
"""



from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.gpu.simulator import benchmark_gemm
from repro.harness.report import render_table
from repro.inference.search import legal_configs
from repro.sampling.features import gemm_design_matrix

import numpy as np

SHAPES = [
    ("ICA 32", GemmShape(32, 32, 60000, DType.FP32, False, True)),
    ("ICA 256", GemmShape(256, 256, 60000, DType.FP32, False, True)),
    ("DeepBench-B 16", GemmShape(2560, 16, 2560, DType.FP32, True, False)),
    ("LINPACK 2048", GemmShape(2048, 2048, 2048, DType.FP32, False, True)),
]


def _best(fit, configs, matrix_cache, shape, k=60):
    design = gemm_design_matrix(configs, shape, log=True)
    z = fit.x_scaler.transform(design)
    preds = fit.model.predict(z)
    top = np.argsort(-preds)[:k]
    return max(
        benchmark_gemm(TESLA_P100, configs[i], shape, reps=3) for i in top
    )


def test_ablation_reduction_splits(benchmark, results_recorder,
                                   pascal_gemm_tuner):
    fit = pascal_gemm_tuner.fit_result

    def run():
        all_configs, _ = legal_configs(TESLA_P100, DType.FP32, "gemm")
        no_split = [c for c in all_configs if c.kl == 1 and c.kg == 1]
        rows = []
        ratios = []
        for label, shape in SHAPES:
            full = _best(fit, all_configs, None, shape)
            crippled = _best(fit, no_split, None, shape)
            rows.append([label, f"{full:.2f}", f"{crippled:.2f}",
                         f"{full / crippled:.2f}x"])
            ratios.append((label, full / crippled))
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["task", "full space", "KL=KG=1", "gain from splitting"],
        rows,
        title="Ablation: reduction splitting (Tesla P100, fp32)",
    )
    results_recorder("ablation_splits", text)

    by_label = dict(ratios)
    # Deep reductions collapse without splitting.
    assert by_label["ICA 32"] > 3.0
    assert by_label["ICA 256"] > 1.3
    # Square problems don't need it.
    assert by_label["LINPACK 2048"] < 1.15
