"""Ablation: value of top-k re-ranking (§6).

The paper re-benchmarks the model's 100 best predictions on the device.
This ablation measures the realized performance of k = 1 (pure model
argmax) vs k = 10 vs k = 100 across the Table 4 tasks: re-ranking should
never hurt and should win measurably somewhere.
"""

import math


from repro.harness.report import render_series
from repro.workloads.gemm_suites import TABLE4_TASKS


def _geomean(xs):
    return math.exp(sum(math.log(max(x, 1e-12)) for x in xs) / len(xs))


def test_ablation_topk(benchmark, results_recorder, pascal_gemm_tuner):
    tasks = [t for t in TABLE4_TASKS if t.label in
             ("512", "2048", "16", "64", "256", "4096")]

    def run():
        series = {f"k={k}": [] for k in (1, 10, 100)}
        for task in tasks:
            for k in (1, 10, 100):
                best = pascal_gemm_tuner.best_kernel(task.shape, k=k, reps=3)
                series[f"k={k}"].append(best.measured_tflops)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [f"{t.group} {t.label}" for t in tasks]
    text = render_series(
        "task", labels, series,
        title="Ablation: top-k re-ranking depth (Tesla P100, fp32)",
    )
    results_recorder("ablation_topk", text)

    g1 = _geomean(series["k=1"])
    g10 = _geomean(series["k=10"])
    g100 = _geomean(series["k=100"])
    # Deeper re-ranking is monotone up to noise, and k=100 beats argmax.
    assert g10 >= g1 * 0.98
    assert g100 >= g10 * 0.98
    assert g100 > g1
