"""Application-level benchmark: whole network steps (the paper's §1 motif).

One mis-selected kernel in a chain drags the whole application step; this
bench measures end-to-end step time for the RNN-training, ICA and
blocked-SVD workloads under ISAAC vs the baseline library.
"""


from repro.harness.app_eval import run_network_step
from repro.harness.report import render_table
from repro.workloads.networks import (
    blocked_svd_sweep,
    ica_pipeline_step,
    rnn_training_step,
)


def test_app_network_steps(benchmark, results_recorder, pascal_gemm_tuner):
    steps = [
        rnn_training_step(hidden=2560, batch=32, timesteps=4),
        ica_pipeline_step(channels=64, iters=3),
        blocked_svd_sweep(),
    ]

    def run():
        return [
            run_network_step(pascal_gemm_tuner, step, k=60, reps=3)
            for step in steps
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            r.step.name,
            f"{r.isaac_ms:.2f}",
            f"{r.baseline_ms:.2f}",
            f"{r.speedup:.2f}x",
            f"{r.isaac_tflops:.2f}",
        ]
        for r in results
    ]
    text = render_table(
        ["step", "ISAAC ms", "baseline ms", "speedup", "ISAAC TFLOPS"],
        rows,
        title="Application steps: end-to-end time (Tesla P100, fp32)",
    )
    results_recorder("app_networks", text)

    by_name = {r.step.name: r for r in results}
    # Skinny-batch RNN training: the motivating DeepBench case.
    assert by_name["rnn-h2560-b32-t4"].speedup > 1.3
    # Deep-reduction ICA: reduction splitting pays end to end.
    assert by_name["ica-c64-w60000"].speedup > 1.2
    # Nothing regresses.
    assert all(r.speedup > 0.9 for r in results)
