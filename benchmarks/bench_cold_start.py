"""Macrobenchmark: cold-start candidate supply, scalar vs array-native.

Before this pipeline, the first query of a (device, dtype) walked GEMM's
~2M-point product space one dict at a time through scalar ``is_legal``
(seconds), and *every new CONV query shape* projected / factorized /
legality-checked the whole GEMM tile set in a Python loop.  The candidate
supply is now array-native end to end: ``ParamSpace.grid`` materializes
X̂ as struct-of-arrays columns, ``legal_mask`` filters it in one pass,
the log-feature matrix is built straight from the surviving columns,
CONV candidates are generated vectorized once per pow2 bucket, and
config *objects* stay lazy (``LazyConfigList``) — only the top-k rows a
search touches are ever constructed.  The timed sections therefore
measure exactly what a first query pays; the parity asserts materialize
everything afterwards.

This bench times both paths and asserts:

* GEMM enumeration (``legal_configs``) is >= 10x the scalar walk
  (REPRO_BENCH_SMOKE=1 relaxes the floor to 4x for noisy CI runners);
* first-query CONV candidate generation (configs + feature matrix, the
  work ``ExhaustiveSearch`` does per new bucket) is >= 5x the scalar
  loop (2.5x under smoke);
* both candidate sets and feature matrices are **bit-identical** to the
  scalar reference, in identical order;
* a warmed :class:`~repro.core.candidate_store.CandidateStore` serves the
  same sets with zero product-space enumeration.

With ``--json`` the numbers land in ``BENCH_cold_start.json`` (repo root
and benchmarks/results/), the machine-readable trajectory CI tracks.
"""

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.candidate_store import CandidateStore
from repro.core.space import ParamSpace
from repro.core.types import ConvShape, DType
from repro.gpu.device import TESLA_P100
from repro.inference import conv_search
from repro.inference.search import (
    clear_cache,
    legal_configs,
    legal_configs_reference,
)
from repro.sampling.features import conv_config_matrix

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
GEMM_FLOOR = 4.0 if SMOKE else 10.0
CONV_FLOOR = 2.5 if SMOKE else 5.0

CONV_SHAPE = ConvShape.from_output(n=4, p=14, q=14, k=64, c=128, r=3, s=3)


def test_bench_cold_start(results_recorder):
    device = TESLA_P100
    dtype = DType.FP32

    # --- GEMM enumeration: scalar walk vs gridded legal_mask ------------
    t0 = time.perf_counter()
    ref_cfgs, ref_mat = legal_configs_reference(device, dtype, "gemm")
    scalar_s = time.perf_counter() - t0

    clear_cache()
    t0 = time.perf_counter()
    cfgs, mat = legal_configs(device, dtype, "gemm")
    vector_s = time.perf_counter() - t0
    gemm_speedup = scalar_s / vector_s

    gemm_identical = cfgs == ref_cfgs and np.array_equal(mat, ref_mat)
    assert gemm_identical, "vectorized enumeration diverges from scalar"

    # --- CONV first-query candidate generation --------------------------
    # Scalar path cost per new shape: the candidate loop plus the
    # config-feature matrix build the search needs (GEMM set warm).
    t0 = time.perf_counter()
    ref_conv = conv_search.conv_candidates(device, CONV_SHAPE)
    ref_conv_mat = conv_config_matrix(ref_conv, log=True)
    conv_scalar_s = time.perf_counter() - t0

    conv_search.clear_bucket_cache()
    t0 = time.perf_counter()
    conv_cfgs, conv_mat = conv_search.conv_candidates_batch(
        device, CONV_SHAPE
    )
    conv_vector_s = time.perf_counter() - t0
    conv_speedup = conv_scalar_s / conv_vector_s

    conv_identical = conv_cfgs == ref_conv and np.array_equal(
        conv_mat, ref_conv_mat
    )
    assert conv_identical, "vectorized CONV generation diverges from scalar"

    # Repeat shapes in the same pow2 bucket skip generation entirely.
    same_bucket = ConvShape.from_output(
        n=3, p=20, q=14, k=32, c=64, r=3, s=3
    )
    t0 = time.perf_counter()
    conv_search.conv_candidates_batch(device, same_bucket)
    bucket_hit_ms = (time.perf_counter() - t0) * 1e3

    # --- Candidate store: a warmed directory never re-enumerates --------
    with tempfile.TemporaryDirectory() as tmp:
        store = CandidateStore(Path(tmp) / "candidates")
        store.save()
        clear_cache()
        store.load()
        orig_grid = ParamSpace.grid
        orig_iter = ParamSpace.iter_points

        def _forbidden(self, *a, **k):
            raise AssertionError("store hit must not enumerate")

        ParamSpace.grid = _forbidden
        ParamSpace.iter_points = _forbidden
        try:
            t0 = time.perf_counter()
            stored_cfgs, stored_mat = legal_configs(device, dtype, "gemm")
            store_s = time.perf_counter() - t0
        finally:
            ParamSpace.grid = orig_grid
            ParamSpace.iter_points = orig_iter
        assert stored_cfgs == ref_cfgs and np.array_equal(
            stored_mat, ref_mat
        ), "store round-trip diverges"

    text = "\n".join([
        "Cold-start candidate supply: array-native vs scalar "
        f"(fp32, {device.name})",
        f"{'stage':>38s} {'scalar':>10s} {'vector':>10s} {'speedup':>8s}",
        f"{'GEMM enumeration (~1.9M points)':>38s} {scalar_s:9.2f}s "
        f"{vector_s:9.2f}s {gemm_speedup:7.1f}x",
        f"{'CONV first-query candidates':>38s} {conv_scalar_s:9.2f}s "
        f"{conv_vector_s:9.2f}s {conv_speedup:7.1f}x",
        f"{'CONV same-bucket repeat':>38s} {'—':>10s} "
        f"{bucket_hit_ms:7.2f}ms {'':>8s}",
        f"{'store-warmed cold start':>38s} {'—':>10s} "
        f"{store_s:9.2f}s {'':>8s}",
        f"candidates: gemm={len(cfgs)}, conv={len(conv_cfgs)}; "
        f"bit-identical to scalar: {gemm_identical and conv_identical} "
        f"(smoke={SMOKE})",
    ])
    results_recorder(
        "cold_start",
        text,
        data={
            "device": device.name,
            "dtype": dtype.name,
            "smoke": SMOKE,
            "gemm_candidates": len(cfgs),
            "gemm_scalar_s": scalar_s,
            "gemm_vectorized_s": vector_s,
            "gemm_speedup": gemm_speedup,
            "conv_candidates": len(conv_cfgs),
            "conv_scalar_s": conv_scalar_s,
            "conv_vectorized_s": conv_vector_s,
            "conv_speedup": conv_speedup,
            "conv_bucket_hit_ms": bucket_hit_ms,
            "store_cold_start_s": store_s,
            "bit_identical": bool(gemm_identical and conv_identical),
        },
    )

    assert gemm_speedup >= GEMM_FLOOR, (
        f"GEMM enumeration only {gemm_speedup:.1f}x over the scalar walk "
        f"(floor {GEMM_FLOOR}x)"
    )
    assert conv_speedup >= CONV_FLOOR, (
        f"CONV generation only {conv_speedup:.1f}x over the scalar loop "
        f"(floor {CONV_FLOOR}x)"
    )
    assert bucket_hit_ms < 50.0, "bucket hit should be (sub-)millisecond"


if __name__ == "__main__":
    class _Echo:
        def __call__(self, exp_id, text, data=None):
            print(text)

    test_bench_cold_start(_Echo())
