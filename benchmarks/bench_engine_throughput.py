"""Macrobenchmark: Engine batched serving vs the per-request loop.

Before the Engine, a deployment answered "which kernel for this shape?"
by looping ``Isaac.best_kernel`` per request — one model pass per shape,
no result reuse across repeated traffic.  The Engine front door batches
mixed-op requests through ``top_k_batch`` and serves repeats from its
two-level cache (in-memory LRU over the profile cache).

This bench replays a mixed 100-shape workload (GEMM + CONV + batched
GEMM) twice — cold, then hot, as repeated multi-tenant traffic would —
and asserts:

* every Engine reply is config-identical to per-shape ``best_kernel``
  (the facade changes dispatch, never answers);
* total Engine throughput is at least 2x the per-request loop.

Model quality is irrelevant to dispatch cost, so tuners are trained at a
tiny budget (REPRO_BENCH_SMOKE=1 shrinks it further for CI; the floor is
unchanged — dispatch amortization does not depend on fit quality).  With
``--json`` the numbers land in ``BENCH_engine_throughput.json`` at the
repo root.
"""

import os
import time

import numpy as np

from repro.core.batched import BatchedGemmShape
from repro.core.tuner import Isaac
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.engine import Engine, KernelRequest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
K = 20
REPS = 2
PASSES = 2


def _tiny_tuner(op: str, n_samples: int, seed: int) -> Isaac:
    tuner = Isaac(TESLA_P100, op=op, dtypes=(DType.FP32,))
    tuner.tune(n_samples=n_samples, seed=seed, epochs=15,
               generative_target=120)
    return tuner


def _mixed_workload(rng: np.random.Generator) -> list[KernelRequest]:
    """100 mixed requests: 50 GEMM, 25 CONV, 25 batched GEMM."""
    dims = [int(d) for d in 2 ** rng.uniform(5, 11.5, size=150)]
    requests = []
    for i in range(50):
        m, n, k = dims[3 * i: 3 * i + 3]
        shape = GemmShape(m, n, k, DType.FP32, bool(i % 3 == 0),
                          bool(i % 2 == 0))
        requests.append(KernelRequest("gemm", shape, k=K, reps=REPS))
    for i in range(25):
        p = int(rng.integers(4, 15))
        c = int(2 ** rng.integers(3, 7))
        kk = int(2 ** rng.integers(4, 8))
        n = int(rng.integers(1, 9))
        shape = ConvShape.from_output(n=n, p=p, q=p, k=kk, c=c, r=3, s=3)
        requests.append(KernelRequest("conv", shape, k=K, reps=REPS))
    for i in range(25):
        batch = int(2 ** rng.integers(3, 9))
        m = int(2 ** rng.integers(5, 9))
        kdim = int(2 ** rng.integers(5, 10))
        shape = BatchedGemmShape(batch=batch, base=GemmShape(m, m, kdim))
        requests.append(KernelRequest("bgemm", shape, k=K, reps=REPS))
    return requests


def test_bench_engine_throughput(results_recorder):
    rng = np.random.default_rng(42)
    tuners = {
        "gemm": _tiny_tuner("gemm", 700 if SMOKE else 2000, 0),
        "conv": _tiny_tuner("conv", 500 if SMOKE else 1200, 1),
        "bgemm": _tiny_tuner("bgemm", 500 if SMOKE else 1200, 2),
    }
    requests = _mixed_workload(rng)

    # --- per-request loop: what callers hand-wired before the Engine ---
    t0 = time.perf_counter()
    loop_replies = []
    for _ in range(PASSES):
        loop_replies = [
            tuners[r.op].best_kernel(r.shape, k=r.k, reps=r.reps)
            for r in requests
        ]
    loop_s = time.perf_counter() - t0

    # --- the Engine front door: batched dispatch + two-level cache ---
    engine = Engine()
    for tuner in tuners.values():
        engine.register(tuner)
    t0 = time.perf_counter()
    engine_replies = []
    for _ in range(PASSES):
        engine_replies = engine.query_many(requests)
    engine_s = time.perf_counter() - t0
    stats = engine.stats()
    engine.close()

    # Identical answers, per the acceptance bar: the facade may only
    # change how requests are dispatched, never what they return.
    mismatches = sum(
        1
        for got, want in zip(engine_replies, loop_replies)
        if got.config != want.config
    )
    assert mismatches == 0, f"{mismatches} config mismatches vs best_kernel"

    total = PASSES * len(requests)
    speedup = loop_s / engine_s
    lines = [
        "Engine throughput: mixed 100-shape workload "
        f"(gemm+conv+bgemm), {PASSES} passes",
        f"{'path':>24s} {'total':>9s} {'req/s':>8s}",
        f"{'per-request best_kernel':>24s} {loop_s:8.2f}s "
        f"{total / loop_s:8.1f}",
        f"{'Engine.query_many':>24s} {engine_s:8.2f}s "
        f"{total / engine_s:8.1f}",
        f"speedup: {speedup:.2f}x   (searches={stats.searches}, "
        f"lru_hits={stats.lru_hits})",
    ]
    results_recorder(
        "engine_throughput",
        "\n".join(lines),
        data={
            "requests": len(requests),
            "smoke": SMOKE,
            "passes": PASSES,
            "loop_s": loop_s,
            "engine_s": engine_s,
            "loop_req_per_s": total / loop_s,
            "engine_req_per_s": total / engine_s,
            "speedup": speedup,
            "searches": stats.searches,
            "lru_hits": stats.lru_hits,
            "config_mismatches": mismatches,
        },
    )

    distinct = len({(r.op, r.shape) for r in requests})
    assert stats.searches == distinct  # dup shapes collapse; pass 2 cached
    assert speedup >= 2.0, f"only {speedup:.2f}x over the per-request loop"
