"""Extension: self-bootstrapping (§5).

The MLP's inference workload is itself a stack of highly rectangular
GEMMs; the framework can tune kernels for them.  This bench reports the
speedup of ISAAC-tuned kernels over the cuBLAS-like heuristics on the
tuner's own forward pass.
"""

import math


from repro.harness.bootstrap import bootstrap_report
from repro.harness.report import render_table


def test_ext_bootstrap(benchmark, results_recorder, pascal_gemm_tuner):
    rows = benchmark.pedantic(
        lambda: bootstrap_report(pascal_gemm_tuner, batch_rows=65_536, k=60),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        ["layer GEMM", "shape", "ISAAC", "cuBLAS", "speedup"],
        [
            [
                r.layer,
                f"{r.shape.m}x{r.shape.n}x{r.shape.k}",
                f"{r.isaac_tflops:.2f}",
                f"{r.cublas_tflops:.2f}",
                f"{r.speedup:.2f}x",
            ]
            for r in rows
        ],
        title="Extension: tuning the tuner's own inference GEMMs "
        "(batch = 65536 candidates)",
    )
    results_recorder("ext_bootstrap", text)

    geo = math.exp(sum(math.log(r.speedup) for r in rows) / len(rows))
    # Skinny layer GEMMs are exactly where input-aware tuning shines.
    assert geo > 1.0
    assert max(r.speedup for r in rows) > 1.15
