"""Extension: energy-aware kernel choice (§4.1).

The paper's data-generation step explicitly allows Joules / FLOPS-per-watt
targets.  This bench re-ranks the model's top candidates by energy
efficiency instead of speed and quantifies the trade-off frontier on two
contrasting shapes.
"""


from repro.core.types import DType, GemmShape
from repro.gpu.energy import gemm_energy
from repro.gpu.simulator import IllegalKernelError
from repro.harness.report import render_table

SHAPES = [
    GemmShape(2048, 2048, 2048, DType.FP32, False, True),
    GemmShape(2560, 32, 2560, DType.FP32, False, False),
]


def test_ext_energy_aware_choice(benchmark, results_recorder,
                                 pascal_gemm_tuner):
    device = pascal_gemm_tuner.device

    def run():
        rows = []
        payload = []
        for shape in SHAPES:
            cands = pascal_gemm_tuner.top_k(shape, k=60)
            scored = []
            for cand in cands:
                try:
                    est = gemm_energy(device, cand.config, shape)
                except IllegalKernelError:  # pragma: no cover
                    continue
                scored.append((cand.config, est))
            fastest = min(scored, key=lambda ce: ce[1].time_ms)
            greenest = max(scored, key=lambda ce: ce[1].gflops_per_watt)
            rows.append(
                [
                    shape.describe(),
                    f"{fastest[1].gflops_per_watt:.1f}",
                    f"{greenest[1].gflops_per_watt:.1f}",
                    f"{greenest[1].time_ms / fastest[1].time_ms:.2f}x",
                ]
            )
            payload.append((fastest[1], greenest[1]))
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["shape", "fastest GF/W", "greenest GF/W", "greenest slowdown"],
        rows,
        title="Extension: speed- vs energy-optimal kernel choice (P100)",
    )
    results_recorder("ext_energy", text)

    for fastest, greenest in payload:
        assert greenest.gflops_per_watt >= fastest.gflops_per_watt
        # The efficiency-optimal kernel must not be pathologically slow.
        assert greenest.time_ms < 4 * fastest.time_ms
