"""Extension: MRF generative model vs the categorical one (§9 future work).

"Data-generation could be improved using better generative modeling
techniques (e.g., Markov random field)."  This bench fits both models on
identical warm-up streams in the Table-1 space and compares acceptance.
"""

import numpy as np

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.space import GEMM_SPACE, table1_space
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI
from repro.harness.report import render_table
from repro.sampling.generative import CategoricalModel
from repro.sampling.mrf import PairwiseMRF
from repro.sampling.uniform import UniformSampler


def _accept(pt):
    return is_legal_gemm(GemmConfig.from_dict(pt), DType.FP32, GTX_980_TI)


def test_ext_mrf_sampling(benchmark, results_recorder):
    def run():
        rng = np.random.default_rng(21)
        space = table1_space(GEMM_SPACE)

        uniform = UniformSampler(space, rng)
        n_u = 120_000
        u_rate = sum(_accept(p) for p in uniform.sample_batch(n_u)) / n_u

        cat = CategoricalModel(space)
        cat.fit(_accept, rng, target_accepted=800)
        n = 6_000
        c_rate = sum(_accept(cat.sample(rng)) for _ in range(n)) / n

        mrf = PairwiseMRF(space)
        mrf.fit(_accept, rng, target_accepted=800)
        m_rate = sum(
            _accept(mrf.sample(rng, sweeps=2)) for _ in range(n)
        ) / n
        return u_rate, c_rate, m_rate

    u_rate, c_rate, m_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["sampler", "acceptance"],
        [
            ["uniform", f"{u_rate:.2%}"],
            ["categorical (paper §4.1)", f"{c_rate:.1%}"],
            ["pairwise MRF (paper §9)", f"{m_rate:.1%}"],
        ],
        title="Extension: generative-model acceptance in the Table-1 space",
    )
    results_recorder("ext_mrf_sampling", text)

    assert c_rate > 8 * u_rate
    assert m_rate > c_rate          # the extension pays off
