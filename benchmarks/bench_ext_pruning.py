"""Extension: prune the big MLP and keep its accuracy (§5.2).

The paper argues for "train larger networks even if it means pruning or
binarizing them afterwards".  This bench trains the Table-2 mid-size
network, prunes it at increasing sparsity with fine-tuning, and tracks
cross-validation MSE vs the multiply-accumulate count of runtime inference.
"""

import numpy as np

from repro.gpu.device import GTX_980_TI
from repro.harness.report import render_table
from repro.mlp.crossval import fit_regressor, _maybe_log
from repro.mlp.losses import mse
from repro.mlp.pruning import prune
from repro.sampling.dataset import generate_gemm_dataset


def test_ext_pruning(benchmark, results_recorder):
    def run():
        rng = np.random.default_rng(31)
        ds = generate_gemm_dataset(GTX_980_TI, 15_000, rng)
        tr, va = ds.split(0.15, rng)
        fit = fit_regressor(
            tr.x, tr.y, va.x, va.y, hidden=(64, 128, 64), epochs=50
        )
        xt = fit.x_scaler.transform(_maybe_log(tr.x, True))
        yt = fit.y_scaler.transform(tr.y)
        xv = fit.x_scaler.transform(_maybe_log(va.x, True))
        yv = fit.y_scaler.transform(va.y)

        rows = [("0%", fit.model.n_params, mse(fit.model.predict(xv), yv))]
        for sparsity in (0.5, 0.8, 0.9):
            report = prune(
                fit.model, sparsity,
                x_finetune=xt, y_finetune=yt, finetune_epochs=8,
            )
            rows.append(
                (
                    f"{report.sparsity:.0%}",
                    report.sparse_macs,
                    mse(fit.model.predict(xv), yv),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["sparsity", "MACs/row", "val MSE"],
        [[s, m, f"{e:.4f}"] for s, m, e in rows],
        title="Extension: magnitude pruning of the regression MLP",
    )
    results_recorder("ext_pruning", text)

    dense_mse = rows[0][2]
    half_mse = rows[1][2]
    # Half the weights gone, accuracy essentially intact.
    assert half_mse < 2.0 * dense_mse
    # 90% sparsity costs something but stays usable.
    assert rows[-1][2] < 10 * dense_mse
    # MAC counts drop as advertised.
    assert rows[1][1] < 0.55 * rows[0][1]
