"""Figure 10: SCONV on the Tesla P100.

Paper shape: larger gains than on Maxwell (cuDNN's kernels and heuristics
were tailored to Maxwell): >5x on Conv8, ~70% on Conv13.
"""

import math


from repro.harness.experiments import run_fig10


def test_fig10_sconv_pascal(benchmark, results_recorder, pascal_conv_tuner):
    result = benchmark.pedantic(
        lambda: run_fig10(tuner=pascal_conv_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig10", result.text)

    by_label = {r.task.label: r for r in result.data}

    # The deep-reduction gains survive the architecture change (the paper
    # reports >5x on Conv8; our simulated baseline degrades more gently —
    # see EXPERIMENTS.md).
    assert by_label["Conv8"].speedup > 1.25
    assert by_label["Conv7"].speedup > 1.4

    geo = math.exp(
        sum(math.log(r.speedup) for r in result.data) / len(result.data)
    )
    assert geo > 1.0
    assert all(r.speedup > 0.8 for r in result.data)
