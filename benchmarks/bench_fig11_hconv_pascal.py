"""Figure 11: HCONV (fp16) on the Tesla P100.

Paper shape: ISAAC's fp16x2 support across all tiling schemes yields almost
consistently faster half-precision convolutions than cuDNN.
"""

import math


from repro.harness.experiments import run_fig11


def test_fig11_hconv_pascal(benchmark, results_recorder,
                            pascal_conv_tuner_fp16):
    result = benchmark.pedantic(
        lambda: run_fig11(tuner=pascal_conv_tuner_fp16),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig11", result.text)

    speedups = [r.speedup for r in result.data]
    # "Almost consistently faster": most layers win, none loses badly.
    wins = sum(1 for s in speedups if s > 1.0)
    assert wins >= len(speedups) * 0.6
    assert min(speedups) > 0.75
    geo = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    assert geo > 1.1
