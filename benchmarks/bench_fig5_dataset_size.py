"""Figure 5: cross-validation MSE vs training-set size.

Paper shape: MSE decreases with more data and saturates (the paper plateaus
around 150k samples; our laptop-scale sweep shows the same monotone-then-
flat profile at smaller sizes).
"""

import os


from repro.harness.experiments import run_fig5

SIZES = tuple(
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_FIG5_SIZES", "2500,5000,10000,20000,40000"
    ).split(",")
)


def test_fig5_dataset_size(benchmark, results_recorder):
    result = benchmark.pedantic(
        lambda: run_fig5(sizes=SIZES, n_val=4_000, epochs=40),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig5", result.text)

    sizes = [n for n, _ in result.data]
    mses = [m for _, m in result.data]
    # More data helps overall...
    assert mses[-1] < mses[0]
    # ...with diminishing returns: the last doubling buys less improvement
    # than the first one.
    first_gain = mses[0] - mses[1]
    last_gain = mses[-2] - mses[-1]
    assert last_gain < max(first_gain, 1e-9) + 1e-9 or mses[-1] < 0.08
