"""Figure 6: SGEMM performance on the GTX 980 TI — ISAAC vs cuBLAS.

Paper shape: parity-to-+25% on LINPACK squares, ~80% gains on skinny
DeepBench batches, order-of-magnitude wins where cuBLAS heuristics
mis-handle ICA reduction splitting, ~10% on blocked-SVD outer products.
"""

import math


from repro.harness.experiments import run_fig6


def _geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def test_fig6_sgemm_maxwell(benchmark, results_recorder, maxwell_gemm_tuner):
    result = benchmark.pedantic(
        lambda: run_fig6(tuner=maxwell_gemm_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig6", result.text)

    by_task = {f"{r.task.group} {r.task.label}": r for r in result.data}

    # LINPACK: ISAAC rivals the vendor library (within 10% either way).
    for label in ("LINPACK 1024", "LINPACK 2048"):
        assert by_task[label].speedup_vs_heuristic > 0.9

    # DeepBench N=16: the headline input-aware win.
    assert by_task["DeepBench [F] 16"].speedup_vs_heuristic > 1.3
    assert by_task["DeepBench [B] 16"].speedup_vs_heuristic > 1.3

    # ICA: heuristic mis-selection costs cuBLAS dearly somewhere.
    ica = [r for r in result.data if r.task.group == "ICA"]
    assert max(r.speedup_vs_heuristic for r in ica) > 3.0

    # Overall: ISAAC never catastrophically loses.
    assert all(r.speedup_vs_heuristic > 0.85 for r in result.data)
    assert _geomean([r.speedup_vs_heuristic for r in result.data]) > 1.1
