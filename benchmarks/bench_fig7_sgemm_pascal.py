"""Figure 7: SGEMM on the Tesla P100 — ISAAC vs cuBLAS heuristics vs the
best static kernel (the cublasGemmEx bypass).

Paper shape: gains over the *best kernel* persist (25% LINPACK-512, ~80%
DeepBench, 5% ICA, ~30% LAPACK) — proving missing tilings, not just bad
heuristics, are at fault.
"""

import math


from repro.harness.experiments import run_fig7


def test_fig7_sgemm_pascal(benchmark, results_recorder, pascal_gemm_tuner):
    result = benchmark.pedantic(
        lambda: run_fig7(tuner=pascal_gemm_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig7", result.text)

    by_task = {f"{r.task.group} {r.task.label}": r for r in result.data}

    # Best-kernel selection dominates heuristics by construction.
    for r in result.data:
        assert r.cublas_best_tflops >= 0.95 * r.cublas_heuristic_tflops

    # DeepBench gains survive the heuristic bypass: missing tiles.
    assert by_task["DeepBench [F] 16"].speedup_vs_best > 1.2
    assert by_task["DeepBench [B] 16"].speedup_vs_best > 1.2

    # Square LINPACK: ISAAC at least matches the best static kernel.
    assert by_task["LINPACK 2048"].speedup_vs_best > 0.9

    geo = math.exp(
        sum(math.log(r.speedup_vs_best) for r in result.data)
        / len(result.data)
    )
    assert geo > 1.05
