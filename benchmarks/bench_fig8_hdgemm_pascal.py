"""Figure 8: half/double-precision GEMM on the Tesla P100.

Paper shape: fp16 LINPACK near parity (cuBLAS ships a few dedicated fp16x2
kernels), 2.5-3x fp16 wins on DeepBench (ISAAC emits fp16x2 across the
whole space), fp64 gains of ~5% LINPACK / ~40% ICA / ~15% LAPACK.
"""


from repro.core.types import DType
from repro.harness.experiments import run_fig8


def test_fig8_hdgemm_pascal(benchmark, results_recorder,
                            pascal_gemm_tuner_hd):
    result = benchmark.pedantic(
        lambda: run_fig8(tuner=pascal_gemm_tuner_hd),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig8", result.text)

    by_task = {f"{r.task.group} {r.task.label}": r for r in result.data}

    # fp16 DeepBench: the 2.5-3x headline (we accept anything > 1.8x).
    for n in (16, 32, 64):
        assert by_task[f"DeepBench [F] {n}"].speedup_vs_heuristic > 1.8, n

    # fp16 LINPACK: near-optimal vendor kernels -> modest deltas only.
    assert 0.85 < by_task["LINPACK 2048"].speedup_vs_heuristic < 1.6

    # fp64 science workloads: ISAAC never loses, ICA wins clearly.
    ica = [r for r in result.data if r.task.group == "ICA"]
    assert all(r.task.shape.dtype is DType.FP64 for r in ica)
    assert max(r.speedup_vs_best for r in ica) > 1.1
    svd = [r for r in result.data if r.task.group == "Blocked SVD"]
    assert all(r.speedup_vs_best > 0.9 for r in svd)
