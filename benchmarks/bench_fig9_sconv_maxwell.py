"""Figure 9: SCONV on the GTX 980 TI — ISAAC vs cuDNN.

Paper shape: noticeable but smaller gains than GEMM (cuDNN was tuned for
Maxwell + DeepBench); 1.5-2x on the deep reductions Conv7/Conv8; ~10% on
small-NPQ true convolutions (Conv13).
"""

import math


from repro.harness.experiments import run_fig9


def test_fig9_sconv_maxwell(benchmark, results_recorder, maxwell_conv_tuner):
    result = benchmark.pedantic(
        lambda: run_fig9(tuner=maxwell_conv_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("fig9", result.text)

    by_label = {r.task.label: r for r in result.data}

    # Deep reductions: the paper's largest Maxwell conv gains (1.5-2x in
    # the paper; our simulated baseline holds up somewhat better, see
    # EXPERIMENTS.md).
    assert by_label["Conv7"].speedup > 1.2
    assert by_label["Conv8"].speedup > 1.1

    # ISAAC never loses badly anywhere.
    assert all(r.speedup > 0.8 for r in result.data)

    geo = math.exp(
        sum(math.log(r.speedup) for r in result.data) / len(result.data)
    )
    assert geo > 1.0
