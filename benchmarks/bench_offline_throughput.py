"""Macrobenchmark: the batched offline pipeline vs the per-sample loop.

The paper's offline phase benchmarks hundreds of thousands of random legal
kernels on the device, and its runtime phase re-benchmarks a top-k
shortlist.  Before the batched simulator, both walked the analytic model
chain one (config, shape) pair at a time in pure Python; now dataset
generation is sample-shapes-then-batch-evaluate (vectorized rejection
sampling + one ``benchmark_many`` array pass), and re-ranking prices the
whole shortlist in one call.

This bench measures both against their per-sample references and asserts:

* dataset-generation throughput is >= 10x the per-sample loop
  (REPRO_BENCH_SMOKE=1 shrinks budgets and relaxes the floor to 3x for CI);
* shortlist re-ranking beats the per-candidate loop;
* batched measurements are *bit-identical* to the scalar simulator chain
  (spot-checked here; tests/test_simulator_batched.py holds the full bar).

With ``--json`` the numbers also land in results/BENCH_offline_throughput.json.
"""

import os
import time

import numpy as np

from repro.core.ops import get_op
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.inference.search import Prediction
from repro.inference.topk import rerank
from repro.sampling.dataset import (
    _sample_legal_configs,
    fit_generative_models,
    generate_dataset,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_BATCHED = int(os.environ.get(
    "REPRO_OFFLINE_BENCH_N", "600" if SMOKE else "6000"
))
N_LOOP = max(50, N_BATCHED // 10)
SPEEDUP_FLOOR = 3.0 if SMOKE else 10.0
SHORTLIST = 100
RERANK_REPS = 3


def test_bench_offline_throughput(results_recorder):
    device = TESLA_P100
    spec = get_op("gemm")
    rng = np.random.default_rng(0)
    samplers = fit_generative_models(
        device, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=200,
    )

    # --- dataset generation: batched pipeline vs per-sample loop --------
    generate_dataset(  # warm-up (imports, caches)
        device, "gemm", 100, np.random.default_rng(1),
        samplers=samplers, dtypes=(DType.FP32,),
    )
    t0 = time.perf_counter()
    generate_dataset(
        device, "gemm", N_BATCHED, np.random.default_rng(2),
        samplers=samplers, dtypes=(DType.FP32,),
    )
    batched_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    generate_dataset(
        device, "gemm", N_LOOP, np.random.default_rng(2),
        samplers=samplers, dtypes=(DType.FP32,), batched=False,
    )
    loop_s = time.perf_counter() - t0
    batched_rate = N_BATCHED / batched_s
    loop_rate = N_LOOP / loop_s
    speedup = batched_rate / loop_rate

    # --- bit-identity spot check: batched == scalar chain ---------------
    shape_sampler = spec.make_shape_sampler((DType.FP32,))
    check_rng = np.random.default_rng(3)
    shapes = [shape_sampler(check_rng) for _ in range(40)]
    cfgs = _sample_legal_configs(
        device, spec, samplers[DType.FP32], DType.FP32, len(shapes),
        check_rng,
    )
    many = spec.benchmark_pairs(device, cfgs, shapes, reps=RERANK_REPS)
    scalar = np.array([
        spec.benchmark(device, c, s, reps=RERANK_REPS)
        for c, s in zip(cfgs, shapes)
    ])
    bit_identical = bool(np.array_equal(many, scalar))
    assert bit_identical, "batched results diverge from the scalar chain"

    # --- shortlist re-ranking: one batched call vs per-candidate loop ---
    shape = GemmShape(1024, 1024, 1024, DType.FP32, False, True)
    shortlist_cfgs = _sample_legal_configs(
        device, spec, samplers[DType.FP32], DType.FP32, SHORTLIST,
        np.random.default_rng(4),
    )
    cands = [
        Prediction(config=c, predicted_tflops=1.0) for c in shortlist_cfgs
    ]
    rerank(device, shape, cands, reps=RERANK_REPS)  # warm-up
    t0 = time.perf_counter()
    ranked = rerank(device, shape, cands, reps=RERANK_REPS)
    rerank_batched_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    loop_vals = sorted(
        (
            spec.benchmark(device, c, shape, reps=RERANK_REPS)
            for c in shortlist_cfgs
        ),
        reverse=True,
    )
    rerank_loop_s = time.perf_counter() - t0
    assert [r.measured_tflops for r in ranked] == loop_vals
    rerank_speedup = rerank_loop_s / rerank_batched_s

    lines = [
        "Offline throughput: batched simulator vs per-sample loop "
        f"(gemm fp32, {device.name})",
        f"{'stage':>28s} {'batched':>12s} {'loop':>12s} {'speedup':>8s}",
        f"{'dataset generation':>28s} {batched_rate:9.0f}/s "
        f"{loop_rate:9.0f}/s {speedup:7.1f}x",
        f"{'rerank {} candidates'.format(SHORTLIST):>28s} "
        f"{rerank_batched_s * 1e3:10.1f}ms {rerank_loop_s * 1e3:10.1f}ms "
        f"{rerank_speedup:7.1f}x",
        f"bit-identical to scalar chain: {bit_identical}"
        f"   (n_batched={N_BATCHED}, n_loop={N_LOOP}, smoke={SMOKE})",
    ]
    results_recorder(
        "offline_throughput",
        "\n".join(lines),
        data={
            "device": device.name,
            "op": "gemm",
            "n_batched": N_BATCHED,
            "n_loop": N_LOOP,
            "smoke": SMOKE,
            "dataset_batched_samples_per_s": batched_rate,
            "dataset_loop_samples_per_s": loop_rate,
            "dataset_speedup": speedup,
            "rerank_candidates": SHORTLIST,
            "rerank_batched_ms": rerank_batched_s * 1e3,
            "rerank_loop_ms": rerank_loop_s * 1e3,
            "rerank_speedup": rerank_speedup,
            "bit_identical": bit_identical,
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"dataset generation only {speedup:.1f}x over the per-sample loop "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert rerank_speedup >= 2.0, (
        f"re-ranking only {rerank_speedup:.1f}x over the per-candidate loop"
    )
