"""Macrobenchmark: online fine-tuning vs the frozen offline fit.

The offline pipeline trains the regressor on shapes drawn from the
generative model — a *stationary* picture of the workload.  A deployed
service sees drift: traffic concentrates in regions the training
distribution underweighted, and there the model's argmax is noticeably
worse than the device's true optimum.  The online learning loop
(``service/online.py``) closes that gap from data the serving path
already produces for free: every re-ranked miss measures the shortlist
on the device, and those (features, measured-time) pairs stream into a
replay buffer that cadenced fine-tunes consume.

This bench makes the claim quantitative:

* train a tuner at a small budget (the frozen baseline);
* build a zipf-weighted workload over *drifted* GEMM shapes — very
  skinny N against large M/K, a region the generative sampler rarely
  visits;
* compute exhaustive ground truth for a held-out eval set from the same
  drifted region: every legal candidate benchmarked in one vectorized
  call per shape, the true optimum regardless of any model;
* measure **top-1 regret** — ``1 - measured(model argmax) / measured
  (exhaustive best)`` — before serving, then replay the workload through
  an online ``Engine`` (updates run at pinned points, so the run is
  replay-deterministic) and measure again with the fine-tuned weights.

Acceptance: the fine-tuned model **strictly reduces mean top-1 regret**
on shapes it never served (the eval set is held out of the traffic).
The eval uses the raw model argmax (k=1, no re-rank) on purpose: the
re-rank shortlist would mask model quality, and top-1 is exactly what
improves when the regressor learns the drifted region.

Every knob is a CLI flag; ``REPRO_BENCH_SMOKE=1`` shrinks budgets for
shared CI runners.  With ``--json`` the numbers land in
``BENCH_online_learning.json`` at the repo root.  Direct invocation::

    PYTHONPATH=src python benchmarks/bench_online_learning.py --json
"""

import os
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.engine import Engine, KernelRequest
from repro.service.online import OnlineConfig


@dataclass(frozen=True)
class BenchConfig:
    """One reproducible online-learning run; every knob is a CLI flag."""

    seed: int = 7
    traffic: int = 24          # drifted requests served (distinct shapes)
    evals: int = 5             # held-out shapes ground-truthed exhaustively
    samples: int = 900         # offline training budget (kept small: the
    k: int = 20                # bench is about closing the frozen gap)
    reps: int = 2
    update_every: int = 64
    epochs: int = 4
    anchor_size: int = 256
    smoke: bool = False


def default_config(**overrides) -> BenchConfig:
    """Budgets from the environment (REPRO_BENCH_SMOKE), then overrides."""
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
    cfg = BenchConfig(
        traffic=16 if smoke else 24,
        evals=3 if smoke else 5,
        samples=700 if smoke else 900,
        smoke=smoke,
    )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    return replace(cfg, **overrides)


def _drifted_shape(rng) -> GemmShape:
    """Very skinny N against large M/K: a region the generative sampler
    underweights, so the frozen fit's argmax is visibly suboptimal."""
    m = int(2 ** rng.uniform(9, 11))
    k = int(2 ** rng.uniform(9, 11))
    n = int(2 ** rng.uniform(3, 5))
    return GemmShape(m, n, k, DType.FP32, False, True)


def _workload(cfg: BenchConfig) -> tuple[list[GemmShape], list[GemmShape]]:
    """(served traffic, held-out eval shapes), both from the drifted
    region; zipf popularity orders the traffic so cadences trip the way
    real repeats would."""
    rng = np.random.default_rng(cfg.seed)
    traffic = [_drifted_shape(rng) for _ in range(cfg.traffic)]
    evals = [_drifted_shape(rng) for _ in range(cfg.evals)]
    weights = 1.0 / np.arange(1, len(traffic) + 1)
    weights /= weights.sum()
    order = list(range(len(traffic)))
    rng.shuffle(order)
    return [traffic[i] for i in order], evals


def _exhaustive_best(tuner: Isaac, shape) -> float:
    """The true optimum: every legal candidate, one vectorized call."""
    preds = tuner.top_k(shape, k=1 << 62)  # k > |space|: all candidates
    measured = tuner.spec.benchmark_pairs(
        tuner.device, [p.config for p in preds], [shape] * len(preds),
        reps=3,
    )
    return float(np.nanmax(measured))


def _top1_measured(tuner: Isaac, shape, reps: int = 3) -> float:
    """What the model's raw argmax (no re-rank) actually achieves."""
    cfg = tuner.top_k(shape, 1)[0].config
    return float(
        tuner.spec.benchmark_pairs(tuner.device, [cfg], [shape],
                                   reps=reps)[0]
    )


def run_bench(cfg: BenchConfig, record) -> dict:
    """Frozen-vs-fine-tuned regret on the drifted region; returns JSON."""
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(
        n_samples=cfg.samples, seed=cfg.seed, epochs=8,
        generative_target=80,
    )
    traffic, evals = _workload(cfg)

    t0 = time.perf_counter()
    best = {s: _exhaustive_best(tuner, s) for s in evals}
    truth_s = time.perf_counter() - t0
    regret_before = [1 - _top1_measured(tuner, s) / best[s] for s in evals]

    engine = Engine(
        online=OnlineConfig(
            update_every=cfg.update_every, epochs=cfg.epochs,
            anchor_size=cfg.anchor_size, seed=cfg.seed,
        ),
        max_workers=0,
    )
    engine.register(tuner)
    t0 = time.perf_counter()
    updates = 0
    for shape in traffic:
        engine.query(KernelRequest("gemm", shape, k=cfg.k, reps=cfg.reps))
        # Pinned update points: the replay-determinism contract.
        updates += len(engine.run_online_updates())
    serve_s = time.perf_counter() - t0
    version = engine.model_version(TESLA_P100.name, "gemm")
    digests = [r.digest for r in engine.online.update_log()]

    # The hot-swaps mutated the served tuner in place: the same top_k
    # calls now answer from the fine-tuned weights.
    regret_after = [1 - _top1_measured(tuner, s) / best[s] for s in evals]

    mean_before = float(np.mean(regret_before))
    mean_after = float(np.mean(regret_after))
    lines = [
        f"Online learning: {len(traffic)} drifted gemm requests "
        f"(skinny-N region, seed {cfg.seed}), cadence every "
        f"{cfg.update_every} pairs, {cfg.epochs} epochs/update",
        f"{updates} fine-tunes -> model v{version}; "
        f"serve+train {serve_s:.2f}s, exhaustive ground truth "
        f"{truth_s:.2f}s over {len(evals)} held-out shapes",
        f"{'eval shape':>24s} {'exhaustive':>10s} {'before':>8s} "
        f"{'after':>8s}",
        *(
            f"{f'{s.m}x{s.n}x{s.k}':>24s} {best[s]:9.2f}T "
            f"{rb:8.3f} {ra:8.3f}"
            for s, rb, ra in zip(evals, regret_before, regret_after)
        ),
        f"mean top-1 regret: {mean_before:.3f} -> {mean_after:.3f} "
        f"({(1 - mean_after / mean_before) * 100:.0f}% lower, "
        f"smoke={cfg.smoke})",
    ]
    data = {
        "seed": cfg.seed,
        "smoke": cfg.smoke,
        "traffic": len(traffic),
        "eval_shapes": [f"{s.m}x{s.n}x{s.k}" for s in evals],
        "samples": cfg.samples,
        "k": cfg.k,
        "update_every": cfg.update_every,
        "epochs_per_update": cfg.epochs,
        "anchor_size": cfg.anchor_size,
        "updates": updates,
        "model_version": version,
        "update_digests": digests,
        "exhaustive_truth_s": truth_s,
        "serve_and_train_s": serve_s,
        "regret_before": regret_before,
        "regret_after": regret_after,
        "mean_regret_before": mean_before,
        "mean_regret_after": mean_after,
    }
    record("online_learning", "\n".join(lines), data=data)

    assert updates >= 1, "the drifted traffic never tripped a fine-tune"
    assert mean_after < mean_before, (
        f"fine-tuning did not reduce mean top-1 regret on the drifted "
        f"region: {mean_before:.3f} -> {mean_after:.3f}"
    )
    engine.close()
    return data


def test_bench_online_learning(results_recorder):
    run_bench(default_config(), results_recorder)


def main(argv=None) -> int:
    """Direct invocation (CI smoke, drift studies) without pytest."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Online fine-tuning vs frozen fit on drifted traffic"
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="workload + training RNG seed (default 7)")
    parser.add_argument("--traffic", type=int, default=None,
                        help="drifted requests to serve")
    parser.add_argument("--evals", type=int, default=None,
                        help="held-out shapes ground-truthed exhaustively")
    parser.add_argument("--samples", type=int, default=None,
                        help="offline training budget")
    parser.add_argument("--update-every", type=int, default=None,
                        help="fine-tune cadence in measured pairs")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_online_learning.json (results/ "
                        "and the repo root)")
    args = parser.parse_args(argv)

    here = Path(__file__).parent
    results_dir = here / "results"

    def record(exp_id: str, text: str, data: dict | None = None) -> None:
        # Same two landing spots as benchmarks/conftest.py `record`.
        results_dir.mkdir(exist_ok=True)
        (results_dir / f"{exp_id}.txt").write_text(text + "\n")
        if data is not None and args.json:
            payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
            (results_dir / f"BENCH_{exp_id}.json").write_text(payload)
            (here.parent / f"BENCH_{exp_id}.json").write_text(payload)
        print(f"\n{text}\n")

    cfg = default_config(
        seed=args.seed,
        traffic=args.traffic,
        evals=args.evals,
        samples=args.samples,
        update_every=args.update_every,
    )
    run_bench(cfg, record)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
