"""Microbenchmark: repeated runtime-search latency (pre-scaled cache).

The seed implementation rebuilt and re-standardized the full ~16-column
design matrix for every ``top_k`` query.  The search now caches the
candidate feature matrix already standardized by the fit's x-scaler and
folded through the MLP's first layer, so a query only standardizes its
shape-feature vector and runs the remaining layers chunk-wise;
``top_k_batch`` additionally pushes many query shapes through each
cache-resident chunk.

On top of the pre-scaled path sits the two-stage cascade: stage 1 scores
every candidate with the same model in float32, prunes to a margin-padded
shortlist, and stage 2 re-scores only the shortlist in float64.  The
cascade axis here calibrates margins on the bench fit, asserts the
shortlist top-k is *identical* to the exhaustive top-k for every query
shape, and then times it — the honest ceiling for a provably-safe f32
stage 1 is the f64->f32 memory-traffic ratio, about 2.2x.

This bench times all paths over the full GEMM candidate set and asserts
the pre-scaled path is at least 2x faster per repeated query and the
cascade at least 2x faster again (REPRO_BENCH_SMOKE=1 relaxes the floors
to 1.5x / 1.3x for noisy CI runners).  Model quality is irrelevant to
latency, so the fit is trained at a tiny budget.  With ``--json`` the
numbers land in ``BENCH_search_latency.json`` (repo root and
benchmarks/results/) for cross-PR trend tracking.
"""

import os
import time

import numpy as np

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.inference.search import ExhaustiveSearch, Prediction
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import fit_generative_models, generate_dataset

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SPEEDUP_FLOOR = 1.5 if SMOKE else 2.0
CASCADE_FLOOR = 1.3 if SMOKE else 2.0

QUERY_SHAPES = [
    GemmShape(2048, 2048, 2048, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 60000, DType.FP32, False, True),
    GemmShape(1024, 256, 1024, DType.FP32, True, False),
    GemmShape(4096, 32, 4096, DType.FP32, False, True),
    GemmShape(160, 160, 8192, DType.FP32, False, False),
    GemmShape(35, 8457, 2560, DType.FP32, True, False),
    GemmShape(512, 3072, 1024, DType.FP32, False, True),
]


def _seed_top_k(search: ExhaustiveSearch, shape, k: int) -> list[Prediction]:
    """The seed implementation: re-standardize the full design matrix."""
    configs, _ = search.candidates(shape)
    preds = search.predictions_reference(shape)
    k = min(k, len(configs))
    top = np.argpartition(-preds, k - 1)[:k]
    top = top[np.argsort(-preds[top])]
    return [
        Prediction(config=configs[i], predicted_tflops=float(2.0 ** preds[i]))
        for i in top
    ]


def _tops_equal(a, b) -> bool:
    return len(a) == len(b) and all(
        x.config == y.config and x.predicted_tflops == y.predicted_tflops
        for x, y in zip(a, b)
    )


def run_bench(results_recorder, cascade: bool = True) -> None:
    rng = np.random.default_rng(0)
    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=150,
    )
    ds = generate_dataset(
        TESLA_P100, "gemm", 2000, rng, samplers=samplers,
        dtypes=(DType.FP32,),
    )
    fit = fit_regressor(
        ds.x[:1800], ds.y[:1800], ds.x[1800:], ds.y[1800:],
        hidden=(32, 64, 32), epochs=10,
    )
    # The fresh fit carries no calibration, so top_k below searches
    # exhaustively; the cascade is armed (and timed) afterwards.
    search = ExhaustiveSearch(fit, TESLA_P100, "gemm")
    n_candidates = len(search.candidates(QUERY_SHAPES[0])[0])

    # Warm every cache (enumeration, feature matrix, pre-scaled H0).
    _seed_top_k(search, QUERY_SHAPES[0], 10)
    search.top_k(QUERY_SHAPES[0], 10)
    search.top_k_batch(QUERY_SHAPES, 10)

    t0 = time.perf_counter()
    for shape in QUERY_SHAPES:
        _seed_top_k(search, shape, 10)
    seed_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    exhaustive_tops = []
    t0 = time.perf_counter()
    for shape in QUERY_SHAPES:
        exhaustive_tops.append(search.top_k(shape, 10))
    fast_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    t0 = time.perf_counter()
    search.top_k_batch(QUERY_SHAPES, 10)
    batch_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    lines = [
        "Runtime search latency (Tesla P100, fp32 GEMM, "
        f"{n_candidates} candidates, {len(QUERY_SHAPES)} query shapes)",
        f"  seed path (re-standardize per query) : {seed_ms:8.2f} ms/query",
        f"  pre-scaled top_k                     : {fast_ms:8.2f} ms/query"
        f"  ({seed_ms / fast_ms:.2f}x)",
        f"  pre-scaled top_k_batch               : {batch_ms:8.2f} ms/query"
        f"  ({seed_ms / batch_ms:.2f}x)",
    ]
    data = {
        "device": "Tesla P100",
        "op": "gemm",
        "smoke": SMOKE,
        "n_candidates": n_candidates,
        "n_query_shapes": len(QUERY_SHAPES),
        "seed_ms_per_query": seed_ms,
        "prescaled_ms_per_query": fast_ms,
        "batch_ms_per_query": batch_ms,
        "prescaled_speedup": seed_ms / fast_ms,
        "batch_speedup": seed_ms / batch_ms,
    }

    cas_ms = cas_batch_ms = None
    if cascade:
        fit.cascade = search.calibrate_cascade((DType.FP32,))
        stats = search.cascade_stats
        # Warm the float32 twin, then prove the shortlist path returns
        # the exhaustive answer for every bench shape before timing it.
        search.top_k(QUERY_SHAPES[0], 10)
        for shape, want in zip(QUERY_SHAPES, exhaustive_tops):
            assert _tops_equal(search.top_k(shape, 10), want), shape
        for tops, want in zip(
            search.top_k_batch(QUERY_SHAPES, 10), exhaustive_tops
        ):
            assert _tops_equal(tops, want)

        cas0, pruned0, fb0 = (
            stats.cascade_queries, stats.pruned, stats.fallbacks
        )
        t0 = time.perf_counter()
        for shape in QUERY_SHAPES:
            search.top_k(shape, 10)
        cas_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

        t0 = time.perf_counter()
        search.top_k_batch(QUERY_SHAPES, 10)
        cas_batch_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

        n_queries = stats.cascade_queries - cas0
        assert n_queries == 2 * len(QUERY_SHAPES)  # no silent fallback
        assert stats.fallbacks == fb0
        prune_ratio = (stats.pruned - pruned0) / (n_queries * n_candidates)

        lines += [
            f"  cascade top_k                        : {cas_ms:8.2f} ms/query"
            f"  ({fast_ms / cas_ms:.2f}x vs exhaustive)",
            f"  cascade top_k_batch                  : "
            f"{cas_batch_ms:8.2f} ms/query"
            f"  ({batch_ms / cas_batch_ms:.2f}x vs exhaustive)",
            f"  cascade prune ratio                  : "
            f"{prune_ratio * 100:8.2f} %  (top-10 parity: exact)",
        ]
        data.update({
            "cascade_ms_per_query": cas_ms,
            "cascade_batch_ms_per_query": cas_batch_ms,
            "cascade_speedup": fast_ms / cas_ms,
            "cascade_batch_speedup": batch_ms / cas_batch_ms,
            "cascade_prune_ratio": prune_ratio,
            "cascade_margin_fp32": fit.cascade.margins["FP32"],
        })

    results_recorder("search_latency", "\n".join(lines), data=data)

    assert seed_ms / fast_ms >= SPEEDUP_FLOOR
    assert batch_ms <= fast_ms * 1.2  # batching never loses
    if cascade:
        assert fast_ms / cas_ms >= CASCADE_FLOOR


def test_bench_search_latency(results_recorder):
    run_bench(results_recorder, cascade=True)


if __name__ == "__main__":
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cascade", action=argparse.BooleanOptionalAction, default=True,
        help="include the two-stage cascade axis (default: on)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="also write BENCH_search_latency.json (repo root + results/)",
    )
    args = parser.parse_args()

    def _echo(exp_id, text, data=None):
        print(text)
        if data is not None and args.json:
            payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
            root = Path(__file__).parent.parent
            results = Path(__file__).parent / "results"
            results.mkdir(exist_ok=True)
            (results / f"BENCH_{exp_id}.json").write_text(payload)
            (root / f"BENCH_{exp_id}.json").write_text(payload)

    run_bench(_echo, cascade=args.cascade)
