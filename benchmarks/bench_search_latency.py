"""Microbenchmark: repeated runtime-search latency (pre-scaled cache).

The seed implementation rebuilt and re-standardized the full ~16-column
design matrix for every ``top_k`` query.  The search now caches the
candidate feature matrix already standardized by the fit's x-scaler and
folded through the MLP's first layer, so a query only standardizes its
shape-feature vector and runs the remaining layers chunk-wise;
``top_k_batch`` additionally pushes many query shapes through each
cache-resident chunk.

This bench times all three paths over the full GEMM candidate set and
asserts the pre-scaled path is at least 2x faster per repeated query
(REPRO_BENCH_SMOKE=1 relaxes the floor to 1.5x for noisy CI runners).
Model quality is irrelevant to latency, so the fit is trained at a tiny
budget.  With ``--json`` the numbers land in ``BENCH_search_latency.json``
(repo root and benchmarks/results/) for cross-PR trend tracking.
"""

import os
import time

import numpy as np

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.inference.search import ExhaustiveSearch, Prediction
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import fit_generative_models, generate_dataset

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SPEEDUP_FLOOR = 1.5 if SMOKE else 2.0

QUERY_SHAPES = [
    GemmShape(2048, 2048, 2048, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 60000, DType.FP32, False, True),
    GemmShape(1024, 256, 1024, DType.FP32, True, False),
    GemmShape(4096, 32, 4096, DType.FP32, False, True),
    GemmShape(160, 160, 8192, DType.FP32, False, False),
    GemmShape(35, 8457, 2560, DType.FP32, True, False),
    GemmShape(512, 3072, 1024, DType.FP32, False, True),
]


def _seed_top_k(search: ExhaustiveSearch, shape, k: int) -> list[Prediction]:
    """The seed implementation: re-standardize the full design matrix."""
    configs, _ = search.candidates(shape)
    preds = search.predictions_reference(shape)
    k = min(k, len(configs))
    top = np.argpartition(-preds, k - 1)[:k]
    top = top[np.argsort(-preds[top])]
    return [
        Prediction(config=configs[i], predicted_tflops=float(2.0 ** preds[i]))
        for i in top
    ]


def test_bench_search_latency(results_recorder):
    rng = np.random.default_rng(0)
    samplers = fit_generative_models(
        TESLA_P100, op="gemm", dtypes=(DType.FP32,), rng=rng,
        target_accepted=150,
    )
    ds = generate_dataset(
        TESLA_P100, "gemm", 2000, rng, samplers=samplers,
        dtypes=(DType.FP32,),
    )
    fit = fit_regressor(
        ds.x[:1800], ds.y[:1800], ds.x[1800:], ds.y[1800:],
        hidden=(32, 64, 32), epochs=10,
    )
    search = ExhaustiveSearch(fit, TESLA_P100, "gemm")
    n_candidates = len(search.candidates(QUERY_SHAPES[0])[0])

    # Warm every cache (enumeration, feature matrix, pre-scaled H0).
    _seed_top_k(search, QUERY_SHAPES[0], 10)
    search.top_k(QUERY_SHAPES[0], 10)
    search.top_k_batch(QUERY_SHAPES, 10)

    t0 = time.perf_counter()
    for shape in QUERY_SHAPES:
        _seed_top_k(search, shape, 10)
    seed_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    t0 = time.perf_counter()
    for shape in QUERY_SHAPES:
        search.top_k(shape, 10)
    fast_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    t0 = time.perf_counter()
    search.top_k_batch(QUERY_SHAPES, 10)
    batch_ms = (time.perf_counter() - t0) / len(QUERY_SHAPES) * 1e3

    text = "\n".join([
        "Runtime search latency (Tesla P100, fp32 GEMM, "
        f"{n_candidates} candidates, {len(QUERY_SHAPES)} query shapes)",
        f"  seed path (re-standardize per query) : {seed_ms:8.2f} ms/query",
        f"  pre-scaled top_k                     : {fast_ms:8.2f} ms/query"
        f"  ({seed_ms / fast_ms:.2f}x)",
        f"  pre-scaled top_k_batch               : {batch_ms:8.2f} ms/query"
        f"  ({seed_ms / batch_ms:.2f}x)",
    ])
    results_recorder(
        "search_latency",
        text,
        data={
            "device": "Tesla P100",
            "op": "gemm",
            "smoke": SMOKE,
            "n_candidates": n_candidates,
            "n_query_shapes": len(QUERY_SHAPES),
            "seed_ms_per_query": seed_ms,
            "prescaled_ms_per_query": fast_ms,
            "batch_ms_per_query": batch_ms,
            "prescaled_speedup": seed_ms / fast_ms,
            "batch_speedup": seed_ms / batch_ms,
        },
    )

    assert seed_ms / fast_ms >= SPEEDUP_FLOOR
    assert batch_ms <= fast_ms * 1.2  # batching never loses


if __name__ == "__main__":
    class _Echo:
        def __call__(self, exp_id, text, data=None):
            print(text)

    test_bench_search_latency(_Echo())
