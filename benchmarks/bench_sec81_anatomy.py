"""§8.1: kernel anatomy at (M,N,K) = (2560, 32, 2560) on the Tesla P100.

Paper shape: ISAAC picks a narrower N tile than cuBLAS's 64-wide one,
spending fewer registers, reaching higher occupancy and a better L2 hit
rate — and therefore higher TFLOPS on a shape where cuBLAS wastes half its
threads on a nonexistent part of the output.
"""


from repro.harness.experiments import run_sec81


def test_sec81_kernel_anatomy(benchmark, results_recorder,
                              pascal_gemm_tuner):
    result = benchmark.pedantic(
        lambda: run_sec81(tuner=pascal_gemm_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("sec81", result.text)

    isaac, cublas = result.data
    # ISAAC is faster...
    assert isaac.stats.tflops > 1.2 * cublas.stats.tflops
    # ...with a narrower output tile along N (no threads wasted on the
    # nonexistent 32 <= n < 64 half of the output),
    assert isaac.cfg.nl <= cublas.cfg.nl
    # ...and more latency-hiding resources per tile: either more resident
    # warps (the paper's route) or a KL-split/deeper staging (ours).
    assert (
        isaac.stats.occupancy.occupancy >= cublas.stats.occupancy.occupancy
        or isaac.cfg.kl > cublas.cfg.kl
        or isaac.cfg.u > cublas.cfg.u
    )
