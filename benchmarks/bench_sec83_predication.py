"""§8.3: bounds-checking strategies — PTX predication vs CUDA-C checks.

Paper: moving from CUDA-C to PTX cut the bounds-checking overhead from
15-20% to ~2%, thanks to hardware predication.
"""


from repro.harness.experiments import run_sec83


def test_sec83_predication_overhead(benchmark, results_recorder):
    result = benchmark.pedantic(run_sec83, rounds=1, iterations=1)
    results_recorder("sec83", result.text)

    for res in result.data:
        assert res.predicated_overhead < 0.05, res.shape
        assert 0.05 < res.checked_overhead < 0.35, res.shape
        assert res.predicated_overhead < res.checked_overhead / 3
