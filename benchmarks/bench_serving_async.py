"""Macrobenchmark: AsyncEngine serving vs the per-request sync loop.

A service does not receive its traffic as neat ``query_many`` batches —
it sees many independent clients whose questions *overlap*: popular
shapes recur across clients and collide in flight.  The pre-Engine
answer mapped every request 1:1 onto a ``best_kernel`` call, so N
requests for one hot shape paid N full searches.  The
:class:`AsyncEngine` front door coalesces duplicate in-flight shapes
onto one future, serves repeats from the engine's two-level cache, and
flushes the remaining distinct misses through per-shard micro-batches
(time window or max-batch, whichever first).

This bench replays the same zipf-weighted workload — R requests over D
distinct GEMM shapes, pulled by C concurrent clients — through three
front doors:

* ``per-request sync loop`` — one hand-wired ``Isaac.best_kernel`` call
  per request, serialized (what callers did before the Engine; it could
  not run concurrently anyway — ``ExhaustiveSearch`` is stateful, so a
  hand-wired deployment must hold a lock around every call, and a
  serialized loop is that dispatch without the contention overhead);
* ``sync Engine threads`` — C threads against ``Engine.query``
  (in-flight dedup + LRU, no micro-batching), reported for transparency;
* ``AsyncEngine`` — C client tasks against the micro-batching shards.

and asserts that every reply is config-identical across all three (the
serving layer changes dispatch, never answers) and that AsyncEngine
throughput is at least 3x the per-request sync loop (REPRO_BENCH_SMOKE=1
shrinks budgets and relaxes the floor to 2x for shared CI runners).

**The cascade axis.**  The AsyncEngine replay runs twice — once with the
two-stage cascade search (the default) and once with it disabled — and
reports both miss p50 latencies, each split into the micro-batch queue
wait and the dispatched search itself.  Replies must be identical either
way: the cascade changes cold-search cost, never answers.

**The worker-tier axis.**  ``--workers N`` (CLI) or REPRO_BENCH_WORKERS
(pytest) additionally replays the workload through
``AsyncEngine(workers=w)`` for each axis point — the sharded
multi-process serving tier — on a fresh (cold-cache) engine, so every
distinct shape is a true miss executed in a worker process.  Each point
reports *miss throughput* (distinct searches per second) and asserts
``config_mismatches: 0`` against the in-process path.  The >=2.5x
miss-throughput scaling floor (4 workers vs 1) is asserted only when the
host actually has >= 4 CPUs — process sharding cannot beat the GIL on a
single core, and CI smoke runners frequently have exactly one.

**The SLO axis.**  ``--slo`` (CLI) or REPRO_BENCH_SLO (pytest) replays
the workload once more through ``AsyncEngine.from_slo`` with a compiled
``ServingSLO(target_qps=200, p95_ms=50)`` plan — every serving knob
derived, none hand-set — asserting config-identity against the
per-request loop and that the warm-path ``hit_p95_ms`` meets the
declared p95 budget.  The compiled plan and the measured numbers land
under ``"slo"`` in ``BENCH_serving_async.json``.

Every workload knob is an explicit CLI flag (``--seed --concurrency
--requests --distinct``), so scaling runs are reproducible and
comparable across machines and PRs.  Model quality is irrelevant to
dispatch cost, so the tuner is trained at a tiny budget.  With
``--json`` the numbers land in ``BENCH_serving_async.json`` at the repo
root.  Direct invocation works too::

    PYTHONPATH=src python benchmarks/bench_serving_async.py \
        --workers 4 --seed 7 --json
"""

import asyncio
import os
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.async_engine import AsyncEngine, BackpressureError
from repro.service.engine import Engine, KernelRequest
from repro.service.slo import ServingSLO

#: Miss-throughput scaling floor for the worker axis (max point vs 1
#: worker), asserted only with >= 4 workers on a >= 4-CPU host.
SCALING_FLOOR = 2.5


@dataclass(frozen=True)
class BenchConfig:
    """One reproducible serving-bench run; every knob is a CLI flag."""

    seed: int = 7
    concurrency: int = 64
    requests: int = 192
    distinct: int = 48
    samples: int = 2000
    k: int = 20
    reps: int = 2
    window_ms: float = 2.0
    speedup_floor: float = 3.0
    smoke: bool = False
    workers: tuple[int, ...] = ()
    slo: bool = False


def default_config(**overrides) -> BenchConfig:
    """Budgets from the environment (REPRO_BENCH_SMOKE), then overrides."""
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
    cfg = BenchConfig(
        requests=96 if smoke else 192,
        distinct=24 if smoke else 48,
        samples=700 if smoke else 2000,
        # Full mode holds the 3x acceptance bar (4.4x measured); smoke
        # relaxes the floor for shared CI runners, like the offline
        # bench's 10x -> 3x.
        speedup_floor=2.0 if smoke else 3.0,
        smoke=smoke,
        slo=os.environ.get("REPRO_BENCH_SLO", "") not in ("", "0"),
    )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    return replace(cfg, **overrides)


def _workload(cfg: BenchConfig) -> list[KernelRequest]:
    """R zipf-weighted draws from D distinct shapes, shuffled."""
    rng = np.random.default_rng(cfg.seed)
    shapes: dict[GemmShape, None] = {}
    while len(shapes) < cfg.distinct:
        m, n, k = (int(d) for d in 2 ** rng.uniform(5, 11, size=3))
        shapes.setdefault(
            GemmShape(m, n, k, DType.FP32,
                      bool(rng.integers(2)), bool(rng.integers(2)))
        )
    pool = list(shapes)
    weights = 1.0 / np.arange(1, len(pool) + 1)
    weights /= weights.sum()
    # Every distinct shape appears at least once; the rest is popularity.
    draws = list(range(len(pool))) + list(
        rng.choice(len(pool), size=cfg.requests - len(pool), p=weights)
    )
    rng.shuffle(draws)
    return [
        KernelRequest("gemm", pool[i], k=cfg.k, reps=cfg.reps)
        for i in draws
    ]


def _threaded(worker, concurrency: int) -> float:
    """Run ``worker()`` clients on N threads; returns the wall time."""
    threads = [
        threading.Thread(target=worker) for _ in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _run_loop(tuner: Isaac, requests: list[KernelRequest]):
    """The pre-Engine path: one hand-wired best_kernel call per request.

    Sequential on purpose: ``ExhaustiveSearch`` is stateful (shared chunk
    buffers), so a hand-wired deployment must hold a lock around every
    ``best_kernel`` call anyway — a serialized loop is that same dispatch
    without the contention overhead.
    """
    t0 = time.perf_counter()
    replies = [
        tuner.best_kernel(req.shape, k=req.k, reps=req.reps)
        for req in requests
    ]
    return replies, time.perf_counter() - t0


def _run_sync_engine(
    tuner: Isaac, requests: list[KernelRequest], cfg: BenchConfig
):
    """C threads against Engine.query: dedup + LRU, no micro-batching."""
    engine = Engine(max_workers=0)
    engine.register(tuner)
    replies: list = [None] * len(requests)
    work = iter(enumerate(requests))
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                job = next(work, None)
            if job is None:
                return
            i, req = job
            replies[i] = engine.query(req)

    elapsed = _threaded(client, cfg.concurrency)
    stats = engine.stats()
    engine.close()
    return replies, elapsed, stats


def _run_async(
    tuner: Isaac,
    requests: list[KernelRequest],
    cfg: BenchConfig,
    workers: int = 0,
    cascade: bool = True,
):
    """C client tasks against the micro-batching front door.

    ``workers >= 1`` routes miss flushes through the sharded process
    pool; the pool is booted *before* the clock starts, like a
    deployment would.  ``cascade=False`` replays with the two-stage
    search disabled — the exhaustive-miss baseline.
    """
    inner = Engine(max_workers=0, cascade=cascade)
    inner.register(tuner)
    engine = AsyncEngine(
        inner,
        window_ms=cfg.window_ms,
        max_batch=cfg.concurrency,
        workers=workers,
        own_engine=True,
    )
    engine.start_workers()

    async def main():
        replies: list = [None] * len(requests)
        work = iter(enumerate(requests))

        async def client() -> None:
            for i, req in work:
                replies[i] = await engine.query(req)

        t0 = time.perf_counter()
        await asyncio.gather(*(client() for _ in range(cfg.concurrency)))
        elapsed = time.perf_counter() - t0
        stats = engine.stats()
        await engine.aclose()
        return replies, elapsed, stats

    return asyncio.run(main())


#: The SLO-axis spec: the acceptance-bar deployment shape
#: (``serve --slo-qps 200 --slo-p95-ms 50``).
SLO_SPEC = ServingSLO(target_qps=200.0, p95_ms=50.0, memory_mb=256.0)


def _run_slo(tuner: Isaac, requests: list[KernelRequest],
             cfg: BenchConfig):
    """Replay through a fully compiled config (``AsyncEngine.from_slo``).

    The derived admission bound is sized for the declared QPS, not the
    bench's client count, so clients back off one derived window on
    transient backpressure — what a real client does — instead of the
    unconditional ``await`` the hand-tuned replays can afford.
    """
    plan = SLO_SPEC.compile()
    inner = Engine(max_workers=0, lru_capacity=plan.lru_capacity,
                   cascade=plan.cascade, cascade_keep=plan.cascade_keep)
    inner.register(tuner)
    engine = AsyncEngine.from_slo(inner, plan, own_engine=True)

    async def main():
        replies: list = [None] * len(requests)
        work = iter(enumerate(requests))

        async def client() -> None:
            for i, req in work:
                while True:
                    try:
                        replies[i] = await engine.query(req)
                        break
                    except BackpressureError as exc:
                        if not exc.transient:
                            raise
                        await asyncio.sleep(
                            max(plan.window_ms, 1.0) / 1e3
                        )

        t0 = time.perf_counter()
        await asyncio.gather(*(client() for _ in range(cfg.concurrency)))
        elapsed = time.perf_counter() - t0
        stats = engine.stats()
        await engine.aclose()
        return replies, elapsed, stats

    replies, elapsed, stats = asyncio.run(main())
    return plan, replies, elapsed, stats


def _mismatches(replies, reference) -> int:
    return sum(
        1
        for got, want in zip(replies, reference)
        if got.config != want.config
        or got.measured_tflops != want.measured_tflops
    )


def run_bench(cfg: BenchConfig, record) -> dict:
    """The whole comparison (plus the worker axis); returns the JSON."""
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(
        n_samples=cfg.samples, seed=0, epochs=15, generative_target=120
    )
    requests = _workload(cfg)
    # Warm the candidate enumeration + folded-model caches so all paths
    # measure dispatch, not one-time cold start.
    tuner.top_k(requests[0].shape, 1)

    loop_replies, loop_s = _run_loop(tuner, requests)
    sync_replies, sync_s, sync_stats = _run_sync_engine(
        tuner, requests, cfg
    )
    # The shared searcher's cascade counters are cumulative, so each
    # replay's usage is read as a delta around its run.
    cas0 = tuner.searcher.cascade_stats.cascade_queries
    async_replies, async_s, astats = _run_async(tuner, requests, cfg)
    cascade_misses = tuner.searcher.cascade_stats.cascade_queries - cas0
    # The cascade-off replay: same workload, exhaustive misses.  The
    # cold-search cost difference shows up as miss_p50, split into its
    # batch-forming queue wait and the dispatched search itself.
    cas0 = tuner.searcher.cascade_stats.cascade_queries
    nc_replies, nc_s, nc_stats = _run_async(
        tuner, requests, cfg, cascade=False
    )
    assert tuner.searcher.cascade_stats.cascade_queries == cas0

    # Identical answers, per the acceptance bar: the serving layer may
    # only change how requests are dispatched, never what they return —
    # and neither may the cascade (its whole contract is bit-identical
    # top-k for less time).
    mismatches = (
        _mismatches(async_replies, loop_replies)
        + _mismatches(sync_replies, loop_replies)
        + _mismatches(nc_replies, loop_replies)
    )
    assert mismatches == 0, f"{mismatches} config mismatches vs best_kernel"
    assert cascade_misses > 0

    n = len(requests)
    speedup = loop_s / async_s
    shard = astats.shards[0]
    lines = [
        f"Async serving: {n} requests over {cfg.distinct} distinct gemm "
        f"shapes (seed {cfg.seed}), {cfg.concurrency} concurrent clients "
        f"(window {cfg.window_ms}ms)",
        f"{'path':>28s} {'total':>9s} {'req/s':>8s}",
        f"{'per-request sync loop':>28s} {loop_s:8.2f}s {n / loop_s:8.1f}",
        f"{'sync Engine threads':>28s} {sync_s:8.2f}s {n / sync_s:8.1f}",
        f"{'AsyncEngine micro-batches':>28s} {async_s:8.2f}s "
        f"{n / async_s:8.1f}",
        f"speedup vs loop: {speedup:.2f}x   (searches="
        f"{astats.submitted - astats.cache_hits - astats.coalesced}, "
        f"cache_hits={astats.cache_hits}, coalesced={astats.coalesced}, "
        f"batches={shard.batches}, mean_batch={shard.mean_batch:.1f}, "
        f"hit_p50={astats.hit_p50_ms:.3f}ms, "
        f"miss_p50={astats.miss_p50_ms:.0f}ms, smoke={cfg.smoke})",
        f"miss latency: cascade p50={astats.miss_p50_ms:.0f}ms "
        f"(queue {astats.miss_queue_p50_ms:.0f}ms + search "
        f"{astats.miss_search_p50_ms:.0f}ms)  vs  exhaustive "
        f"p50={nc_stats.miss_p50_ms:.0f}ms "
        f"(queue {nc_stats.miss_queue_p50_ms:.0f}ms + search "
        f"{nc_stats.miss_search_p50_ms:.0f}ms), "
        f"cascade misses={cascade_misses}",
    ]
    data = {
        "requests": n,
        "distinct_shapes": cfg.distinct,
        "concurrency": cfg.concurrency,
        "window_ms": cfg.window_ms,
        "max_batch": cfg.concurrency,
        "seed": cfg.seed,
        "smoke": cfg.smoke,
        "loop_s": loop_s,
        "sync_engine_s": sync_s,
        "async_s": async_s,
        "loop_req_per_s": n / loop_s,
        "sync_engine_req_per_s": n / sync_s,
        "async_req_per_s": n / async_s,
        "speedup_vs_loop": speedup,
        "speedup_vs_sync_engine": sync_s / async_s,
        "sync_engine_searches": sync_stats.searches,
        "async_cache_hits": astats.cache_hits,
        "async_coalesced": astats.coalesced,
        "batches": shard.batches,
        "mean_batch": shard.mean_batch,
        "p50_ms": shard.p50_ms,
        "p95_ms": shard.p95_ms,
        "hit_p50_ms": astats.hit_p50_ms,
        "hit_p95_ms": astats.hit_p95_ms,
        "miss_p50_ms": astats.miss_p50_ms,
        "miss_p95_ms": astats.miss_p95_ms,
        "miss_queue_p50_ms": astats.miss_queue_p50_ms,
        "miss_search_p50_ms": astats.miss_search_p50_ms,
        "cascade_misses": cascade_misses,
        "no_cascade_s": nc_s,
        "no_cascade_miss_p50_ms": nc_stats.miss_p50_ms,
        "no_cascade_miss_queue_p50_ms": nc_stats.miss_queue_p50_ms,
        "no_cascade_miss_search_p50_ms": nc_stats.miss_search_p50_ms,
        "config_mismatches": mismatches,
    }

    # ------------------------------------------------------------------
    # The sharded worker-tier axis
    # ------------------------------------------------------------------
    axis = []
    for w in cfg.workers:
        w_replies, w_s, w_stats = _run_async(tuner, requests, cfg,
                                             workers=w)
        w_mism = _mismatches(w_replies, loop_replies)
        assert w_mism == 0, (
            f"{w_mism} config mismatches at workers={w} vs in-process"
        )
        misses = w_stats.submitted - w_stats.cache_hits - w_stats.coalesced
        axis.append({
            "workers": w,
            "async_s": w_s,
            "req_per_s": n / w_s,
            "misses": misses,
            "miss_per_s": misses / w_s,
            "worker_flushes": w_stats.worker_flushes,
            "worker_fallbacks": w_stats.worker_fallbacks,
            "hit_p50_ms": w_stats.hit_p50_ms,
            "miss_p50_ms": w_stats.miss_p50_ms,
            "config_mismatches": w_mism,
        })
        lines.append(
            f"{f'worker tier (N={w})':>28s} {w_s:8.2f}s {n / w_s:8.1f}"
            f"   miss/s={misses / w_s:6.1f} "
            f"flushes={w_stats.worker_flushes} "
            f"fallbacks={w_stats.worker_fallbacks}"
        )
    if axis:
        data["workers_axis"] = axis
        base = next((p for p in axis if p["workers"] == 1), None)
        peak = max(axis, key=lambda p: p["workers"])
        if base is not None and peak["workers"] > 1:
            scaling = peak["miss_per_s"] / base["miss_per_s"]
            data["miss_scaling_vs_1worker"] = scaling
            data["host_cpus"] = os.cpu_count() or 1
            lines.append(
                f"miss-throughput scaling: {scaling:.2f}x at "
                f"{peak['workers']} workers vs 1 "
                f"({data['host_cpus']} host CPUs)"
            )
            if peak["workers"] >= 4 and (os.cpu_count() or 1) >= 4:
                assert scaling >= SCALING_FLOOR, (
                    f"only {scaling:.2f}x miss throughput at "
                    f"{peak['workers']} workers (floor {SCALING_FLOOR}x)"
                )

    # ------------------------------------------------------------------
    # The compiled-config (SLO) axis
    # ------------------------------------------------------------------
    if cfg.slo:
        plan, s_replies, s_s, s_stats = _run_slo(tuner, requests, cfg)
        s_mism = _mismatches(s_replies, loop_replies)
        assert s_mism == 0, (
            f"{s_mism} config mismatches under the compiled SLO config"
        )
        budget = plan.slo.p95_ms
        assert s_stats.hit_p95_ms <= budget, (
            f"warm-path hit_p95 {s_stats.hit_p95_ms:.3f}ms blows the "
            f"declared p95 budget {budget}ms under the compiled config"
        )
        data["slo"] = {
            "target_qps": plan.slo.target_qps,
            "p95_ms": plan.slo.p95_ms,
            "memory_mb": plan.slo.memory_mb,
            "workload": plan.slo.workload,
            "window_ms": plan.window_ms,
            "max_batch": plan.max_batch,
            "max_pending": plan.max_pending,
            "max_queue": plan.max_queue,
            "lru_capacity": plan.lru_capacity,
            "flush_threads": plan.flush_threads,
            "deadline_ms": plan.deadline_ms,
            "breaker_threshold": plan.breaker_threshold,
            "async_s": s_s,
            "req_per_s": n / s_s,
            "hit_p95_ms": s_stats.hit_p95_ms,
            "miss_p50_ms": s_stats.miss_p50_ms,
            "rejected": s_stats.rejected,
            "config_mismatches": s_mism,
        }
        lines.append(
            f"{'compiled SLO config':>28s} {s_s:8.2f}s {n / s_s:8.1f}"
            f"   hit_p95={s_stats.hit_p95_ms:.3f}ms "
            f"(budget {budget:.0f}ms), rejected={s_stats.rejected}, "
            f"derived window={plan.window_ms}ms batch={plan.max_batch} "
            f"pending={plan.max_pending}"
        )

    record("serving_async", "\n".join(lines), data=data)

    assert speedup >= cfg.speedup_floor, (
        f"only {speedup:.2f}x over the per-request sync loop "
        f"(floor {cfg.speedup_floor}x at concurrency {cfg.concurrency})"
    )
    return data


def _workers_axis(raw: str) -> tuple[int, ...]:
    """Parse a ``--workers`` spec; a lone N > 1 implies the 1-baseline."""
    if not raw:
        return ()
    points = sorted({int(p) for p in raw.split(",") if p.strip()})
    if any(p < 1 for p in points):
        raise ValueError(f"worker axis points must be >= 1, got {points}")
    if points and points != [1] and 1 not in points:
        points.insert(0, 1)  # scaling needs the single-worker baseline
    return tuple(points)


def test_bench_serving_async(results_recorder):
    workers = _workers_axis(os.environ.get("REPRO_BENCH_WORKERS", ""))
    run_bench(default_config(workers=workers), results_recorder)


def main(argv=None) -> int:
    """Direct invocation (CI smoke, scaling runs) without pytest."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="AsyncEngine serving benchmark (+ worker-tier axis)"
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default 7)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="concurrent client tasks (default 64)")
    parser.add_argument("--requests", type=int, default=None,
                        help="total requests in the workload")
    parser.add_argument("--distinct", type=int, default=None,
                        help="distinct shapes in the workload")
    parser.add_argument("--samples", type=int, default=None,
                        help="tuner training budget")
    parser.add_argument("--workers", default="",
                        help="worker-tier axis, e.g. '4' or '1,2,4' "
                        "(a lone N > 1 implies the 1-worker baseline)")
    parser.add_argument("--slo", action="store_true",
                        help="also replay through AsyncEngine.from_slo "
                        "with the compiled qps=200/p95=50ms plan")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_serving_async.json (results/ "
                        "and the repo root)")
    args = parser.parse_args(argv)

    here = Path(__file__).parent
    results_dir = here / "results"

    def record(exp_id: str, text: str, data: dict | None = None) -> None:
        # Same two landing spots as benchmarks/conftest.py `record`.
        results_dir.mkdir(exist_ok=True)
        (results_dir / f"{exp_id}.txt").write_text(text + "\n")
        if data is not None and args.json:
            payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
            (results_dir / f"BENCH_{exp_id}.json").write_text(payload)
            (here.parent / f"BENCH_{exp_id}.json").write_text(payload)
        print(f"\n{text}\n")

    cfg = default_config(
        seed=args.seed,
        concurrency=args.concurrency,
        requests=args.requests,
        distinct=args.distinct,
        samples=args.samples,
        workers=_workers_axis(args.workers),
        slo=args.slo or None,
    )
    run_bench(cfg, record)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
