"""Macrobenchmark: AsyncEngine serving vs the per-request sync loop.

A service does not receive its traffic as neat ``query_many`` batches —
it sees many independent clients whose questions *overlap*: popular
shapes recur across clients and collide in flight.  The pre-Engine
answer mapped every request 1:1 onto a ``best_kernel`` call, so N
requests for one hot shape paid N full searches.  The
:class:`AsyncEngine` front door coalesces duplicate in-flight shapes
onto one future, serves repeats from the engine's two-level cache, and
flushes the remaining distinct misses through per-shard micro-batches
(time window or max-batch, whichever first).

This bench replays the same zipf-weighted workload — R requests over D
distinct GEMM shapes, pulled by 64 concurrent clients — through three
front doors:

* ``per-request sync loop`` — one hand-wired ``Isaac.best_kernel`` call
  per request, serialized (what callers did before the Engine; it could
  not run concurrently anyway — ``ExhaustiveSearch`` is stateful, so a
  hand-wired deployment must hold a lock around every call, and a
  serialized loop is that dispatch without the contention overhead);
* ``sync Engine threads`` — 64 threads against ``Engine.query``
  (in-flight dedup + LRU, no micro-batching), reported for transparency;
* ``AsyncEngine`` — 64 client tasks against the micro-batching shards.

and asserts that every reply is config-identical across all three (the
serving layer changes dispatch, never answers) and that AsyncEngine
throughput is at least 3x the per-request sync loop (REPRO_BENCH_SMOKE=1
shrinks budgets and relaxes the floor to 2x for shared CI runners).

Model quality is irrelevant to dispatch cost, so the tuner is trained at
a tiny budget.  With
``--json`` the numbers land in ``BENCH_serving_async.json`` at the repo
root.
"""

import asyncio
import os
import threading
import time

import numpy as np

from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_DISTINCT = 24 if SMOKE else 48
N_REQUESTS = 96 if SMOKE else 192
N_SAMPLES = 700 if SMOKE else 2000
CONCURRENCY = 64
K = 20
REPS = 2
WINDOW_MS = 2.0
# Full mode holds the 3x acceptance bar (4.4x measured); smoke relaxes
# the floor for shared CI runners, like the offline bench's 10x -> 3x.
SPEEDUP_FLOOR = 2.0 if SMOKE else 3.0


def _workload(rng: np.random.Generator) -> list[KernelRequest]:
    """R zipf-weighted draws from D distinct shapes, shuffled."""
    shapes: dict[GemmShape, None] = {}
    while len(shapes) < N_DISTINCT:
        m, n, k = (int(d) for d in 2 ** rng.uniform(5, 11, size=3))
        shapes.setdefault(
            GemmShape(m, n, k, DType.FP32,
                      bool(rng.integers(2)), bool(rng.integers(2)))
        )
    pool = list(shapes)
    weights = 1.0 / np.arange(1, len(pool) + 1)
    weights /= weights.sum()
    # Every distinct shape appears at least once; the rest is popularity.
    draws = list(range(len(pool))) + list(
        rng.choice(len(pool), size=N_REQUESTS - len(pool), p=weights)
    )
    rng.shuffle(draws)
    return [KernelRequest("gemm", pool[i], k=K, reps=REPS) for i in draws]


def _threaded(worker) -> float:
    """Run ``worker()`` clients on 64 threads; returns the wall time."""
    threads = [
        threading.Thread(target=worker) for _ in range(CONCURRENCY)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _run_loop(tuner: Isaac, requests: list[KernelRequest]):
    """The pre-Engine path: one hand-wired best_kernel call per request.

    Sequential on purpose: ``ExhaustiveSearch`` is stateful (shared chunk
    buffers), so a hand-wired deployment must hold a lock around every
    ``best_kernel`` call anyway — a serialized loop is that same dispatch
    without the contention overhead.
    """
    t0 = time.perf_counter()
    replies = [
        tuner.best_kernel(req.shape, k=req.k, reps=req.reps)
        for req in requests
    ]
    return replies, time.perf_counter() - t0


def _run_sync_engine(tuner: Isaac, requests: list[KernelRequest]):
    """64 threads against Engine.query: dedup + LRU, no micro-batching."""
    engine = Engine(max_workers=0)
    engine.register(tuner)
    replies: list = [None] * len(requests)
    work = iter(enumerate(requests))
    lock = threading.Lock()

    def client() -> None:
        while True:
            with lock:
                job = next(work, None)
            if job is None:
                return
            i, req = job
            replies[i] = engine.query(req)

    elapsed = _threaded(client)
    stats = engine.stats()
    engine.close()
    return replies, elapsed, stats


def _run_async(tuner: Isaac, requests: list[KernelRequest]):
    """64 client tasks against the micro-batching front door."""
    inner = Engine(max_workers=0)
    inner.register(tuner)
    engine = AsyncEngine(
        inner, window_ms=WINDOW_MS, max_batch=CONCURRENCY, own_engine=True
    )

    async def main():
        replies: list = [None] * len(requests)
        work = iter(enumerate(requests))

        async def client() -> None:
            for i, req in work:
                replies[i] = await engine.query(req)

        t0 = time.perf_counter()
        await asyncio.gather(*(client() for _ in range(CONCURRENCY)))
        elapsed = time.perf_counter() - t0
        stats = engine.stats()
        await engine.aclose()
        return replies, elapsed, stats

    return asyncio.run(main())


def test_bench_serving_async(results_recorder):
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=N_SAMPLES, seed=0, epochs=15, generative_target=120)
    requests = _workload(np.random.default_rng(7))
    # Warm the candidate enumeration + folded-model caches so all three
    # paths measure dispatch, not one-time cold start.
    tuner.top_k(requests[0].shape, 1)

    loop_replies, loop_s = _run_loop(tuner, requests)
    sync_replies, sync_s, sync_stats = _run_sync_engine(tuner, requests)
    async_replies, async_s, astats = _run_async(tuner, requests)

    # Identical answers, per the acceptance bar: the serving layer may
    # only change how requests are dispatched, never what they return.
    mismatches = sum(
        1
        for got, base, want in zip(async_replies, sync_replies, loop_replies)
        if got.config != want.config or base.config != want.config
        or got.measured_tflops != want.measured_tflops
    )
    assert mismatches == 0, f"{mismatches} config mismatches vs best_kernel"

    n = len(requests)
    speedup = loop_s / async_s
    shard = astats.shards[0]
    lines = [
        f"Async serving: {n} requests over {N_DISTINCT} distinct gemm "
        f"shapes, {CONCURRENCY} concurrent clients (window {WINDOW_MS}ms)",
        f"{'path':>28s} {'total':>9s} {'req/s':>8s}",
        f"{'per-request sync loop':>28s} {loop_s:8.2f}s {n / loop_s:8.1f}",
        f"{'sync Engine threads':>28s} {sync_s:8.2f}s {n / sync_s:8.1f}",
        f"{'AsyncEngine micro-batches':>28s} {async_s:8.2f}s "
        f"{n / async_s:8.1f}",
        f"speedup vs loop: {speedup:.2f}x   (searches="
        f"{astats.submitted - astats.cache_hits - astats.coalesced}, "
        f"cache_hits={astats.cache_hits}, coalesced={astats.coalesced}, "
        f"batches={shard.batches}, mean_batch={shard.mean_batch:.1f}, "
        f"p95={shard.p95_ms:.0f}ms, smoke={SMOKE})",
    ]
    results_recorder(
        "serving_async",
        "\n".join(lines),
        data={
            "requests": n,
            "distinct_shapes": N_DISTINCT,
            "concurrency": CONCURRENCY,
            "window_ms": WINDOW_MS,
            "max_batch": CONCURRENCY,
            "smoke": SMOKE,
            "loop_s": loop_s,
            "sync_engine_s": sync_s,
            "async_s": async_s,
            "loop_req_per_s": n / loop_s,
            "sync_engine_req_per_s": n / sync_s,
            "async_req_per_s": n / async_s,
            "speedup_vs_loop": speedup,
            "speedup_vs_sync_engine": sync_s / async_s,
            "sync_engine_searches": sync_stats.searches,
            "async_cache_hits": astats.cache_hits,
            "async_coalesced": astats.coalesced,
            "batches": shard.batches,
            "mean_batch": shard.mean_batch,
            "p50_ms": shard.p50_ms,
            "p95_ms": shard.p95_ms,
            "config_mismatches": mismatches,
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"only {speedup:.2f}x over the per-request sync loop "
        f"(floor {SPEEDUP_FLOOR}x at concurrency {CONCURRENCY})"
    )
