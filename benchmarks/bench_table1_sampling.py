"""Table 1: acceptance rate of the categorical generative model vs uniform.

Paper: GEMM 20% vs 0.1%, CONV 15% vs 0.1% — a >2-orders-of-magnitude
improvement from fitting per-parameter marginals on a short uniform phase.
"""


from repro.harness.experiments import run_table1


def test_table1_sampling(benchmark, results_recorder):
    result = benchmark.pedantic(
        lambda: run_table1(n_eval=10_000, n_uniform_eval=150_000,
                           target_accepted=800),
        rounds=1,
        iterations=1,
    )
    results_recorder("table1", result.text)

    rows = {row[0]: row for row in result.data}
    for op in ("GEMM", "CONV"):
        categorical = float(rows[op][1].rstrip("%")) / 100
        uniform = float(rows[op][2].rstrip("%")) / 100
        # The paper's qualitative claim: the generative model accepts at
        # least an order of magnitude more often than uniform sampling.
        assert categorical > 8 * uniform, (op, categorical, uniform)
        assert uniform < 0.02, (op, uniform)
