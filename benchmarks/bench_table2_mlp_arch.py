"""Table 2: cross-validation MSE by MLP architecture, with/without the log
feature transform.

Paper shape: deeper networks beat shallower ones at comparable parameter
counts, and removing the log transform inflates MSE by roughly an order of
magnitude.
"""

import os


from repro.harness.experiments import run_table2

N_TRAIN = int(os.environ.get("REPRO_BENCH_TABLE2_TRAIN", "25000"))


def test_table2_mlp_architectures(benchmark, results_recorder):
    result = benchmark.pedantic(
        lambda: run_table2(n_train=N_TRAIN, n_val=3_000, epochs=40),
        rounds=1,
        iterations=1,
    )
    results_recorder("table2", result.text)

    by_arch = {arch: (n, m, nolog) for arch, n, m, nolog in result.data}
    shallow = by_arch[(64,)][1]
    deep3 = by_arch[(32, 64, 32)][1]
    deepest = by_arch[(64, 128, 192, 256, 192, 128, 64)][1]

    # Depth helps (Table 2 ordering).
    assert deep3 < shallow
    assert deepest <= deep3 * 1.25  # deepest at least comparable

    # The log transform is essential (bracketed column).
    for arch in ((64,), (32, 64, 32)):
        mse, nolog = by_arch[arch][1], by_arch[arch][2]
        assert nolog is not None
        assert nolog > 3 * mse, (arch, mse, nolog)
