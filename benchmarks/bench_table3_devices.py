"""Table 3: the two simulated test platforms (spec fidelity check)."""

import pytest

from repro.core.types import DType
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.harness.experiments import run_table3


def test_table3_devices(benchmark, results_recorder):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    results_recorder("table3", result.text)

    assert GTX_980_TI.peak_tflops(DType.FP32) == pytest.approx(5.8, rel=0.06)
    assert TESLA_P100.peak_tflops(DType.FP32) == pytest.approx(9.7, rel=0.06)
    assert TESLA_P100.mem_bw_gbs / GTX_980_TI.mem_bw_gbs == pytest.approx(
        732 / 336
    )
