"""Table 6: the tuning parameters ISAAC selects per representative problem.

Paper shape: (1) smaller tiles for smaller problems, (2) deep reductions
always split (KL and/or KG > 1), (3) large outer products (LAPACK) keep
KG = KL = 1.
"""


from repro.harness.experiments import run_table6


def test_table6_parameter_choices(benchmark, results_recorder,
                                  maxwell_gemm_tuner):
    result = benchmark.pedantic(
        lambda: run_table6(tuner=maxwell_gemm_tuner),
        rounds=1,
        iterations=1,
    )
    results_recorder("table6", result.text)

    chosen = dict(result.data)

    # Deep reductions (ICA, K=60000) must be split.
    for label in ("ICA (32)", "ICA (256)"):
        cfg = chosen[label]
        assert cfg.kl > 1 or cfg.kg > 1, (label, cfg)

    # Large square problems need essentially no grid-level split (the
    # simulator occasionally prefers a mild kg=2 for tail-wave balance).
    assert chosen["LINPACK (2048)"].kg <= 2

    # Skinny DeepBench batches get narrow N tiles.
    assert chosen["DeepBench-F (16)"].nl <= 32

    # LAPACK outer products (K=32) cannot use splitting.
    for label in ("LAPACK (896)", "LAPACK (4096)"):
        assert chosen[label].kg <= 2
