"""Shared fixtures for the benchmark harness.

Every paper table/figure has one benchmark; tuned models are expensive, so
they are session-scoped and shared across benches.  Each bench writes its
rendered text into ``benchmarks/results/<exp>.txt`` (the source material
for EXPERIMENTS.md) and also prints it.

Budgets scale with the REPRO_BENCH_SAMPLES environment variable
(default 12000 training samples per tuner).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.tuner import Isaac
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI, TESLA_P100

RESULTS_DIR = Path(__file__).parent / "results"

N_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "12000"))
N_CONV_SAMPLES = int(os.environ.get("REPRO_BENCH_CONV_SAMPLES", "8000"))


def record(exp_id: str, text: str) -> None:
    """Persist one experiment's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def results_recorder():
    return record


def _gemm_tuner(device, dtypes, seed=0) -> Isaac:
    tuner = Isaac(device, op="gemm", dtypes=dtypes)
    tuner.tune(n_samples=N_SAMPLES, seed=seed, epochs=40)
    return tuner


def _conv_tuner(device, dtypes, seed=0) -> Isaac:
    tuner = Isaac(device, op="conv", dtypes=dtypes)
    tuner.tune(n_samples=N_CONV_SAMPLES, seed=seed, epochs=40)
    return tuner


@pytest.fixture(scope="session")
def maxwell_gemm_tuner() -> Isaac:
    return _gemm_tuner(GTX_980_TI, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_gemm_tuner() -> Isaac:
    return _gemm_tuner(TESLA_P100, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_gemm_tuner_hd() -> Isaac:
    """fp16 + fp64 tuner for Figure 8."""
    return _gemm_tuner(TESLA_P100, (DType.FP16, DType.FP64))


@pytest.fixture(scope="session")
def maxwell_conv_tuner() -> Isaac:
    return _conv_tuner(GTX_980_TI, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_conv_tuner() -> Isaac:
    return _conv_tuner(TESLA_P100, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_conv_tuner_fp16() -> Isaac:
    return _conv_tuner(TESLA_P100, (DType.FP16,))
