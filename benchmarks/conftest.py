"""Shared fixtures for the benchmark harness.

Every paper table/figure has one benchmark; tuned models are expensive, so
they are session-scoped and shared across benches.  Each bench writes its
rendered text into ``benchmarks/results/<exp>.txt`` (the source material
for EXPERIMENTS.md) and also prints it.

Budgets scale with the REPRO_BENCH_SAMPLES environment variable
(default 12000 training samples per tuner).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.tuner import Isaac
from repro.core.types import DType
from repro.gpu.device import GTX_980_TI, TESLA_P100

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable BENCH_*.json also lands at the repo root — the
#: canonical location trend tooling diffs across PRs (results/ keeps a
#: copy so the CI artifact stays one directory).
REPO_ROOT = Path(__file__).parent.parent

N_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "12000"))
N_CONV_SAMPLES = int(os.environ.get("REPRO_BENCH_CONV_SAMPLES", "8000"))


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--json",
        action="store_true",
        default=False,
        help="also write machine-readable benchmarks/results/BENCH_<exp>.json "
        "files for benches that pass structured data to results_recorder",
    )


def record(exp_id: str, text: str, data: dict | None = None) -> None:
    """Persist one experiment's rendered output and echo it.

    ``data``, when given and ``--json`` is on, additionally lands as
    ``results/BENCH_<exp_id>.json`` — the machine-readable form CI and
    trend tooling consume.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")
    if data is not None and record.emit_json:
        payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
        (RESULTS_DIR / f"BENCH_{exp_id}.json").write_text(payload)
        (REPO_ROOT / f"BENCH_{exp_id}.json").write_text(payload)
    print(f"\n{text}\n")


record.emit_json = False


@pytest.fixture(scope="session")
def results_recorder(pytestconfig: pytest.Config):
    record.emit_json = pytestconfig.getoption("--json")
    return record


def _gemm_tuner(device, dtypes, seed=0) -> Isaac:
    tuner = Isaac(device, op="gemm", dtypes=dtypes)
    tuner.tune(n_samples=N_SAMPLES, seed=seed, epochs=40)
    return tuner


def _conv_tuner(device, dtypes, seed=0) -> Isaac:
    tuner = Isaac(device, op="conv", dtypes=dtypes)
    tuner.tune(n_samples=N_CONV_SAMPLES, seed=seed, epochs=40)
    return tuner


@pytest.fixture(scope="session")
def maxwell_gemm_tuner() -> Isaac:
    return _gemm_tuner(GTX_980_TI, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_gemm_tuner() -> Isaac:
    return _gemm_tuner(TESLA_P100, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_gemm_tuner_hd() -> Isaac:
    """fp16 + fp64 tuner for Figure 8."""
    return _gemm_tuner(TESLA_P100, (DType.FP16, DType.FP64))


@pytest.fixture(scope="session")
def maxwell_conv_tuner() -> Isaac:
    return _conv_tuner(GTX_980_TI, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_conv_tuner() -> Isaac:
    return _conv_tuner(TESLA_P100, (DType.FP32,))


@pytest.fixture(scope="session")
def pascal_conv_tuner_fp16() -> Isaac:
    return _conv_tuner(TESLA_P100, (DType.FP16,))
