"""Async serving: 64 clients, one AsyncEngine, micro-batched dispatch.

Simulates what a deployment actually sees — independent clients asking
overlapping "which kernel?" questions — and serves them through the
:class:`repro.AsyncEngine` front door: cache hits answer inline,
duplicate in-flight shapes coalesce onto one search, and the remaining
misses accumulate per shard for a 2 ms window before flushing through
one batched model pass.  The run ends with the per-shard stats surface
(batch-size histogram, flush reasons, p50/p95 latency) and a
demonstration of admission control: with a tiny ``max_pending``, excess
concurrent misses fail fast with :class:`repro.BackpressureError`
instead of growing an unbounded backlog.

Run:  python examples/async_serving.py
"""

import asyncio
import time

import numpy as np

from repro import (
    AsyncEngine,
    BackpressureError,
    DType,
    Engine,
    GemmShape,
    KernelRequest,
)

CONCURRENCY = 64
N_REQUESTS = 96
N_DISTINCT = 16


def make_engine() -> Engine:
    engine = Engine()
    print("tuning gemm at a demo budget...")
    report = engine.tune("pascal", "gemm", dtypes=(DType.FP32,),
                         n_samples=4_000, seed=0, save=False)
    print(f"  {report}")
    return engine


def workload(rng: np.random.Generator) -> list[KernelRequest]:
    """Zipf-ish traffic: a few hot shapes, a long tail, shuffled."""
    pool = [
        GemmShape(int(2 ** rng.integers(6, 11)),
                  int(2 ** rng.integers(4, 9)),
                  int(2 ** rng.integers(6, 12)),
                  DType.FP32, False, True)
        for _ in range(N_DISTINCT)
    ]
    weights = 1.0 / np.arange(1, N_DISTINCT + 1)
    weights /= weights.sum()
    picks = rng.choice(N_DISTINCT, size=N_REQUESTS, p=weights)
    return [KernelRequest("gemm", pool[i], k=40, reps=3) for i in picks]


async def serve(engine: AsyncEngine,
                requests: list[KernelRequest]) -> None:
    work = iter(requests)

    async def client() -> int:
        served = 0
        for request in work:
            await engine.query(request)
            served += 1
        return served

    t0 = time.perf_counter()
    served = await asyncio.gather(*(client() for _ in range(CONCURRENCY)))
    dt = time.perf_counter() - t0
    print(f"\n{sum(served)} requests, {CONCURRENCY} clients: "
          f"{dt:.2f}s ({sum(served) / dt:.0f} req/s)")
    print(engine.stats().describe())


async def backpressure_demo(inner: Engine,
                            requests: list[KernelRequest]) -> None:
    """A saturated front door refuses instead of buffering forever."""
    async with AsyncEngine(inner, max_pending=2, window_ms=20.0) as tiny:
        fresh = [
            KernelRequest("gemm",
                          GemmShape(48 * (i + 1), 48, 480, DType.FP32),
                          k=10, reps=2)
            for i in range(8)
        ]
        results = await asyncio.gather(
            *(tiny.query(r) for r in fresh), return_exceptions=True
        )
        refused = sum(isinstance(r, BackpressureError) for r in results)
        print(f"\nbackpressure: {len(fresh)} concurrent misses, "
              f"max_pending=2 -> {len(fresh) - refused} served, "
              f"{refused} refused fast (retry-after material)")


async def main() -> None:
    inner = make_engine()
    requests = workload(np.random.default_rng(0))
    async with AsyncEngine(inner, window_ms=2.0, max_batch=32) as engine:
        await serve(engine, requests)
    await backpressure_demo(inner, requests)


if __name__ == "__main__":
    asyncio.run(main())
