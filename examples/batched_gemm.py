"""Tune strided-batched GEMM — an op that plugs in via the registry.

``bgemm`` is registered in :mod:`repro.core.ops` like any third-party
operation would be: an :class:`~repro.core.ops.OpSpec` bundling its shape
type (:class:`~repro.core.batched.BatchedGemmShape`), the GEMM tuning
space and legality it reuses, its feature encoders and its simulator
benchmark.  Nothing in the tuner, search, re-ranker, dataset generator or
profile cache knows its name — this script drives them all through the
registry.

It also shows the batched runtime search: ``top_k_batch`` answers many
query shapes in one pass over the pre-scaled candidate set, which is how
a deployment would warm its profile cache for a whole network at once.

Run:  python examples/batched_gemm.py
"""

from repro import DType, GemmShape, TESLA_P100
from repro.core.batched import BatchedGemmShape, simulate_looped_gemm
from repro.core.ops import get_op
from repro.core.tuner import Isaac
from repro.inference.topk import best_after_rerank


def main() -> None:
    spec = get_op("bgemm")
    print(f"op {spec.name!r}: features = {', '.join(spec.feature_names)}")

    tuner = Isaac(TESLA_P100, op="bgemm", dtypes=(DType.FP32,))
    print("tuning (data generation + MLP training)...")
    report = tuner.tune(n_samples=4_000, seed=0)
    print(f"  {report}")

    # RNN-style timestep stacks: many small identical products.
    queries = [
        BatchedGemmShape(batch=128, base=GemmShape(64, 64, 256)),
        BatchedGemmShape(batch=64, base=GemmShape(128, 128, 512)),
        BatchedGemmShape(batch=16, base=GemmShape(256, 256, 1024)),
        BatchedGemmShape(batch=256, base=GemmShape(32, 32, 128)),
    ]

    # One model pass scores every query shape (the profile-cache warmup
    # pattern); re-ranking then measures the short lists on the device.
    all_top = tuner.top_k_batch(queries, k=40)

    print(f"\n{'shape':>34s} {'batched':>9s} {'looped':>9s} {'speedup':>8s}"
          f"   chosen kernel")
    for shape, top in zip(queries, all_top):
        best = best_after_rerank(TESLA_P100, shape, top, op=spec, reps=3)
        batched_ms = spec.simulate(
            TESLA_P100, best.config, shape
        ).time_ms
        looped_ms = simulate_looped_gemm(TESLA_P100, best.config, shape)
        print(
            f"{shape.describe():>34s} "
            f"{batched_ms:8.3f}ms {looped_ms:8.3f}ms "
            f"{looped_ms / batched_ms:7.2f}x"
            f"   {best.config.short()}"
        )


if __name__ == "__main__":
    main()
