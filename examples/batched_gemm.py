"""Tune strided-batched GEMM — an op that plugs in via the registry.

``bgemm`` is registered in :mod:`repro.core.ops` like any third-party
operation would be: an :class:`~repro.core.ops.OpSpec` bundling its shape
type (:class:`~repro.core.batched.BatchedGemmShape`), the GEMM tuning
space and legality it reuses, its feature encoders and its simulator
benchmark.  Nothing in the tuner, search, re-ranker, dataset generator or
profile cache knows its name — this script drives them all through the
registry.

It also shows the engine's batching planner: ``Engine.query_many``
groups the requests by (device, op, dtype) and answers each group in one
``top_k_batch`` model pass plus per-shape re-ranking — how a deployment
warms its profile cache for a whole network at once.

Run:  python examples/batched_gemm.py
"""

from repro import DType, Engine, GemmShape, KernelRequest, TESLA_P100
from repro.core.batched import BatchedGemmShape, simulate_looped_gemm
from repro.core.ops import get_op


def main() -> None:
    spec = get_op("bgemm")
    print(f"op {spec.name!r}: features = {', '.join(spec.feature_names)}")

    engine = Engine()
    print("tuning (data generation + MLP training)...")
    report = engine.tune(TESLA_P100, "bgemm", dtypes=(DType.FP32,),
                         n_samples=4_000, seed=0)
    print(f"  {report}")

    # RNN-style timestep stacks: many small identical products.
    queries = [
        BatchedGemmShape(batch=128, base=GemmShape(64, 64, 256)),
        BatchedGemmShape(batch=64, base=GemmShape(128, 128, 512)),
        BatchedGemmShape(batch=16, base=GemmShape(256, 256, 1024)),
        BatchedGemmShape(batch=256, base=GemmShape(32, 32, 128)),
    ]

    # One batched dispatch: the engine runs a single model pass over the
    # shared candidate set, then re-ranks each shape's short list.
    replies = engine.query_many(
        [KernelRequest("bgemm", shape, k=40, reps=3) for shape in queries]
    )

    print(f"\n{'shape':>34s} {'batched':>9s} {'looped':>9s} {'speedup':>8s}"
          f"   chosen kernel")
    for shape, reply in zip(queries, replies):
        batched_ms = spec.simulate(
            TESLA_P100, reply.config, shape
        ).time_ms
        looped_ms = simulate_looped_gemm(TESLA_P100, reply.config, shape)
        print(
            f"{shape.describe():>34s} "
            f"{batched_ms:8.3f}ms {looped_ms:8.3f}ms "
            f"{looped_ms / batched_ms:7.2f}x"
            f"   {reply.config.short()}"
        )


if __name__ == "__main__":
    main()
