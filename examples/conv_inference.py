"""Convolution scenario: DeepBench layers vs the cuDNN-like baseline (§7.4).

Tunes ISAAC's implicit-GEMM convolution generator and evaluates it on a
cross-section of Table 5 — including the deep-reduction face-recognition
layers (Conv7/Conv8, CRS = 12800/20800) where the paper reports the
largest convolution gains.  Also functionally validates one tuned kernel
against the direct convolution reference.

Run:  python examples/conv_inference.py [--device maxwell|pascal]
"""

import argparse

import numpy as np

from repro import DType, Isaac, get_device
from repro.baselines.cudnn import CuDNNLike
from repro.kernels.conv_ref import conv_reference, execute_conv, make_tensors
from repro.workloads.conv_suites import task


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--device", default="pascal")
    parser.add_argument("--samples", type=int, default=6_000)
    args = parser.parse_args()
    device = get_device(args.device)

    tuner = Isaac(device, op="conv", dtypes=(DType.FP32,))
    print(f"tuning CONV on {device.name} ...")
    print(f"  {tuner.tune(n_samples=args.samples, seed=0)}")
    cudnn = CuDNNLike(device)

    picks = ("Conv1", "Conv5", "Conv7", "Conv8", "Conv13")
    print(f"\n{'layer':>7s} {'NPQ':>7s} {'CRS':>6s} "
          f"{'ISAAC':>7s} {'cuDNN':>7s} {'speedup':>8s}  kernel")
    for label in picks:
        t = task(label)
        kernel = tuner.best_kernel(t.shape, k=60)
        baseline = cudnn.tflops(t.shape, "heuristic")
        print(
            f"{label:>7s} {t.shape.npq:7d} {t.shape.crs:6d} "
            f"{kernel.measured_tflops:7.2f} {baseline:7.2f} "
            f"{kernel.measured_tflops / baseline:7.2f}x  "
            f"{kernel.config.short()}"
        )

    # Functional validation on a small layer: tuned tiling == direct conv.
    from repro.core.types import ConvShape
    small = ConvShape.from_output(n=2, p=6, q=6, k=16, c=8, r=3, s=3)
    cfg = tuner.best_kernel(small, k=40).config
    i_t, f_t = make_tensors(small, seed=3)
    out = execute_conv(cfg, small, i_t, f_t)
    ref = conv_reference(i_t, f_t, small)
    err = np.max(np.abs(out.astype(np.float64) - ref.astype(np.float64)))
    print(f"\nfunctional check on {small.describe()}:")
    print(f"  max |implicit-GEMM - direct| = {err:.2e}")
    assert err < 1e-2
    print("  OK: implicit-GEMM tiling matches the direct convolution")


if __name__ == "__main__":
    main()
