"""DeepBench scenario: RNN-training GEMMs across batch sizes (paper §7.3).

The motivating case of the paper's introduction: deep-learning GEMMs with
M = K = 2560 and a small batch dimension N.  Vendor tiles only come in 64-
and 128-way N flavours, so small batches waste most of the launched threads;
ISAAC learns shape-appropriate tiles and reduction splits instead.

Reproduces the DeepBench slices of Figures 6/7 (fp32, forward + backward)
and prints the per-batch-size speedups.

Run:  python examples/deepbench_gemm.py [--device maxwell|pascal]
"""

import argparse

from repro import DType, GemmShape, Isaac, get_device
from repro.baselines.cublas import CuBLASLike
from repro.harness.report import render_series, speedup_summary


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--device", default="pascal")
    parser.add_argument("--samples", type=int, default=8_000)
    args = parser.parse_args()
    device = get_device(args.device)

    tuner = Isaac(device, op="gemm", dtypes=(DType.FP32,))
    print(f"tuning on {device.name} ...")
    print(f"  {tuner.tune(n_samples=args.samples, seed=0)}")
    cublas = CuBLASLike(device)

    batch_sizes = [16, 32, 64, 128]
    for direction, ta in (("forward", False), ("backward", True)):
        isaac, heur, best = [], [], []
        for n in batch_sizes:
            shape = GemmShape(2560, n, 2560, DType.FP32, ta, False)
            isaac.append(tuner.best_kernel(shape).measured_tflops)
            heur.append(cublas.tflops(shape, "heuristic"))
            best.append(cublas.tflops(shape, "best"))
        print()
        print(
            render_series(
                "batch N",
                batch_sizes,
                {
                    "ISAAC": isaac,
                    "cuBLAS (Heuristics)": heur,
                    "cuBLAS (Best Kernel)": best,
                },
                title=f"DeepBench {direction} propagation, M=K=2560 "
                f"({device.name})",
            )
        )
        print("speedup vs best kernel:")
        print(speedup_summary([str(b) for b in batch_sizes], isaac, best))


if __name__ == "__main__":
    main()
