"""DSL front-end scenario (paper §9 future work).

Writes tensor contractions as einsum-like expressions, lets the front-end
recognize and lower them to GEMM/CONV problems, tunes kernels for them,
executes them functionally through the tiled kernels, and reports
performance — the "more flexible front-end" the paper's conclusion asks
for, in miniature.

Run:  python examples/dsl_frontend.py
"""

import numpy as np

from repro import DType, Isaac, TESLA_P100
from repro.core.frontend import lower
from repro.kernels.conv_ref import make_tensors


def main() -> None:
    device = TESLA_P100
    tuner = Isaac(device, op="gemm", dtypes=(DType.FP32,))
    print(f"tuning GEMM backend on {device.name} ...")
    print(f"  {tuner.tune(n_samples=6_000, seed=0)}")

    programs = [
        # a covariance accumulation: C = X X^T over a long window
        ("C[i,j] = X[i,t] * Y[t,j]", {"i": 256, "j": 256, "t": 60000}),
        # a transformer-style projection with transposed weights
        ("O[b,h] = A[b,d] * W[h,d]", {"b": 2048, "d": 1024, "h": 4096}),
    ]
    for expr, dims in programs:
        op = lower(expr, dims)
        kernel = tuner.best_kernel(op.shape, k=60)
        print(f"\n  {expr}")
        print(f"    lowered to {op.describe()}")
        print(f"    tuned kernel {kernel.config.short()} -> "
              f"{kernel.measured_tflops:.2f} TFLOPS")

    # A convolution program, executed functionally and checked.
    expr = "O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]"
    dims = {"k": 16, "p": 8, "q": 8, "n": 2, "c": 8, "r": 3, "s": 3}
    op = lower(expr, dims)
    print(f"\n  {expr}")
    print(f"    lowered to {op.describe()}")
    i_t, f_t = make_tensors(op.shape, seed=0)
    got = op.execute(i_t, f_t)
    print(f"    functional output tensor: {got.shape}, "
          f"||O|| = {np.linalg.norm(got):.3f}")


if __name__ == "__main__":
    main()
