"""End-to-end application scenario: an RNN training step (paper §1).

The paper's motivating workload: deep-learning training steps are chains
of GEMMs whose batch dimension is small, and a single mis-tiled kernel
drags the whole step.  This example tunes once into a model store,
reopens it through the :class:`repro.Engine` front door (as a deployment
would), pre-warms the cache for the whole graph, and times a 4-timestep
vanilla RNN training step against the cuBLAS-like baseline.

Run:  python examples/end_to_end_rnn.py
"""

import tempfile

from repro import DType, Engine
from repro.harness.app_eval import run_network_step
from repro.workloads.networks import rnn_training_step


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # Offline: fit the (device, op) model and save it into the store.
        offline = Engine(model_dir=tmp)
        print("tuning on pascal ...")
        print(f"  {offline.tune('pascal', 'gemm', dtypes=(DType.FP32,), n_samples=8_000, seed=0)}")

        # Deployment: reopen the store (ship the model, not the data) and
        # warm the cache for every step we are about to serve.
        with Engine.open(tmp) as engine:
            steps = [
                rnn_training_step(hidden=2560, batch=batch, timesteps=4)
                for batch in (16, 32, 128)
            ]
            searched = engine.warmup(steps, k=60)
            print(f"  warmed {searched} distinct kernels for "
                  f"{len(steps)} steps")

            for step in steps:
                result = run_network_step(engine, step, k=60)
                print(
                    f"\n  {step.name}: ISAAC {result.isaac_ms:.2f} ms "
                    f"vs baseline {result.baseline_ms:.2f} ms "
                    f"({result.speedup:.2f}x, "
                    f"{result.isaac_tflops:.2f} TFLOPS)"
                )
                worst = max(
                    result.per_kernel, key=lambda row: row[2] / row[1]
                )
                print(
                    f"    biggest per-kernel win: {worst[0]} "
                    f"({worst[2] / worst[1]:.2f}x)"
                )
            print(f"\n  engine stats: {engine.stats()}")


if __name__ == "__main__":
    main()
