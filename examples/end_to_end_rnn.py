"""End-to-end application scenario: an RNN training step (paper §1).

The paper's motivating workload: deep-learning training steps are chains
of GEMMs whose batch dimension is small, and a single mis-tiled kernel
drags the whole step.  This example tunes once, persists the tuner to
disk, reloads it (as a deployment would), and times a 4-timestep vanilla
RNN training step against the cuBLAS-like baseline.

Run:  python examples/end_to_end_rnn.py
"""

import tempfile
from pathlib import Path

from repro import DType, Isaac, TESLA_P100
from repro.harness.app_eval import run_network_step
from repro.workloads.networks import rnn_training_step


def main() -> None:
    device = TESLA_P100
    tuner = Isaac(device, op="gemm", dtypes=(DType.FP32,))
    print(f"tuning on {device.name} ...")
    print(f"  {tuner.tune(n_samples=8_000, seed=0)}")

    # Persist and reload — the deployment path: ship the model, not data.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "isaac-p100-gemm.npz"
        tuner.save(path)
        deployed = Isaac.load(path)
        print(f"  saved + reloaded tuner from {path.name}")

        for batch in (16, 32, 128):
            step = rnn_training_step(hidden=2560, batch=batch, timesteps=4)
            result = run_network_step(deployed, step, k=60)
            print(
                f"\n  {step.name}: ISAAC {result.isaac_ms:.2f} ms "
                f"vs baseline {result.baseline_ms:.2f} ms "
                f"({result.speedup:.2f}x, {result.isaac_tflops:.2f} TFLOPS)"
            )
            worst = max(
                result.per_kernel, key=lambda row: row[2] / row[1]
            )
            print(
                f"    biggest per-kernel win: {worst[0]} "
                f"({worst[2] / worst[1]:.2f}x)"
            )


if __name__ == "__main__":
    main()
