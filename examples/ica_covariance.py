"""ICA scenario: covariance matrices with very deep reductions (paper §3.2).

Independent Component Analysis multiplies a small channel matrix by its
transpose over very long signal windows: (C x T) @ (T x C) with C <= 256
and T = 60000.  Without reduction splitting only a handful of blocks exist
and the GPU idles; the paper credits ISAAC's KL/KG splitting for an
order-of-magnitude win over mis-heuristicked cuBLAS.

This example (1) shows the tuned kernels and their reduction splits,
(2) *functionally executes* the chosen decomposition with the numpy kernel
executor and checks it against a reference matmul — demonstrating that
grid-level atomics-style accumulation is numerically sound.

Run:  python examples/ica_covariance.py
"""

import numpy as np

from repro import DType, GemmShape, Isaac, GTX_980_TI
from repro.baselines.cublas import CuBLASLike
from repro.kernels.gemm_ref import execute_gemm, gemm_reference, make_operands
from repro.kernels.tiling import ExecutionTrace


def main() -> None:
    device = GTX_980_TI
    tuner = Isaac(device, op="gemm", dtypes=(DType.FP32,))
    print(f"tuning on {device.name} ...")
    print(f"  {tuner.tune(n_samples=8_000, seed=0)}")
    cublas = CuBLASLike(device)

    print(f"\n{'channels':>8s} {'ISAAC':>7s} {'cuBLAS':>7s} "
          f"{'KL':>3s} {'KG':>3s}  kernel")
    for channels in (16, 32, 64, 256):
        shape = GemmShape(channels, channels, 60000, DType.FP32, False, True)
        kernel = tuner.best_kernel(shape)
        baseline = cublas.tflops(shape, "heuristic")
        cfg = kernel.config
        print(
            f"{channels:8d} {kernel.measured_tflops:7.2f} {baseline:7.2f} "
            f"{cfg.kl:3d} {cfg.kg:3d}  {cfg.short()}"
        )

    # Functional check of the tuned decomposition at a reduced size: the
    # same config, executed tile by tile with partial-sum accumulation.
    shape = GemmShape(32, 32, 4096, DType.FP32, False, True)
    cfg = tuner.best_kernel(shape).config
    a, b = make_operands(shape, seed=1)
    trace = ExecutionTrace()
    result = execute_gemm(cfg, shape, a, b, trace=trace)
    reference = gemm_reference(a, b)
    err = np.max(np.abs(result.astype(np.float64) - reference.astype(np.float64)))
    print(f"\nfunctional check ({cfg.short()} on {shape.describe()}):")
    print(f"  blocks executed: {trace.blocks_executed}, "
          f"grid-level accumulations: {trace.global_accumulations}")
    print(f"  max |tiled - reference| = {err:.2e}")
    assert err < 1e-2, "tiled decomposition diverged from reference"
    print("  OK: reduction-split execution matches the reference")


if __name__ == "__main__":
    main()
