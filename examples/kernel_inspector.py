"""Kernel inspector: look inside a generated kernel (paper §3 and §8).

Picks a problem shape, lets the tuned model choose a kernel, then prints
everything the framework knows about it: the pseudo-PTX listing, the
verifier's report, static resources, occupancy, instruction counts and the
simulator's bottleneck diagnosis — the §8.1 anatomy for any shape you like.

Run:  python examples/kernel_inspector.py [--m 2560 --n 32 --k 2560]
"""

import argparse

from repro import DType, GemmShape, Isaac, TESLA_P100
from repro.gpu.simulator import simulate_gemm
from repro.ptx.gemm_codegen import GemmKernel
from repro.ptx.verifier import verify_ptx


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--m", type=int, default=2560)
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument("--k", type=int, default=2560)
    parser.add_argument("--samples", type=int, default=6_000)
    args = parser.parse_args()

    device = TESLA_P100
    shape = GemmShape(args.m, args.n, args.k, DType.FP32, False, False)

    tuner = Isaac(device, op="gemm", dtypes=(DType.FP32,))
    print(f"tuning on {device.name} ...")
    print(f"  {tuner.tune(n_samples=args.samples, seed=0)}")
    best = tuner.best_kernel(shape)
    cfg = best.config

    kernel = GemmKernel(cfg=cfg, shape=shape, device=device)
    print(f"\n--- pseudo-PTX for {kernel.name()} ---")
    text = kernel.emit()
    print(text)

    result = verify_ptx(text, device)
    print("--- verifier ---")
    print(f"  ok={result.ok}  smem={result.smem_bytes}B  "
          f"declared reg words={result.reg_words}")
    for op, count in sorted(result.opcode_histogram.items()):
        print(f"    {op:16s} x{count}")

    stats = simulate_gemm(device, cfg, shape)
    counts = kernel.block_counts()
    print("--- simulator anatomy ---")
    print(f"  measured        : {best.measured_tflops:.2f} TFLOPS "
          f"(model {stats.tflops:.2f})")
    print(f"  occupancy       : {stats.occupancy.occupancy:.0%} "
          f"({stats.occupancy.blocks_per_sm} blocks/SM, "
          f"limited by {stats.occupancy.limiter})")
    print(f"  bottleneck      : {stats.limiter}")
    print(f"  L2 hit rate     : {stats.traffic.l2_hit_rate:.0%}")
    print(f"  waves           : {stats.waves:.2f} "
          f"(grid {stats.grid_size} blocks)")
    print(f"  padding waste   : {stats.padding_waste:.1%}")
    print(f"  per-block instrs: fma={counts.fma}  smem={counts.smem_ops}  "
          f"global={counts.global_ops}  int={counts.iop}")


if __name__ == "__main__":
    main()
