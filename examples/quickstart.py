"""Quickstart: tune ISAAC for GEMM on the simulated Tesla P100.

Runs the full paper pipeline end to end at a small budget (~1 minute):
fit the generative sampler, benchmark random kernels, train the MLP, then
answer runtime queries for a few input shapes and compare against the
cuBLAS-like baseline.

``Isaac(device, op=...)`` accepts any operation registered with the
:mod:`repro.core.ops` registry — ``"gemm"``, ``"conv"`` and ``"bgemm"``
ship built in; see ``docs/architecture.md`` for how to register your own.
Runtime queries go through the pre-scaled exhaustive search:
``tuner.top_k(shape)`` scores every legal kernel for one input shape, and
``tuner.top_k_batch(shapes)`` amortizes the model pass over many shapes
(see ``examples/batched_gemm.py`` for both in action).

Run:  python examples/quickstart.py
"""

from repro import DType, GemmShape, Isaac, TESLA_P100
from repro.baselines.cublas import CuBLASLike


def main() -> None:
    print(f"device: {TESLA_P100.name} "
          f"({TESLA_P100.peak_tflops(DType.FP32):.1f} fp32 TFLOPS peak)")

    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    print("tuning (data generation + MLP training)...")
    report = tuner.tune(n_samples=8_000, seed=0)
    print(f"  {report}")

    cublas = CuBLASLike(TESLA_P100)
    queries = [
        GemmShape(2048, 2048, 2048, DType.FP32, False, True),  # square
        GemmShape(2560, 16, 2560, DType.FP32, False, False),   # skinny batch
        GemmShape(64, 64, 60000, DType.FP32, False, True),     # deep reduction
    ]
    print(f"\n{'shape':>28s} {'ISAAC':>8s} {'cuBLAS':>8s} {'speedup':>8s}"
          f"   chosen kernel")
    for shape in queries:
        kernel = tuner.best_kernel(shape, k=100, reps=3)
        baseline = cublas.tflops(shape, mode="heuristic")
        print(
            f"{shape.describe():>28s} "
            f"{kernel.measured_tflops:8.2f} {baseline:8.2f} "
            f"{kernel.measured_tflops / baseline:7.2f}x"
            f"   {kernel.config.short()}"
        )


if __name__ == "__main__":
    main()
