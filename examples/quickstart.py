"""Quickstart: tune ISAAC for GEMM and serve it through the Engine.

Runs the full paper pipeline end to end at a small budget (~1 minute):
fit the generative sampler, benchmark random kernels, train the MLP, then
answer runtime queries through the :class:`repro.Engine` front door and
compare against the cuBLAS-like baseline.

The engine owns the serving concerns the paper leaves to the caller —
model registry, result caching (in-memory LRU over the on-disk profile
cache) and batched dispatch — so a client only ever builds
:class:`repro.KernelRequest` objects.  ``Isaac(device, op=...)`` remains
the low-level per-(device, op) API underneath; see
``docs/architecture.md`` and ``examples/batched_gemm.py``.

Run:  python examples/quickstart.py
"""

from repro import DType, Engine, GemmShape, KernelRequest, TESLA_P100
from repro.baselines.cublas import CuBLASLike


def main() -> None:
    print(f"device: {TESLA_P100.name} "
          f"({TESLA_P100.peak_tflops(DType.FP32):.1f} fp32 TFLOPS peak)")

    engine = Engine()
    print("tuning (data generation + MLP training)...")
    report = engine.tune("pascal", "gemm", dtypes=(DType.FP32,),
                         n_samples=8_000, seed=0)
    print(f"  {report}")

    cublas = CuBLASLike(TESLA_P100)
    queries = [
        GemmShape(2048, 2048, 2048, DType.FP32, False, True),  # square
        GemmShape(2560, 16, 2560, DType.FP32, False, False),   # skinny batch
        GemmShape(64, 64, 60000, DType.FP32, False, True),     # deep reduction
    ]
    print(f"\n{'shape':>28s} {'ISAAC':>8s} {'cuBLAS':>8s} {'speedup':>8s}"
          f"   chosen kernel")
    # One batched dispatch answers every shape (cache -> one model pass).
    replies = engine.query_many(
        [KernelRequest("gemm", shape, k=100, reps=3) for shape in queries]
    )
    for shape, reply in zip(queries, replies):
        baseline = cublas.tflops(shape, mode="heuristic")
        print(
            f"{shape.describe():>28s} "
            f"{reply.measured_tflops:8.2f} {baseline:8.2f} "
            f"{reply.measured_tflops / baseline:7.2f}x"
            f"   {reply.config.short()}"
        )

    # Asking again is free: the engine serves it from the in-memory LRU.
    again = engine.query(KernelRequest("gemm", queries[0]))
    print(f"\nrepeat query served from {again.source!r} "
          f"({engine.stats().lru_hits} LRU hits so far)")


if __name__ == "__main__":
    main()
