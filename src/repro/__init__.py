"""repro — reproduction of "Input-Aware Auto-Tuning of Compute-Bound HPC
Kernels" (Tillet & Cox, SC'17; the ISAAC auto-tuner).

The public API mirrors the paper's pipeline (Figure 1):

* **kernel generation** — :class:`~repro.core.config.GemmConfig` /
  :class:`~repro.core.config.ConvConfig` parameterize tiled kernels;
  :mod:`repro.ptx` lowers them to pseudo-PTX instruction streams and
  :mod:`repro.kernels` executes them functionally;
* **hardware** — :mod:`repro.gpu` simulates the paper's two test devices
  (see DESIGN.md for the substitution rationale);
* **data generation** — :mod:`repro.sampling` implements the categorical
  generative model over legal configurations;
* **regression analysis** — :mod:`repro.mlp` is the from-scratch MLP;
* **runtime inference** — :mod:`repro.inference` does exhaustive model
  search plus top-k device re-ranking;
* **the tuner** — :class:`~repro.core.tuner.Isaac` glues it all together;
* **baselines & evaluation** — :mod:`repro.baselines`,
  :mod:`repro.workloads` and :mod:`repro.harness` regenerate every table
  and figure of the paper's evaluation.

Quickstart::

    from repro import Isaac, GemmShape, TESLA_P100

    tuner = Isaac(TESLA_P100, op="gemm")
    tuner.tune(n_samples=10_000, seed=0)
    kernel = tuner.best_kernel(GemmShape(2560, 16, 2560))
    print(kernel.config, f"{kernel.measured_tflops:.2f} TFLOPS")
"""

from repro.core.config import ConvConfig, GemmConfig
from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac, TuneReport
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100, DeviceSpec, get_device
from repro.gpu.simulator import (
    KernelStats,
    benchmark_conv,
    benchmark_gemm,
    simulate_conv,
    simulate_gemm,
)

__version__ = "0.1.0"

__all__ = [
    "ConvConfig",
    "ConvShape",
    "DType",
    "DeviceSpec",
    "GTX_980_TI",
    "GemmConfig",
    "GemmShape",
    "Isaac",
    "KernelStats",
    "ProfileCache",
    "TESLA_P100",
    "TuneReport",
    "benchmark_conv",
    "benchmark_gemm",
    "get_device",
    "simulate_conv",
    "simulate_gemm",
    "__version__",
]
