"""repro — reproduction of "Input-Aware Auto-Tuning of Compute-Bound HPC
Kernels" (Tillet & Cox, SC'17; the ISAAC auto-tuner).

The public API mirrors the paper's pipeline (Figure 1):

* **kernel generation** — :class:`~repro.core.config.GemmConfig` /
  :class:`~repro.core.config.ConvConfig` parameterize tiled kernels;
  :mod:`repro.ptx` lowers them to pseudo-PTX instruction streams and
  :mod:`repro.kernels` executes them functionally;
* **hardware** — :mod:`repro.gpu` simulates the paper's two test devices
  (see DESIGN.md for the substitution rationale);
* **data generation** — :mod:`repro.sampling` implements the categorical
  generative model over legal configurations;
* **regression analysis** — :mod:`repro.mlp` is the from-scratch MLP;
* **runtime inference** — :mod:`repro.inference` does exhaustive model
  search plus top-k device re-ranking;
* **the tuner** — :class:`~repro.core.tuner.Isaac` glues it all together
  for one (device, op) pair (the documented low-level API);
* **the engine** — :class:`~repro.service.engine.Engine` is the
  concurrent front door: it loads saved fits, caches answers (in-memory
  LRU over the on-disk profile cache) and batches mixed-op queries;
  :class:`~repro.service.async_engine.AsyncEngine` adds asyncio
  micro-batching (per-shard 2 ms windows, coalescing, backpressure) for
  service-rate traffic;
* **baselines & evaluation** — :mod:`repro.baselines`,
  :mod:`repro.workloads` and :mod:`repro.harness` regenerate every table
  and figure of the paper's evaluation.

Quickstart::

    from repro import Engine, GemmShape, KernelRequest

    engine = Engine(model_dir="models/")
    engine.tune("pascal", "gemm", n_samples=10_000, seed=0)
    reply = engine.query(KernelRequest("gemm", GemmShape(2560, 16, 2560)))
    print(reply.config, f"{reply.measured_tflops:.2f} TFLOPS")

(``Isaac(device, op)`` + ``tune()`` + ``best_kernel(shape)`` remains the
low-level per-pair API underneath.)
"""

from repro.core.config import ConvConfig, GemmConfig
from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac, TuneReport
from repro.core.types import ConvShape, DType, GemmShape
from repro.service.async_engine import AsyncEngine, BackpressureError
from repro.service.engine import Engine, KernelReply, KernelRequest
from repro.gpu.device import GTX_980_TI, TESLA_P100, DeviceSpec, get_device
from repro.gpu.simulator import (
    KernelStats,
    KernelStatsArrays,
    benchmark_conv,
    benchmark_gemm,
    benchmark_many,
    simulate_conv,
    simulate_gemm,
    simulate_many,
)

__version__ = "0.1.0"

__all__ = [
    "AsyncEngine",
    "BackpressureError",
    "ConvConfig",
    "ConvShape",
    "DType",
    "DeviceSpec",
    "Engine",
    "GTX_980_TI",
    "GemmConfig",
    "GemmShape",
    "Isaac",
    "KernelReply",
    "KernelRequest",
    "KernelStats",
    "KernelStatsArrays",
    "ProfileCache",
    "TESLA_P100",
    "TuneReport",
    "benchmark_conv",
    "benchmark_gemm",
    "benchmark_many",
    "get_device",
    "simulate_conv",
    "simulate_gemm",
    "simulate_many",
    "__version__",
]
