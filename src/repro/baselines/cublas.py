"""A cuBLAS-like baseline: static kernel set + handcrafted heuristics.

The paper compares against cuBLAS 8.0, which ships "a set of several
highly-optimized assembly kernels, and handcraft[ed] heuristics for runtime
kernel selection".  This module reproduces that *architecture* on the
simulator so the comparison measures exactly what the paper measures —
learned selection over a huge generated space versus heuristic selection
over a small static set — with both sides running on identical hardware
models.

The kernel set and its blind spots follow the paper's observations:

* output tiling only 64- and 128-way along N (§8.1: "it is unfortunate that
  cuBLAS only provides 64- and 128-way tiling along the N dimension");
* global reduction splitting (KG > 1) exists for small-MN/large-K problems,
  but no within-SM splitting (§7.3: "cuBLAS remains 10% slower than ISAAC,
  which is attributed to cuBLAS not implementing reduction splitting within
  streaming multi-processors (KL > 1)");
* the selection heuristics mishandle reduction splitting for N in {32, 64}
  (§7.3 DeepBench) and for medium-sized ICA problems (§7.3 ICA: "drastic
  slow-downs (over an order of magnitude)");
* only a limited set of kernels implements fp16x2 (§7.3.2: "the existence
  of a limited set of NVIDIA kernels implementing this feature").

``mode="best"`` bypasses the heuristics and exhaustively benchmarks the
static set — the paper's "Best Kernel" series via ``cublasGemmEx``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GemmConfig
from repro.core.legality import is_legal_gemm
from repro.core.types import DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import IllegalKernelError, benchmark_gemm


@dataclass(frozen=True)
class FixedGemmKernel:
    """One statically compiled library kernel."""

    name: str
    cfg: GemmConfig
    fp16x2: bool = False  # whether its half-precision variant packs half2


#: The static SGEMM/DGEMM/HGEMM tile repertoire.
_KERNELS: tuple[FixedGemmKernel, ...] = (
    FixedGemmKernel(
        "sgemm_128x128", GemmConfig(ms=8, ns=8, ml=128, nl=128, u=8, vec=4, db=2),
        fp16x2=True,
    ),
    FixedGemmKernel(
        "sgemm_128x64", GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, vec=4, db=2),
        fp16x2=True,
    ),
    FixedGemmKernel(
        "sgemm_64x128", GemmConfig(ms=8, ns=8, ml=64, nl=128, u=8, vec=4, db=2),
    ),
    FixedGemmKernel(
        "sgemm_64x64", GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2),
    ),
    # Split-K variants: KG only — cuBLAS has no KL-splitting.
    FixedGemmKernel(
        "sgemm_128x64_splitK4",
        GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, kg=4, vec=4, db=2),
    ),
    FixedGemmKernel(
        "sgemm_64x64_splitK8",
        GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, kg=8, vec=4, db=2),
    ),
    FixedGemmKernel(
        "sgemm_64x64_splitK32",
        GemmConfig(ms=4, ns=4, ml=64, nl=64, u=8, kg=32, vec=4, db=2),
    ),
    # Tall-K covariance kernel (KG only; no KL-splitting anywhere — the
    # 10%-ish gap to ISAAC the paper attributes to missing KL > 1).
    FixedGemmKernel(
        "sgemm_32x64_splitK32",
        GemmConfig(ms=4, ns=8, ml=32, nl=64, u=16, kg=32, vec=4, db=2),
    ),
)


class CuBLASLike:
    """The baseline library: heuristics or best-kernel selection."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # ------------------------------------------------------------------
    def kernels(self, dtype: DType) -> list[FixedGemmKernel]:
        """Per-precision kernel variants that are legal on this device.

        Vendor libraries compile separate SGEMM/DGEMM/HGEMM kernels from the
        same tile shapes; the double-precision variants narrow their vector
        loads to respect the 128-bit access limit.
        """
        out = []
        for k in _KERNELS:
            vec = min(k.cfg.vec, 16 // dtype.size)
            cfg = k.cfg.with_(vec=vec) if vec != k.cfg.vec else k.cfg
            if is_legal_gemm(cfg, dtype, self.device):
                out.append(FixedGemmKernel(k.name, cfg, k.fp16x2))
        return out

    # ------------------------------------------------------------------
    def select(self, shape: GemmShape) -> FixedGemmKernel:
        """Handcrafted selection heuristics (with the documented blind spots).

        The rules key on M, N and K thresholds the way vendor libraries do.
        Two deliberate pathologies mirror the paper's findings:

        * deep-reduction problems only trigger the split-K path when both
          output extents are at most 64 — a 256x256x60000 ICA problem falls
          through to a non-split kernel (an order-of-magnitude slowdown);
        * skinny-N DeepBench problems always get the 64-way-N tile, never a
          split-K kernel, because the heuristic treats K <= 4096 as "not
          deep enough" (poor handling of reduction-splitting for N in
          {32, 64}).
        """
        table = {k.name: k for k in _KERNELS}
        m, n, k = shape.m, shape.n, shape.k

        deep = k >= 8192 and k >= 8 * max(m, n)
        if deep and max(m, n) <= 64:
            return table["sgemm_64x64_splitK32"]
        if deep and max(m, n) <= 128:
            return table["sgemm_64x64_splitK8"]

        if min(m, n) >= 512:
            return table["sgemm_128x128"]
        if n >= 128:
            return table["sgemm_128x64" if m >= n else "sgemm_64x128"]
        if m >= 512 and n >= 64:
            return table["sgemm_128x64"]
        # Skinny N (including DeepBench's 16..64): one-size-fits-all 64-way
        # tile, no reduction splitting — the paper's observed blind spot.
        return table["sgemm_64x64"]

    # ------------------------------------------------------------------
    def _bench(self, kernel: FixedGemmKernel, shape: GemmShape, reps: int) -> float:
        return benchmark_gemm(
            self.device,
            kernel.cfg,
            shape,
            reps=reps,
            allow_fp16x2=kernel.fp16x2,
        )

    def tflops(
        self, shape: GemmShape, mode: str = "heuristic", reps: int = 3
    ) -> float:
        """Measured TFLOPS under heuristic or best-kernel selection."""
        if mode == "heuristic":
            chosen = self.select(shape)
            variants = {k.name: k for k in self.kernels(shape.dtype)}
            kernel = variants.get(chosen.name)
            if kernel is None:  # tile shape has no legal variant here
                kernel = self.best_kernel(shape, reps=reps)
            return self._bench(kernel, shape, reps)
        if mode == "best":
            return self._bench(self.best_kernel(shape, reps=reps), shape, reps)
        raise ValueError(f"unknown mode {mode!r}")

    def best_kernel(self, shape: GemmShape, reps: int = 3) -> FixedGemmKernel:
        """Exhaustive search over the static set (the cublasGemmEx bypass)."""
        best: FixedGemmKernel | None = None
        best_tflops = -1.0
        for kernel in self.kernels(shape.dtype):
            try:
                t = self._bench(kernel, shape, reps)
            except IllegalKernelError:
                continue
            if t > best_tflops:
                best, best_tflops = kernel, t
        if best is None:
            raise RuntimeError(f"no static kernel fits {shape}")
        return best
