"""A cuDNN-like baseline for the IMPLICIT_PRECOMP_GEMM convolution path.

The paper forces cuDNN v6/v7 onto the same implicit-GEMM algorithm ISAAC
generates (§7.2) and observes:

* cuDNN "was optimized from the ground up with both Maxwell and
  DeepBench-like problems in mind (large NPQ, small K and intermediate
  CRS)" — so its static tile repertoire favours big spatial tiles;
* it lacks deep-reduction splitting, losing 1.5-2x on Conv7/Conv8
  (CRS = 12800 / 20800) on Maxwell and >5x on Pascal;
* its "heuristics and kernels [are] tailored to Maxwell rather than
  Pascal", which we reproduce by keying the selection rules to Maxwell's
  occupancy trade-offs regardless of the actual device.

Like the cuBLAS baseline, it runs on the same simulator as ISAAC, so the
deltas isolate kernel-repertoire and selection quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ConvConfig
from repro.core.legality import is_legal_conv
from repro.core.types import ConvShape, DType
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import IllegalKernelError, benchmark_conv


@dataclass(frozen=True)
class FixedConvKernel:
    name: str
    cfg: ConvConfig
    fp16x2: bool = False


#: Static implicit-GEMM kernels: spatial-heavy tiles, no CL/CG splitting.
_KERNELS: tuple[FixedConvKernel, ...] = (
    # Large-NPQ workhorses (the DeepBench sweet spot).
    FixedConvKernel(
        "conv_npq128_k64",
        ConvConfig(kt=8, pt=2, qt=2, nt=2, kb=64, pb=8, qb=8, nb=2,
                   u=8, vec=4, db=2),
        fp16x2=True,
    ),
    FixedConvKernel(
        "conv_npq64_k64",
        ConvConfig(kt=8, pt=2, qt=2, nt=1, kb=64, pb=8, qb=4, nb=2,
                   u=8, vec=4, db=2),
    ),
    FixedConvKernel(
        "conv_npq64_k128",
        ConvConfig(kt=8, pt=2, qt=2, nt=1, kb=128, pb=4, qb=4, nb=4,
                   u=8, vec=4, db=2),
    ),
    # Batched tile for small images.
    FixedConvKernel(
        "conv_npq32_k64_batched",
        ConvConfig(kt=4, pt=1, qt=2, nt=2, kb=64, pb=2, qb=2, nb=8,
                   u=8, vec=2, db=2),
    ),
    # One mild split-C variant (shallow: cg=4 only).
    FixedConvKernel(
        "conv_npq32_k32_splitC4",
        ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=2, nb=4,
                   u=8, cg=4, vec=2, db=2),
    ),
)


class CuDNNLike:
    """The convolution baseline with Maxwell-tuned selection heuristics."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def kernels(self, dtype: DType) -> list[FixedConvKernel]:
        return [
            k for k in _KERNELS if is_legal_conv(k.cfg, dtype, self.device)
        ]

    # ------------------------------------------------------------------
    def select(self, shape: ConvShape) -> FixedConvKernel:
        """Maxwell-tuned rules applied verbatim on every architecture."""
        table = {k.name: k for k in _KERNELS}
        npq, crs, k = shape.npq, shape.crs, shape.k

        if npq >= 50_000 and k <= 64:
            return table["conv_npq128_k64"]
        if k >= 128:
            return table["conv_npq64_k128"]
        if npq <= 4_000 and crs <= 2_048:
            return table["conv_npq32_k64_batched"]
        if npq <= 2_000 and crs > 8_192:
            # The only deep-reduction answer cuDNN has: a shallow 4-way split.
            return table["conv_npq32_k32_splitC4"]
        return table["conv_npq64_k64"]

    # ------------------------------------------------------------------
    def _bench(self, kernel: FixedConvKernel, shape: ConvShape, reps: int) -> float:
        return benchmark_conv(
            self.device,
            kernel.cfg,
            shape,
            reps=reps,
            allow_fp16x2=kernel.fp16x2,
        )

    def tflops(
        self, shape: ConvShape, mode: str = "heuristic", reps: int = 3
    ) -> float:
        """cuDNN provides no public per-kernel benchmarking (§7.4.1), but the
        ``"best"`` mode is still exposed for analysis."""
        if mode == "heuristic":
            kernel = self.select(shape)
            if not is_legal_conv(kernel.cfg, shape.dtype, self.device):
                kernel = self.best_kernel(shape, reps=reps)
            return self._bench(kernel, shape, reps)
        if mode == "best":
            return self._bench(self.best_kernel(shape, reps=reps), shape, reps)
        raise ValueError(f"unknown mode {mode!r}")

    def best_kernel(self, shape: ConvShape, reps: int = 3) -> FixedConvKernel:
        best: FixedConvKernel | None = None
        best_tflops = -1.0
        for kernel in self.kernels(shape.dtype):
            try:
                t = self._bench(kernel, shape, reps)
            except IllegalKernelError:
                continue
            if t > best_tflops:
                best, best_tflops = kernel, t
        if best is None:
            raise RuntimeError(f"no static kernel fits {shape}")
        return best
