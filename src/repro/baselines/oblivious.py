"""The input-oblivious auto-tuner baseline (the approach §1-§2 criticize).

Classical auto-tuners (ATLAS-style) tune once per *device* — typically on
large square matrices — and reuse the winning configuration for every
input.  The paper's whole argument is that this leaves large parts of the
input space badly served.  This baseline makes that argument measurable:
it runs a real empirical tuning pass (top candidates by actual device
measurement) on a reference shape, then answers every query with that one
frozen kernel (falling back to the nearest legal relative when the frozen
kernel is illegal for a query's dtype).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import IllegalKernelError, benchmark_gemm
from repro.inference.search import legal_configs


@dataclass
class ObliviousTuner:
    """Hardware-aware but input-oblivious: one kernel per (device, dtype)."""

    device: DeviceSpec
    reference_shape: GemmShape | None = None
    sample_size: int = 512
    reps: int = 3
    seed: int = 0

    def __post_init__(self):
        self._frozen: dict[DType, GemmConfig] = {}

    def tune(self, dtype: DType = DType.FP32) -> GemmConfig:
        """Empirically tune on the reference shape (square 2048 default)."""
        ref = self.reference_shape or GemmShape(
            2048, 2048, 2048, dtype, False, True
        )
        if ref.dtype is not dtype:
            ref = GemmShape(ref.m, ref.n, ref.k, dtype, ref.ta, ref.tb)
        configs, _ = legal_configs(self.device, dtype, "gemm")
        rng = np.random.default_rng(self.seed)
        idx = rng.choice(
            len(configs), size=min(self.sample_size, len(configs)),
            replace=False,
        )
        best_cfg, best_tflops = None, -1.0
        for i in idx:
            try:
                t = benchmark_gemm(
                    self.device, configs[i], ref, reps=self.reps
                )
            except IllegalKernelError:  # pragma: no cover - space is legal
                continue
            if t > best_tflops:
                best_cfg, best_tflops = configs[i], t
        if best_cfg is None:  # pragma: no cover
            raise RuntimeError("no legal kernel found while tuning")
        self._frozen[dtype] = best_cfg
        return best_cfg

    def config_for(self, shape: GemmShape) -> GemmConfig:
        if shape.dtype not in self._frozen:
            self.tune(shape.dtype)
        return self._frozen[shape.dtype]

    def tflops(self, shape: GemmShape, reps: int = 3) -> float:
        """Run the frozen kernel on an arbitrary input."""
        return benchmark_gemm(
            self.device, self.config_for(shape), shape, reps=reps
        )
