"""Batched GEMM: many independent small products in one launch.

DeepBench (the paper's deep-learning workload source) also stresses
batched GEMM — RNN timestep stacks and attention blocks launch hundreds of
small identical products.  Vendor libraries expose this as
``gemmStridedBatched``: one kernel whose grid covers every batch element,
amortizing launch overhead and filling waves that a single small GEMM
would leave mostly empty.

This module extends the simulator to that launch style without modifying
the single-GEMM model: per-block behaviour is identical, the grid is
``batch`` times larger, L2 reuse stays *within* a batch element (different
elements share no operands), and DRAM traffic scales with the batch.

Like the core simulator, the implementation is batched-first:
:func:`simulate_bgemm_many` / :func:`benchmark_bgemm_many` evaluate N
``(config, shape)`` pairs per call and the scalar functions wrap them with
N = 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GemmConfig
from repro.core.legality import (
    gemm_legal_mask,
    gemm_resources_arrays,
    gemm_violations,
)
from repro.core.soa import GemmPairArrays
from repro.core.types import DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import TrafficArrays, estimate_traffic_arrays
from repro.gpu.noise import (
    DEFAULT_SIGMA,
    averaged_noise_factor,
    averaged_noise_factors,
)
from repro.gpu.occupancy import occupancy_arrays
from repro.gpu.simulator import (
    IllegalKernelError,
    KernelStats,
    KernelStatsArrays,
    _legal_mask_by_dsize,
    _schedule_waves,
    measurement_key,
    measurement_keys,
)
from repro.ptx.batch_counts import gemm_launch_arrays


@dataclass(frozen=True)
class BatchedGemmShape:
    """``batch`` independent products of one base shape."""

    batch: int
    base: GemmShape

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")

    @property
    def dtype(self) -> DType:
        """Element type of every batch element (shared by construction)."""
        return self.base.dtype

    @property
    def flops(self) -> int:
        return self.batch * self.base.flops

    def describe(self) -> str:
        return f"batched[{self.batch}] {self.base.describe()}"


def simulate_bgemm_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStatsArrays:
    """N strided-batched launches: each grid = batch x per-element grid."""
    batch = np.array([s.batch for s in shapes], dtype=np.int64)
    bases = [s.base for s in shapes]
    soa = GemmPairArrays.from_pairs(cfgs, bases)
    legal = _legal_mask_by_dsize(
        device, soa.config_params(), soa.dsize, gemm_legal_mask, check_legality
    )
    launch = gemm_launch_arrays(
        device, soa, bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2
    )
    res = gemm_resources_arrays(soa.config_params(), soa.dsize)
    occ = occupancy_arrays(
        device, res.threads, res.regs_per_thread, res.smem_bytes
    )
    legal = legal & occ.active

    per_element_grid = launch.grid_size
    grid_size = per_element_grid * batch
    concurrent = occ.blocks_per_sm * device.sms
    conc = np.maximum(concurrent, 1)

    # L2 reuse exists only within one batch element; concurrency per
    # element shrinks as resident blocks spread across elements.
    per_element_concurrency = np.maximum(
        1, np.minimum(concurrent, per_element_grid)
    )
    counts = launch.counts
    traffic_one = estimate_traffic_arrays(
        device,
        ldg_bytes_per_block=counts.ldg_bytes,
        ideal_ldg_bytes_per_block=counts.ideal_ldg_bytes,
        st_bytes_per_block=counts.st_bytes,
        grid_m=launch.grid_m,
        grid_n=launch.grid_n,
        kg=launch.kg,
        concurrent_blocks=per_element_concurrency,
        a_bytes_frac=launch.a_bytes_frac,
        staged_bytes_per_block=launch.staged_bytes,
        staged_depth=launch.staged_depth,
    )
    traffic = TrafficArrays(
        l2_hit_rate=traffic_one.l2_hit_rate,
        dram_load_bytes=traffic_one.dram_load_bytes * batch,
        dram_store_bytes=traffic_one.dram_store_bytes * batch,
    )
    dram_bytes_per_block = traffic.dram_bytes / np.maximum(1, grid_size)

    return _schedule_waves(
        device, launch, res, occ, traffic, legal,
        grid_size=grid_size,
        concurrent=conc,
        dram_bytes_per_block=dram_bytes_per_block,
        useful_flops=launch.useful_flops * batch,
        padded_flops=launch.padded_flops * batch,
    )


def benchmark_bgemm_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    **kwargs,
) -> np.ndarray:
    """Measured TFLOPS of N batched launches (NaN = illegal)."""
    stats = simulate_bgemm_many(device, cfgs, shapes, **kwargs)
    keys = measurement_keys(device, "bgemm", cfgs, shapes)
    return stats.tflops * averaged_noise_factors(keys, reps, sigma)


def simulate_batched_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """One strided-batched launch (N = 1 wrapper over the array core)."""
    if check_legality:
        violations = gemm_violations(cfg, shape.base.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))
    stats = simulate_bgemm_many(
        device, [cfg], [shape],
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
        check_legality=False,
    )
    if not stats.legal[0]:
        raise IllegalKernelError(f"kernel does not fit on {device.name}")
    return stats.row(0)


def simulate_looped_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    **kwargs,
) -> float:
    """Reference strategy: one launch per batch element (time in ms)."""
    from repro.gpu.simulator import simulate_gemm

    single = simulate_gemm(device, cfg, shape.base, **kwargs)
    return single.time_ms * shape.batch


def benchmark_batched_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    **kwargs,
) -> float:
    """Measured TFLOPS of the batched launch (deterministic noise)."""
    stats = simulate_batched_gemm(device, cfg, shape, **kwargs)
    key = measurement_key(device, "bgemm", cfg, shape)
    return stats.tflops * averaged_noise_factor(key, reps, sigma)
