"""Batched GEMM: many independent small products in one launch.

DeepBench (the paper's deep-learning workload source) also stresses
batched GEMM — RNN timestep stacks and attention blocks launch hundreds of
small identical products.  Vendor libraries expose this as
``gemmStridedBatched``: one kernel whose grid covers every batch element,
amortizing launch overhead and filling waves that a single small GEMM
would leave mostly empty.

This module extends the simulator to that launch style without modifying
the single-GEMM model: per-block behaviour is identical, the grid is
``batch`` times larger, L2 reuse stays *within* a batch element (different
elements share no operands), and DRAM traffic scales with the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import GemmConfig
from repro.core.legality import gemm_resources, gemm_violations
from repro.core.types import DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import estimate_traffic
from repro.gpu.noise import DEFAULT_SIGMA, averaged_noise_factor
from repro.gpu.occupancy import occupancy_for
from repro.gpu.simulator import (
    IllegalKernelError,
    KernelStats,
    _wave_time_ms,
)
from repro.ptx.counts import KernelCounts
from repro.ptx.gemm_codegen import GemmKernel


@dataclass(frozen=True)
class BatchedGemmShape:
    """``batch`` independent products of one base shape."""

    batch: int
    base: GemmShape

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")

    @property
    def dtype(self) -> DType:
        """Element type of every batch element (shared by construction)."""
        return self.base.dtype

    @property
    def flops(self) -> int:
        return self.batch * self.base.flops

    def describe(self) -> str:
        return f"batched[{self.batch}] {self.base.describe()}"


def simulate_batched_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """One strided-batched launch: grid = batch x per-element grid."""
    base = shape.base
    if check_legality:
        violations = gemm_violations(cfg, base.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))

    kernel = GemmKernel(
        cfg=cfg, shape=base, device=device,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    eff = kernel.effective_shape
    block = kernel.block_counts()
    res = gemm_resources(cfg, base.dtype)
    occ = occupancy_for(device, res)
    if not occ.active:
        raise IllegalKernelError(f"kernel does not fit on {device.name}")

    gm, gn, _ = cfg.grid(eff)
    per_element_grid = cfg.grid_size(eff)
    grid_size = per_element_grid * shape.batch
    counts = KernelCounts(
        block=block, grid_size=grid_size, threads_per_block=cfg.threads
    )
    concurrent = occ.blocks_per_sm * device.sms

    # L2 reuse exists only within one batch element; concurrency per
    # element shrinks as resident blocks spread across elements.
    per_element_concurrency = max(
        1, min(concurrent, per_element_grid)
    )
    staged_bytes = cfg.db * (cfg.ml + cfg.nl) * cfg.u * cfg.kl * base.dtype.size
    traffic_one = estimate_traffic(
        device,
        ldg_bytes_per_block=block.ldg_bytes,
        ideal_ldg_bytes_per_block=block.ideal_ldg_bytes,
        st_bytes_per_block=block.st_bytes,
        grid_m=gm,
        grid_n=gn,
        kg=cfg.kg,
        concurrent_blocks=per_element_concurrency,
        a_bytes_frac=cfg.ml / (cfg.ml + cfg.nl),
        staged_bytes_per_block=staged_bytes,
        staged_depth=cfg.u * cfg.kl,
    )
    traffic = replace(
        traffic_one,
        dram_load_bytes=traffic_one.dram_load_bytes * shape.batch,
        dram_store_bytes=traffic_one.dram_store_bytes * shape.batch,
    )
    dram_bytes_per_block = traffic.dram_bytes / max(1, grid_size)

    full_waves, rem = divmod(grid_size, concurrent)
    total_ms = 0.0
    limiter = "alu"
    if full_waves:
        t, limiter = _wave_time_ms(
            device, counts, concurrent, occ.blocks_per_sm,
            dram_bytes_per_block, base.dtype,
        )
        total_ms += t * full_waves
    if rem:
        t, lim_p = _wave_time_ms(
            device, counts, rem, occ.blocks_per_sm,
            dram_bytes_per_block, base.dtype,
        )
        total_ms += t
        if not full_waves:
            limiter = lim_p
    total_ms += device.kernel_launch_us * 1e-3

    return KernelStats(
        device_name=device.name,
        time_ms=total_ms,
        useful_flops=shape.flops,
        padded_flops=cfg.padded_flops(eff) * shape.batch,
        occupancy=occ,
        resources=res,
        traffic=traffic,
        limiter=limiter,
        waves=grid_size / concurrent,
        grid_size=grid_size,
    )


def simulate_looped_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    **kwargs,
) -> float:
    """Reference strategy: one launch per batch element (time in ms)."""
    from repro.gpu.simulator import simulate_gemm

    single = simulate_gemm(device, cfg, shape.base, **kwargs)
    return single.time_ms * shape.batch


def benchmark_batched_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: BatchedGemmShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    **kwargs,
) -> float:
    """Measured TFLOPS of the batched launch (deterministic noise)."""
    stats = simulate_batched_gemm(device, cfg, shape, **kwargs)
    key = f"{device.name}|bgemm|{cfg.as_dict()}|{shape}"
    return stats.tflops * averaged_noise_factor(key, reps, sigma)
