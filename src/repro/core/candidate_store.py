"""On-disk store of enumerated candidate sets (the cold-start killer).

Enumerating a tuning space — even vectorized — and generating per-bucket
CONV candidates is work a fresh process should not repeat: the surviving
tuning-parameter *columns* fully determine the candidate list and its
log-feature matrix (bit-for-bit; see
:meth:`repro.inference.search.CandidateRecord.materialize`).  This module
persists exactly those columns, one ``.npz`` per cache key, in a
directory next to the :class:`~repro.core.profile_cache.ProfileCache`.

Two kinds of record round-trip:

* ``enum`` — a full (op, device, dtype, space) enumeration from
  :func:`repro.inference.search.legal_configs`;
* ``conv-bucket`` — a per-pow2-bucket CONV candidate set from
  :func:`repro.inference.conv_search.conv_candidates_batch`.

``load()`` seeds the in-process caches with params-only records (config
objects stay lazy until first use), so a warmed directory makes cold
start perform **zero** product-space enumeration.  ``save()`` writes any
cache entry not yet on disk; records are immutable, so existing files are
never rewritten.  The :class:`~repro.service.engine.Engine` loads the
store on construction and saves it on ``warmup()`` / ``close()``.

Staleness is guarded three ways: files from another store ``_VERSION``
are ignored, records whose columns no longer cover the op's config
schema are skipped at load, and every record carries the space value
sets it was enumerated from — the caches re-enumerate on mismatch
rather than serving a pre-edit candidate set.

The candidate caches are process-global (they are keyed by device /
dtype / space, not by engine), so ``save()`` persists everything the
process has enumerated — two engines sharing a process may write each
other's (valid) records, which is intended: the store is a shared
artifact, like the caches behind it.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zipfile
from pathlib import Path
from typing import Hashable, Mapping

import numpy as np

from repro.core import integrity


def _inject(site: str, path: Path | None = None) -> None:
    """Fault-injection checkpoint (lazy import keeps core/ -> service/ soft)."""
    from repro.service.faults import inject

    inject(site, path)

_KIND_ENUM = "enum"
_KIND_CONV = "conv-bucket"

#: Store format version.  Bump it whenever the record layout *or the
#: legality semantics* change: files with another version are ignored and
#: regenerate.  (Space-value edits need no bump — every record carries
#: the value sets it was enumerated from, and the caches re-enumerate on
#: mismatch.)
_VERSION = 1


def _encode_space(space_params: tuple | None) -> list | None:
    if space_params is None:
        return None
    return [[name, list(vals)] for name, vals in space_params]


def _decode_space(encoded: list | None) -> tuple | None:
    if encoded is None:
        return None
    return tuple((name, tuple(vals)) for name, vals in encoded)


def _slug(part: object) -> str:
    return re.sub(r"[^a-z0-9_.]+", "-", str(part).lower()).strip("-")


# ----------------------------------------------------------------------
# Cache <-> record plumbing, shared by the disk store and the worker tier
# ----------------------------------------------------------------------

def collect_cache_records() -> list[tuple[str, tuple, str, tuple | None,
                                          dict]]:
    """Every in-memory candidate set as ``(kind, key, op, space, columns)``.

    The export form both :meth:`CandidateStore.save` and the worker-tier
    shared-memory boot consume: tuning-parameter columns only (records
    from the scalar fallback have their columns recovered from the config
    objects), ops no longer registered skipped.
    """
    from repro.core.ops import get_op, registered_ops
    from repro.core.soa import config_columns
    from repro.inference.conv_search import bucket_cache_snapshot
    from repro.inference.search import enum_cache_snapshot

    records = [
        (_KIND_ENUM, key, rec)
        for key, rec in enum_cache_snapshot().items()
    ]
    records += [
        (_KIND_CONV, key, rec)
        for key, rec in bucket_cache_snapshot().items()
    ]
    out = []
    for kind, key, rec in records:
        if rec.op not in registered_ops():
            continue  # transient op (e.g. a test spec since removed)
        params = rec.params
        if params is None:
            # Scalar-path record: recover the columns from the objects.
            if not rec.configs:
                continue
            spec = get_op(rec.op)
            params = config_columns(
                rec.configs, spec.config_type.param_names()
            )
        out.append((kind, tuple(key), rec.op, rec.space_params, params))
    return out


def seed_cache_record(
    kind: str,
    key: tuple,
    op: str,
    params: Mapping[str, np.ndarray],
    space_params: tuple | None,
) -> bool:
    """Publish one record into the in-process caches; True if kept.

    The single seeding point behind :meth:`CandidateStore.load` and the
    worker-tier attach: guards against ops this process has not
    registered and against columns predating a config-schema change, then
    routes to the enum or conv-bucket cache by ``kind``.
    """
    from repro.core.ops import get_op, registered_ops
    from repro.inference.conv_search import seed_bucket_record
    from repro.inference.search import seed_enum_record

    if op not in registered_ops():
        return False  # op from another process/run; nothing to seed
    spec = get_op(op)
    if not set(spec.config_type.param_names()) <= set(params):
        return False  # columns predate a config-schema change
    if kind == _KIND_CONV:
        return bool(seed_bucket_record(key, params, space_params))
    return bool(seed_enum_record(key, op, params, space_params))


class CandidateStore:
    """A directory of ``.npz`` candidate-set records keyed like the caches."""

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)

    @property
    def directory(self) -> Path:
        return self._dir

    def files(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob("*.npz"))

    def __len__(self) -> int:
        return len(self.files())

    # ------------------------------------------------------------------
    @staticmethod
    def _filename(kind: str, key: Hashable) -> str:
        parts = "--".join(_slug(p) for p in key)
        return f"{kind}--{parts}.npz"

    def _write(
        self,
        path: Path,
        kind: str,
        key: Hashable,
        op: str,
        params: Mapping[str, np.ndarray],
        space_params: tuple | None,
    ) -> None:
        """Atomic write: a crash mid-save never leaves a torn record."""
        meta = json.dumps(
            {
                "version": _VERSION,
                "kind": kind,
                "op": op,
                "key": list(key),
                "space": _encode_space(space_params),
            }
        )
        fd, tmp = tempfile.mkstemp(
            dir=self._dir, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, __meta__=np.array(meta), **params)
            os.replace(tmp, path)
            integrity.write_digest(path)
            _inject("candidate_store.save", path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Seed the in-process candidate caches from disk.

        Returns the number of records seeded (keys already cached in
        memory keep their entry).  A file that fails its digest check or
        cannot be parsed is quarantined (``*.corrupt-<digest8>``) — the
        corresponding set simply re-enumerates and is re-saved later.
        """
        seeded = 0
        for path in self.files():
            _inject("candidate_store.load", path)
            if integrity.check(path) is False:
                import warnings

                target = integrity.quarantine(path)
                warnings.warn(
                    f"candidate record {path} failed its integrity check; "
                    f"quarantined to {target.name} (will re-enumerate)",
                    stacklevel=2,
                )
                continue
            try:
                with np.load(path, allow_pickle=False) as z:
                    meta = json.loads(str(z["__meta__"]))
                    params = {
                        name: z[name] for name in z.files if name != "__meta__"
                    }
            except (OSError, ValueError, KeyError,
                    zipfile.BadZipFile) as exc:
                import warnings

                target = integrity.quarantine(path)
                warnings.warn(
                    f"skipping unreadable candidate record {path}: {exc} "
                    f"(quarantined to {target.name})",
                    stacklevel=2,
                )
                continue
            if meta.get("version") != _VERSION:
                continue
            seeded += seed_cache_record(
                meta.get("kind", _KIND_ENUM),
                tuple(meta["key"]),
                meta.get("op", meta["key"][0]),
                params,
                _decode_space(meta.get("space")),
            )
        return seeded

    def save(self) -> int:
        """Persist every in-memory candidate set not yet on disk."""
        written = 0
        for kind, key, op, space_params, params in collect_cache_records():
            path = self._dir / self._filename(kind, key)
            if path.exists():
                continue
            self._dir.mkdir(parents=True, exist_ok=True)
            self._write(path, kind, key, op, params, space_params)
            written += 1
        return written
