"""Tuning-parameter vectors for the GEMM and CONV kernel generators.

These are the blue parameters of Figure 3 in the paper.  A config describes
*how* a kernel decomposes the problem; :mod:`repro.core.legality` decides
whether a config can actually run on a given device, and
:mod:`repro.ptx.gemm_codegen` / :mod:`repro.ptx.conv_codegen` turn a config
into an instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Mapping

from repro.core.types import ConvShape, GemmShape, ceil_div


@dataclass(frozen=True, slots=True)
class GemmConfig:
    """The ten tuning parameters of the paper's GEMM parameterization.

    * ``ms``, ``ns`` — per-*thread* output tile (``MS x NS`` accumulators).
    * ``ml``, ``nl`` — per-*block* output tile (``ML x NL`` elements of C).
    * ``u``  — prefetch / unroll depth along K: each main-loop iteration
      stages ``ML*U`` elements of A and ``U*NL`` of B in shared memory.
    * ``ks`` — reduction split *within a thread*: the ``U``-deep unrolled
      chain is carved into ``KS`` independent accumulation chains to expose
      instruction-level parallelism.
    * ``kl`` — reduction split *within a block*: ``KL`` thread-slices each
      reduce a disjoint K-range; partials merge through shared memory.
    * ``kg`` — reduction split *across the grid*: ``KG`` blocks cooperate on
      one C-tile and merge partials with global atomics.
    * ``vec`` — vector width (elements) of global load/store instructions.
    * ``db`` — staging buffers in shared memory (1 = single, 2 = double
      buffering for prefetch overlap).
    """

    ms: int
    ns: int
    ml: int
    nl: int
    u: int
    ks: int = 1
    kl: int = 1
    kg: int = 1
    vec: int = 1
    db: int = 1

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def threads(self) -> int:
        """Threads per block: one per thread-tile, times the KL slices."""
        return (self.ml // self.ms) * (self.nl // self.ns) * self.kl

    @property
    def warps(self) -> int:
        return ceil_div(self.threads, 32)

    def grid(self, shape: GemmShape) -> tuple[int, int, int]:
        """Blocks launched along (M, N, K-split)."""
        return (
            ceil_div(shape.m, self.ml),
            ceil_div(shape.n, self.nl),
            self.kg,
        )

    def grid_size(self, shape: GemmShape) -> int:
        gm, gn, gk = self.grid(shape)
        return gm * gn * gk

    def padded_flops(self, shape: GemmShape) -> int:
        """FLOPs actually executed, counting the padded edges of full tiles.

        The kernel always computes full ``ML x NL`` tiles (predicated lanes
        still occupy issue slots), so wasted work grows when M or N is not a
        multiple of the block tile — the wave-quantization effect central to
        the paper's DeepBench analysis (§8.1).
        """
        gm, gn, _ = self.grid(shape)
        return 2 * gm * self.ml * gn * self.nl * shape.k

    def k_per_block(self, shape: GemmShape) -> int:
        """Reduction extent each block handles after the KG grid split."""
        return ceil_div(shape.k, self.kg)

    def main_loop_iters(self, shape: GemmShape) -> int:
        """Iterations of the U-stepped main loop per thread-slice."""
        return ceil_div(self.k_per_block(shape), self.kl * self.u)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Mapping[str, int]) -> "GemmConfig":
        return cls(**{f.name: int(d[f.name]) for f in fields(cls)})

    @classmethod
    def param_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def with_(self, **kw: int) -> "GemmConfig":
        return replace(self, **kw)

    def short(self) -> str:
        return (
            f"gemm<{self.ms}x{self.ns}/{self.ml}x{self.nl}"
            f",u{self.u},ks{self.ks},kl{self.kl},kg{self.kg}"
            f",v{self.vec},db{self.db}>"
        )


@dataclass(frozen=True, slots=True)
class ConvConfig:
    """Tuning parameters for multi-channel convolution (paper §3.3).

    Tiling spans five dimensions (K, P, Q, N, C).  Each thread computes a
    ``KT x PT x QT x NT`` tile of O; each block a ``KB x PB x QB x NB`` tile.
    ``U`` elements along the ``CRS`` reduction are staged per main-loop
    iteration, and the reduction is split by ``cs`` (in-thread), ``cl``
    (in-block) and ``cg`` (grid / atomics), mirroring KS/KL/KG of GEMM.
    """

    kt: int
    pt: int
    qt: int
    nt: int
    kb: int
    pb: int
    qb: int
    nb: int
    u: int
    cs: int = 1
    cl: int = 1
    cg: int = 1
    vec: int = 1
    db: int = 1

    @property
    def threads(self) -> int:
        return (
            (self.kb // self.kt)
            * (self.pb // self.pt)
            * (self.qb // self.qt)
            * (self.nb // self.nt)
            * self.cl
        )

    @property
    def warps(self) -> int:
        return ceil_div(self.threads, 32)

    @property
    def block_m(self) -> int:
        """Rows of the implicit-GEMM output tile: the N*P*Q side."""
        return self.nb * self.pb * self.qb

    @property
    def block_n(self) -> int:
        """Columns of the implicit-GEMM output tile: the K side."""
        return self.kb

    @property
    def thread_m(self) -> int:
        return self.nt * self.pt * self.qt

    @property
    def thread_n(self) -> int:
        return self.kt

    def grid(self, shape: ConvShape) -> tuple[int, int, int, int, int]:
        return (
            ceil_div(shape.k, self.kb),
            ceil_div(shape.p, self.pb),
            ceil_div(shape.q, self.qb),
            ceil_div(shape.n, self.nb),
            self.cg,
        )

    def grid_size(self, shape: ConvShape) -> int:
        g = self.grid(shape)
        return g[0] * g[1] * g[2] * g[3] * g[4]

    def padded_flops(self, shape: ConvShape) -> int:
        gk, gp, gq, gn, _ = self.grid(shape)
        covered = (
            gk * self.kb * gp * self.pb * gq * self.qb * gn * self.nb
        )
        return 2 * covered * shape.crs

    def crs_per_block(self, shape: ConvShape) -> int:
        return ceil_div(shape.crs, self.cg)

    def main_loop_iters(self, shape: ConvShape) -> int:
        return ceil_div(self.crs_per_block(shape), self.cl * self.u)

    def as_gemm_config(self) -> GemmConfig:
        """Project onto the implicit-GEMM parameterization.

        The performance model treats the convolution as its implicit GEMM
        with an indirection-table surcharge, so this projection carries the
        tiling across.
        """
        return GemmConfig(
            ms=self.thread_m,
            ns=self.thread_n,
            ml=self.block_m,
            nl=self.block_n,
            u=self.u,
            ks=self.cs,
            kl=self.cl,
            kg=self.cg,
            vec=self.vec,
            db=self.db,
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Mapping[str, int]) -> "ConvConfig":
        return cls(**{f.name: int(d[f.name]) for f in fields(cls)})

    @classmethod
    def param_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def with_(self, **kw: int) -> "ConvConfig":
        return replace(self, **kw)

    def short(self) -> str:
        return (
            f"conv<{self.kt}x{self.pt}x{self.qt}x{self.nt}"
            f"/{self.kb}x{self.pb}x{self.qb}x{self.nb}"
            f",u{self.u},cs{self.cs},cl{self.cl},cg{self.cg},v{self.vec}>"
        )
