"""A small tensor-expression front-end (paper §9 future work).

"Another valuable addition to our framework would be a more flexible
front-end (possibly a Domain Specific Language) to allow its use on
problems beyond GEMM and CONV."

This module implements a first step in that direction: an einsum-like
expression parser that recognizes the contraction patterns the backend can
execute and lowers them to :class:`GemmShape` / :class:`ConvShape`
problems.  Recognized forms (index names are free, dimensions bound by the
caller):

* ``C[m,n] = A[m,k] * B[k,n]``           — GEMM (any of the four layouts,
  via ``A[k,m]`` / ``B[n,k]`` index orders)
* ``O[k,p,q,n] = I[c,p+r,q+s,n] * F[c,r,s,k]`` — multi-channel CONV

The lowering returns a :class:`LoweredOp` carrying the problem shape and
an executor closure, so DSL programs run against the functional kernels
and can be auto-tuned with the usual Isaac pipeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.types import ConvShape, DType, GemmShape

_EXPR = re.compile(
    r"^\s*(\w+)\s*\[([^\]]*)\]\s*=\s*(\w+)\s*\[([^\]]*)\]\s*\*\s*"
    r"(\w+)\s*\[([^\]]*)\]\s*$"
)


class FrontendError(ValueError):
    """Raised when an expression cannot be parsed or lowered."""


@dataclass(frozen=True)
class TensorRef:
    name: str
    indices: tuple[str, ...]


@dataclass(frozen=True)
class Contraction:
    """Parsed form of ``out = lhs * rhs`` with einsum-style indices."""

    out: TensorRef
    lhs: TensorRef
    rhs: TensorRef

    @property
    def reduction_indices(self) -> tuple[str, ...]:
        out_set = set(self.out.indices)
        shared = [
            i for i in self.lhs.indices
            if i in self.rhs.indices and i not in out_set
        ]
        return tuple(shared)


def parse(expr: str) -> Contraction:
    """Parse ``Out[i,j] = A[i,k] * B[k,j]``-style expressions."""
    m = _EXPR.match(expr)
    if not m:
        raise FrontendError(f"cannot parse expression: {expr!r}")
    names = m.group(1), m.group(3), m.group(5)
    index_lists = []
    for grp in (m.group(2), m.group(4), m.group(6)):
        idx = tuple(s.strip() for s in grp.split(",") if s.strip())
        if not idx:
            raise FrontendError(f"empty index list in {expr!r}")
        index_lists.append(idx)
    out, lhs, rhs = (
        TensorRef(n, i) for n, i in zip(names, index_lists)
    )
    return Contraction(out=out, lhs=lhs, rhs=rhs)


@dataclass(frozen=True)
class LoweredOp:
    """A recognized operation, ready for tuning and execution."""

    kind: str                  # "gemm" | "conv"
    shape: object              # GemmShape | ConvShape
    execute: Callable[..., np.ndarray]

    def describe(self) -> str:
        return f"{self.kind}: {self.shape.describe()}"


def lower(
    expr: str | Contraction,
    dims: Mapping[str, int],
    dtype: DType = DType.FP32,
) -> LoweredOp:
    """Recognize and lower a contraction to a backend problem.

    ``dims`` binds every index name to its extent.
    """
    c = parse(expr) if isinstance(expr, str) else expr

    if _is_gemm(c):
        return _lower_gemm(c, dims, dtype)
    if _is_conv(c):
        return _lower_conv(c, dims, dtype)
    raise FrontendError(
        f"unrecognized contraction pattern "
        f"(out={c.out.indices}, lhs={c.lhs.indices}, rhs={c.rhs.indices}); "
        "supported: 2-D matrix product, 4-D multi-channel convolution"
    )


# ----------------------------------------------------------------------
# GEMM recognition
# ----------------------------------------------------------------------

def _is_gemm(c: Contraction) -> bool:
    return (
        len(c.out.indices) == 2
        and len(c.lhs.indices) == 2
        and len(c.rhs.indices) == 2
        and len(c.reduction_indices) == 1
    )


def _lower_gemm(
    c: Contraction, dims: Mapping[str, int], dtype: DType
) -> LoweredOp:
    m_idx, n_idx = c.out.indices
    (k_idx,) = c.reduction_indices
    for idx in (m_idx, n_idx, k_idx):
        if idx not in dims:
            raise FrontendError(f"dimension {idx!r} not bound")
    if m_idx not in c.lhs.indices or n_idx not in c.rhs.indices:
        # Operands may be swapped relative to the output order.
        raise FrontendError(
            "left operand must carry the first output index and the right "
            "operand the second (swap the operands)"
        )
    # Storage transposition: A is 'transposed' when its K index comes first.
    ta = c.lhs.indices[0] == k_idx
    tb = c.rhs.indices[1] == k_idx
    shape = GemmShape(
        m=dims[m_idx], n=dims[n_idx], k=dims[k_idx], dtype=dtype,
        ta=ta, tb=tb,
    )

    def execute(a: np.ndarray, b: np.ndarray, cfg=None) -> np.ndarray:
        from repro.kernels.gemm_ref import execute_gemm, gemm_reference

        a_logical = a.T if ta else a
        b_logical = b.T if tb else b
        if cfg is None:
            return gemm_reference(a_logical, b_logical)
        return execute_gemm(cfg, shape, a_logical, b_logical)

    return LoweredOp(kind="gemm", shape=shape, execute=execute)


# ----------------------------------------------------------------------
# CONV recognition
# ----------------------------------------------------------------------

_SUM_IDX = re.compile(r"^(\w+)\+(\w+)$")


def _is_conv(c: Contraction) -> bool:
    return (
        len(c.out.indices) == 4
        and len(c.lhs.indices) == 4
        and len(c.rhs.indices) == 4
        and sum(1 for i in c.lhs.indices if _SUM_IDX.match(i)) == 2
    )


def _lower_conv(
    c: Contraction, dims: Mapping[str, int], dtype: DType
) -> LoweredOp:
    k_idx, p_idx, q_idx, n_idx = c.out.indices
    c_idx = c.lhs.indices[0]
    sums = [
        _SUM_IDX.match(i) for i in c.lhs.indices[1:3]
    ]
    if not all(sums):
        raise FrontendError(
            "convolution input must index spatial dims as p+r / q+s"
        )
    (pp, rr), (qq, ss) = (m.groups() for m in sums)
    if (pp, qq) != (p_idx, q_idx):
        raise FrontendError("spatial output indices must match I's windows")
    expected_rhs = (c_idx, rr, ss, k_idx)
    if c.rhs.indices != expected_rhs:
        raise FrontendError(
            f"filter must be indexed {expected_rhs}, got {c.rhs.indices}"
        )
    for idx in (k_idx, p_idx, q_idx, n_idx, c_idx, rr, ss):
        if idx not in dims:
            raise FrontendError(f"dimension {idx!r} not bound")
    shape = ConvShape.from_output(
        n=dims[n_idx], p=dims[p_idx], q=dims[q_idx], k=dims[k_idx],
        c=dims[c_idx], r=dims[rr], s=dims[ss], dtype=dtype,
    )

    def execute(i_t: np.ndarray, f_t: np.ndarray, cfg=None) -> np.ndarray:
        from repro.kernels.conv_ref import conv_reference, execute_conv

        if cfg is None:
            return conv_reference(i_t, f_t, shape)
        return execute_conv(cfg, shape, i_t, f_t)

    return LoweredOp(kind="conv", shape=shape, execute=execute)
