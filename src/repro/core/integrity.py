"""File-integrity sidecars: BLAKE2b digests + quarantine-on-mismatch.

Every persistent artifact the serving tier boots from — `CandidateStore`
``.npz`` records, saved model fits, the profile cache, the online update
log — gets a sidecar file (``<name>.b2``) holding the BLAKE2b digest of
its bytes.  Loaders call :func:`check` before trusting a file:

* ``True`` — digest matches, file is intact;
* ``None`` — no sidecar (a legacy file written before digests existed);
  callers accept it and rely on their format-level parsing guards;
* ``False`` — the bytes changed since they were written.  Callers
  :func:`quarantine` the file (rename to ``<name>.corrupt-<digest8>``,
  preserving the evidence) and rebuild the state instead of crashing.

Digests detect *corruption*, not tampering: there is no secret key.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = [
    "DIGEST_SUFFIX",
    "check",
    "digest_path",
    "file_digest",
    "quarantine",
    "write_digest",
]

DIGEST_SUFFIX = ".b2"

_CHUNK = 1 << 20


def file_digest(path: os.PathLike[str] | str) -> str:
    """Streaming BLAKE2b-256 hex digest of ``path``'s bytes."""
    digest = hashlib.blake2b(digest_size=32)
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def digest_path(path: os.PathLike[str] | str) -> Path:
    """The sidecar path for ``path`` (``<name>.b2`` next to it)."""
    path = Path(path)
    return path.with_name(path.name + DIGEST_SUFFIX)


def write_digest(path: os.PathLike[str] | str) -> str:
    """Write ``path``'s digest sidecar; returns the hex digest."""
    digest = file_digest(path)
    digest_path(path).write_text(digest + "\n", encoding="utf-8")
    return digest


def check(path: os.PathLike[str] | str) -> bool | None:
    """Verify ``path`` against its sidecar.

    Returns ``True`` on match, ``False`` on mismatch, and ``None`` when
    no sidecar exists (legacy file) or the sidecar itself is unreadable.
    """
    sidecar = digest_path(path)
    try:
        expected = sidecar.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not expected:
        return None
    return file_digest(path) == expected


def quarantine(path: os.PathLike[str] | str) -> Path:
    """Move a corrupt file aside as ``<name>.corrupt-<digest8>``.

    The rename keeps the bytes for post-mortem while freeing the
    canonical name for a rebuild.  The digest sidecar, now meaningless,
    is removed.  Returns the quarantine path.
    """
    path = Path(path)
    try:
        tag = file_digest(path)[:8]
    except OSError:
        tag = "unread"
    target = path.with_name(path.name + f".corrupt-{tag}")
    os.replace(path, target)
    sidecar = digest_path(path)
    try:
        sidecar.unlink()
    except OSError:
        pass
    return target
