"""Legality of tuning configurations: the paper's X ⊂ X̂ distinction (§4).

Some points of the product space compile but cannot run: they oversubscribe
shared memory or the register file, launch a non-multiple-of-warp thread
count, or decompose tiles unevenly.  This module estimates per-config
resource usage and applies the device's hard limits.

The resource estimates here are the *single source of truth*: the occupancy
calculator, the simulator and the PTX verifier all consume the same
:class:`ResourceUsage`, so a config deemed legal is guaranteed simulable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import DType
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True, slots=True)
class ResourceUsage:
    """Static resources one block of the generated kernel consumes."""

    threads: int
    regs_per_thread: int
    smem_bytes: int

    @property
    def warps(self) -> int:
        return -(-self.threads // 32)

    @property
    def regs_per_block(self) -> int:
        return self.regs_per_thread * self.threads


#: Fixed per-thread register overhead: loop counters, base pointers,
#: predicate staging.  PTX's flat register model keeps this small (§8.3).
_REG_OVERHEAD = 22

#: Longest per-thread staging load stream the generator will fully unroll.
_MAX_LOADS_PER_THREAD = 8


def _regs_per_elem(dtype: DType) -> int:
    """32-bit registers needed to hold one element of ``dtype``."""
    return max(1, dtype.size // 4)


def gemm_resources(cfg: GemmConfig, dtype: DType) -> ResourceUsage:
    """Registers / shared memory / threads for a GEMM config.

    * accumulators: ``MS*NS`` elements per thread;
    * operand registers: one A-column fragment and one B-row fragment,
      double-buffered when ``db=2``;
    * shared staging: ``db*(ML+NL)*U`` elements;
    * shared reduction scratch when ``KL>1``: the full ``ML*NL`` output tile
      (partials from the KL slices are merged tree-wise through it).
    """
    rpe = _regs_per_elem(dtype)
    accum = cfg.ms * cfg.ns * rpe
    operands = (cfg.ms + cfg.ns) * rpe * cfg.db
    # Every in-flight staging load needs destination registers and an
    # address register: the fully unrolled PTX keeps all of an iteration's
    # loads live at once.
    threads = max(1, cfg.threads)
    loads_per_thread = (cfg.ml + cfg.nl) * cfg.u * cfg.kl // (threads * cfg.vec)
    staging_regs = loads_per_thread * (cfg.vec * rpe + 2)
    addressing = _REG_OVERHEAD + 2 * (cfg.ks - 1) + cfg.vec
    regs = accum + operands + staging_regs + addressing

    # Each of the KL reduction slices stages its own (ML + NL) x U sub-tile.
    staging = cfg.db * (cfg.ml + cfg.nl) * cfg.u * cfg.kl * dtype.size
    reduction = cfg.ml * cfg.nl * dtype.size if cfg.kl > 1 else 0
    return ResourceUsage(
        threads=cfg.threads,
        regs_per_thread=regs,
        smem_bytes=staging + reduction,
    )


def conv_resources(cfg: ConvConfig, dtype: DType) -> ResourceUsage:
    """Resources for a CONV config.

    Beyond the implicit-GEMM staging, the kernel keeps the indirection table
    (precomputed (c, r, s) offsets for the staged reduction slice, §3.3) in
    shared memory: one 32-bit entry per staged reduction index.
    """
    rpe = _regs_per_elem(dtype)
    accum = cfg.thread_m * cfg.thread_n * rpe
    operands = (cfg.thread_m + cfg.thread_n) * rpe * cfg.db
    threads = max(1, cfg.threads)
    loads_per_thread = (
        (cfg.block_m + cfg.block_n) * cfg.u * cfg.cl // (threads * cfg.vec)
    )
    staging_regs = loads_per_thread * (cfg.vec * rpe + 2)
    addressing = _REG_OVERHEAD + 4 + 2 * (cfg.cs - 1) + cfg.vec  # +4: 5-D indexing
    regs = accum + operands + staging_regs + addressing

    staging = cfg.db * (cfg.block_m + cfg.block_n) * cfg.u * cfg.cl * dtype.size
    reduction = cfg.block_m * cfg.block_n * dtype.size if cfg.cl > 1 else 0
    table = 4 * cfg.u * cfg.cl
    return ResourceUsage(
        threads=cfg.threads,
        regs_per_thread=regs,
        smem_bytes=staging + reduction + table,
    )


# ----------------------------------------------------------------------
# GEMM legality
# ----------------------------------------------------------------------

def gemm_violations(
    cfg: GemmConfig, dtype: DType, device: DeviceSpec
) -> list[str]:
    """All reasons ``cfg`` is illegal on ``device`` (empty list = legal)."""
    v: list[str] = []
    if cfg.ml % cfg.ms != 0:
        v.append(f"ML={cfg.ml} not divisible by MS={cfg.ms}")
    if cfg.nl % cfg.ns != 0:
        v.append(f"NL={cfg.nl} not divisible by NS={cfg.ns}")
    if cfg.ks > cfg.u or cfg.u % cfg.ks != 0:
        v.append(f"U={cfg.u} not divisible by KS={cfg.ks}")
    if v:
        return v  # derived quantities below assume divisibility

    threads = cfg.threads
    if threads < 2 * device.warp_size:
        v.append(f"threads={threads} below two warps (scheduler minimum)")
    if threads > device.max_threads_per_block:
        v.append(f"threads={threads} exceeds {device.max_threads_per_block}")
    if threads % device.warp_size != 0:
        v.append(f"threads={threads} not a multiple of warp size")
    if cfg.ms * cfg.ns < 4:
        v.append(
            f"thread tile {cfg.ms}x{cfg.ns} exposes too little ILP "
            "(fewer than 4 accumulators)"
        )
    if v:
        return v

    # Cooperative staging: every thread of a KL slice must move the same
    # whole number of vec-wide chunks of its operand sub-tile per iteration,
    # and the unrolled load stream must stay within a sane register budget.
    slice_threads = threads // cfg.kl
    for label, tile in (("A", cfg.ml * cfg.u), ("B", cfg.nl * cfg.u)):
        if tile % (slice_threads * cfg.vec) != 0:
            v.append(
                f"{label}-tile ({tile} elems) not evenly split across "
                f"{slice_threads} slice-threads x vec={cfg.vec}"
            )
        else:
            per_thread = tile // (slice_threads * cfg.vec)
            if per_thread > _MAX_LOADS_PER_THREAD:
                v.append(
                    f"{label}-staging needs {per_thread} loads/thread "
                    f"(max {_MAX_LOADS_PER_THREAD}: unrolled stream too long)"
                )
    if cfg.ns % cfg.vec != 0:
        v.append(f"NS={cfg.ns} not divisible by vec={cfg.vec} (C stores)")
    if (cfg.ml * cfg.nl) % (threads * cfg.vec) != 0:
        v.append(
            f"C tile {cfg.ml}x{cfg.nl} not evenly written back by "
            f"{threads} threads x vec={cfg.vec}"
        )
    if cfg.vec * dtype.size > 16:
        v.append(f"vec={cfg.vec} exceeds 128-bit access for {dtype.name}")

    res = gemm_resources(cfg, dtype)
    if res.smem_bytes > device.smem_per_block_kb * 1024:
        v.append(
            f"shared memory {res.smem_bytes}B exceeds "
            f"{device.smem_per_block_kb}KB/block"
        )
    if res.regs_per_thread > device.max_regs_per_thread:
        v.append(
            f"{res.regs_per_thread} regs/thread exceeds "
            f"{device.max_regs_per_thread}"
        )
    if res.regs_per_block > device.regfile_per_sm:
        v.append(
            f"{res.regs_per_block} regs/block exceeds register file "
            f"({device.regfile_per_sm})"
        )
    return v


def is_legal_gemm(cfg: GemmConfig, dtype: DType, device: DeviceSpec) -> bool:
    return not gemm_violations(cfg, dtype, device)


# ----------------------------------------------------------------------
# CONV legality
# ----------------------------------------------------------------------

def conv_violations(
    cfg: ConvConfig, dtype: DType, device: DeviceSpec
) -> list[str]:
    v: list[str] = []
    for big, small, bn, sn in (
        (cfg.kb, cfg.kt, "KB", "KT"),
        (cfg.pb, cfg.pt, "PB", "PT"),
        (cfg.qb, cfg.qt, "QB", "QT"),
        (cfg.nb, cfg.nt, "NB", "NT"),
    ):
        if big % small != 0:
            v.append(f"{bn}={big} not divisible by {sn}={small}")
    if cfg.cs > cfg.u or cfg.u % cfg.cs != 0:
        v.append(f"U={cfg.u} not divisible by CS={cfg.cs}")
    if v:
        return v

    threads = cfg.threads
    if threads < 2 * device.warp_size:
        v.append(f"threads={threads} below two warps (scheduler minimum)")
    if threads > device.max_threads_per_block:
        v.append(f"threads={threads} exceeds {device.max_threads_per_block}")
    if threads % device.warp_size != 0:
        v.append(f"threads={threads} not a multiple of warp size")
    if cfg.thread_m * cfg.thread_n < 4:
        v.append("thread tile exposes too little ILP (fewer than 4 accumulators)")
    if v:
        return v

    slice_threads = threads // cfg.cl
    for label, tile in (
        ("I", cfg.block_m * cfg.u),
        ("F", cfg.block_n * cfg.u),
    ):
        if tile % (slice_threads * cfg.vec) != 0:
            v.append(
                f"{label}-tile ({tile} elems) not evenly split across "
                f"{slice_threads} slice-threads x vec={cfg.vec}"
            )
        else:
            per_thread = tile // (slice_threads * cfg.vec)
            if per_thread > _MAX_LOADS_PER_THREAD:
                v.append(
                    f"{label}-staging needs {per_thread} loads/thread "
                    f"(max {_MAX_LOADS_PER_THREAD}: unrolled stream too long)"
                )
    if cfg.kt % cfg.vec != 0:
        v.append(f"KT={cfg.kt} not divisible by vec={cfg.vec} (O stores)")
    if (cfg.block_m * cfg.block_n) % (threads * cfg.vec) != 0:
        v.append(
            f"O tile {cfg.block_m}x{cfg.block_n} not evenly written back by "
            f"{threads} threads x vec={cfg.vec}"
        )
    if cfg.vec * dtype.size > 16:
        v.append(f"vec={cfg.vec} exceeds 128-bit access for {dtype.name}")

    res = conv_resources(cfg, dtype)
    if res.smem_bytes > device.smem_per_block_kb * 1024:
        v.append(f"shared memory {res.smem_bytes}B exceeds limit")
    if res.regs_per_thread > device.max_regs_per_thread:
        v.append(f"{res.regs_per_thread} regs/thread exceeds limit")
    if res.regs_per_block > device.regfile_per_sm:
        v.append(f"{res.regs_per_block} regs/block exceeds register file")
    return v


def is_legal_conv(cfg: ConvConfig, dtype: DType, device: DeviceSpec) -> bool:
    return not conv_violations(cfg, dtype, device)


# ----------------------------------------------------------------------
# Array cores: resources and legality for N configs at once
# ----------------------------------------------------------------------
#
# The batched offline pipeline (dataset generation, shortlist re-ranking)
# filters and prices thousands of configurations per call.  The functions
# below evaluate the exact conditions of gemm_violations/conv_violations on
# struct-of-arrays inputs: one int64 column per tuning parameter (the shape
# of a batched space sample), plus the element byte-width.  Divisors that a
# scalar early-return would have skipped are clamped to 1 — the clamped
# condition's value is irrelevant because the mask is a conjunction and an
# earlier condition already rejected the row.

@dataclass(frozen=True)
class ResourceArrays:
    """Struct-of-arrays :class:`ResourceUsage` for N configs."""

    threads: np.ndarray
    regs_per_thread: np.ndarray
    smem_bytes: np.ndarray

    @property
    def warps(self) -> np.ndarray:
        return -(-self.threads // 32)

    @property
    def regs_per_block(self) -> np.ndarray:
        return self.regs_per_thread * self.threads


def _cols(
    params: Mapping[str, np.ndarray], names: tuple[str, ...]
) -> tuple[np.ndarray, ...]:
    return tuple(np.asarray(params[n], dtype=np.int64) for n in names)


def gemm_resources_arrays(
    params: Mapping[str, np.ndarray], dsize: np.ndarray | int
) -> ResourceArrays:
    """Vectorized :func:`gemm_resources` over a name->column mapping."""
    ms, ns, ml, nl, u, ks, kl, vec, db = _cols(
        params, ("ms", "ns", "ml", "nl", "u", "ks", "kl", "vec", "db")
    )
    dsize = np.asarray(dsize, dtype=np.int64)
    rpe = np.maximum(1, dsize // 4)
    accum = ms * ns * rpe
    operands = (ms + ns) * rpe * db
    threads = np.maximum(1, (ml // ms) * (nl // ns) * kl)
    loads_per_thread = (ml + nl) * u * kl // np.maximum(1, threads * vec)
    staging_regs = loads_per_thread * (vec * rpe + 2)
    addressing = _REG_OVERHEAD + 2 * (ks - 1) + vec
    regs = accum + operands + staging_regs + addressing

    staging = db * (ml + nl) * u * kl * dsize
    reduction = np.where(kl > 1, ml * nl * dsize, 0)
    return ResourceArrays(
        threads=(ml // ms) * (nl // ns) * kl,
        regs_per_thread=regs,
        smem_bytes=staging + reduction,
    )


def conv_resources_arrays(
    params: Mapping[str, np.ndarray], dsize: np.ndarray | int
) -> ResourceArrays:
    """Vectorized :func:`conv_resources` over a name->column mapping."""
    kt, pt, qt, nt, kb, pb, qb, nb, u, cs, cl, vec, db = _cols(
        params,
        ("kt", "pt", "qt", "nt", "kb", "pb", "qb", "nb", "u", "cs", "cl",
         "vec", "db"),
    )
    dsize = np.asarray(dsize, dtype=np.int64)
    rpe = np.maximum(1, dsize // 4)
    thread_m = nt * pt * qt
    thread_n = kt
    block_m = nb * pb * qb
    block_n = kb
    threads = (kb // kt) * (pb // pt) * (qb // qt) * (nb // nt) * cl

    accum = thread_m * thread_n * rpe
    operands = (thread_m + thread_n) * rpe * db
    threads_floor = np.maximum(1, threads)
    loads_per_thread = (
        (block_m + block_n) * u * cl // np.maximum(1, threads_floor * vec)
    )
    staging_regs = loads_per_thread * (vec * rpe + 2)
    addressing = _REG_OVERHEAD + 4 + 2 * (cs - 1) + vec  # +4: 5-D indexing
    regs = accum + operands + staging_regs + addressing

    staging = db * (block_m + block_n) * u * cl * dsize
    reduction = np.where(cl > 1, block_m * block_n * dsize, 0)
    table = 4 * u * cl
    return ResourceArrays(
        threads=threads,
        regs_per_thread=regs,
        smem_bytes=staging + reduction + table,
    )


def gemm_legal_mask(
    device: DeviceSpec,
    params: Mapping[str, np.ndarray],
    dtype: DType,
) -> np.ndarray:
    """Vectorized :func:`is_legal_gemm`: one bool per parameter row."""
    ms, ns, ml, nl, u, ks, kl, vec = _cols(
        params, ("ms", "ns", "ml", "nl", "u", "ks", "kl", "vec")
    )
    ok = (
        (ms > 0) & (ns > 0) & (ks > 0) & (kl > 0) & (vec > 0)
        & (ml % np.maximum(1, ms) == 0)
        & (nl % np.maximum(1, ns) == 0)
        & (ks <= u)
        & (u % np.maximum(1, ks) == 0)
    )

    threads = (ml // np.maximum(1, ms)) * (nl // np.maximum(1, ns)) * kl
    ok &= threads >= 2 * device.warp_size
    ok &= threads <= device.max_threads_per_block
    ok &= threads % device.warp_size == 0
    ok &= ms * ns >= 4

    # Cooperative staging: every thread of a KL slice must move the same
    # whole number of vec-wide chunks per iteration, within the unrolled
    # load-stream register budget.
    slice_chunk = np.maximum(1, (threads // np.maximum(1, kl)) * vec)
    for tile in (ml * u, nl * u):
        ok &= tile % slice_chunk == 0
        ok &= tile // slice_chunk <= _MAX_LOADS_PER_THREAD
    ok &= ns % vec == 0
    ok &= (ml * nl) % np.maximum(1, threads * vec) == 0
    ok &= vec * dtype.size <= 16

    res = gemm_resources_arrays(params, dtype.size)
    ok &= res.smem_bytes <= device.smem_per_block_kb * 1024
    ok &= res.regs_per_thread <= device.max_regs_per_thread
    ok &= res.regs_per_block <= device.regfile_per_sm
    return ok


def conv_legal_mask(
    device: DeviceSpec,
    params: Mapping[str, np.ndarray],
    dtype: DType,
) -> np.ndarray:
    """Vectorized :func:`is_legal_conv`: one bool per parameter row."""
    kt, pt, qt, nt, kb, pb, qb, nb, u, cs, cl, vec = _cols(
        params,
        ("kt", "pt", "qt", "nt", "kb", "pb", "qb", "nb", "u", "cs", "cl",
         "vec"),
    )
    ok = np.ones(len(kt), dtype=bool)
    for big, small in ((kb, kt), (pb, pt), (qb, qt), (nb, nt)):
        ok &= (small > 0) & (big % np.maximum(1, small) == 0)
    ok &= (cs > 0) & (cs <= u) & (u % np.maximum(1, cs) == 0)
    ok &= (cl > 0) & (vec > 0)

    threads = (
        (kb // np.maximum(1, kt))
        * (pb // np.maximum(1, pt))
        * (qb // np.maximum(1, qt))
        * (nb // np.maximum(1, nt))
        * cl
    )
    ok &= threads >= 2 * device.warp_size
    ok &= threads <= device.max_threads_per_block
    ok &= threads % device.warp_size == 0
    thread_m = nt * pt * qt
    ok &= thread_m * kt >= 4

    block_m = nb * pb * qb
    block_n = kb
    slice_chunk = np.maximum(1, (threads // np.maximum(1, cl)) * vec)
    for tile in (block_m * u, block_n * u):
        ok &= tile % slice_chunk == 0
        ok &= tile // slice_chunk <= _MAX_LOADS_PER_THREAD
    ok &= kt % vec == 0
    ok &= (block_m * block_n) % np.maximum(1, threads * vec) == 0
    ok &= vec * dtype.size <= 16

    res = conv_resources_arrays(params, dtype.size)
    ok &= res.smem_bytes <= device.smem_per_block_kb * 1024
    ok &= res.regs_per_thread <= device.max_regs_per_thread
    ok &= res.regs_per_block <= device.regfile_per_sm
    return ok
