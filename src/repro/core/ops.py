"""Pluggable operation registry: everything one op needs, in one place.

The paper frames ISAAC as a *generic* pipeline — generative sampling →
MLP regression → exhaustive runtime search → top-k re-ranking — that is
instantiated for GEMM and CONV but tied to neither.  An :class:`OpSpec`
bundles the per-operation ingredients that pipeline consumes:

* the shape (input-parameter) and config (tuning-parameter) types;
* the tuning :class:`~repro.core.space.ParamSpace` the generative model
  samples from, and the legality predicate carving X out of X̂;
* feature extractors mapping configs/shapes to the MLP's design matrix;
* a candidate supply for the runtime search — scalar (``candidates``)
  plus the array-native ``candidates_batch`` slot returning configs and
  their log-feature matrix from one cached, vectorized pass, with
  ``candidate_key`` defining the cache bucket for per-shape generators;
* the simulator benchmark functions standing in for kernel launches —
  scalar and, for ops that register one, batched (``benchmark_many``
  evaluates N (config, shape) pairs per call through the array-core
  simulator; :meth:`OpSpec.benchmark_pairs` falls back to a scalar loop
  for ops that don't);
* an optional vectorized legality mask (``legal_mask``) so batched
  rejection sampling can filter thousands of candidate configs per call;
* a profile-cache key so tuned kernels persist across runs.

Registering a spec (:func:`register_op`) makes the op available to every
layer — :class:`~repro.core.tuner.Isaac`,
:class:`~repro.inference.search.ExhaustiveSearch`, the re-ranker, the
dataset generator and :class:`~repro.core.profile_cache.ProfileCache` —
without touching any of them.  ``gemm``, ``conv`` and ``bgemm``
(strided-batched GEMM) are registered at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from repro.core.space import CONV_SPACE, GEMM_SPACE, ParamSpace
from repro.core.types import DType
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class OpSpec:
    """One tunable operation, as seen by every stage of the pipeline.

    ``candidates(device, shape, space=None)`` returns the configs the
    runtime search scores for one query shape.  ``enumerable=True``
    declares that this set depends on the shape only through its dtype
    (GEMM: the full legal set), so searches may cache per-(device, dtype);
    otherwise candidates are generated per shape (CONV: tile
    factorization).
    """

    name: str
    shape_type: type
    config_type: type
    space: ParamSpace
    default_dtypes: tuple[DType, ...]
    config_features: tuple[str, ...]
    shape_features: tuple[str, ...]
    is_legal: Callable[[Any, DType, DeviceSpec], bool]
    config_matrix: Callable[..., np.ndarray]
    shape_vector: Callable[..., np.ndarray]
    candidates: Callable[..., list]
    simulate: Callable[..., Any]
    benchmark: Callable[..., float]
    make_shape_sampler: Callable[
        [tuple[DType, ...]], Callable[[np.random.Generator], Any]
    ]
    shape_key: Callable[[Any], str]
    enumerable: bool = False
    #: Batched simulator entry points (struct-of-arrays, N pairs per call).
    #: ``benchmark_many(device, cfgs, shapes, *, reps, sigma) -> ndarray``
    #: returns NaN for illegal pairs; ops without one fall back to a scalar
    #: loop via :meth:`benchmark_pairs`.  ``simulate_many`` returns the full
    #: :class:`~repro.gpu.simulator.KernelStatsArrays` batch.
    benchmark_many: Callable[..., np.ndarray] | None = None
    simulate_many: Callable[..., Any] | None = None
    #: Vectorized legality: ``legal_mask(device, params, dtype) -> bool[]``
    #: over a name->column mapping (one row per candidate config).
    legal_mask: Callable[..., np.ndarray] | None = None
    #: Array-native candidate supply:
    #: ``candidates_batch(device, shape, space=None) -> (configs, matrix)``
    #: returns the candidate list *and* its log-feature matrix in one call
    #: (vectorized enumeration / generation + shared caching behind it).
    #: Ops without one fall back to the scalar ``candidates`` generator
    #: plus a per-search ``config_matrix`` build.
    candidates_batch: Callable[..., tuple[list, np.ndarray]] | None = None
    #: Overrides :meth:`candidate_cache_key` for non-enumerable ops whose
    #: candidate set depends on the shape only through a coarser bucket
    #: (CONV: the pow2 extents its tile factorization actually reads), so
    #: searches share one candidate set across all shapes of a bucket.
    candidate_key: Callable[..., Hashable] | None = None
    #: Vectorized feature extraction over struct-of-arrays columns:
    #: ``config_matrix_from_params(params, log=True) -> ndarray``,
    #: bit-identical to ``config_matrix`` over the same configs.  Set only
    #: by ops whose config features are exactly the raw tuning parameters.
    config_matrix_from_params: Callable[..., np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> tuple[str, ...]:
        return self.config_features + self.shape_features

    @property
    def n_config_features(self) -> int:
        return len(self.config_features)

    @property
    def n_shape_features(self) -> int:
        return len(self.shape_features)

    def config_from_point(self, point) -> Any:
        """Build a config from a space point / stored dict."""
        return self.config_type.from_dict(point)

    def encode(self, cfg, shape, log: bool = True) -> np.ndarray:
        """Full feature vector for one (config, shape) pair."""
        return np.concatenate(
            [
                self.config_matrix([cfg], log)[0],
                self.shape_vector(shape, log),
            ]
        )

    def benchmark_pairs(
        self,
        device: DeviceSpec,
        cfgs,
        shapes,
        *,
        reps: int = 1,
        sigma: float | None = None,
    ) -> np.ndarray:
        """Measured TFLOPS for N (config, shape) pairs; NaN marks illegal pairs.

        Dispatches to the op's registered ``benchmark_many`` array core
        when present; otherwise loops over the scalar ``benchmark`` so
        every op — including externally registered ones — supports the
        batched offline pipeline.  Results are bit-identical between the
        two paths (the array cores guarantee it; the parity tests enforce
        it).
        """
        from repro.gpu.noise import DEFAULT_SIGMA
        from repro.gpu.simulator import IllegalKernelError

        if len(cfgs) != len(shapes):
            raise ValueError(f"{len(cfgs)} configs vs {len(shapes)} shapes")
        sigma = DEFAULT_SIGMA if sigma is None else sigma
        if self.benchmark_many is not None:
            return self.benchmark_many(
                device, cfgs, shapes, reps=reps, sigma=sigma
            )
        out = np.empty(len(cfgs))
        for i, (cfg, shape) in enumerate(zip(cfgs, shapes)):
            try:
                out[i] = self.benchmark(
                    device, cfg, shape, reps=reps, sigma=sigma
                )
            except IllegalKernelError:
                out[i] = np.nan
        return out

    def candidate_cache_key(
        self, device: DeviceSpec, shape, space: ParamSpace | None = None
    ) -> Hashable:
        """Key under which a search may cache this shape's candidate set."""
        if self.enumerable:
            sp = space or self.space
            return (self.name, device.name, shape.dtype.name, sp.name)
        if self.candidate_key is not None:
            return self.candidate_key(device, shape, space)
        return (self.name, device.name, shape)

    def profile_key(self, device_name: str, shape) -> str:
        """Filesystem-cache key for one tuned (device, shape) entry."""
        return f"{self.name}|{device_name}|{self.shape_key(shape)}"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, OpSpec] = {}


def register_op(spec: OpSpec, *, replace: bool = False) -> OpSpec:
    """Register ``spec`` under ``spec.name``; returns it for chaining."""
    if not spec.name:
        raise ValueError("OpSpec.name must be non-empty")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"op {spec.name!r} is already registered (pass replace=True "
            "to override)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_op(name: str) -> None:
    """Remove an op (mainly for tests registering throwaway specs)."""
    _REGISTRY.pop(name, None)


def get_op(op: str | OpSpec) -> OpSpec:
    """Resolve an op name (or pass an :class:`OpSpec` through)."""
    if isinstance(op, OpSpec):
        return op
    spec = _REGISTRY.get(op)
    if spec is None:
        raise ValueError(
            f"unknown op {op!r}; registered: {sorted(_REGISTRY)}"
        )
    return spec


def registered_ops() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# Built-in specs
# ----------------------------------------------------------------------

def _gemm_candidates(device: DeviceSpec, shape, space=None) -> list:
    from repro.inference.search import legal_configs

    return legal_configs(device, shape.dtype, "gemm", space)[0]


def _gemm_candidates_batch(
    device: DeviceSpec, shape, space=None
) -> tuple[list, np.ndarray]:
    from repro.inference.search import legal_configs

    return legal_configs(device, shape.dtype, "gemm", space)


def _conv_candidates(device: DeviceSpec, shape, space=None) -> list:
    from repro.inference.conv_search import conv_candidates

    return conv_candidates(device, shape)


def _conv_candidates_batch(
    device: DeviceSpec, shape, space=None
) -> tuple[list, np.ndarray]:
    from repro.inference.conv_search import conv_candidates_batch

    return conv_candidates_batch(device, shape)


def _conv_candidate_key(device: DeviceSpec, shape, space=None) -> Hashable:
    from repro.inference.conv_search import conv_bucket_key

    return conv_bucket_key(device, shape)


def _params_matrix(feature_names: tuple[str, ...]) -> Callable:
    from repro.sampling.features import config_matrix_from_params

    def build(params, log: bool = True) -> np.ndarray:
        return config_matrix_from_params(params, feature_names, log)

    return build


def _make_gemm_spec() -> OpSpec:
    from repro.core.config import GemmConfig
    from repro.core.legality import gemm_legal_mask, is_legal_gemm
    from repro.core.types import GemmShape
    from repro.gpu.simulator import (
        benchmark_gemm,
        benchmark_gemm_many,
        simulate_gemm,
        simulate_gemm_many,
    )
    from repro.sampling.features import (
        GEMM_CONFIG_FEATURES,
        GEMM_SHAPE_FEATURES,
        gemm_config_matrix,
        gemm_shape_vector,
    )

    def shape_key(shape: GemmShape) -> str:
        return (
            f"{shape.m}x{shape.n}x{shape.k}"
            f"|{shape.dtype.name}|{shape.layout_code}"
        )

    def make_shape_sampler(dtypes):
        from repro.sampling.dataset import GemmShapeSampler

        return GemmShapeSampler(dtypes=tuple(dtypes))

    return OpSpec(
        name="gemm",
        shape_type=GemmShape,
        config_type=GemmConfig,
        space=GEMM_SPACE,
        default_dtypes=(DType.FP32, DType.FP16, DType.FP64),
        config_features=GEMM_CONFIG_FEATURES,
        shape_features=GEMM_SHAPE_FEATURES,
        is_legal=is_legal_gemm,
        config_matrix=gemm_config_matrix,
        shape_vector=gemm_shape_vector,
        candidates=_gemm_candidates,
        simulate=simulate_gemm,
        benchmark=benchmark_gemm,
        make_shape_sampler=make_shape_sampler,
        shape_key=shape_key,
        enumerable=True,
        benchmark_many=benchmark_gemm_many,
        simulate_many=simulate_gemm_many,
        legal_mask=gemm_legal_mask,
        candidates_batch=_gemm_candidates_batch,
        config_matrix_from_params=_params_matrix(GEMM_CONFIG_FEATURES),
    )


def _make_conv_spec() -> OpSpec:
    from repro.core.config import ConvConfig
    from repro.core.legality import conv_legal_mask, is_legal_conv
    from repro.core.types import ConvShape
    from repro.gpu.simulator import (
        benchmark_conv,
        benchmark_conv_many,
        simulate_conv,
        simulate_conv_many,
    )
    from repro.sampling.features import (
        CONV_CONFIG_FEATURES,
        CONV_SHAPE_FEATURES,
        conv_config_matrix,
        conv_shape_vector,
    )

    def shape_key(shape: ConvShape) -> str:
        return (
            f"n{shape.n}c{shape.c}h{shape.h}w{shape.w}"
            f"k{shape.k}r{shape.r}s{shape.s}|{shape.dtype.name}"
        )

    def make_shape_sampler(dtypes):
        from repro.sampling.dataset import ConvShapeSampler

        return ConvShapeSampler(dtypes=tuple(dtypes))

    return OpSpec(
        name="conv",
        shape_type=ConvShape,
        config_type=ConvConfig,
        space=CONV_SPACE,
        default_dtypes=(DType.FP32, DType.FP16),
        config_features=CONV_CONFIG_FEATURES,
        shape_features=CONV_SHAPE_FEATURES,
        is_legal=is_legal_conv,
        config_matrix=conv_config_matrix,
        shape_vector=conv_shape_vector,
        candidates=_conv_candidates,
        simulate=simulate_conv,
        benchmark=benchmark_conv,
        make_shape_sampler=make_shape_sampler,
        shape_key=shape_key,
        enumerable=False,
        benchmark_many=benchmark_conv_many,
        simulate_many=simulate_conv_many,
        legal_mask=conv_legal_mask,
        candidates_batch=_conv_candidates_batch,
        candidate_key=_conv_candidate_key,
        config_matrix_from_params=_params_matrix(CONV_CONFIG_FEATURES),
    )


def _make_bgemm_spec() -> OpSpec:
    """Strided-batched GEMM: the registry's proof that new ops plug in.

    Reuses the GEMM tuning space, legality and config features; the shape
    side adds the batch extent, and the simulator comes from
    :mod:`repro.core.batched` (one launch whose grid covers every batch
    element).
    """
    from repro.core.batched import (
        BatchedGemmShape,
        benchmark_batched_gemm,
        benchmark_bgemm_many,
        simulate_batched_gemm,
        simulate_bgemm_many,
    )
    from repro.core.config import GemmConfig
    from repro.core.legality import gemm_legal_mask, is_legal_gemm
    from repro.sampling.features import (
        BGEMM_SHAPE_FEATURES,
        GEMM_CONFIG_FEATURES,
        bgemm_shape_vector,
        gemm_config_matrix,
    )

    def shape_key(shape: BatchedGemmShape) -> str:
        base = shape.base
        return (
            f"b{shape.batch}|{base.m}x{base.n}x{base.k}"
            f"|{base.dtype.name}|{base.layout_code}"
        )

    def make_shape_sampler(dtypes):
        from repro.sampling.dataset import BatchedGemmShapeSampler

        return BatchedGemmShapeSampler(dtypes=tuple(dtypes))

    return OpSpec(
        name="bgemm",
        shape_type=BatchedGemmShape,
        config_type=GemmConfig,
        space=GEMM_SPACE,
        default_dtypes=(DType.FP32, DType.FP16),
        config_features=GEMM_CONFIG_FEATURES,
        shape_features=BGEMM_SHAPE_FEATURES,
        is_legal=is_legal_gemm,
        config_matrix=gemm_config_matrix,
        shape_vector=bgemm_shape_vector,
        candidates=_gemm_candidates,
        simulate=simulate_batched_gemm,
        benchmark=benchmark_batched_gemm,
        make_shape_sampler=make_shape_sampler,
        shape_key=shape_key,
        enumerable=True,
        benchmark_many=benchmark_bgemm_many,
        simulate_many=simulate_bgemm_many,
        legal_mask=gemm_legal_mask,
        candidates_batch=_gemm_candidates_batch,
        config_matrix_from_params=_params_matrix(GEMM_CONFIG_FEATURES),
    )


register_op(_make_gemm_spec())
register_op(_make_conv_spec())
register_op(_make_bgemm_spec())
