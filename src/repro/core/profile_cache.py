"""Filesystem cache of inferred kernels (paper §6).

"The resulting predictions may be used directly in applications where this
latency would be negligible (e.g., Deep Learning), cached on the
filesystem, or even used as a kernel generation backend..."  This module is
that cache: a JSON file mapping (device, op, input parameters) to the
chosen tuning parameters and their measured performance.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, DType, GemmShape


@dataclass(frozen=True)
class CachedKernel:
    config_dict: dict
    measured_tflops: float


def _gemm_key(device_name: str, shape: GemmShape) -> str:
    return (
        f"gemm|{device_name}|{shape.m}x{shape.n}x{shape.k}"
        f"|{shape.dtype.name}|{shape.layout_code}"
    )


def _conv_key(device_name: str, shape: ConvShape) -> str:
    return (
        f"conv|{device_name}|n{shape.n}c{shape.c}h{shape.h}w{shape.w}"
        f"k{shape.k}r{shape.r}s{shape.s}|{shape.dtype.name}"
    )


class ProfileCache:
    """A JSON-backed map from problem descriptions to tuned kernels."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._data: dict[str, dict] = {}
        if self._path.exists():
            self._data = json.loads(self._path.read_text())

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    def get_gemm(
        self, device_name: str, shape: GemmShape
    ) -> tuple[GemmConfig, float] | None:
        entry = self._data.get(_gemm_key(device_name, shape))
        if entry is None:
            return None
        return GemmConfig.from_dict(entry["config"]), entry["tflops"]

    def put_gemm(
        self,
        device_name: str,
        shape: GemmShape,
        cfg: GemmConfig,
        tflops: float,
    ) -> None:
        self._data[_gemm_key(device_name, shape)] = {
            "config": cfg.as_dict(),
            "tflops": tflops,
        }

    def get_conv(
        self, device_name: str, shape: ConvShape
    ) -> tuple[ConvConfig, float] | None:
        entry = self._data.get(_conv_key(device_name, shape))
        if entry is None:
            return None
        return ConvConfig.from_dict(entry["config"]), entry["tflops"]

    def put_conv(
        self,
        device_name: str,
        shape: ConvShape,
        cfg: ConvConfig,
        tflops: float,
    ) -> None:
        self._data[_conv_key(device_name, shape)] = {
            "config": cfg.as_dict(),
            "tflops": tflops,
        }

    # ------------------------------------------------------------------
    def save(self) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.write_text(json.dumps(self._data, indent=1, sort_keys=True))
