"""Filesystem cache of inferred kernels (paper §6).

"The resulting predictions may be used directly in applications where this
latency would be negligible (e.g., Deep Learning), cached on the
filesystem, or even used as a kernel generation backend..."  This module is
that cache: a JSON file mapping (device, op, input parameters) to the
chosen tuning parameters and their measured performance.

Keys and config (de)serialization come from the op's
:class:`~repro.core.ops.OpSpec`, so every registered operation gets
persistence for free; ``get_gemm``-style helpers remain as thin shims.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core import integrity
from repro.core.ops import OpSpec, get_op


def _inject(site: str, path: Path | None = None) -> None:
    """Fault-injection checkpoint (lazy import keeps core/ -> service/ soft)."""
    from repro.service.faults import inject

    inject(site, path)


@dataclass(frozen=True)
class CachedKernel:
    config_dict: dict
    measured_tflops: float


class ProfileCache:
    """A JSON-backed map from problem descriptions to tuned kernels.

    A cache file that fails its digest check or no longer parses is
    quarantined (``*.corrupt-<digest8>``) and the cache starts empty —
    a corrupt profile cache costs re-searches, never a failed boot.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._data: dict[str, dict] = {}
        if self._path.exists():
            _inject("profile_cache.load", self._path)
            if integrity.check(self._path) is False:
                self._quarantine("failed its integrity check")
                return
            try:
                self._data = json.loads(self._path.read_text())
            except (OSError, ValueError):
                self._data = {}
                self._quarantine("is not valid JSON")

    def _quarantine(self, why: str) -> None:
        import warnings

        target = integrity.quarantine(self._path)
        warnings.warn(
            f"profile cache {self._path} {why}; quarantined to "
            f"{target.name} and starting empty",
            stacklevel=3,
        )

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    def get(
        self, op: str | OpSpec, device_name: str, shape
    ) -> tuple[object, float] | None:
        """Cached (config, measured TFLOPS) for one problem, or None."""
        spec = get_op(op)
        entry = self._data.get(spec.profile_key(device_name, shape))
        if entry is None:
            return None
        return spec.config_from_point(entry["config"]), entry["tflops"]

    def put(
        self,
        op: str | OpSpec,
        device_name: str,
        shape,
        cfg,
        tflops: float,
    ) -> None:
        spec = get_op(op)
        self._data[spec.profile_key(device_name, shape)] = {
            "config": cfg.as_dict(),
            "tflops": tflops,
        }

    # ------------------------------------------------------------------
    # Back-compat shims
    # ------------------------------------------------------------------
    def get_gemm(self, device_name: str, shape):
        return self.get("gemm", device_name, shape)

    def put_gemm(self, device_name: str, shape, cfg, tflops: float) -> None:
        self.put("gemm", device_name, shape, cfg, tflops)

    def get_conv(self, device_name: str, shape):
        return self.get("conv", device_name, shape)

    def put_conv(self, device_name: str, shape, cfg, tflops: float) -> None:
        self.put("conv", device_name, shape, cfg, tflops)

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Atomically persist: a crash mid-save never corrupts the file."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self._data, indent=1, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self._path.parent, prefix=self._path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            # mkstemp creates 0600 files; keep the destination's mode (or
            # the umask default) so a shared cache stays shared.
            try:
                mode = os.stat(self._path).st_mode & 0o777
            except FileNotFoundError:
                umask = os.umask(0)
                os.umask(umask)
                mode = 0o666 & ~umask
            os.chmod(tmp, mode)
            os.replace(tmp, self._path)
            integrity.write_digest(self._path)
            _inject("profile_cache.save", self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
