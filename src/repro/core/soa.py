"""Struct-of-arrays views of (config, shape) batches.

The batched simulator evaluates N ``(config, shape)`` pairs per call.  Its
array cores want columns, not objects: one int64 array per tuning parameter
and per shape extent.  These containers are the single conversion point —
``from_pairs`` walks the Python objects once, everything downstream is
vectorized numpy.

``dsize`` (element bytes: 2/4/8) doubles as the dtype code: it uniquely
identifies fp16/fp32/fp64 and is exactly what the resource, traffic and
throughput models key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, GemmShape


def _column(objs: Sequence, attr: str) -> np.ndarray:
    return np.array([getattr(o, attr) for o in objs], dtype=np.int64)


@dataclass(frozen=True)
class GemmPairArrays:
    """Parallel columns for N (GemmConfig, GemmShape) pairs."""

    # Tuning parameters (Figure 3's blue parameters).
    ms: np.ndarray
    ns: np.ndarray
    ml: np.ndarray
    nl: np.ndarray
    u: np.ndarray
    ks: np.ndarray
    kl: np.ndarray
    kg: np.ndarray
    vec: np.ndarray
    db: np.ndarray
    # Input parameters.
    m: np.ndarray
    n: np.ndarray
    k: np.ndarray
    dsize: np.ndarray
    ta: np.ndarray            # bool
    tb: np.ndarray            # bool

    def __len__(self) -> int:
        return len(self.ms)

    @classmethod
    def from_pairs(
        cls,
        cfgs: Sequence[GemmConfig],
        shapes: Sequence[GemmShape],
    ) -> "GemmPairArrays":
        if len(cfgs) != len(shapes):
            raise ValueError(
                f"{len(cfgs)} configs vs {len(shapes)} shapes"
            )
        cols = {p: _column(cfgs, p) for p in GemmConfig.param_names()}
        return cls(
            **cols,
            m=_column(shapes, "m"),
            n=_column(shapes, "n"),
            k=_column(shapes, "k"),
            dsize=np.array([s.dtype.size for s in shapes], dtype=np.int64),
            ta=np.array([s.ta for s in shapes], dtype=bool),
            tb=np.array([s.tb for s in shapes], dtype=bool),
        )

    @property
    def threads(self) -> np.ndarray:
        """Threads per block (``GemmConfig.threads``), per pair."""
        return (self.ml // self.ms) * (self.nl // self.ns) * self.kl

    def config_params(self) -> dict[str, np.ndarray]:
        """The tuning-parameter columns, keyed like a space point."""
        return {p: getattr(self, p) for p in GemmConfig.param_names()}


@dataclass(frozen=True)
class ConvPairArrays:
    """Parallel columns for N (ConvConfig, ConvShape) pairs."""

    kt: np.ndarray
    pt: np.ndarray
    qt: np.ndarray
    nt: np.ndarray
    kb: np.ndarray
    pb: np.ndarray
    qb: np.ndarray
    nb: np.ndarray
    u: np.ndarray
    cs: np.ndarray
    cl: np.ndarray
    cg: np.ndarray
    vec: np.ndarray
    db: np.ndarray
    # Input parameters (p/q/crs pre-derived from the shape objects).
    n: np.ndarray
    c: np.ndarray
    k: np.ndarray
    r: np.ndarray
    s: np.ndarray
    p: np.ndarray
    q: np.ndarray
    crs: np.ndarray
    dsize: np.ndarray

    def __len__(self) -> int:
        return len(self.kt)

    @classmethod
    def from_pairs(
        cls,
        cfgs: Sequence[ConvConfig],
        shapes: Sequence[ConvShape],
    ) -> "ConvPairArrays":
        if len(cfgs) != len(shapes):
            raise ValueError(
                f"{len(cfgs)} configs vs {len(shapes)} shapes"
            )
        cols = {p: _column(cfgs, p) for p in ConvConfig.param_names()}
        return cls(
            **cols,
            n=_column(shapes, "n"),
            c=_column(shapes, "c"),
            k=_column(shapes, "k"),
            r=_column(shapes, "r"),
            s=_column(shapes, "s"),
            p=_column(shapes, "p"),
            q=_column(shapes, "q"),
            crs=_column(shapes, "crs"),
            dsize=np.array([s.dtype.size for s in shapes], dtype=np.int64),
        )

    @property
    def threads(self) -> np.ndarray:
        return (
            (self.kb // self.kt)
            * (self.pb // self.pt)
            * (self.qb // self.qt)
            * (self.nb // self.nt)
            * self.cl
        )

    @property
    def block_m(self) -> np.ndarray:
        return self.nb * self.pb * self.qb

    @property
    def block_n(self) -> np.ndarray:
        return self.kb

    @property
    def thread_m(self) -> np.ndarray:
        return self.nt * self.pt * self.qt

    @property
    def thread_n(self) -> np.ndarray:
        return self.kt

    def config_params(self) -> dict[str, np.ndarray]:
        return {p: getattr(self, p) for p in ConvConfig.param_names()}
