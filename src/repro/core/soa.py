"""Struct-of-arrays views of (config, shape) batches.

The batched simulator evaluates N ``(config, shape)`` pairs per call.  Its
array cores want columns, not objects: one int64 array per tuning parameter
and per shape extent.  These containers are the single conversion point —
``from_pairs`` walks the Python objects once, everything downstream is
vectorized numpy.

``dsize`` (element bytes: 2/4/8) doubles as the dtype code: it uniquely
identifies fp16/fp32/fp64 and is exactly what the resource, traffic and
throughput models key on.
"""

from __future__ import annotations

from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, GemmShape


def _column(objs: Sequence, attr: str) -> np.ndarray:
    return np.array([getattr(o, attr) for o in objs], dtype=np.int64)


def config_columns(
    configs: Sequence, param_names: tuple[str, ...] | None = None
) -> dict[str, np.ndarray]:
    """Tuning-parameter columns (one int64 array each) for N configs.

    The inverse of :func:`configs_from_columns`; used when a candidate set
    produced by the scalar path must be persisted in array form.
    """
    if param_names is None:
        param_names = type(configs[0]).param_names()
    return {n: _column(configs, n) for n in param_names}


def configs_from_columns(
    config_type: type, params: dict[str, np.ndarray]
) -> list:
    """Materialize config objects from struct-of-arrays columns.

    Columns are consumed in ``param_names`` (= dataclass field) order, so
    the positional constructor applies; ``tolist`` hands the constructor
    native ints.  Row ``i`` equals ``config_type.from_dict(point_i)`` for
    the corresponding space point.
    """
    names = config_type.param_names()
    cols = [np.asarray(params[n]).tolist() for n in names]
    return [config_type(*row) for row in zip(*cols)]


class LazyConfigList(_SequenceABC):
    """An immutable config sequence materialized per index from columns.

    A candidate set can run to ~10^5 rows, but the runtime search only
    ever *touches* its top-k slice — building every frozen dataclass up
    front costs more than the whole vectorized enumeration.  This view
    keeps the struct-of-arrays columns (shared with the cache record, no
    copy) and constructs a config exactly when one is indexed.  Equality
    against any sequence compares element-wise, so parity tests see a
    plain list of configs.
    """

    __slots__ = ("_type", "_cols", "_items")

    def __init__(self, config_type: type, params: dict[str, np.ndarray]):
        self._type = config_type
        self._cols = tuple(
            np.asarray(params[n]) for n in config_type.param_names()
        )
        self._items: list | None = None

    def __len__(self) -> int:
        return len(self._cols[0]) if self._cols else 0

    def __getitem__(self, i):
        if self._items is not None:
            return self._items[i]
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        return self._type(*(int(c[i]) for c in self._cols))

    def __iter__(self):
        # Full traversals (feature builds, filters, parity compares) are
        # memoized so repeat passes don't reconstruct every object;
        # point lookups above stay allocation-free.
        if self._items is None:
            cols = [c.tolist() for c in self._cols]
            self._items = [self._type(*row) for row in zip(*cols)]
        return iter(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, _SequenceABC):
            return NotImplemented
        return len(self) == len(other) and all(
            a == b for a, b in zip(self, other)
        )

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None  # mutable-compare semantics, like list

    def __repr__(self) -> str:
        return (
            f"LazyConfigList({self._type.__name__}, n={len(self)})"
        )


# ----------------------------------------------------------------------
# Zero-copy column sharing across processes
# ----------------------------------------------------------------------

#: numpy requires 16-byte alignment for float64 views over raw buffers to
#: stay fast; every array in a pack starts on this boundary.
_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayPack:
    """Many named numpy arrays in one ``multiprocessing.shared_memory`` block.

    The worker tier must hand each process the candidate state — survivor
    columns, log-feature matrices, prescaled first-layer terms; ~160k rows
    per enumeration — without a per-process copy.  ``create`` lays every
    array out back-to-back (64-byte aligned) in a single segment and
    returns a picklable *manifest* ``{name: (dtype_str, shape, offset)}``;
    ``attach`` reopens the segment by name in another process and rebuilds
    **read-only views** over the same physical pages.  One segment for the
    whole state keeps the fd/page-table footprint constant in the number
    of records.

    Lifecycle: the creator owns the segment and must call :meth:`unlink`
    exactly once (attachers only :meth:`close`).  On Python < 3.13
    attaching registers the segment with the process's resource tracker,
    which would unlink it when the *attacher* exits — :meth:`attach`
    unregisters to keep ownership with the creator.
    """

    def __init__(self, shm, manifest: dict[str, tuple[str, tuple, int]],
                 *, owner: bool):
        self._shm = shm
        self.manifest = manifest
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayPack":
        """Copy ``arrays`` into one fresh shared segment (the only copy)."""
        from multiprocessing import shared_memory

        manifest: dict[str, tuple[str, tuple, int]] = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            manifest[name] = (arr.dtype.str, arr.shape, offset)
            offset = _aligned(offset + arr.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            dtype_str, shape, off = manifest[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype_str),
                              buffer=shm.buf, offset=off)
            view[...] = arr
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(
        cls, name: str, manifest: dict[str, tuple[str, tuple, int]]
    ) -> "SharedArrayPack":
        """Reopen a segment created elsewhere; see :meth:`views`."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            # Keep unlink ownership with the creator (see class docstring).
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(shm, dict(manifest), owner=False)

    # ------------------------------------------------------------------
    def view(self, name: str) -> np.ndarray:
        """A zero-copy (read-only) array over the shared pages."""
        dtype_str, shape, offset = self.manifest[name]
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str),
                         buffer=self._shm.buf, offset=offset)
        arr.flags.writeable = False
        return arr

    def views(self) -> dict[str, np.ndarray]:
        return {name: self.view(name) for name in self.manifest}

    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only); idempotent."""
        self.close()
        if not self._owner:
            return
        self._owner = False
        try:
            # Spawned attachers share this process's resource tracker, so
            # their :meth:`attach`-time unregister removed *our* entry;
            # re-register (set-add, idempotent) so the unregister inside
            # ``unlink`` balances instead of logging a KeyError.
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass(frozen=True)
class GemmPairArrays:
    """Parallel columns for N (GemmConfig, GemmShape) pairs."""

    # Tuning parameters (Figure 3's blue parameters).
    ms: np.ndarray
    ns: np.ndarray
    ml: np.ndarray
    nl: np.ndarray
    u: np.ndarray
    ks: np.ndarray
    kl: np.ndarray
    kg: np.ndarray
    vec: np.ndarray
    db: np.ndarray
    # Input parameters.
    m: np.ndarray
    n: np.ndarray
    k: np.ndarray
    dsize: np.ndarray
    ta: np.ndarray            # bool
    tb: np.ndarray            # bool

    def __len__(self) -> int:
        return len(self.ms)

    @classmethod
    def from_pairs(
        cls,
        cfgs: Sequence[GemmConfig],
        shapes: Sequence[GemmShape],
    ) -> "GemmPairArrays":
        if len(cfgs) != len(shapes):
            raise ValueError(
                f"{len(cfgs)} configs vs {len(shapes)} shapes"
            )
        cols = {p: _column(cfgs, p) for p in GemmConfig.param_names()}
        return cls(
            **cols,
            m=_column(shapes, "m"),
            n=_column(shapes, "n"),
            k=_column(shapes, "k"),
            dsize=np.array([s.dtype.size for s in shapes], dtype=np.int64),
            ta=np.array([s.ta for s in shapes], dtype=bool),
            tb=np.array([s.tb for s in shapes], dtype=bool),
        )

    @property
    def threads(self) -> np.ndarray:
        """Threads per block (``GemmConfig.threads``), per pair."""
        return (self.ml // self.ms) * (self.nl // self.ns) * self.kl

    def config_params(self) -> dict[str, np.ndarray]:
        """The tuning-parameter columns, keyed like a space point."""
        return {p: getattr(self, p) for p in GemmConfig.param_names()}


@dataclass(frozen=True)
class ConvPairArrays:
    """Parallel columns for N (ConvConfig, ConvShape) pairs."""

    kt: np.ndarray
    pt: np.ndarray
    qt: np.ndarray
    nt: np.ndarray
    kb: np.ndarray
    pb: np.ndarray
    qb: np.ndarray
    nb: np.ndarray
    u: np.ndarray
    cs: np.ndarray
    cl: np.ndarray
    cg: np.ndarray
    vec: np.ndarray
    db: np.ndarray
    # Input parameters (p/q/crs pre-derived from the shape objects).
    n: np.ndarray
    c: np.ndarray
    k: np.ndarray
    r: np.ndarray
    s: np.ndarray
    p: np.ndarray
    q: np.ndarray
    crs: np.ndarray
    dsize: np.ndarray

    def __len__(self) -> int:
        return len(self.kt)

    @classmethod
    def from_pairs(
        cls,
        cfgs: Sequence[ConvConfig],
        shapes: Sequence[ConvShape],
    ) -> "ConvPairArrays":
        if len(cfgs) != len(shapes):
            raise ValueError(
                f"{len(cfgs)} configs vs {len(shapes)} shapes"
            )
        cols = {p: _column(cfgs, p) for p in ConvConfig.param_names()}
        return cls(
            **cols,
            n=_column(shapes, "n"),
            c=_column(shapes, "c"),
            k=_column(shapes, "k"),
            r=_column(shapes, "r"),
            s=_column(shapes, "s"),
            p=_column(shapes, "p"),
            q=_column(shapes, "q"),
            crs=_column(shapes, "crs"),
            dsize=np.array([s.dtype.size for s in shapes], dtype=np.int64),
        )

    @property
    def threads(self) -> np.ndarray:
        return (
            (self.kb // self.kt)
            * (self.pb // self.pt)
            * (self.qb // self.qt)
            * (self.nb // self.nt)
            * self.cl
        )

    @property
    def block_m(self) -> np.ndarray:
        return self.nb * self.pb * self.qb

    @property
    def block_n(self) -> np.ndarray:
        return self.kb

    @property
    def thread_m(self) -> np.ndarray:
        return self.nt * self.pt * self.qt

    @property
    def thread_n(self) -> np.ndarray:
        return self.kt

    def config_params(self) -> dict[str, np.ndarray]:
        return {p: getattr(self, p) for p in ConvConfig.param_names()}
