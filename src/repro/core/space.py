"""Tuning-parameter spaces: the paper's X̂ (possible) and X (legal) sets.

A :class:`ParamSpace` names each tuning parameter and the candidate values it
may take (powers of two, per §4.2 of the paper).  ``X̂`` is the cartesian
product of these value sets; the *legal* subset ``X`` is carved out by
:mod:`repro.core.legality` and depends on the device and data-type.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.core.config import ConvConfig, GemmConfig


@dataclass(frozen=True)
class ParamSpace:
    """An ordered mapping ``parameter name -> tuple of candidate values``."""

    name: str
    params: tuple[tuple[str, tuple[int, ...]], ...]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.params)

    def values(self, param: str) -> tuple[int, ...]:
        for n, v in self.params:
            if n == param:
                return v
        raise KeyError(f"{self.name}: unknown parameter {param!r}")

    @property
    def size(self) -> int:
        """Cardinality of X̂ — the unconstrained product space."""
        total = 1
        for _, vals in self.params:
            total *= len(vals)
        return total

    def iter_points(self) -> Iterator[dict[str, int]]:
        """Enumerate every point of X̂ as a name->value dict."""
        names = self.names
        for combo in itertools.product(*(v for _, v in self.params)):
            yield dict(zip(names, combo))

    def grid(self) -> dict[str, np.ndarray]:
        """The full X̂ as struct-of-arrays columns, one int64 array per
        parameter, in exactly :meth:`iter_points` order (row-major product).

        This is the array-native form the vectorized candidate pipeline
        consumes: ``spec.legal_mask`` filters all of X̂ in one call instead
        of one ``is_legal`` per point.
        """
        arrays = np.meshgrid(
            *(np.asarray(v, dtype=np.int64) for _, v in self.params),
            indexing="ij",
        )
        return {n: a.reshape(-1) for n, a in zip(self.names, arrays)}

    def contains(self, point: Mapping[str, int]) -> bool:
        return all(point.get(n) in vals for n, vals in self.params)


def _pows2(lo: int, hi: int) -> tuple[int, ...]:
    out = []
    v = lo
    while v <= hi:
        out.append(v)
        v *= 2
    return tuple(out)


#: GEMM tuning space — 10 parameters (§4: "there are 10 tuning parameters").
GEMM_SPACE = ParamSpace(
    name="gemm",
    params=(
        ("ms", _pows2(1, 16)),
        ("ns", _pows2(1, 16)),
        ("ml", _pows2(16, 256)),
        ("nl", _pows2(16, 256)),
        ("u", _pows2(1, 32)),
        ("ks", _pows2(1, 4)),
        ("kl", _pows2(1, 8)),
        ("kg", _pows2(1, 64)),
        ("vec", _pows2(1, 4)),
        ("db", (1, 2)),
    ),
)

#: CONV tuning space (§3.3): five tiled dimensions plus CS/CL/CG, U, vec, db.
CONV_SPACE = ParamSpace(
    name="conv",
    params=(
        ("kt", _pows2(1, 8)),
        ("pt", _pows2(1, 4)),
        ("qt", _pows2(1, 4)),
        ("nt", _pows2(1, 4)),
        ("kb", _pows2(8, 128)),
        ("pb", _pows2(1, 16)),
        ("qb", _pows2(1, 16)),
        ("nb", _pows2(1, 32)),
        ("u", _pows2(1, 32)),
        ("cs", _pows2(1, 4)),
        ("cl", _pows2(1, 8)),
        ("cg", _pows2(1, 32)),
        ("vec", _pows2(1, 4)),
        ("db", (1, 2)),
    ),
)


def table1_space(base: ParamSpace) -> ParamSpace:
    """The paper's Table 1 protocol: every parameter a power of two in [1, 16].

    This is the setting in which the paper measures 0.1% uniform acceptance
    vs ~20% for the categorical model — a much smaller and harsher space
    than the production tuning space, because block tiles as small as 1
    make the thread-count and divisibility constraints bind almost always.
    """
    # db keeps its boolean domain; everything else spans {1, 2, 4, 8, 16}.
    params = tuple(
        (name, vals if name == "db" else _pows2(1, 16))
        for name, vals in base.params
    )
    return ParamSpace(name=f"{base.name}-table1", params=params)


def gemm_config_from_point(point: Mapping[str, int]) -> GemmConfig:
    return GemmConfig.from_dict(point)


def conv_config_from_point(point: Mapping[str, int]) -> ConvConfig:
    return ConvConfig.from_dict(point)


def enumerate_legal(
    space: ParamSpace,
    make_config: Callable[[Mapping[str, int]], object],
    is_legal: Callable[[object], bool],
    limit: int | None = None,
) -> list[object]:
    """Exhaustively enumerate X = {x in X̂ : legal(x)}.

    ``limit`` bounds the number of returned configs (useful in tests); the
    full GEMM space enumerates in a few seconds and is cached by callers.
    """
    out: list[object] = []
    for point in space.iter_points():
        cfg = make_config(point)
        if is_legal(cfg):
            out.append(cfg)
            if limit is not None and len(out) >= limit:
                break
    return out
