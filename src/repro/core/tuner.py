"""ISAAC: the end-to-end input-aware auto-tuner (paper Figure 1).

One :class:`Isaac` instance owns the whole pipeline for one device and one
operation:

1. *data generation* — fit the categorical generative model, benchmark
   random legal kernels on the (simulated) device;
2. *regression analysis* — train the MLP on log-transformed features;
3. *runtime inference* — exhaustive model search over tuning parameters
   for the user's input parameters, then top-k re-ranking on the device.

The operation is any name registered with the
:mod:`~repro.core.ops` registry — ``gemm``, ``conv``, ``bgemm`` out of the
box — so new kernels plug into the tuner without modifying it.  The tuned
mapping ``input parameters -> kernel`` can be persisted through
:class:`~repro.core.profile_cache.ProfileCache`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ops import OpSpec, get_op
from repro.core.profile_cache import ProfileCache
from repro.core.types import DType
from repro.gpu.device import DeviceSpec
from repro.inference.search import ExhaustiveSearch, Prediction
from repro.inference.topk import RankedKernel, best_after_rerank
from repro.mlp.crossval import FitResult, fit_regressor
from repro.sampling.dataset import (
    Dataset,
    fit_generative_models,
    generate_dataset,
)


@dataclass
class TuneReport:
    """Summary of one offline tuning run."""

    n_samples: int
    val_mse: float
    hidden: tuple[int, ...]

    def __str__(self) -> str:
        arch = ", ".join(map(str, self.hidden))
        return (
            f"tuned on {self.n_samples} samples; "
            f"MLP[{arch}] cross-val MSE {self.val_mse:.4f}"
        )


class Isaac:
    """Input-aware auto-tuner for one device and one operation.

    Typical use::

        tuner = Isaac(TESLA_P100, op="gemm")
        tuner.tune(n_samples=20_000, seed=0)
        kernel = tuner.best_kernel(GemmShape(2560, 16, 2560))
        print(kernel.config, kernel.measured_tflops)
    """

    def __init__(
        self,
        device: DeviceSpec,
        op: str | OpSpec = "gemm",
        dtypes: Sequence[DType] | None = None,
    ):
        self.spec = get_op(op)
        self.device = device
        self.op = self.spec.name
        if dtypes is None:
            dtypes = self.spec.default_dtypes
        self.dtypes = tuple(dtypes)
        self.dataset: Dataset | None = None
        self.fit_result: FitResult | None = None
        self._search: ExhaustiveSearch | None = None

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def tune(
        self,
        n_samples: int = 20_000,
        *,
        hidden: Sequence[int] = (32, 64, 32),
        epochs: int = 40,
        val_frac: float = 0.1,
        seed: int = 0,
        patience: int = 8,
        generative_target: int = 400,
        cascade: bool = True,
    ) -> TuneReport:
        """Run data generation and regression analysis.

        ``cascade=True`` (default) additionally calibrates the two-stage
        cascade's pruning margins for the freshly trained fit, so cold
        queries serve from the shortlist path immediately.
        """
        rng = np.random.default_rng(seed)
        samplers = fit_generative_models(
            self.device,
            op=self.spec,
            dtypes=self.dtypes,
            rng=rng,
            target_accepted=generative_target,
        )
        self.dataset = generate_dataset(
            self.device,
            self.spec,
            n_samples,
            rng,
            samplers=samplers,
            dtypes=self.dtypes,
        )
        train, val = self.dataset.split(val_frac, rng)
        self.fit_result = fit_regressor(
            train.x,
            train.y,
            val.x,
            val.y,
            hidden=hidden,
            epochs=epochs,
            seed=seed,
            patience=patience,
        )
        self._search = ExhaustiveSearch(self.fit_result, self.device, self.spec)
        if cascade:
            self.calibrate_cascade(seed=seed)
        return TuneReport(
            n_samples=n_samples,
            val_mse=self.fit_result.val_mse,
            hidden=tuple(hidden),
        )

    def calibrate_cascade(
        self, *, n_shapes: int = 4, seed: int = 0, safety: float = 4.0
    ):
        """(Re)calibrate the cascade margins and attach them to the fit.

        Safe to call after an online fine-tune hot-swap: the fresh
        calibration carries the new weights' digest, re-arming the
        cascade that the swap disabled.  Deterministic for a given seed.
        """
        search = self._require_tuned()
        assert self.fit_result is not None
        calibration = search.calibrate_cascade(
            self.dtypes, n_shapes=n_shapes, seed=seed, safety=safety
        )
        self.fit_result.cascade = calibration
        return calibration

    @property
    def is_tuned(self) -> bool:
        return self._search is not None

    @property
    def searcher(self) -> ExhaustiveSearch | None:
        """The runtime search instance (None before tune/load)."""
        return self._search

    @classmethod
    def from_fit(
        cls,
        device: DeviceSpec,
        op: str | OpSpec,
        fit: FitResult,
        dtypes: Sequence[DType] | None = None,
    ) -> "Isaac":
        """A ready-for-inference tuner over an already-trained fit.

        How a worker process rebuilds its tuners from shipped fit bytes
        (and how :meth:`load` restores one from disk): no dataset, no
        training — just the regressor and a fresh exhaustive search.
        """
        tuner = cls(device, op=op, dtypes=dtypes)
        tuner.fit_result = fit
        tuner._search = ExhaustiveSearch(fit, device, tuner.spec)
        return tuner

    def _require_tuned(self) -> ExhaustiveSearch:
        if self._search is None:
            raise RuntimeError("call tune() before runtime inference")
        return self._search

    # ------------------------------------------------------------------
    # Runtime phase
    # ------------------------------------------------------------------
    def top_k(self, shape, k: int = 100) -> list[Prediction]:
        """The model's k best tuning vectors for fixed input parameters."""
        return self._require_tuned().top_k(shape, k)

    def top_k_batch(
        self, shapes: Sequence, k: int = 100
    ) -> list[list[Prediction]]:
        """Per-shape top-k for many input shapes in one model pass."""
        return self._require_tuned().top_k_batch(shapes, k)

    def best_kernel(
        self,
        shape,
        *,
        k: int = 100,
        reps: int = 3,
        cache: ProfileCache | None = None,
    ) -> RankedKernel:
        """Exhaustive model search + top-k device re-ranking (§6)."""
        if cache is not None:
            hit = cache.get(self.spec, self.device.name, shape)
            if hit is not None:
                cfg, tflops = hit
                # The cache persists only the measurement; there is no
                # model prediction to report for a cache hit.
                return RankedKernel(
                    config=cfg,
                    predicted_tflops=math.nan,
                    measured_tflops=tflops,
                    source="cache",
                )
        best = best_after_rerank(
            self.device, shape, self.top_k(shape, k), op=self.spec, reps=reps
        )
        if cache is not None:
            cache.put(
                self.spec,
                self.device.name,
                shape,
                best.config,
                best.measured_tflops,
            )
        return best

    def tflops(self, shape, *, k: int = 100, reps: int = 3) -> float:
        """Measured TFLOPS of the tuned kernel for this shape."""
        return self.best_kernel(shape, k=k, reps=reps).measured_tflops

    # ------------------------------------------------------------------
    # Persistence: ship the trained model, not the training data.
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the trained regressor (+ device/op metadata) to .npz."""
        import json
        from pathlib import Path

        from repro.mlp.serialize import save_fit

        if self.fit_result is None:
            raise RuntimeError("nothing to save — call tune() first")
        path = Path(path)
        save_fit(self.fit_result, path)
        sidecar = {
            "device": self.device.name,
            "op": self.op,
            "dtypes": [d.name for d in self.dtypes],
        }
        path.with_suffix(path.suffix + ".meta.json").write_text(
            json.dumps(sidecar)
        )
        # Integrity sidecar: lets the Engine quarantine a fit whose bytes
        # rotted on disk instead of crashing (or worse, mispredicting).
        from repro.core.integrity import write_digest

        write_digest(path)

    @classmethod
    def load(cls, path) -> "Isaac":
        """Restore a tuner saved by :meth:`save`; ready for inference."""
        import json
        from pathlib import Path

        from repro.gpu.device import get_device
        from repro.mlp.serialize import load_fit

        path = Path(path)
        sidecar = json.loads(
            path.with_suffix(path.suffix + ".meta.json").read_text()
        )
        return cls.from_fit(
            get_device(sidecar["device"]),
            sidecar["op"],
            load_fit(path),
            dtypes=tuple(DType[name] for name in sidecar["dtypes"]),
        )
