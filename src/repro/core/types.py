"""Fundamental value types shared across the ISAAC reproduction.

The paper distinguishes *input parameters* — characteristics of the problem
the user hands to the library (shapes, data-type, transposition layout) —
from *tuning parameters* (tile sizes, reduction splits).  This module defines
the input-parameter side: data-types and the GEMM / CONV problem shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DType(enum.Enum):
    """Numeric precision of a kernel's operands.

    ``value`` is the size of one element in bytes; this matches the way the
    paper's resource model (shared memory, registers, global traffic) scales
    with precision.
    """

    FP16 = 2
    FP32 = 4
    FP64 = 8

    @property
    def size(self) -> int:
        """Element size in bytes."""
        return self.value

    @property
    def short_name(self) -> str:
        return {DType.FP16: "h", DType.FP32: "s", DType.FP64: "d"}[self]

    @property
    def numpy_name(self) -> str:
        return {
            DType.FP16: "float16",
            DType.FP32: "float32",
            DType.FP64: "float64",
        }[self]

    @classmethod
    def from_name(cls, name: str) -> "DType":
        table = {
            "fp16": cls.FP16,
            "half": cls.FP16,
            "float16": cls.FP16,
            "fp32": cls.FP32,
            "single": cls.FP32,
            "float32": cls.FP32,
            "fp64": cls.FP64,
            "double": cls.FP64,
            "float64": cls.FP64,
        }
        key = name.lower()
        if key not in table:
            raise ValueError(f"unknown dtype name: {name!r}")
        return table[key]


@dataclass(frozen=True, slots=True)
class GemmShape:
    """Input parameters of a GEMM problem ``C = op(A) @ op(B)``.

    The paper's GEMM input space has six components: three extents
    ``(M, N, K)``, one data-type and two transposition layouts.  ``ta`` /
    ``tb`` follow BLAS convention: ``ta=True`` means A is stored transposed
    (a ``K x M`` buffer read as ``M x K``).
    """

    m: int
    n: int
    k: int
    dtype: DType = DType.FP32
    ta: bool = False
    tb: bool = False

    def __post_init__(self) -> None:
        for name in ("m", "n", "k"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"GemmShape.{name} must be a positive int, got {v!r}")

    @property
    def flops(self) -> int:
        """Useful floating-point operations (multiply + add counted separately)."""
        return 2 * self.m * self.n * self.k

    @property
    def bytes_moved(self) -> int:
        """Compulsory global traffic: read A and B once, write C once."""
        return (self.m * self.k + self.k * self.n + self.m * self.n) * self.dtype.size

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per compulsory byte — large values mean compute-bound."""
        return self.flops / self.bytes_moved

    @property
    def layout_code(self) -> str:
        """BLAS-style layout string, e.g. ``'NT'`` for A normal / B transposed."""
        return ("T" if self.ta else "N") + ("T" if self.tb else "N")

    def describe(self) -> str:
        return (
            f"GEMM[{self.dtype.short_name.upper()}] M={self.m} N={self.n} "
            f"K={self.k} layout={self.layout_code}"
        )


@dataclass(frozen=True, slots=True)
class ConvShape:
    """Input parameters of a multi-channel convolution (paper eq. (1)).

    ``O[k, p, q, n] = sum_{c,r,s} I[c, p+r, q+s, n] * F[c, r, s, k]``

    Dimension names follow the paper / cuDNN convention:

    * ``n`` — batch size (number of image sets)
    * ``c`` — input channels,   ``k`` — output channels (filter sets)
    * ``h x w`` — input spatial extents, ``r x s`` — filter extents
    * ``p x q`` — output spatial extents (derived)

    ``pad`` / ``stride`` generalize the paper's implicit stride-1, no-pad
    formulation; Table 5 workloads use the defaults.
    """

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int
    s: int
    dtype: DType = DType.FP32
    pad_h: int = 0
    pad_w: int = 0
    stride_h: int = 1
    stride_w: int = 1

    def __post_init__(self) -> None:
        for name in ("n", "c", "h", "w", "k", "r", "s", "stride_h", "stride_w"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"ConvShape.{name} must be a positive int, got {v!r}")
        for name in ("pad_h", "pad_w"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise ValueError(f"ConvShape.{name} must be a non-negative int, got {v!r}")
        if self.p <= 0 or self.q <= 0:
            raise ValueError("ConvShape: filter larger than (padded) image")

    @classmethod
    def from_output(
        cls,
        n: int,
        p: int,
        q: int,
        k: int,
        c: int,
        r: int,
        s: int,
        dtype: DType = DType.FP32,
    ) -> "ConvShape":
        """Build a shape from *output* extents, as Table 5 of the paper lists them.

        Assumes stride 1 and no padding, so ``H = P + R - 1``.
        """
        return cls(n=n, c=c, h=p + r - 1, w=q + s - 1, k=k, r=r, s=s, dtype=dtype)

    @property
    def p(self) -> int:
        """Output height."""
        return (self.h + 2 * self.pad_h - self.r) // self.stride_h + 1

    @property
    def q(self) -> int:
        """Output width."""
        return (self.w + 2 * self.pad_w - self.s) // self.stride_w + 1

    @property
    def npq(self) -> int:
        """Rows of the implicit-GEMM output (the paper's ``NPQ`` column)."""
        return self.n * self.p * self.q

    @property
    def crs(self) -> int:
        """Reduction extent of the implicit GEMM (the paper's ``CRS`` column)."""
        return self.c * self.r * self.s

    @property
    def flops(self) -> int:
        return 2 * self.k * self.p * self.q * self.n * self.c * self.r * self.s

    def implicit_gemm(self) -> GemmShape:
        """The (NPQ, K, CRS) matrix-multiplication this convolution reduces to."""
        return GemmShape(m=self.npq, n=self.k, k=self.crs, dtype=self.dtype)

    def describe(self) -> str:
        return (
            f"CONV[{self.dtype.short_name.upper()}] N={self.n} C={self.c} "
            f"HxW={self.h}x{self.w} K={self.k} RxS={self.r}x{self.s} "
            f"PxQ={self.p}x{self.q} (NPQ={self.npq}, CRS={self.crs})"
        )


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; the workhorse of every tiling computation."""
    if b <= 0:
        raise ValueError(f"ceil_div: divisor must be positive, got {b}")
    return -(-a // b)


def round_up(a: int, b: int) -> int:
    """Round ``a`` up to the next multiple of ``b``."""
    return ceil_div(a, b) * b


def is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def log2_int(x: int) -> int:
    if not is_pow2(x):
        raise ValueError(f"log2_int: {x} is not a power of two")
    return x.bit_length() - 1
