"""Device specifications for the simulated GPUs (paper Table 3).

The paper evaluates on a consumer Maxwell part (GTX 980 TI / GM200) and a
server Pascal part (Tesla P100 / GP100).  We reproduce both as
:class:`DeviceSpec` instances: the public columns of Table 3 plus the
micro-architectural constants the performance model needs (register file,
shared memory, scheduler widths, latencies, precision throughput ratios).

Published sources for the non-Table-3 constants: the CUDA occupancy tables
for compute capability 5.2 / 6.0 and Volkov's dissertation (paper ref [16])
for latency figures.  Exact values matter less than their *relationships* —
they define the trade-off surface the auto-tuner learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import DType


@dataclass(frozen=True)
class DeviceSpec:
    """A simulated CUDA device.

    Throughput-model fields:

    * ``alu_lat`` — dependent-issue latency of an FMA (cycles).
    * ``mem_lat`` — average global-memory round trip (cycles).
    * ``smem_lat`` — shared-memory load latency (cycles).
    * ``fma_per_sm_per_cycle`` — fp32 FMA lanes per SM.
    * ``ldst_per_sm_per_cycle`` — load/store units per SM (32-bit accesses).
    * ``atomic_bw_frac`` — global-atomic throughput as a fraction of plain
      store throughput (atomics serialize in the L2).
    * ``coalesce_penalty`` — traffic multiplier for strided (uncoalesced)
      global accesses; GDDR5's narrow-burst behaviour differs from HBM2's.
    """

    name: str
    arch: str                      # "maxwell" | "pascal"
    chip: str
    market_segment: str
    sms: int
    cuda_cores: int
    boost_mhz: int
    mem_gb: int
    mem_type: str                  # "GDDR5" | "HBM2"
    mem_bw_gbs: float
    tdp_w: int
    l2_kb: int
    # Occupancy-relevant limits (per SM unless noted)
    smem_per_sm_kb: int
    smem_per_block_kb: int
    regfile_per_sm: int            # 32-bit registers
    max_regs_per_thread: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    warp_size: int
    schedulers_per_sm: int
    # Latency / throughput model constants
    alu_lat: float
    mem_lat: float
    smem_lat: float
    fma_per_sm_per_cycle: float
    ldst_per_sm_per_cycle: float
    atomic_bw_frac: float
    coalesce_penalty: float
    # Precision throughput, relative to fp32 FMA rate
    fp16_ratio: float
    fp64_ratio: float
    fp16x2: bool                   # packed half2 FMA available?
    kernel_launch_us: float = 5.0

    # ------------------------------------------------------------------
    @property
    def clock_ghz(self) -> float:
        return self.boost_mhz / 1000.0

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.sms

    def peak_tflops(self, dtype: DType = DType.FP32) -> float:
        """Peak arithmetic throughput: 2 FLOPs per FMA per lane per cycle."""
        fp32 = 2.0 * self.sms * self.fma_per_sm_per_cycle * self.clock_ghz / 1e3
        if dtype is DType.FP32:
            return fp32
        if dtype is DType.FP16:
            return fp32 * self.fp16_ratio
        return fp32 * self.fp64_ratio

    def fma_rate(self, dtype: DType, packed: bool) -> float:
        """FMA *instructions* retired per SM per cycle for ``dtype``.

        For fp16 the double-rate path requires the packed half2 instruction
        (``packed=True``); scalar fp16 math runs at fp32 rate at best.  Each
        packed instruction performs two FMAs, so its instruction rate equals
        the fp32 rate while its FLOP rate doubles.
        """
        base = self.fma_per_sm_per_cycle
        if dtype is DType.FP32:
            return base
        if dtype is DType.FP16:
            if packed and self.fp16x2:
                return base  # 2 FLOPs/instr handled by the caller
            return base * min(1.0, self.fp16_ratio)
        return base * self.fp64_ratio

    def describe_rows(self) -> list[tuple[str, str]]:
        """The rows of paper Table 3, in order."""
        return [
            ("GPU", self.name),
            ("Market Segment", self.market_segment),
            ("Micro-architecture", self.chip),
            ("CUDA cores", str(self.cuda_cores)),
            ("Boost frequency", f"{self.boost_mhz} MHz"),
            ("Processing Power", f"{self.peak_tflops(DType.FP32):.1f} TFLOPS"),
            ("Memory quantity", f"{self.mem_gb} GB"),
            ("Memory Type", self.mem_type),
            ("Memory Bandwidth", f"{self.mem_bw_gbs:.0f} GB/s"),
            ("TDP", f"{self.tdp_w}W"),
        ]


GTX_980_TI = DeviceSpec(
    name="GTX 980 TI",
    arch="maxwell",
    chip="GM200",
    market_segment="Consumer",
    sms=22,
    cuda_cores=2816,
    boost_mhz=1075,
    mem_gb=6,
    mem_type="GDDR5",
    mem_bw_gbs=336.0,
    tdp_w=250,
    l2_kb=3072,
    smem_per_sm_kb=96,
    smem_per_block_kb=48,
    regfile_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    warp_size=32,
    schedulers_per_sm=4,
    alu_lat=6.0,
    mem_lat=380.0,
    smem_lat=24.0,
    fma_per_sm_per_cycle=128.0,
    ldst_per_sm_per_cycle=32.0,
    atomic_bw_frac=0.25,
    coalesce_penalty=2.4,
    fp16_ratio=1.0,     # GM200 has no fast fp16 path
    fp64_ratio=1.0 / 32.0,
    fp16x2=False,
)

TESLA_P100 = DeviceSpec(
    name="Tesla P100 (PCIE)",
    arch="pascal",
    chip="GP100",
    market_segment="Server",
    sms=56,
    cuda_cores=3584,
    boost_mhz=1353,
    mem_gb=16,
    mem_type="HBM2",
    mem_bw_gbs=732.0,
    tdp_w=250,
    l2_kb=4096,
    smem_per_sm_kb=64,
    smem_per_block_kb=48,
    regfile_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    warp_size=32,
    schedulers_per_sm=2,
    alu_lat=6.0,
    mem_lat=420.0,
    smem_lat=26.0,
    fma_per_sm_per_cycle=64.0,
    ldst_per_sm_per_cycle=16.0,
    atomic_bw_frac=0.35,
    coalesce_penalty=1.9,
    fp16_ratio=2.0,     # GP100 double-rate packed fp16
    fp64_ratio=0.5,
    fp16x2=True,
)


_REGISTRY: dict[str, DeviceSpec] = {
    "gtx980ti": GTX_980_TI,
    "gtx 980 ti": GTX_980_TI,
    "maxwell": GTX_980_TI,
    "p100": TESLA_P100,
    "tesla p100": TESLA_P100,
    "tesla p100 (pcie)": TESLA_P100,
    "pascal": TESLA_P100,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by (case-insensitive) name or architecture alias."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]


def all_devices() -> tuple[DeviceSpec, ...]:
    return (GTX_980_TI, TESLA_P100)
