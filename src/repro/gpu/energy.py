"""Energy model for the simulated devices (paper §4.1).

The paper's data-generation step is agnostic about the measured quantity:
"a performance measurement (e.g., FLOPS, Joules, FLOPS/W...)".  This module
provides the Joules/FLOPS-per-watt view so the tuner can optimize for
efficiency instead of raw speed.

The power model is the standard two-component decomposition: idle power
plus dynamic power that scales with how hard each subsystem is driven —
compute intensity (issue-slot utilization vs the TDP-rated maximum) and
DRAM bandwidth utilization.  Constants are anchored so a kernel at full
arithmetic throughput draws roughly the card's TDP, matching how vendor
power limits behave on Maxwell/Pascal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import DType
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import KernelStats

#: Fraction of TDP a busy-idle (clocked, not computing) GPU draws.
IDLE_FRAC = 0.25
#: Fraction of TDP attributable to the DRAM subsystem at full bandwidth.
DRAM_FRAC = 0.25
#: The remainder is core dynamic power at full arithmetic utilization.
CORE_FRAC = 1.0 - IDLE_FRAC - DRAM_FRAC


@dataclass(frozen=True)
class EnergyEstimate:
    """Power/energy view of one kernel launch."""

    avg_power_w: float
    energy_j: float
    useful_flops: int
    time_ms: float

    @property
    def gflops_per_watt(self) -> float:
        return self.useful_flops / self.energy_j / 1e9

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the classic efficiency compromise."""
        return self.energy_j * self.time_ms * 1e-3


def estimate_energy(
    device: DeviceSpec, stats: KernelStats, dtype: DType = DType.FP32
) -> EnergyEstimate:
    """Energy of a simulated launch from its utilization figures."""
    time_s = stats.time_ms * 1e-3

    # Compute utilization: achieved padded FLOPs rate vs device peak.
    peak_flops = device.peak_tflops(dtype) * 1e12
    padded_rate = stats.padded_flops / max(time_s, 1e-12)
    compute_util = min(1.0, padded_rate / peak_flops)

    # Memory utilization: achieved DRAM bandwidth vs peak.
    dram_util = min(1.0, stats.dram_gbs / device.mem_bw_gbs)

    power = device.tdp_w * (
        IDLE_FRAC + CORE_FRAC * compute_util + DRAM_FRAC * dram_util
    )
    return EnergyEstimate(
        avg_power_w=power,
        energy_j=power * time_s,
        useful_flops=stats.useful_flops,
        time_ms=stats.time_ms,
    )


def gemm_energy(
    device: DeviceSpec, cfg, shape, **sim_kwargs
) -> EnergyEstimate:
    """Convenience: simulate + energy in one call."""
    from repro.gpu.simulator import simulate_gemm

    stats = simulate_gemm(device, cfg, shape, **sim_kwargs)
    return estimate_energy(device, stats, shape.dtype)
