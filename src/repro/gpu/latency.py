"""Volkov-style latency-hiding throughput model (paper §5.2, eqs. (2)-(3)).

Each SM exposes three issue pipes — floating-point ALU, integer/predicate
ALU (shared lanes), and load/store — plus an overall scheduler issue cap.
For every pipe the attainable rate is::

    rate(n) = min(peak_throughput, n * parallelism / latency)

with ``n`` the resident warps and ``parallelism`` the per-warp independent
work (ILP for arithmetic, MLP for memory).  Kernel time per wave is the
maximum over the pipes — precisely the paper's
``t = max(t_arith * i_arith, t_mem * i_mem)`` generalized to more pipes.
All rates below are in *warp-instructions per cycle per SM*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import DType
from repro.gpu.device import DeviceSpec
from repro.ptx.counts import BlockCounts

#: Cycles a bar.sync stalls the block pipeline on average.
BARRIER_CYCLES = 30.0
#: Scheduler dual-issue efficiency: each scheduler sustains slightly more
#: than one instruction per cycle on mixed streams.
ISSUE_FACTOR = 1.4
#: Independent shared-memory accesses a warp keeps in flight.
SMEM_PARALLELISM = 4.0


@dataclass(frozen=True, slots=True)
class PipeTimes:
    """Per-wave cycle counts by bottleneck candidate."""

    alu_cycles: float
    ldst_cycles: float
    issue_cycles: float
    barrier_cycles: float

    @property
    def cycles(self) -> float:
        return max(self.alu_cycles, self.ldst_cycles, self.issue_cycles) + (
            self.barrier_cycles
        )

    @property
    def limiter(self) -> str:
        pairs = (
            (self.alu_cycles, "alu"),
            (self.ldst_cycles, "ldst"),
            (self.issue_cycles, "issue"),
        )
        return max(pairs, key=lambda p: p[0])[1]


def _clamped_rate(peak: float, warps: float, parallelism: float, lat: float) -> float:
    """min(peak, n * parallelism / latency), floored away from zero."""
    return max(1e-12, min(peak, warps * parallelism / lat))


def pipe_times(
    device: DeviceSpec,
    counts: BlockCounts,
    blocks_per_sm: int,
    warps_per_sm: float,
    dtype: DType,
) -> PipeTimes:
    """Cycles one SM needs to retire ``blocks_per_sm`` resident blocks."""
    b = blocks_per_sm
    n = max(warps_per_sm, 1e-9)

    # Warp-instruction totals for the resident blocks.
    w_fma = counts.fma * b / device.warp_size
    w_iop = counts.iop * b / device.warp_size
    w_glb = (counts.ldg + counts.stg) * b / device.warp_size
    w_atm = counts.atom * b / device.warp_size
    w_smm = counts.smem_ops * b / device.warp_size

    packed = counts.flops_per_fma == 4
    fma_peak = device.fma_rate(dtype, packed) / device.warp_size
    alu_peak = device.fma_per_sm_per_cycle / device.warp_size
    ldst_peak = device.ldst_per_sm_per_cycle / device.warp_size

    # -- arithmetic pipe ------------------------------------------------
    fma_rate = _clamped_rate(fma_peak, n, counts.ilp, device.alu_lat)
    iop_rate = _clamped_rate(alu_peak, n, counts.ilp, device.alu_lat)
    alu_cycles = w_fma / fma_rate + w_iop / iop_rate

    # -- load/store pipe --------------------------------------------------
    glb_rate = _clamped_rate(ldst_peak, n, counts.mlp, device.mem_lat)
    atm_rate = _clamped_rate(
        ldst_peak * device.atomic_bw_frac, n, counts.mlp, device.mem_lat
    )
    smm_rate = _clamped_rate(ldst_peak, n, SMEM_PARALLELISM, device.smem_lat)
    ldst_cycles = w_glb / glb_rate + w_atm / atm_rate + w_smm / smm_rate

    # -- scheduler issue cap -----------------------------------------------
    issue_peak = device.schedulers_per_sm * ISSUE_FACTOR
    total_warp_instrs = w_fma + w_iop + w_glb + w_atm + w_smm
    issue_cycles = total_warp_instrs / issue_peak

    # -- barriers: each sync stalls the block; blocks overlap, so the cost
    #    amortizes over the resident blocks but never fully vanishes.
    barrier_cycles = counts.bar * BARRIER_CYCLES * (1.0 + (b - 1) * 0.15) / max(b, 1)

    return PipeTimes(
        alu_cycles=alu_cycles,
        ldst_cycles=ldst_cycles,
        issue_cycles=issue_cycles,
        barrier_cycles=barrier_cycles * b / max(b, 1),
    )
