"""Volkov-style latency-hiding throughput model (paper §5.2, eqs. (2)-(3)).

Each SM exposes three issue pipes — floating-point ALU, integer/predicate
ALU (shared lanes), and load/store — plus an overall scheduler issue cap.
For every pipe the attainable rate is::

    rate(n) = min(peak_throughput, n * parallelism / latency)

with ``n`` the resident warps and ``parallelism`` the per-warp independent
work (ILP for arithmetic, MLP for memory).  Kernel time per wave is the
maximum over the pipes — precisely the paper's
``t = max(t_arith * i_arith, t_mem * i_mem)`` generalized to more pipes.
All rates below are in *warp-instructions per cycle per SM*.

:func:`pipe_times_arrays` is the array core: it prices N waves (each with
its own instruction mix, residency and data-type) in one vectorized pass.
The scalar :func:`pipe_times` wraps it with N = 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import DType
from repro.gpu.device import DeviceSpec
from repro.ptx.counts import BlockCounts

#: Cycles a bar.sync stalls the block pipeline on average.
BARRIER_CYCLES = 30.0
#: Scheduler dual-issue efficiency: each scheduler sustains slightly more
#: than one instruction per cycle on mixed streams.
ISSUE_FACTOR = 1.4
#: Independent shared-memory accesses a warp keeps in flight.
SMEM_PARALLELISM = 4.0

#: Pipe names indexed by the ``limiter_idx`` of :class:`PipeTimesArrays`
#: (first maximum wins, matching the scalar tuple-order behaviour).
PIPE_LIMITERS = ("alu", "ldst", "issue")


@dataclass(frozen=True, slots=True)
class PipeTimes:
    """Per-wave cycle counts by bottleneck candidate."""

    alu_cycles: float
    ldst_cycles: float
    issue_cycles: float
    barrier_cycles: float

    @property
    def cycles(self) -> float:
        return max(self.alu_cycles, self.ldst_cycles, self.issue_cycles) + (
            self.barrier_cycles
        )

    @property
    def limiter(self) -> str:
        pairs = (
            (self.alu_cycles, "alu"),
            (self.ldst_cycles, "ldst"),
            (self.issue_cycles, "issue"),
        )
        return max(pairs, key=lambda p: p[0])[1]


@dataclass(frozen=True, slots=True)
class PipeTimesArrays:
    """Struct-of-arrays :class:`PipeTimes` for a batch of waves."""

    alu_cycles: np.ndarray
    ldst_cycles: np.ndarray
    issue_cycles: np.ndarray
    barrier_cycles: np.ndarray

    @property
    def cycles(self) -> np.ndarray:
        return (
            np.maximum(
                self.alu_cycles,
                np.maximum(self.ldst_cycles, self.issue_cycles),
            )
            + self.barrier_cycles
        )

    @property
    def limiter_idx(self) -> np.ndarray:
        stacked = np.stack(
            [self.alu_cycles, self.ldst_cycles, self.issue_cycles]
        )
        return np.argmax(stacked, axis=0)

    def row(self, i: int) -> PipeTimes:
        return PipeTimes(
            alu_cycles=float(self.alu_cycles[i]),
            ldst_cycles=float(self.ldst_cycles[i]),
            issue_cycles=float(self.issue_cycles[i]),
            barrier_cycles=float(self.barrier_cycles[i]),
        )


def _clamped_rate_arrays(peak, warps, parallelism, lat) -> np.ndarray:
    """min(peak, n * parallelism / latency), floored away from zero."""
    return np.maximum(1e-12, np.minimum(peak, warps * parallelism / lat))


def fma_instr_rates(
    device: DeviceSpec, dsize: np.ndarray, packed: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`DeviceSpec.fma_rate` over element sizes.

    ``dsize`` is the operand byte width (2/4/8 ⇔ fp16/fp32/fp64) and
    ``packed`` marks kernels using the half2 double-rate path.
    """
    base = device.fma_per_sm_per_cycle
    fp16 = np.where(
        packed & device.fp16x2, base, base * min(1.0, device.fp16_ratio)
    )
    return np.where(
        dsize == 4, base, np.where(dsize == 2, fp16, base * device.fp64_ratio)
    )


def pipe_times_arrays(
    device: DeviceSpec,
    *,
    fma: np.ndarray,
    iop: np.ndarray,
    ldg: np.ndarray,
    stg: np.ndarray,
    atom: np.ndarray,
    smem_ops: np.ndarray,
    bar: np.ndarray,
    mlp: np.ndarray,
    ilp: np.ndarray,
    flops_per_fma: np.ndarray,
    dsize: np.ndarray,
    blocks_per_sm: np.ndarray,
    warps_per_sm: np.ndarray,
) -> PipeTimesArrays:
    """Cycles each SM needs to retire its resident blocks, for N waves.

    Per-block instruction counts (``fma`` … ``bar``) follow the fields of
    :class:`~repro.ptx.counts.BlockCounts`; ``blocks_per_sm`` /
    ``warps_per_sm`` describe each wave's residency, and ``dsize`` selects
    the per-element FMA throughput.
    """
    b = np.asarray(blocks_per_sm, dtype=np.int64)
    n = np.maximum(warps_per_sm, 1e-9)

    # Warp-instruction totals for the resident blocks.
    w_fma = fma * b / device.warp_size
    w_iop = iop * b / device.warp_size
    w_glb = (ldg + stg) * b / device.warp_size
    w_atm = atom * b / device.warp_size
    w_smm = smem_ops * b / device.warp_size

    packed = flops_per_fma == 4
    fma_peak = fma_instr_rates(device, dsize, packed) / device.warp_size
    alu_peak = device.fma_per_sm_per_cycle / device.warp_size
    ldst_peak = device.ldst_per_sm_per_cycle / device.warp_size

    # -- arithmetic pipe ------------------------------------------------
    fma_rate = _clamped_rate_arrays(fma_peak, n, ilp, device.alu_lat)
    iop_rate = _clamped_rate_arrays(alu_peak, n, ilp, device.alu_lat)
    alu_cycles = w_fma / fma_rate + w_iop / iop_rate

    # -- load/store pipe --------------------------------------------------
    glb_rate = _clamped_rate_arrays(ldst_peak, n, mlp, device.mem_lat)
    atm_rate = _clamped_rate_arrays(
        ldst_peak * device.atomic_bw_frac, n, mlp, device.mem_lat
    )
    smm_rate = _clamped_rate_arrays(
        ldst_peak, n, SMEM_PARALLELISM, device.smem_lat
    )
    ldst_cycles = w_glb / glb_rate + w_atm / atm_rate + w_smm / smm_rate

    # -- scheduler issue cap -----------------------------------------------
    issue_peak = device.schedulers_per_sm * ISSUE_FACTOR
    total_warp_instrs = w_fma + w_iop + w_glb + w_atm + w_smm
    issue_cycles = total_warp_instrs / issue_peak

    # -- barriers: each sync stalls the block; blocks overlap, so the cost
    #    amortizes over the resident blocks but never fully vanishes.
    b_floor = np.maximum(b, 1)
    barrier_cycles = bar * BARRIER_CYCLES * (1.0 + (b - 1) * 0.15) / b_floor

    return PipeTimesArrays(
        alu_cycles=alu_cycles,
        ldst_cycles=ldst_cycles,
        issue_cycles=issue_cycles,
        barrier_cycles=barrier_cycles * b / b_floor,
    )


def pipe_times(
    device: DeviceSpec,
    counts: BlockCounts,
    blocks_per_sm: int,
    warps_per_sm: float,
    dtype: DType,
) -> PipeTimes:
    """Scalar wrapper over :func:`pipe_times_arrays` (N = 1)."""
    pipes = pipe_times_arrays(
        device,
        fma=np.array([counts.fma]),
        iop=np.array([counts.iop]),
        ldg=np.array([counts.ldg]),
        stg=np.array([counts.stg]),
        atom=np.array([counts.atom]),
        smem_ops=np.array([counts.smem_ops]),
        bar=np.array([counts.bar]),
        mlp=np.array([counts.mlp]),
        ilp=np.array([counts.ilp]),
        flops_per_fma=np.array([counts.flops_per_fma]),
        dsize=np.array([dtype.size]),
        blocks_per_sm=np.array([blocks_per_sm]),
        warps_per_sm=np.array([warps_per_sm]),
    )
    return pipes.row(0)
