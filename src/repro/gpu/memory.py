"""Memory-hierarchy model: L2 reuse across concurrent blocks.

In a tiled GEMM, blocks that share a row of the output grid fetch the same
A tile, and blocks sharing a column fetch the same B tile.  When those
blocks are *concurrently resident*, the second and later fetches hit in L2.
The paper's §8.1 analysis leans on exactly this effect: ISAAC's smaller
tiles raise occupancy *and* its larger prefetch depth U tightens the
temporal window between sharers, lifting the L2 hit rate (32% vs 24% in the
paper's example).

The model below estimates the hit rate from (a) how many sharers of each
operand tile are concurrently resident given the launch order, (b) a
temporal-locality quality factor that grows with the staged depth ``U*KL``,
and (c) an L2 capacity factor that degrades the hit rate once the resident
working set overflows the cache.

Like the rest of the simulated GPU, the implementation is an array core
(:func:`l2_hit_rate_arrays` / :func:`estimate_traffic_arrays`) evaluating N
launches per call; the scalar functions wrap it with N = 1, so both paths
are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec


@dataclass(frozen=True, slots=True)
class TrafficEstimate:
    """DRAM traffic for one kernel launch."""

    l2_hit_rate: float
    dram_load_bytes: float
    dram_store_bytes: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_load_bytes + self.dram_store_bytes


@dataclass(frozen=True, slots=True)
class TrafficArrays:
    """Struct-of-arrays :class:`TrafficEstimate` for a batch of launches."""

    l2_hit_rate: np.ndarray
    dram_load_bytes: np.ndarray
    dram_store_bytes: np.ndarray

    @property
    def dram_bytes(self) -> np.ndarray:
        return self.dram_load_bytes + self.dram_store_bytes

    def row(self, i: int) -> TrafficEstimate:
        return TrafficEstimate(
            l2_hit_rate=float(self.l2_hit_rate[i]),
            dram_load_bytes=float(self.dram_load_bytes[i]),
            dram_store_bytes=float(self.dram_store_bytes[i]),
        )


def l2_hit_rate_arrays(
    device: DeviceSpec,
    grid_m: np.ndarray,
    grid_n: np.ndarray,
    concurrent_blocks: np.ndarray,
    a_bytes_frac: np.ndarray,
    staged_bytes_per_block: np.ndarray,
    staged_depth: np.ndarray,
) -> np.ndarray:
    """Expected fraction of global-load sectors served by L2, per launch.

    ``grid_m x grid_n`` is the output-tile grid of one reduction slice
    (KG-sliced blocks work on disjoint K ranges and share nothing).
    ``a_bytes_frac`` weights the A-operand share of load traffic.
    ``staged_depth`` is the elements of reduction staged per main-loop
    iteration (``U * KL``); deeper staging narrows the reuse window.
    """
    grid_m = np.asarray(grid_m, dtype=np.int64)
    grid_n = np.asarray(grid_n, dtype=np.int64)
    r = np.maximum(1, np.minimum(concurrent_blocks, grid_m * grid_n))

    # Blocks are launched row-major over (grid_m, grid_n): the resident set
    # spans ~r/grid_n rows, fully covering min(grid_n, r) columns.
    sharers_a = np.minimum(grid_n, r)
    sharers_b = np.minimum(
        grid_m, np.maximum(1, r // np.maximum(1, np.minimum(grid_n, r)))
    )
    hit_a = 1.0 - 1.0 / sharers_a
    hit_b = 1.0 - 1.0 / sharers_b
    hit = a_bytes_frac * hit_a + (1.0 - a_bytes_frac) * hit_b

    # Deeper staging keeps sharers temporally closer to each other.
    quality = 0.6 + 0.4 * np.minimum(1.0, staged_depth / 16.0)

    # Capacity: once the concurrently staged working set spills past L2,
    # reuse decays with the overflow ratio.
    ws = np.maximum(1.0, r * staged_bytes_per_block)
    l2_bytes = device.l2_kb * 1024.0
    capacity = np.minimum(1.0, l2_bytes / ws) ** 0.5

    rate = np.maximum(0.0, np.minimum(0.98, hit * quality * capacity))
    return np.where(r <= 1, 0.0, rate)


def estimate_traffic_arrays(
    device: DeviceSpec,
    ldg_bytes_per_block: np.ndarray,
    ideal_ldg_bytes_per_block: np.ndarray,
    st_bytes_per_block: np.ndarray,
    grid_m: np.ndarray,
    grid_n: np.ndarray,
    kg: np.ndarray,
    concurrent_blocks: np.ndarray,
    a_bytes_frac: np.ndarray,
    staged_bytes_per_block: np.ndarray,
    staged_depth: np.ndarray,
) -> TrafficArrays:
    """Total DRAM traffic for N launches of ``grid_m*grid_n*kg`` blocks each.

    Loads are filtered by the L2 model; stores (and atomic read-modify-write
    traffic, already inflated by the codegen) stream through.
    """
    hit = l2_hit_rate_arrays(
        device,
        grid_m=grid_m,
        grid_n=grid_n,
        concurrent_blocks=np.maximum(
            1, np.asarray(concurrent_blocks, dtype=np.int64) // np.maximum(1, kg)
        ),
        a_bytes_frac=a_bytes_frac,
        staged_bytes_per_block=staged_bytes_per_block,
        staged_depth=staged_depth,
    )
    blocks = grid_m * grid_n * kg
    loads = ldg_bytes_per_block * blocks * (1.0 - hit)
    # Compulsory floor: every operand element crosses DRAM at least once.
    # With perfect sharing, A is fetched once per grid row and B once per
    # grid column; one block's ideal bytes times the larger grid dimension
    # is a safe lower bound for a KG slice.
    compulsory = ideal_ldg_bytes_per_block * np.maximum(grid_m, grid_n)
    loads = np.maximum(loads, compulsory)
    stores = st_bytes_per_block * blocks
    return TrafficArrays(
        l2_hit_rate=hit,
        dram_load_bytes=loads,
        dram_store_bytes=stores,
    )


def l2_hit_rate(
    device: DeviceSpec,
    grid_m: int,
    grid_n: int,
    concurrent_blocks: int,
    a_bytes_frac: float,
    staged_bytes_per_block: float,
    staged_depth: int,
) -> float:
    """Scalar wrapper over :func:`l2_hit_rate_arrays` (N = 1)."""
    return float(
        l2_hit_rate_arrays(
            device,
            grid_m=np.array([grid_m]),
            grid_n=np.array([grid_n]),
            concurrent_blocks=np.array([concurrent_blocks]),
            a_bytes_frac=np.array([a_bytes_frac]),
            staged_bytes_per_block=np.array([staged_bytes_per_block]),
            staged_depth=np.array([staged_depth]),
        )[0]
    )


def estimate_traffic(
    device: DeviceSpec,
    ldg_bytes_per_block: float,
    ideal_ldg_bytes_per_block: float,
    st_bytes_per_block: float,
    grid_m: int,
    grid_n: int,
    kg: int,
    concurrent_blocks: int,
    a_bytes_frac: float,
    staged_bytes_per_block: float,
    staged_depth: int,
) -> TrafficEstimate:
    """Scalar wrapper over :func:`estimate_traffic_arrays` (N = 1)."""
    traffic = estimate_traffic_arrays(
        device,
        ldg_bytes_per_block=np.array([ldg_bytes_per_block]),
        ideal_ldg_bytes_per_block=np.array([ideal_ldg_bytes_per_block]),
        st_bytes_per_block=np.array([st_bytes_per_block]),
        grid_m=np.array([grid_m]),
        grid_n=np.array([grid_n]),
        kg=np.array([kg]),
        concurrent_blocks=np.array([concurrent_blocks]),
        a_bytes_frac=np.array([a_bytes_frac]),
        staged_bytes_per_block=np.array([staged_bytes_per_block]),
        staged_depth=np.array([staged_depth]),
    )
    return traffic.row(0)
