"""Memory-hierarchy model: L2 reuse across concurrent blocks.

In a tiled GEMM, blocks that share a row of the output grid fetch the same
A tile, and blocks sharing a column fetch the same B tile.  When those
blocks are *concurrently resident*, the second and later fetches hit in L2.
The paper's §8.1 analysis leans on exactly this effect: ISAAC's smaller
tiles raise occupancy *and* its larger prefetch depth U tightens the
temporal window between sharers, lifting the L2 hit rate (32% vs 24% in the
paper's example).

The model below estimates the hit rate from (a) how many sharers of each
operand tile are concurrently resident given the launch order, (b) a
temporal-locality quality factor that grows with the staged depth ``U*KL``,
and (c) an L2 capacity factor that degrades the hit rate once the resident
working set overflows the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec


@dataclass(frozen=True, slots=True)
class TrafficEstimate:
    """DRAM traffic for one kernel launch."""

    l2_hit_rate: float
    dram_load_bytes: float
    dram_store_bytes: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_load_bytes + self.dram_store_bytes


def l2_hit_rate(
    device: DeviceSpec,
    grid_m: int,
    grid_n: int,
    concurrent_blocks: int,
    a_bytes_frac: float,
    staged_bytes_per_block: float,
    staged_depth: int,
) -> float:
    """Expected fraction of global-load sectors served by L2.

    ``grid_m x grid_n`` is the output-tile grid of one reduction slice
    (KG-sliced blocks work on disjoint K ranges and share nothing).
    ``a_bytes_frac`` weights the A-operand share of load traffic.
    ``staged_depth`` is the elements of reduction staged per main-loop
    iteration (``U * KL``); deeper staging narrows the reuse window.
    """
    r = max(1, min(concurrent_blocks, grid_m * grid_n))
    if r <= 1:
        return 0.0

    # Blocks are launched row-major over (grid_m, grid_n): the resident set
    # spans ~r/grid_n rows, fully covering min(grid_n, r) columns.
    sharers_a = min(grid_n, r)
    sharers_b = min(grid_m, max(1, r // max(1, min(grid_n, r))))
    hit_a = 1.0 - 1.0 / sharers_a
    hit_b = 1.0 - 1.0 / sharers_b
    hit = a_bytes_frac * hit_a + (1.0 - a_bytes_frac) * hit_b

    # Deeper staging keeps sharers temporally closer to each other.
    quality = 0.6 + 0.4 * min(1.0, staged_depth / 16.0)

    # Capacity: once the concurrently staged working set spills past L2,
    # reuse decays with the overflow ratio.
    ws = max(1.0, r * staged_bytes_per_block)
    l2_bytes = device.l2_kb * 1024.0
    capacity = min(1.0, l2_bytes / ws) ** 0.5

    return max(0.0, min(0.98, hit * quality * capacity))


def estimate_traffic(
    device: DeviceSpec,
    ldg_bytes_per_block: float,
    ideal_ldg_bytes_per_block: float,
    st_bytes_per_block: float,
    grid_m: int,
    grid_n: int,
    kg: int,
    concurrent_blocks: int,
    a_bytes_frac: float,
    staged_bytes_per_block: float,
    staged_depth: int,
) -> TrafficEstimate:
    """Total DRAM traffic for a launch of ``grid_m*grid_n*kg`` blocks.

    Loads are filtered by the L2 model; stores (and atomic read-modify-write
    traffic, already inflated by the codegen) stream through.
    """
    hit = l2_hit_rate(
        device,
        grid_m=grid_m,
        grid_n=grid_n,
        concurrent_blocks=max(1, concurrent_blocks // max(1, kg)),
        a_bytes_frac=a_bytes_frac,
        staged_bytes_per_block=staged_bytes_per_block,
        staged_depth=staged_depth,
    )
    blocks = grid_m * grid_n * kg
    loads = ldg_bytes_per_block * blocks * (1.0 - hit)
    # Compulsory floor: every operand element crosses DRAM at least once.
    # With perfect sharing, A is fetched once per grid row and B once per
    # grid column; one block's ideal bytes times the larger grid dimension
    # is a safe lower bound for a KG slice.
    compulsory = ideal_ldg_bytes_per_block * max(grid_m, grid_n)
    loads = max(loads, compulsory)
    stores = st_bytes_per_block * blocks
    return TrafficEstimate(
        l2_hit_rate=hit,
        dram_load_bytes=loads,
        dram_store_bytes=stores,
    )
