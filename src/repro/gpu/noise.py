"""Deterministic measurement noise for the simulated hardware.

Real benchmarking data is noisy — the paper's §6 re-evaluates the model's
top-100 predictions on the device precisely "to smooth out the inherent
noise".  Our stand-in hardware reproduces this with *deterministic*
multiplicative lognormal noise: the same (device, kernel, shape, repetition)
always measures the same value, but distinct repetitions differ, so
averaging over repetitions genuinely reduces variance, exactly like re-running
a kernel.
"""

from __future__ import annotations

import hashlib
import math
import struct

import numpy as np

#: Default run-to-run noise level (standard deviation of log-performance).
DEFAULT_SIGMA = 0.06


def _hash_to_unit(payload: bytes) -> tuple[float, float]:
    """Map bytes to two iid U(0,1) samples via BLAKE2b."""
    digest = hashlib.blake2b(payload, digest_size=16).digest()
    a, b = struct.unpack("<QQ", digest)
    # 53-bit mantissa keeps the floats uniform in (0, 1).
    u1 = ((a >> 11) + 1) / (2**53 + 2)
    u2 = ((b >> 11) + 1) / (2**53 + 2)
    return u1, u2


def noise_factor(key: str, rep: int = 0, sigma: float = DEFAULT_SIGMA) -> float:
    """Deterministic lognormal factor ``exp(sigma * z)`` for a measurement.

    ``key`` should uniquely identify (device, kernel config, problem shape);
    ``rep`` distinguishes repetitions of the same measurement.
    """
    if sigma <= 0:
        return 1.0
    u1, u2 = _hash_to_unit(f"{key}#{rep}".encode())
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return math.exp(sigma * z)


def averaged_noise_factor(
    key: str, reps: int, sigma: float = DEFAULT_SIGMA
) -> float:
    """Mean of ``reps`` independent noise factors (variance shrinks ~1/reps)."""
    if reps <= 1:
        return noise_factor(key, 0, sigma)
    return sum(noise_factor(key, r, sigma) for r in range(reps)) / reps


def averaged_noise_factors(
    keys, reps: int, sigma: float = DEFAULT_SIGMA
):
    """:func:`averaged_noise_factor` for a batch of measurement keys.

    The noise is *keyed* cryptographic hashing, which is inherently
    per-measurement: this array-shaped entry point loops over the keys but
    returns a float64 array so the batched simulator can apply it in one
    multiply.  Hashing is a few microseconds per key — negligible next to
    the model chain it perturbs — and staying on the exact scalar
    :func:`noise_factor` keeps batched measurements bit-identical to
    per-kernel ones.
    """
    return np.array(
        [averaged_noise_factor(k, reps, sigma) for k in keys],
        dtype=np.float64,
    )
