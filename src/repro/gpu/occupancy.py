"""CUDA occupancy calculator for the simulated devices.

Occupancy — resident warps per SM — is the central hidden variable of the
paper's performance analysis (§8.1): tile sizes determine register and
shared-memory pressure, which bounds how many blocks an SM can host, which
bounds latency hiding.  This module reproduces the standard occupancy
computation (per-block limits on threads, registers, shared memory, and the
hard block-count cap) with the usual allocation-granularity rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.legality import ResourceUsage
from repro.gpu.device import DeviceSpec

#: Register allocation granularity (registers are allocated per warp in
#: chunks; 256-register granularity matches Maxwell/Pascal).
_REG_ALLOC_UNIT = 256
#: Shared-memory allocation granularity in bytes.
_SMEM_ALLOC_UNIT = 256


@dataclass(frozen=True, slots=True)
class Occupancy:
    """Resident-block accounting for one kernel on one SM."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float          # resident warps / max warps
    limiter: str              # which resource capped the block count

    @property
    def active(self) -> bool:
        return self.blocks_per_sm > 0


def occupancy_for(device: DeviceSpec, res: ResourceUsage) -> Occupancy:
    """Blocks and warps an SM can keep resident for a kernel's resources."""
    warps = res.warps
    threads = warps * device.warp_size  # thread slots allocate whole warps

    limits: dict[str, int] = {}
    limits["threads"] = device.max_threads_per_sm // threads if threads else 0
    limits["blocks"] = device.max_blocks_per_sm

    regs_per_warp = _round_up(
        res.regs_per_thread * device.warp_size, _REG_ALLOC_UNIT
    )
    regs_per_block = regs_per_warp * warps
    limits["registers"] = (
        device.regfile_per_sm // regs_per_block if regs_per_block else 0
    )

    smem = _round_up(max(res.smem_bytes, 1), _SMEM_ALLOC_UNIT)
    limits["shared memory"] = (device.smem_per_sm_kb * 1024) // smem

    limiter, blocks = min(limits.items(), key=lambda kv: kv[1])
    blocks = max(0, blocks)
    resident_warps = blocks * warps
    max_warps = device.max_threads_per_sm // device.warp_size
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=resident_warps,
        occupancy=resident_warps / max_warps,
        limiter=limiter if blocks else "does not fit",
    )


def _round_up(x: int, unit: int) -> int:
    return -(-x // unit) * unit
