"""CUDA occupancy calculator for the simulated devices.

Occupancy — resident warps per SM — is the central hidden variable of the
paper's performance analysis (§8.1): tile sizes determine register and
shared-memory pressure, which bounds how many blocks an SM can host, which
bounds latency hiding.  This module reproduces the standard occupancy
computation (per-block limits on threads, registers, shared memory, and the
hard block-count cap) with the usual allocation-granularity rounding.

The implementation is an *array core*: :func:`occupancy_arrays` evaluates N
kernels' resource vectors against one device in a single vectorized pass
(struct-of-arrays in, struct-of-arrays out), and the scalar
:func:`occupancy_for` is a thin wrapper over it with N = 1 — so the batched
offline pipeline and the per-kernel path share one implementation and are
bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.legality import ResourceUsage
from repro.gpu.device import DeviceSpec

#: Register allocation granularity (registers are allocated per warp in
#: chunks; 256-register granularity matches Maxwell/Pascal).
_REG_ALLOC_UNIT = 256
#: Shared-memory allocation granularity in bytes.
_SMEM_ALLOC_UNIT = 256

#: Resource names in the order the limits are compared (ties go to the
#: earliest entry, matching the scalar dict-insertion-order behaviour).
LIMITERS = ("threads", "blocks", "registers", "shared memory")


@dataclass(frozen=True, slots=True)
class Occupancy:
    """Resident-block accounting for one kernel on one SM."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float          # resident warps / max warps
    limiter: str              # which resource capped the block count

    @property
    def active(self) -> bool:
        return self.blocks_per_sm > 0


@dataclass(frozen=True, slots=True)
class OccupancyArrays:
    """Struct-of-arrays :class:`Occupancy` for a batch of kernels."""

    blocks_per_sm: np.ndarray   # int64
    warps_per_sm: np.ndarray    # int64
    occupancy: np.ndarray       # float64
    limiter_idx: np.ndarray     # int64, index into LIMITERS

    @property
    def active(self) -> np.ndarray:
        return self.blocks_per_sm > 0

    def limiter_name(self, i: int) -> str:
        if self.blocks_per_sm[i] <= 0:
            return "does not fit"
        return LIMITERS[int(self.limiter_idx[i])]

    def row(self, i: int) -> Occupancy:
        return Occupancy(
            blocks_per_sm=int(self.blocks_per_sm[i]),
            warps_per_sm=int(self.warps_per_sm[i]),
            occupancy=float(self.occupancy[i]),
            limiter=self.limiter_name(i),
        )


def occupancy_arrays(
    device: DeviceSpec,
    threads: np.ndarray,
    regs_per_thread: np.ndarray,
    smem_bytes: np.ndarray,
) -> OccupancyArrays:
    """Blocks and warps an SM can keep resident, for N kernels at once.

    Inputs are parallel int arrays of per-block resource usage (the fields
    of :class:`~repro.core.legality.ResourceUsage`).
    """
    threads = np.asarray(threads, dtype=np.int64)
    regs_per_thread = np.asarray(regs_per_thread, dtype=np.int64)
    smem_bytes = np.asarray(smem_bytes, dtype=np.int64)

    warps = -(-threads // 32)  # ResourceUsage.warps
    thread_slots = warps * device.warp_size  # whole-warp allocation

    lim_threads = np.where(
        thread_slots > 0,
        device.max_threads_per_sm // np.maximum(thread_slots, 1),
        0,
    )
    lim_blocks = np.full_like(lim_threads, device.max_blocks_per_sm)

    regs_per_warp = _round_up(regs_per_thread * device.warp_size, _REG_ALLOC_UNIT)
    regs_per_block = regs_per_warp * warps
    lim_regs = np.where(
        regs_per_block > 0,
        device.regfile_per_sm // np.maximum(regs_per_block, 1),
        0,
    )

    smem = _round_up(np.maximum(smem_bytes, 1), _SMEM_ALLOC_UNIT)
    lim_smem = (device.smem_per_sm_kb * 1024) // smem

    limits = np.stack([lim_threads, lim_blocks, lim_regs, lim_smem])
    limiter_idx = np.argmin(limits, axis=0)  # first minimum wins, as scalar
    blocks = np.maximum(0, np.min(limits, axis=0))

    resident_warps = blocks * warps
    max_warps = device.max_threads_per_sm // device.warp_size
    return OccupancyArrays(
        blocks_per_sm=blocks,
        warps_per_sm=resident_warps,
        occupancy=resident_warps / max_warps,
        limiter_idx=limiter_idx,
    )


def occupancy_for(device: DeviceSpec, res: ResourceUsage) -> Occupancy:
    """Scalar wrapper over :func:`occupancy_arrays` (N = 1)."""
    occ = occupancy_arrays(
        device,
        np.array([res.threads]),
        np.array([res.regs_per_thread]),
        np.array([res.smem_bytes]),
    )
    return occ.row(0)


def _round_up(x: np.ndarray, unit: int) -> np.ndarray:
    return -(-x // unit) * unit
