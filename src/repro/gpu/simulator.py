"""The simulated GPU: ground-truth performance for generated kernels.

This module is the stand-in for the paper's physical GTX 980 TI / Tesla P100
(see DESIGN.md).  ``simulate_gemm`` / ``simulate_conv`` run the full model
chain — codegen counts → occupancy → wave schedule → per-pipe latency-hiding
throughput → L2/DRAM traffic — and return a :class:`KernelStats` with the
kernel's time and the diagnostic quantities the paper reports in §8.1
(occupancy, register count, shared memory, L2 hit rate).

``benchmark_gemm`` / ``benchmark_conv`` add deterministic measurement noise
and are what the auto-tuner's data-generation and re-ranking stages call:
they play the role of actually launching the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import (
    ResourceUsage,
    conv_resources,
    gemm_resources,
    gemm_violations,
    conv_violations,
)
from repro.core.types import ConvShape, DType, GemmShape, ceil_div
from repro.gpu.device import DeviceSpec
from repro.gpu.latency import pipe_times
from repro.gpu.memory import TrafficEstimate, estimate_traffic
from repro.gpu.noise import DEFAULT_SIGMA, averaged_noise_factor
from repro.gpu.occupancy import Occupancy, occupancy_for
from repro.ptx.conv_codegen import ConvKernel
from repro.ptx.counts import KernelCounts
from repro.ptx.gemm_codegen import GemmKernel


class IllegalKernelError(ValueError):
    """Raised when a config outside X (the legal set) is simulated."""


@dataclass(frozen=True)
class KernelStats:
    """Everything the simulator knows about one kernel launch."""

    device_name: str
    time_ms: float
    useful_flops: int
    padded_flops: int
    occupancy: Occupancy
    resources: ResourceUsage
    traffic: TrafficEstimate
    limiter: str
    waves: float
    grid_size: int

    @property
    def tflops(self) -> float:
        """Effective throughput in useful TFLOPS (the paper's y-axis)."""
        return self.useful_flops / self.time_ms / 1e9

    @property
    def padding_waste(self) -> float:
        """Fraction of executed FLOPs spent on predicated-off tile padding."""
        if self.padded_flops == 0:
            return 0.0
        return 1.0 - self.useful_flops / self.padded_flops

    @property
    def dram_gbs(self) -> float:
        return self.traffic.dram_bytes / (self.time_ms * 1e6)


def _wave_time_ms(
    device: DeviceSpec,
    counts: KernelCounts,
    blocks_in_wave: int,
    blocks_per_sm_cap: int,
    dram_bytes_per_block: float,
    dtype: DType,
) -> tuple[float, str]:
    """Time for one wave of ``blocks_in_wave`` concurrent blocks."""
    busy_sms = min(device.sms, blocks_in_wave)
    b_eff = ceil_div(blocks_in_wave, busy_sms)
    b_eff = min(b_eff, blocks_per_sm_cap)
    warps = b_eff * ceil_div(counts.threads_per_block, device.warp_size)

    pipes = pipe_times(device, counts.block, b_eff, warps, dtype)
    clock_hz = device.boost_mhz * 1e6
    t_sm_ms = pipes.cycles / clock_hz * 1e3

    # DRAM is a device-wide resource: the wave's traffic at full bandwidth.
    wave_bytes = dram_bytes_per_block * blocks_in_wave
    t_dram_ms = wave_bytes / (device.mem_bw_gbs * 1e9) * 1e3

    # Pipeline ramp: the first loads of a wave see full memory latency.
    t_ramp_ms = device.mem_lat / clock_hz * 1e3

    if t_dram_ms > t_sm_ms:
        return t_dram_ms + t_ramp_ms, "dram"
    return t_sm_ms + t_ramp_ms, pipes.limiter


def _simulate(
    device: DeviceSpec,
    counts: KernelCounts,
    res: ResourceUsage,
    grid_mn: tuple[int, int],
    kg: int,
    useful_flops: int,
    padded_flops: int,
    staged_bytes: float,
    staged_depth: int,
    dtype: DType,
    a_bytes_frac: float = 0.5,
) -> KernelStats:
    occ = occupancy_for(device, res)
    if not occ.active:
        raise IllegalKernelError(
            f"kernel does not fit on {device.name}: {occ.limiter}"
        )

    grid_size = counts.grid_size
    concurrent = occ.blocks_per_sm * device.sms

    block = counts.block
    traffic = estimate_traffic(
        device,
        ldg_bytes_per_block=block.ldg_bytes,
        ideal_ldg_bytes_per_block=block.ideal_ldg_bytes,
        st_bytes_per_block=block.st_bytes,
        grid_m=grid_mn[0],
        grid_n=grid_mn[1],
        kg=kg,
        concurrent_blocks=concurrent,
        a_bytes_frac=a_bytes_frac,
        staged_bytes_per_block=staged_bytes,
        staged_depth=staged_depth,
    )
    dram_bytes_per_block = traffic.dram_bytes / max(1, grid_size)

    full_waves, rem = divmod(grid_size, concurrent)
    total_ms = 0.0
    limiter = "alu"
    if full_waves:
        t, limiter = _wave_time_ms(
            device, counts, concurrent, occ.blocks_per_sm,
            dram_bytes_per_block, dtype,
        )
        total_ms += t * full_waves
    if rem:
        t, lim_p = _wave_time_ms(
            device, counts, rem, occ.blocks_per_sm,
            dram_bytes_per_block, dtype,
        )
        total_ms += t
        if not full_waves:
            limiter = lim_p

    total_ms += device.kernel_launch_us * 1e-3
    waves = grid_size / concurrent

    return KernelStats(
        device_name=device.name,
        time_ms=total_ms,
        useful_flops=useful_flops,
        padded_flops=padded_flops,
        occupancy=occ,
        resources=res,
        traffic=traffic,
        limiter=limiter,
        waves=waves,
        grid_size=grid_size,
    )


# ----------------------------------------------------------------------
# GEMM
# ----------------------------------------------------------------------

def simulate_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: GemmShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """Noise-free model evaluation of a GEMM kernel."""
    if check_legality:
        violations = gemm_violations(cfg, shape.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))
    kernel = GemmKernel(
        cfg=cfg,
        shape=shape,
        device=device,
        bounds_mode=bounds_mode,
        allow_fp16x2=allow_fp16x2,
    )
    eff = kernel.effective_shape
    counts = kernel.kernel_counts()
    res = gemm_resources(cfg, shape.dtype)
    gm, gn, _ = cfg.grid(eff)
    staged_bytes = cfg.db * (cfg.ml + cfg.nl) * cfg.u * cfg.kl * shape.dtype.size
    return _simulate(
        device,
        counts,
        res,
        grid_mn=(gm, gn),
        kg=cfg.kg,
        useful_flops=shape.flops,
        padded_flops=cfg.padded_flops(eff),
        staged_bytes=staged_bytes,
        staged_depth=cfg.u * cfg.kl,
        dtype=shape.dtype,
        a_bytes_frac=cfg.ml / (cfg.ml + cfg.nl),
    )


def benchmark_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: GemmShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> float:
    """Measured TFLOPS — the simulator's analogue of launching the kernel.

    Deterministic per (device, cfg, shape); ``reps`` averages independent
    repetitions like a real benchmark loop would.
    """
    stats = simulate_gemm(
        device, cfg, shape,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    key = f"{device.name}|gemm|{cfg.as_dict()}|{shape}"
    return stats.tflops * averaged_noise_factor(key, reps, sigma)


# ----------------------------------------------------------------------
# CONV
# ----------------------------------------------------------------------

def simulate_conv(
    device: DeviceSpec,
    cfg: ConvConfig,
    shape: ConvShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """Noise-free model evaluation of an implicit-GEMM convolution kernel."""
    if check_legality:
        violations = conv_violations(cfg, shape.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))
    kernel = ConvKernel(
        cfg=cfg,
        shape=shape,
        device=device,
        bounds_mode=bounds_mode,
        allow_fp16x2=allow_fp16x2,
    )
    counts = kernel.kernel_counts()
    res = conv_resources(cfg, shape.dtype)
    gk, gp, gq, gn, _ = cfg.grid(shape)
    # Implicit-GEMM grid: NPQ tiles x K tiles.
    grid_m = gp * gq * gn
    grid_n = gk
    staged_bytes = (
        cfg.db * (cfg.block_m + cfg.block_n) * cfg.u * cfg.cl * shape.dtype.size
    )
    return _simulate(
        device,
        counts,
        res,
        grid_mn=(grid_m, grid_n),
        kg=cfg.cg,
        useful_flops=shape.flops,
        padded_flops=cfg.padded_flops(shape),
        staged_bytes=staged_bytes,
        staged_depth=cfg.u * cfg.cl,
        dtype=shape.dtype,
        a_bytes_frac=cfg.block_m / (cfg.block_m + cfg.block_n),
    )


def benchmark_conv(
    device: DeviceSpec,
    cfg: ConvConfig,
    shape: ConvShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> float:
    """Measured TFLOPS for a convolution kernel (deterministic noise)."""
    stats = simulate_conv(
        device, cfg, shape,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    key = f"{device.name}|conv|{cfg.as_dict()}|{shape}"
    return stats.tflops * averaged_noise_factor(key, reps, sigma)
