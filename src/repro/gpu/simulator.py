"""The simulated GPU: ground-truth performance for generated kernels.

This module is the stand-in for the paper's physical GTX 980 TI / Tesla P100
(see DESIGN.md).  ``simulate_gemm`` / ``simulate_conv`` run the full model
chain — codegen counts → occupancy → wave schedule → per-pipe latency-hiding
throughput → L2/DRAM traffic — and return a :class:`KernelStats` with the
kernel's time and the diagnostic quantities the paper reports in §8.1
(occupancy, register count, shared memory, L2 hit rate).

``benchmark_gemm`` / ``benchmark_conv`` add deterministic measurement noise
and are what the auto-tuner's data-generation and re-ranking stages call:
they play the role of actually launching the kernel.

The whole chain is built as an *array core*: ``simulate_gemm_many`` /
``simulate_conv_many`` (and the generic :func:`simulate_many` /
:func:`benchmark_many` dispatchers) evaluate N ``(config, shape)`` pairs in
one struct-of-arrays pass — this is what the offline pipeline (dataset
generation, shortlist re-ranking) runs on.  The scalar functions are thin
N = 1 wrappers over the same core, so batched and per-kernel results are
bit-identical by construction, deterministic noise included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import (
    ResourceArrays,
    ResourceUsage,
    conv_legal_mask,
    conv_resources_arrays,
    conv_violations,
    gemm_legal_mask,
    gemm_resources_arrays,
    gemm_violations,
)
from repro.core.soa import ConvPairArrays, GemmPairArrays
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.latency import pipe_times_arrays
from repro.gpu.memory import TrafficArrays, TrafficEstimate, estimate_traffic_arrays
from repro.gpu.noise import (
    DEFAULT_SIGMA,
    averaged_noise_factor,
    averaged_noise_factors,
)
from repro.gpu.occupancy import Occupancy, OccupancyArrays, occupancy_arrays
from repro.ptx.batch_counts import (
    LaunchArrays,
    conv_launch_arrays,
    gemm_launch_arrays,
)


class IllegalKernelError(ValueError):
    """Raised when a config outside X (the legal set) is simulated."""


#: Bottleneck names indexed by ``KernelStatsArrays.limiter_idx``: the three
#: issue pipes of the latency model plus device-wide DRAM bandwidth.
LIMITERS = ("alu", "ldst", "issue", "dram")
_DRAM_LIMITER = 3


def measurement_key(device: DeviceSpec, op: str, cfg, shape) -> str:
    """The deterministic-noise key of one measurement.

    Every benchmark entry point — scalar or batched, any op — must derive
    its noise from this exact string: it is what makes a batched
    measurement bit-identical to the per-kernel one, and what keeps
    repeated measurements of the same (device, config, shape) consistent.
    """
    return f"{device.name}|{op}|{cfg.as_dict()}|{shape}"


def measurement_keys(device: DeviceSpec, op: str, cfgs, shapes) -> list[str]:
    return [
        measurement_key(device, op, cfg, shape)
        for cfg, shape in zip(cfgs, shapes)
    ]


@dataclass(frozen=True)
class KernelStats:
    """Everything the simulator knows about one kernel launch."""

    device_name: str
    time_ms: float
    useful_flops: int
    padded_flops: int
    occupancy: Occupancy
    resources: ResourceUsage
    traffic: TrafficEstimate
    limiter: str
    waves: float
    grid_size: int

    @property
    def tflops(self) -> float:
        """Effective throughput in useful TFLOPS (the paper's y-axis)."""
        return self.useful_flops / self.time_ms / 1e9

    @property
    def padding_waste(self) -> float:
        """Fraction of executed FLOPs spent on predicated-off tile padding."""
        if self.padded_flops == 0:
            return 0.0
        return 1.0 - self.useful_flops / self.padded_flops

    @property
    def dram_gbs(self) -> float:
        return self.traffic.dram_bytes / (self.time_ms * 1e6)


@dataclass(frozen=True)
class KernelStatsArrays:
    """Struct-of-arrays :class:`KernelStats` for a batch of launches.

    ``legal`` marks rows whose config is inside X *and* fits on the device;
    illegal rows carry NaN times (the batched analogue of
    :class:`IllegalKernelError`).
    """

    device_name: str
    time_ms: np.ndarray
    useful_flops: np.ndarray
    padded_flops: np.ndarray
    occupancy: OccupancyArrays
    resources: ResourceArrays
    traffic: TrafficArrays
    limiter_idx: np.ndarray
    waves: np.ndarray
    grid_size: np.ndarray
    legal: np.ndarray

    def __len__(self) -> int:
        return len(self.time_ms)

    @property
    def tflops(self) -> np.ndarray:
        """Useful TFLOPS per launch (NaN on illegal rows)."""
        return self.useful_flops / self.time_ms / 1e9

    def limiter_name(self, i: int) -> str:
        return LIMITERS[int(self.limiter_idx[i])]

    def row(self, i: int) -> KernelStats:
        """Materialize one row as a scalar :class:`KernelStats`."""
        return KernelStats(
            device_name=self.device_name,
            time_ms=float(self.time_ms[i]),
            useful_flops=int(self.useful_flops[i]),
            padded_flops=int(self.padded_flops[i]),
            occupancy=self.occupancy.row(i),
            resources=ResourceUsage(
                threads=int(self.resources.threads[i]),
                regs_per_thread=int(self.resources.regs_per_thread[i]),
                smem_bytes=int(self.resources.smem_bytes[i]),
            ),
            traffic=self.traffic.row(i),
            limiter=self.limiter_name(i),
            waves=float(self.waves[i]),
            grid_size=int(self.grid_size[i]),
        )


def _wave_time_arrays(
    device: DeviceSpec,
    launch: LaunchArrays,
    blocks_in_wave: np.ndarray,
    blocks_per_sm_cap: np.ndarray,
    dram_bytes_per_block: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Time (ms) and limiter index for one wave of concurrent blocks, per row."""
    counts = launch.counts
    busy_sms = np.minimum(device.sms, blocks_in_wave)
    b_eff = -(-blocks_in_wave // busy_sms)
    b_eff = np.minimum(b_eff, blocks_per_sm_cap)
    warps = b_eff * -(-launch.threads_per_block // device.warp_size)

    pipes = pipe_times_arrays(
        device,
        fma=counts.fma,
        iop=counts.iop,
        ldg=counts.ldg,
        stg=counts.stg,
        atom=counts.atom,
        smem_ops=counts.smem_ops,
        bar=counts.bar,
        mlp=counts.mlp,
        ilp=counts.ilp,
        flops_per_fma=counts.flops_per_fma,
        dsize=launch.dsize,
        blocks_per_sm=b_eff,
        warps_per_sm=warps,
    )
    clock_hz = device.boost_mhz * 1e6
    t_sm_ms = pipes.cycles / clock_hz * 1e3

    # DRAM is a device-wide resource: the wave's traffic at full bandwidth.
    wave_bytes = dram_bytes_per_block * blocks_in_wave
    t_dram_ms = wave_bytes / (device.mem_bw_gbs * 1e9) * 1e3

    # Pipeline ramp: the first loads of a wave see full memory latency.
    t_ramp_ms = device.mem_lat / clock_hz * 1e3

    dram_bound = t_dram_ms > t_sm_ms
    t = np.where(dram_bound, t_dram_ms, t_sm_ms) + t_ramp_ms
    limiter = np.where(dram_bound, _DRAM_LIMITER, pipes.limiter_idx)
    return t, limiter


def _simulate_arrays(
    device: DeviceSpec,
    launch: LaunchArrays,
    res: ResourceArrays,
    legal: np.ndarray,
) -> KernelStatsArrays:
    """The array core: occupancy → traffic → wave schedule, N launches at once.

    ``legal`` is the caller's config-legality mask; rows that additionally
    fail to fit on the device (inactive occupancy) are cleared from it, and
    every cleared row reports NaN time.
    """
    occ = occupancy_arrays(
        device, res.threads, res.regs_per_thread, res.smem_bytes
    )
    legal = legal & occ.active

    grid_size = launch.grid_size
    concurrent = occ.blocks_per_sm * device.sms
    # Inactive rows are masked out at the end; clamp their divisors so the
    # vectorized arithmetic stays well-defined.
    conc = np.maximum(concurrent, 1)

    counts = launch.counts
    traffic = estimate_traffic_arrays(
        device,
        ldg_bytes_per_block=counts.ldg_bytes,
        ideal_ldg_bytes_per_block=counts.ideal_ldg_bytes,
        st_bytes_per_block=counts.st_bytes,
        grid_m=launch.grid_m,
        grid_n=launch.grid_n,
        kg=launch.kg,
        concurrent_blocks=concurrent,
        a_bytes_frac=launch.a_bytes_frac,
        staged_bytes_per_block=launch.staged_bytes,
        staged_depth=launch.staged_depth,
    )
    dram_bytes_per_block = traffic.dram_bytes / np.maximum(1, grid_size)

    return _schedule_waves(
        device, launch, res, occ, traffic, legal,
        grid_size=grid_size,
        concurrent=conc,
        dram_bytes_per_block=dram_bytes_per_block,
        useful_flops=launch.useful_flops,
        padded_flops=launch.padded_flops,
    )


def _schedule_waves(
    device: DeviceSpec,
    launch: LaunchArrays,
    res: ResourceArrays,
    occ: OccupancyArrays,
    traffic: TrafficArrays,
    legal: np.ndarray,
    *,
    grid_size: np.ndarray,
    concurrent: np.ndarray,
    dram_bytes_per_block: np.ndarray,
    useful_flops: np.ndarray,
    padded_flops: np.ndarray,
) -> KernelStatsArrays:
    """Price full waves + the remainder wave and assemble the stats batch."""
    full_waves, rem = np.divmod(grid_size, concurrent)
    t_full, lim_full = _wave_time_arrays(
        device, launch, concurrent, occ.blocks_per_sm, dram_bytes_per_block
    )
    t_rem, lim_rem = _wave_time_arrays(
        device, launch, np.maximum(rem, 1), occ.blocks_per_sm,
        dram_bytes_per_block,
    )
    has_full = full_waves > 0
    has_rem = rem > 0
    total_ms = np.where(has_full, t_full * full_waves, 0.0) + np.where(
        has_rem, t_rem, 0.0
    )
    total_ms = total_ms + device.kernel_launch_us * 1e-3
    limiter = np.where(has_full, lim_full, np.where(has_rem, lim_rem, 0))

    return KernelStatsArrays(
        device_name=device.name,
        time_ms=np.where(legal, total_ms, np.nan),
        useful_flops=useful_flops,
        padded_flops=padded_flops,
        occupancy=occ,
        resources=res,
        traffic=traffic,
        limiter_idx=limiter,
        waves=grid_size / concurrent,
        grid_size=grid_size,
        legal=legal,
    )


# ----------------------------------------------------------------------
# GEMM
# ----------------------------------------------------------------------

def simulate_gemm_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStatsArrays:
    """Noise-free model evaluation of N GEMM kernels in one array pass.

    Rows whose config is illegal for its shape's dtype (or does not fit on
    the device) come back with ``legal=False`` and NaN time instead of the
    scalar path's :class:`IllegalKernelError`.
    """
    soa = GemmPairArrays.from_pairs(cfgs, shapes)
    legal = _legal_mask_by_dsize(
        device, soa.config_params(), soa.dsize, gemm_legal_mask, check_legality
    )
    launch = gemm_launch_arrays(
        device, soa, bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2
    )
    res = gemm_resources_arrays(soa.config_params(), soa.dsize)
    return _simulate_arrays(device, launch, res, legal)


def benchmark_gemm_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> np.ndarray:
    """Measured TFLOPS for N GEMM kernels (deterministic noise, NaN = illegal)."""
    stats = simulate_gemm_many(
        device, cfgs, shapes,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    keys = measurement_keys(device, "gemm", cfgs, shapes)
    return stats.tflops * averaged_noise_factors(keys, reps, sigma)


def simulate_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: GemmShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """Noise-free model evaluation of a GEMM kernel (N = 1 wrapper)."""
    if check_legality:
        violations = gemm_violations(cfg, shape.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))
    stats = simulate_gemm_many(
        device, [cfg], [shape],
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
        check_legality=False,
    )
    if not stats.legal[0]:
        raise IllegalKernelError(
            f"kernel does not fit on {device.name}: "
            f"{stats.occupancy.limiter_name(0)}"
        )
    return stats.row(0)


def benchmark_gemm(
    device: DeviceSpec,
    cfg: GemmConfig,
    shape: GemmShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> float:
    """Measured TFLOPS — the simulator's analogue of launching the kernel.

    Deterministic per (device, cfg, shape); ``reps`` averages independent
    repetitions like a real benchmark loop would.
    """
    stats = simulate_gemm(
        device, cfg, shape,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    key = measurement_key(device, "gemm", cfg, shape)
    return stats.tflops * averaged_noise_factor(key, reps, sigma)


# ----------------------------------------------------------------------
# CONV
# ----------------------------------------------------------------------

def simulate_conv_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStatsArrays:
    """Noise-free model evaluation of N implicit-GEMM convolution kernels."""
    soa = ConvPairArrays.from_pairs(cfgs, shapes)
    legal = _legal_mask_by_dsize(
        device, soa.config_params(), soa.dsize, conv_legal_mask, check_legality
    )
    launch = conv_launch_arrays(
        device, soa, bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2
    )
    res = conv_resources_arrays(soa.config_params(), soa.dsize)
    return _simulate_arrays(device, launch, res, legal)


def benchmark_conv_many(
    device: DeviceSpec,
    cfgs,
    shapes,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> np.ndarray:
    """Measured TFLOPS for N convolution kernels (NaN = illegal)."""
    stats = simulate_conv_many(
        device, cfgs, shapes,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    keys = measurement_keys(device, "conv", cfgs, shapes)
    return stats.tflops * averaged_noise_factors(keys, reps, sigma)


def simulate_conv(
    device: DeviceSpec,
    cfg: ConvConfig,
    shape: ConvShape,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
    check_legality: bool = True,
) -> KernelStats:
    """Noise-free model evaluation of one convolution kernel (N = 1 wrapper)."""
    if check_legality:
        violations = conv_violations(cfg, shape.dtype, device)
        if violations:
            raise IllegalKernelError("; ".join(violations))
    stats = simulate_conv_many(
        device, [cfg], [shape],
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
        check_legality=False,
    )
    if not stats.legal[0]:
        raise IllegalKernelError(
            f"kernel does not fit on {device.name}: "
            f"{stats.occupancy.limiter_name(0)}"
        )
    return stats.row(0)


def benchmark_conv(
    device: DeviceSpec,
    cfg: ConvConfig,
    shape: ConvShape,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> float:
    """Measured TFLOPS for a convolution kernel (deterministic noise)."""
    stats = simulate_conv(
        device, cfg, shape,
        bounds_mode=bounds_mode, allow_fp16x2=allow_fp16x2,
    )
    key = measurement_key(device, "conv", cfg, shape)
    return stats.tflops * averaged_noise_factor(key, reps, sigma)


# ----------------------------------------------------------------------
# Generic batched entry points (dispatch through the op registry)
# ----------------------------------------------------------------------

def simulate_many(device: DeviceSpec, op, cfgs, shapes, **kwargs):
    """Batched noise-free evaluation for any registered op.

    Ops exposing a vectorized path (``gemm``/``conv``/``bgemm``) run it;
    there is no loop fallback here because a :class:`KernelStatsArrays`
    cannot be stitched from scalar rows cheaply — use
    :func:`benchmark_many` (which does fall back) when only measurements
    are needed.
    """
    from repro.core.ops import get_op

    spec = get_op(op)
    if spec.simulate_many is None:
        raise ValueError(
            f"op {spec.name!r} registers no batched simulate path"
        )
    return spec.simulate_many(device, cfgs, shapes, **kwargs)


def benchmark_many(
    device: DeviceSpec,
    op,
    cfgs,
    shapes,
    *,
    reps: int = 1,
    sigma: float = DEFAULT_SIGMA,
) -> np.ndarray:
    """Measured TFLOPS for N (config, shape) pairs of any registered op.

    Dispatches to the op's ``benchmark_many`` slot when registered, else
    loops over the scalar benchmark; either way illegal pairs yield NaN.
    """
    from repro.core.ops import get_op

    return get_op(op).benchmark_pairs(
        device, cfgs, shapes, reps=reps, sigma=sigma
    )


def _legal_mask_by_dsize(
    device: DeviceSpec,
    params,
    dsize: np.ndarray,
    mask_fn,
    check_legality: bool,
) -> np.ndarray:
    """Run a per-dtype legality mask over a mixed-dtype batch."""
    if not check_legality:
        return np.ones(len(dsize), dtype=bool)
    legal = np.zeros(len(dsize), dtype=bool)
    for size in np.unique(dsize):
        sel = dsize == size
        sub = {name: col[sel] for name, col in params.items()}
        legal[sel] = mask_fn(device, sub, DType(int(size)))
    return legal
