"""The §8 analysis experiments: kernel anatomy and the PTX advantage.

``kernel_anatomy`` reproduces the §8.1 comparison table — TFLOPS, tile
parameters, shared memory, registers, occupancy and L2 hit rate for two
kernels on the same problem.  ``predication_overhead`` reproduces §8.3's
claim that CUDA-C-style bounds checking costs 15-20% where PTX predication
costs ~2%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GemmConfig
from repro.core.types import GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import KernelStats, simulate_gemm


@dataclass(frozen=True)
class KernelAnatomy:
    """The rows of the paper's §8.1 comparison table for one kernel."""

    label: str
    cfg: GemmConfig
    stats: KernelStats

    def rows(self) -> list[tuple[str, str]]:
        s = self.stats
        return [
            ("TFLOPS", f"{s.tflops:.2f}"),
            ("ML", str(self.cfg.ml)),
            ("NL", str(self.cfg.nl)),
            ("KL", str(self.cfg.kl)),
            ("U", str(self.cfg.u)),
            ("Shared Memory", f"{s.resources.smem_bytes / 1024:.2f}kB"),
            ("Registers Count", str(s.resources.regs_per_thread)),
            ("Occupancy", f"{s.occupancy.occupancy:.0%}"),
            ("L2 hit rate", f"{s.traffic.l2_hit_rate:.0%}"),
        ]


def kernel_anatomy(
    device: DeviceSpec,
    shape: GemmShape,
    cfg: GemmConfig,
    label: str,
    allow_fp16x2: bool = True,
) -> KernelAnatomy:
    stats = simulate_gemm(device, cfg, shape, allow_fp16x2=allow_fp16x2)
    return KernelAnatomy(label=label, cfg=cfg, stats=stats)


def anatomy_table(
    anatomies: list[KernelAnatomy],
) -> tuple[list[str], list[list[str]]]:
    """(headers, rows) comparing kernels side by side, §8.1 style."""
    headers = [""] + [a.label for a in anatomies]
    row_names = [name for name, _ in anatomies[0].rows()]
    rows = []
    for i, name in enumerate(row_names):
        rows.append([name] + [a.rows()[i][1] for a in anatomies])
    return headers, rows


@dataclass(frozen=True)
class PredicationResult:
    """§8.3: relative cost of the three bounds-checking strategies."""

    shape: GemmShape
    predicated_tflops: float
    checked_tflops: float
    padded_tflops: float

    @property
    def checked_overhead(self) -> float:
        """Fractional slowdown of CUDA-C-style checks vs no checks."""
        return 1.0 - self.checked_tflops / self.padded_free_tflops

    @property
    def predicated_overhead(self) -> float:
        return 1.0 - self.predicated_tflops / self.padded_free_tflops

    @property
    def padded_free_tflops(self) -> float:
        """The no-overhead ceiling: max of all three strategies."""
        return max(
            self.predicated_tflops, self.checked_tflops, self.padded_tflops
        )


def predication_overhead(
    device: DeviceSpec,
    shape: GemmShape,
    cfg: GemmConfig,
) -> PredicationResult:
    """Simulate the same kernel under all three bounds-handling modes."""
    return PredicationResult(
        shape=shape,
        predicated_tflops=simulate_gemm(
            device, cfg, shape, bounds_mode="predicated"
        ).tflops,
        checked_tflops=simulate_gemm(
            device, cfg, shape, bounds_mode="checked"
        ).tflops,
        padded_tflops=simulate_gemm(
            device, cfg, shape, bounds_mode="padded"
        ).tflops,
    )
