"""Application-level evaluation: whole network steps, not single kernels.

Computes per-step wall time (sum of kernel times) under ISAAC and under
the baseline library, exposing the amplification effect: one badly chosen
kernel in a chain drags the entire application step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cublas import CuBLASLike
from repro.baselines.cudnn import CuDNNLike
from repro.core.ops import get_op
from repro.core.tuner import Isaac
from repro.core.types import ConvShape, GemmShape
from repro.gpu.simulator import simulate_conv, simulate_gemm
from repro.workloads.networks import NetworkStep


@dataclass(frozen=True)
class AppResult:
    """End-to-end timing of one network step."""

    step: NetworkStep
    isaac_ms: float
    baseline_ms: float
    per_kernel: tuple[tuple[str, float, float], ...]  # label, isaac, baseline

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.isaac_ms

    @property
    def isaac_tflops(self) -> float:
        return self.step.total_flops / self.isaac_ms / 1e9

    @property
    def baseline_tflops(self) -> float:
        return self.step.total_flops / self.baseline_ms / 1e9


def _kernel_time_ms(device, shape, cfg, op) -> float:
    return get_op(op).simulate(device, cfg, shape).time_ms


def run_network_step(
    tuner: Isaac,
    step: NetworkStep,
    *,
    k: int = 60,
    reps: int = 3,
) -> AppResult:
    """Tune every kernel of the step; compare against the baseline library.

    Repeated shapes within a step are tuned once (the profile-cache effect:
    an application sees each distinct shape once per deployment).
    """
    device = tuner.device
    gemm_lib = CuBLASLike(device)
    conv_lib = CuDNNLike(device)

    tuned: dict[object, object] = {}
    rows = []
    isaac_total = 0.0
    base_total = 0.0
    for label, shape in step.kernels:
        if shape not in tuned:
            tuned[shape] = tuner.best_kernel(shape, k=k, reps=reps).config
        cfg = tuned[shape]
        isaac_ms = _kernel_time_ms(device, shape, cfg, tuner.op)

        if isinstance(shape, GemmShape):
            variants = {x.name: x for x in gemm_lib.kernels(shape.dtype)}
            chosen = variants.get(gemm_lib.select(shape).name)
            if chosen is None:
                chosen = gemm_lib.best_kernel(shape)
            base_ms = simulate_gemm(
                device, chosen.cfg, shape, allow_fp16x2=chosen.fp16x2
            ).time_ms
        else:
            kernel = conv_lib.select(shape)
            base_ms = simulate_conv(
                device, kernel.cfg, shape, allow_fp16x2=kernel.fp16x2
            ).time_ms

        rows.append((label, isaac_ms, base_ms))
        isaac_total += isaac_ms
        base_total += base_ms

    return AppResult(
        step=step,
        isaac_ms=isaac_total,
        baseline_ms=base_total,
        per_kernel=tuple(rows),
    )
