"""Application-level evaluation: whole network steps, not single kernels.

Computes per-step wall time (sum of kernel times) under ISAAC and under
the baseline library, exposing the amplification effect: one badly chosen
kernel in a chain drags the entire application step.

Kernel selection goes through the :class:`~repro.service.engine.Engine`
front door: the step's distinct shapes are answered in one batched
``query_many`` call (repeated shapes within a step hit the engine cache —
the profile-cache effect: an application sees each distinct shape once
per deployment).  A bare :class:`~repro.core.tuner.Isaac` is accepted for
convenience and wrapped in a throwaway engine, and an
:class:`~repro.service.async_engine.AsyncEngine` routes the same batch
through the micro-batching shards (via its background-loop sync bridge)
— answers are config-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cublas import CuBLASLike
from repro.baselines.cudnn import CuDNNLike
from repro.core.ops import get_op
from repro.core.tuner import Isaac
from repro.core.types import GemmShape
from repro.gpu.device import get_device
from repro.gpu.simulator import simulate_conv, simulate_gemm
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest
from repro.workloads.networks import NetworkStep


@dataclass(frozen=True)
class AppResult:
    """End-to-end timing of one network step."""

    step: NetworkStep
    isaac_ms: float
    baseline_ms: float
    per_kernel: tuple[tuple[str, float, float], ...]  # label, isaac, baseline

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.isaac_ms

    @property
    def isaac_tflops(self) -> float:
        return self.step.total_flops / self.isaac_ms / 1e9

    @property
    def baseline_tflops(self) -> float:
        return self.step.total_flops / self.baseline_ms / 1e9


def _kernel_time_ms(device, shape, cfg, op) -> float:
    return get_op(op).simulate(device, cfg, shape).time_ms


def _baseline_time_ms(device, shape, gemm_lib, conv_lib) -> float:
    if isinstance(shape, GemmShape):
        variants = {x.name: x for x in gemm_lib.kernels(shape.dtype)}
        chosen = variants.get(gemm_lib.select(shape).name)
        if chosen is None:
            chosen = gemm_lib.best_kernel(shape)
        return simulate_gemm(
            device, chosen.cfg, shape, allow_fp16x2=chosen.fp16x2
        ).time_ms
    kernel = conv_lib.select(shape)
    return simulate_conv(
        device, kernel.cfg, shape, allow_fp16x2=kernel.fp16x2
    ).time_ms


def run_network_step(
    engine: Engine | Isaac | AsyncEngine,
    step: NetworkStep,
    *,
    k: int = 60,
    reps: int = 3,
    device: str | None = None,
) -> AppResult:
    """Tune every kernel of the step; compare against the baseline library.

    ``engine`` is the serving :class:`Engine` (or a tuned ``Isaac``,
    which is wrapped, or an :class:`AsyncEngine`, dispatched through its
    sync bridge).  All distinct shapes go through one batched
    ``query_many`` dispatch; ``device`` selects among multi-device
    engines.
    """
    if isinstance(engine, Isaac):
        wrapped = Engine(max_workers=0)
        wrapped.register(engine)
        engine = wrapped
    if device is None:
        names = engine.devices()
        if len(names) != 1:
            raise ValueError(
                f"engine serves {list(names)}; pass device= to choose"
            )
        device = names[0]
    device_spec = get_device(device)
    gemm_lib = CuBLASLike(device_spec)
    conv_lib = CuDNNLike(device_spec)

    distinct = list(dict.fromkeys(shape for _, shape in step.kernels))
    requests = [
        KernelRequest(
            op=engine.op_for_shape(shape, device=device),
            shape=shape,
            device=device,
            k=k,
            reps=reps,
        )
        for shape in distinct
    ]
    if isinstance(engine, AsyncEngine):
        replies = engine.query_many_sync(requests)
    else:
        replies = engine.query_many(requests)
    chosen = {
        shape: (reply.config, reply.request.op)
        for shape, reply in zip(distinct, replies)
    }

    rows = []
    isaac_total = 0.0
    base_total = 0.0
    for label, shape in step.kernels:
        cfg, op = chosen[shape]
        isaac_ms = _kernel_time_ms(device_spec, shape, cfg, op)
        base_ms = _baseline_time_ms(device_spec, shape, gemm_lib, conv_lib)
        rows.append((label, isaac_ms, base_ms))
        isaac_total += isaac_ms
        base_total += base_ms

    return AppResult(
        step=step,
        isaac_ms=isaac_total,
        baseline_ms=base_total,
        per_kernel=tuple(rows),
    )
