"""Self-bootstrapping analysis (paper §5).

"Since MLP involving small feature vectors (around 20 in our case) rely on
highly rectangular matrix computations, our system could itself be
bootstrapped to make its own auto-tuning procedure more efficient."

This module makes the observation concrete: it extracts the GEMM problems
of the tuner's own MLP (one per layer, batched inference over the
exhaustive search's candidate matrix), tunes kernels for them, and reports
the speedup over the cuBLAS-like heuristics — i.e. how much faster the
runtime search itself would run on ISAAC-generated kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cublas import CuBLASLike
from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.mlp.network import MLP


@dataclass(frozen=True)
class BootstrapRow:
    """One MLP layer's inference GEMM."""

    layer: str
    shape: GemmShape
    isaac_tflops: float
    cublas_tflops: float

    @property
    def speedup(self) -> float:
        return self.isaac_tflops / self.cublas_tflops


def inference_gemms(
    model: MLP, batch_rows: int, dtype: DType = DType.FP32
) -> list[tuple[str, GemmShape]]:
    """The GEMM problems of one batched forward pass.

    A layer mapping ``n_in -> n_out`` over ``batch_rows`` candidates is a
    (batch_rows x n_in) @ (n_in x n_out) product — extremely rectangular
    when scoring ~10^5 candidates through ~10^2-wide layers.
    """
    out = []
    for i, layer in enumerate(model.layers):
        n_in, n_out = layer.w.shape
        out.append(
            (
                f"layer{i} ({n_in}->{n_out})",
                GemmShape(m=batch_rows, n=n_out, k=n_in, dtype=dtype),
            )
        )
    return out


def bootstrap_report(
    tuner: Isaac,
    *,
    batch_rows: int = 65_536,
    k: int = 60,
    reps: int = 3,
) -> list[BootstrapRow]:
    """Tune the tuner's own inference GEMMs and compare to the baseline.

    ``batch_rows`` defaults to the search's prediction batch size.
    """
    if not tuner.is_tuned:
        raise RuntimeError("tune() the tuner before bootstrapping it")
    model = tuner.fit_result.model
    lib = CuBLASLike(tuner.device)
    rows = []
    for label, shape in inference_gemms(model, batch_rows):
        best = tuner.best_kernel(shape, k=k, reps=reps)
        rows.append(
            BootstrapRow(
                layer=label,
                shape=shape,
                isaac_tflops=best.measured_tflops,
                cublas_tflops=lib.tflops(shape, "heuristic", reps=reps),
            )
        )
    return rows
