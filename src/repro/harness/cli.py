"""Command-line entry point: ``repro-experiments <experiment> [...]``.

Runs any of the paper's tables/figures and prints the rendered text.
``repro-experiments all`` runs everything at default (laptop-scale)
budgets; individual experiments accept ``--samples`` and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as ex

_REGISTRY = {
    "table1": lambda a: ex.run_table1(seed=a.seed),
    "table2": lambda a: ex.run_table2(n_train=a.samples, seed=a.seed),
    "table3": lambda a: ex.run_table3(),
    "fig5": lambda a: ex.run_fig5(seed=a.seed),
    "fig6": lambda a: ex.run_fig6(n_samples=a.samples, seed=a.seed),
    "fig7": lambda a: ex.run_fig7(n_samples=a.samples, seed=a.seed),
    "fig8": lambda a: ex.run_fig8(n_samples=a.samples, seed=a.seed),
    "fig9": lambda a: ex.run_fig9(n_samples=a.samples, seed=a.seed),
    "fig10": lambda a: ex.run_fig10(n_samples=a.samples, seed=a.seed),
    "fig11": lambda a: ex.run_fig11(n_samples=a.samples, seed=a.seed),
    "table6": lambda a: ex.run_table6(n_samples=a.samples, seed=a.seed),
    "sec81": lambda a: ex.run_sec81(n_samples=a.samples, seed=a.seed),
    "sec83": lambda a: ex.run_sec83(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables/figures of the ISAAC paper (SC'17) "
        "on the simulated GPU substrate.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_REGISTRY, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=12_000,
        help="training samples for learned components (default 12000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = list(_REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        result = _REGISTRY[name](args)
        print(result)
        print(f"[{name} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
