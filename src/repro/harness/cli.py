"""Command-line entry point: experiments, plus the Engine service verbs.

Two families of commands share one binary:

* the paper's tables/figures (legacy form, unchanged)::

      repro-experiments table3
      repro-experiments fig7 --samples 20000 --seed 1
      repro-experiments all

* the serving workflow, built on the :class:`~repro.service.engine.Engine`
  facade::

      repro-experiments tune   --models m/ --device pascal --op gemm
      repro-experiments query  --models m/ --op gemm --shape 2560x16x2560
      repro-experiments warmup --models m/ --network rnn
      repro-experiments serve  --models m/ --network rnn --concurrency 64
      repro-experiments models --models m/

  ``tune`` fits one (device, op) pair and saves it into the model
  directory; ``query`` answers one shape (cache -> batched search) and
  ``warmup`` pre-populates the cache for a whole network graph.  The
  serving verbs run the engine as a context manager, so the in-memory
  cache is flushed to the on-disk profile cache atomically on exit.

  ``serve`` drives the :class:`~repro.service.async_engine.AsyncEngine`
  front door: N concurrent clients replay a network's kernel queries
  through the time-windowed micro-batching shards, and the run reports
  throughput plus per-shard batch/latency stats (the service-rate path;
  see docs/architecture.md "Async serving").  With ``--online`` the
  engine also fine-tunes the served model from the measured rerank
  results as traffic flows (versioned hot-swaps; see docs/architecture.md
  "Online learning loop"), and ``models`` lists the resulting store —
  every saved fit with its version lineage plus the replayable update
  log.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import experiments as ex

_REGISTRY = {
    "table1": lambda a: ex.run_table1(seed=a.seed),
    "table2": lambda a: ex.run_table2(n_train=a.samples, seed=a.seed),
    "table3": lambda a: ex.run_table3(),
    "fig5": lambda a: ex.run_fig5(seed=a.seed),
    "fig6": lambda a: ex.run_fig6(n_samples=a.samples, seed=a.seed),
    "fig7": lambda a: ex.run_fig7(n_samples=a.samples, seed=a.seed),
    "fig8": lambda a: ex.run_fig8(n_samples=a.samples, seed=a.seed),
    "fig9": lambda a: ex.run_fig9(n_samples=a.samples, seed=a.seed),
    "fig10": lambda a: ex.run_fig10(n_samples=a.samples, seed=a.seed),
    "fig11": lambda a: ex.run_fig11(n_samples=a.samples, seed=a.seed),
    "table6": lambda a: ex.run_table6(n_samples=a.samples, seed=a.seed),
    "sec81": lambda a: ex.run_sec81(n_samples=a.samples, seed=a.seed),
    "sec83": lambda a: ex.run_sec83(),
}

_SERVICE_COMMANDS = ("tune", "query", "warmup", "serve", "models")


# ----------------------------------------------------------------------
# Service verbs
# ----------------------------------------------------------------------

def _parse_dtype(name: str):
    from repro.core.types import DType

    try:
        return DType[name.upper()]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown dtype {name!r}; known: "
            f"{', '.join(d.name.lower() for d in DType)}"
        ) from None


def _parse_shape(op: str, text: str, dtype, layout: str):
    """Build an op's shape from its CLI spelling.

    * gemm — ``MxNxK`` (+ ``--layout`` NN/NT/TN/TT)
    * bgemm — ``BxMxNxK``
    * conv — ``NxCxHxWxKxRxS``
    """
    from repro.core.batched import BatchedGemmShape
    from repro.core.types import ConvShape, GemmShape

    dims = [int(d) for d in text.lower().split("x")]
    layout = layout.upper()
    if len(layout) != 2 or set(layout) - {"N", "T"}:
        raise SystemExit(f"bad --layout {layout!r}; expected NN/NT/TN/TT")
    ta, tb = layout[0] == "T", layout[1] == "T"
    if op == "gemm" and len(dims) == 3:
        return GemmShape(*dims, dtype=dtype, ta=ta, tb=tb)
    if op == "bgemm" and len(dims) == 4:
        b, m, n, k = dims
        return BatchedGemmShape(
            batch=b, base=GemmShape(m, n, k, dtype=dtype, ta=ta, tb=tb)
        )
    if op == "conv" and len(dims) == 7:
        n, c, h, w, k, r, s = dims
        return ConvShape(n=n, c=c, h=h, w=w, k=k, r=r, s=s, dtype=dtype)
    raise SystemExit(
        f"cannot parse {op!r} shape from {text!r} "
        "(gemm: MxNxK, bgemm: BxMxNxK, conv: NxCxHxWxKxRxS)"
    )


def _networks() -> dict:
    from repro.workloads.networks import (
        blocked_svd_sweep,
        face_recognition_forward,
        ica_pipeline_step,
        rnn_training_step,
    )

    return {
        "rnn": rnn_training_step,
        "ica": ica_pipeline_step,
        "face": face_recognition_forward,
        "svd": blocked_svd_sweep,
    }


def _service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Engine service verbs (tune / query / warmup).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--models", required=True, metavar="DIR",
            help="model directory (saved fits + profiles.json)",
        )
        p.add_argument("--device", default=None,
                       help="device name or alias (e.g. pascal, maxwell)")

    def cascade_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cascade", action=argparse.BooleanOptionalAction,
            default=True,
            help="two-stage cascade search: coarse-score all candidates, "
            "full model only on a provably safe shortlist "
            "(--no-cascade forces exhaustive scoring)",
        )
        p.add_argument(
            "--cascade-keep", type=int, default=None, metavar="N",
            help="stage-1 shortlist length (default: the search's own)",
        )

    tune = sub.add_parser("tune", help="fit one (device, op) and save it")
    common(tune)
    tune.add_argument("--op", default="gemm")
    tune.add_argument("--samples", type=int, default=20_000)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--epochs", type=int, default=40)
    tune.add_argument(
        "--dtypes", default=None,
        help="comma-separated (e.g. fp32,fp16); default: the op's own",
    )

    query = sub.add_parser("query", help="which kernel for this shape, now")
    common(query)
    query.add_argument("--op", default="gemm")
    query.add_argument("--shape", required=True,
                       help="gemm: MxNxK, bgemm: BxMxNxK, conv: NxCxHxWxKxRxS")
    query.add_argument("--dtype", default="fp32")
    query.add_argument("--layout", default="NT",
                       help="GEMM operand layout (NN/NT/TN/TT)")
    query.add_argument("-k", type=int, default=100,
                       help="re-ranked short-list length")
    query.add_argument("--reps", type=int, default=3)
    cascade_opts(query)

    warmup = sub.add_parser(
        "warmup", help="pre-populate the cache for a network graph"
    )
    common(warmup)
    warmup.add_argument(
        "--network", required=True,
        choices=[*_networks(), "all"],
    )
    warmup.add_argument("-k", type=int, default=60)
    warmup.add_argument("--reps", type=int, default=3)

    serve = sub.add_parser(
        "serve",
        help="replay a network's queries through the async "
        "micro-batching front door at a given concurrency",
    )
    common(serve)
    serve.add_argument(
        "--network", required=True,
        choices=[*_networks(), "all"],
    )
    serve.add_argument("--passes", type=int, default=2,
                       help="how many times each client stream repeats "
                       "the network's kernels (repeats hit the cache)")
    serve.add_argument("--concurrency", type=int, default=64,
                       help="number of concurrent client tasks")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batching window per shard")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="admission-control bound on in-flight misses")
    serve.add_argument("-k", type=int, default=60)
    serve.add_argument("--reps", type=int, default=3)
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes for the sharded serving "
                       "tier (0 = in-process flushes)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="end-to-end deadline per request; expired "
                       "requests are shed with DeadlineExceeded instead "
                       "of served late (default: no deadline)")
    serve.add_argument("--online", action="store_true",
                       help="fine-tune the served model from measured "
                       "rerank results (versioned hot-swaps)")
    serve.add_argument("--online-every", type=int, default=64,
                       help="fine-tune after this many new measured pairs")
    serve.add_argument("--online-interval", type=float, default=None,
                       help="also fine-tune every T seconds of wall clock "
                       "(off by default: wall-clock triggers are outside "
                       "the replay-determinism contract)")
    serve.add_argument("--online-epochs", type=int, default=4,
                       help="training epochs per fine-tune step")
    serve.add_argument("--online-rollback-tol", type=float, default=None,
                       help="reject a fine-tune whose anchor-slice "
                       "val_mse regresses past the parent's by this "
                       "relative tolerance (default: guard off)")
    serve.add_argument("--slo-qps", type=float, default=None,
                       help="SLO mode: target sustained throughput "
                       "(req/s); derives every serving knob via the "
                       "config compiler instead of the raw --window-ms/"
                       "--max-batch/--max-pending flags")
    serve.add_argument("--slo-p95-ms", type=float, default=None,
                       help="SLO mode: p95 latency budget for warm "
                       "traffic, in ms (required with --slo-qps)")
    serve.add_argument("--slo-mem-mb", type=float, default=512.0,
                       help="SLO mode: memory cap for serving-tier "
                       "state (admission queue + profile cache)")
    serve.add_argument("--slo-profile", default="steady",
                       choices=["steady", "bursty", "cold-heavy"],
                       help="SLO mode: workload modifier picking the "
                       "calibrated derivation profile")
    cascade_opts(serve)

    models = sub.add_parser(
        "models", help="list the model store (fits, versions, lineage)"
    )
    common(models)

    return parser


def _run_serve(args) -> int:
    """The ``serve`` verb: drive the AsyncEngine with concurrent clients."""
    import asyncio

    from repro.service.async_engine import AsyncEngine, BackpressureError
    from repro.service.engine import DeadlineExceeded, KernelRequest
    from repro.service.slo import (
        ServingSLO,
        SLOConfigError,
        validate_serving_knobs,
    )

    # Every CLI-sourced knob goes through the compiler's guard-rail
    # vocabulary; all violations are aggregated into one report so a
    # bad invocation is rejected once, completely, before boot.
    slo_mode = args.slo_qps is not None or args.slo_p95_ms is not None
    if slo_mode and (args.slo_qps is None or args.slo_p95_ms is None):
        raise SystemExit(
            "serve: --slo-qps and --slo-p95-ms must be given together"
        )
    knobs = {
        "deadline_ms": args.deadline_ms,
        "cascade_keep": args.cascade_keep,
        "concurrency": args.concurrency,
        "passes": args.passes,
        "k": args.k,
        "reps": args.reps,
        "online_every": args.online_every,
        "online_epochs": args.online_epochs,
    }
    if not slo_mode:
        # Raw mode: the batching/admission knobs are adopter-set, so
        # they need checking too.  In SLO mode they are derived (and
        # guarded) by the compiler instead.
        knobs.update(
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            workers=args.workers,
        )
    violations = validate_serving_knobs(**knobs)
    plan = None
    if slo_mode:
        spec = ServingSLO(
            target_qps=args.slo_qps,
            p95_ms=args.slo_p95_ms,
            memory_mb=args.slo_mem_mb,
            workload=args.slo_profile,
            workers=args.workers or None,
        )
        try:
            plan = spec.compile()
        except SLOConfigError as exc:
            violations.extend(exc.violations)
    if violations:
        raise SystemExit(f"serve: {SLOConfigError(violations)}")
    if plan is not None:
        print(plan.describe())

    names = list(_networks()) if args.network == "all" else [args.network]
    steps = [_networks()[name]() for name in names]

    engine_kwargs = {
        "cascade": args.cascade,
        "cascade_keep": args.cascade_keep,
    }
    if args.online:
        from repro.service.online import OnlineConfig

        engine_kwargs["online"] = OnlineConfig(
            update_every=args.online_every,
            interval_s=args.online_interval,
            epochs=args.online_epochs,
            rollback_tolerance=args.online_rollback_tol,
        )

    def front_door() -> AsyncEngine:
        if plan is not None:
            # SLO mode: every serving knob comes from the compiled
            # plan; the cascade/online flags remain expert overrides.
            return AsyncEngine.from_slo(args.models, plan, **engine_kwargs)
        return AsyncEngine.open(
            args.models,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            workers=args.workers,
            **engine_kwargs,
        )

    async def main() -> None:
        async with front_door() as engine:
            if args.workers:
                # Boot the pool before timing starts, like a deployment.
                await asyncio.get_running_loop().run_in_executor(
                    None, engine.start_workers
                )
            requests = [
                KernelRequest(
                    op=engine.op_for_shape(shape, device=args.device),
                    shape=shape,
                    device=args.device,
                    k=args.k,
                    reps=args.reps,
                    deadline_ms=args.deadline_ms,
                )
                for _ in range(args.passes)
                for step in steps
                for _label, shape in step.kernels
            ]
            work = iter(enumerate(requests))
            replies: list = [None] * len(requests)
            shed = 0

            async def client() -> None:
                nonlocal shed
                for i, req in work:
                    while True:
                        try:
                            replies[i] = await engine.query(req)
                            break
                        except DeadlineExceeded:
                            # The request's budget is spent; serving it
                            # late helps nobody. Count it and move on.
                            shed += 1
                            break
                        except BackpressureError as exc:
                            if not exc.transient:
                                raise  # shard bound: a config error
                            # Saturated: do what a real client should —
                            # back off one batching window and retry
                            # (rejects show up in the stats report).
                            await asyncio.sleep(
                                max(args.window_ms, 1.0) / 1e3
                            )

            t0 = time.time()
            await asyncio.gather(
                *(client() for _ in range(args.concurrency))
            )
            dt = time.time() - t0

            by_source: dict[str, int] = {}
            for reply in replies:
                if reply is None:  # shed on deadline: no reply to count
                    continue
                by_source[reply.source] = by_source.get(reply.source, 0) + 1
            answered = len(requests) - shed
            shed_note = f" ({shed} shed on deadline)" if shed else ""
            print(
                f"served {answered} requests{shed_note} "
                f"({', '.join(s.name for s in steps)} x {args.passes}) "
                f"with {args.concurrency} clients in {dt:.2f}s "
                f"({answered / dt:.0f} req/s) {by_source}"
            )
            print(engine.stats().describe())
            es = engine.engine.stats()
            print(
                f"engine caches: hit_ratio={es.hit_ratio:.2f} "
                f"(lru={es.lru_hit_ratio:.2f} "
                f"profile={es.profile_hit_ratio:.2f}) "
                f"searches={es.searches} evictions={es.evictions}"
            )
            if es.cascade_searches or es.exhaustive_searches:
                print(
                    f"cascade: searches={es.cascade_searches} "
                    f"exhaustive={es.exhaustive_searches} "
                    f"fallbacks={es.cascade_fallbacks} "
                    f"pruned={es.cascade_pruned} "
                    f"stage1={es.cascade_stage1_ms:.0f}ms "
                    f"stage2={es.cascade_stage2_ms:.0f}ms"
                )

    asyncio.run(main())
    return 0


def _run_models(args) -> int:
    """The ``models`` verb: list saved fits with their version lineage."""
    import json
    from pathlib import Path

    from repro.mlp.serialize import load_fit

    model_dir = Path(args.models)
    if not model_dir.is_dir():
        raise SystemExit(f"model directory {model_dir} does not exist")
    if args.device:
        from repro.gpu.device import get_device

        wanted = get_device(args.device).name
    else:
        wanted = None
    shown = 0
    for path in sorted(model_dir.glob("*.npz")):
        sidecar = path.with_suffix(path.suffix + ".meta.json")
        if not sidecar.exists():
            continue
        meta = json.loads(sidecar.read_text())
        if wanted is not None and meta["device"] != wanted:
            continue
        fit = load_fit(path)
        lin = fit.lineage
        if lin is None or lin.model_version == 0:
            origin = "offline fit"
        else:
            origin = (
                f"parent=v{lin.parent_version} n_samples={lin.n_samples} "
                f"seed={lin.seed}"
            )
        print(
            f"{meta['device']}/{meta['op']} "
            f"dtypes={','.join(meta['dtypes'])} "
            f"v{fit.model_version} ({origin}) "
            f"val_mse={fit.val_mse:.4g} [{path.name}]"
        )
        shown += 1
    if not shown:
        print(f"no saved fits in {model_dir}")
    log_path = model_dir / "online_updates.json"
    if log_path.exists():
        from repro.core import integrity

        if integrity.check(log_path) is False:
            target = integrity.quarantine(log_path)
            print(
                f"online update log failed its integrity check; "
                f"quarantined to {target.name}"
            )
            return 0
        records = json.loads(log_path.read_text())
        print(f"online update log ({len(records)} update(s)):")
        for r in records:
            if wanted is not None and r["device"] != wanted:
                continue
            status = r.get("status", "applied")
            tag = "" if status == "applied" else f" [{status}]"
            print(
                f"  {r['device']}/{r['op']} "
                f"v{r['parent_version']}->v{r['version']} "
                f"trigger={r['trigger']} "
                f"samples={r['n_buffer']}+{r['n_anchor']} "
                f"val_mse={r['val_mse']:.4g} digest={r['digest'][:12]}"
                f"{tag}"
            )
    return 0


def _run_service(argv: list[str]) -> int:
    from repro.service.engine import Engine, KernelRequest

    args = _service_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)
    if args.command == "models":
        return _run_models(args)

    if args.command == "tune":
        dtypes = None
        if args.dtypes:
            dtypes = tuple(
                _parse_dtype(d) for d in args.dtypes.split(",") if d
            )
        engine = Engine(model_dir=args.models)
        t0 = time.time()
        report = engine.tune(
            args.device or "pascal",
            args.op,
            dtypes=dtypes,
            n_samples=args.samples,
            seed=args.seed,
            epochs=args.epochs,
        )
        print(f"{report}  [{time.time() - t0:.1f}s, saved to {args.models}]")
        return 0

    open_kwargs = {}
    if getattr(args, "cascade", None) is not None:
        open_kwargs["cascade"] = args.cascade
        open_kwargs["cascade_keep"] = args.cascade_keep
    with Engine.open(args.models, **open_kwargs) as engine:
        if args.command == "query":
            shape = _parse_shape(
                args.op, args.shape, _parse_dtype(args.dtype), args.layout
            )
            t0 = time.time()
            reply = engine.query(
                KernelRequest(
                    op=args.op, shape=shape, device=args.device,
                    k=args.k, reps=args.reps,
                )
            )
            ms = (time.time() - t0) * 1e3
            ver = (
                f" model=v{reply.model_version}"
                if reply.model_version is not None
                else ""
            )
            es = engine.stats()
            if reply.source == "search":
                path = (
                    f", cascade (pruned {es.cascade_pruned}, "
                    f"stage1 {es.cascade_stage1_ms:.0f} ms)"
                    if es.cascade_searches else ", exhaustive"
                )
            else:
                path = ""
            print(
                f"{shape.describe()}: {reply.config.short()} "
                f"{reply.measured_tflops:.2f} TFLOPS "
                f"[{reply.source}{ver}, {ms:.1f} ms{path}]"
            )
        else:  # warmup
            names = (
                list(_networks())
                if args.network == "all"
                else [args.network]
            )
            steps = [_networks()[name]() for name in names]
            t0 = time.time()
            fresh = engine.warmup(
                steps, device=args.device, k=args.k, reps=args.reps
            )
            stats = engine.stats()
            print(
                f"warmed {', '.join(s.name for s in steps)}: "
                f"{fresh} searched, {stats.queries - fresh} already "
                f"cached [{time.time() - t0:.1f}s]"
            )
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SERVICE_COMMANDS:
        return _run_service(argv)

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables/figures of the ISAAC paper (SC'17) "
        "on the simulated GPU substrate; 'tune', 'query' and 'warmup' "
        "drive the serving engine (see their --help).",
    )
    parser.add_argument(
        "experiment",
        choices=[*_REGISTRY, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=12_000,
        help="training samples for learned components (default 12000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = list(_REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        result = _REGISTRY[name](args)
        print(result)
        print(f"[{name} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
