"""CONV evaluation runs: the data behind paper Figures 9, 10 and 11."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.cudnn import CuDNNLike
from repro.core.tuner import Isaac
from repro.workloads.conv_suites import ConvTask


@dataclass(frozen=True)
class ConvResult:
    """One bar group of a CONV performance figure."""

    task: ConvTask
    isaac_tflops: float
    cudnn_tflops: float
    isaac_config: object

    @property
    def speedup(self) -> float:
        return self.isaac_tflops / self.cudnn_tflops


def run_conv_suite(
    tuner: Isaac,
    tasks: Sequence[ConvTask],
    *,
    k: int = 100,
    reps: int = 3,
) -> list[ConvResult]:
    """Evaluate ISAAC and cuDNN-like heuristic selection on each task.

    cuDNN exposes no public per-kernel benchmarking (paper §7.4.1), so only
    its heuristic mode appears in the figures.
    """
    if not tuner.is_tuned:
        raise RuntimeError("tuner must be tuned before evaluation")
    lib = CuDNNLike(tuner.device)
    out: list[ConvResult] = []
    for task in tasks:
        best = tuner.best_kernel(task.shape, k=k, reps=reps)
        out.append(
            ConvResult(
                task=task,
                isaac_tflops=best.measured_tflops,
                cudnn_tflops=lib.tflops(task.shape, "heuristic", reps=reps),
                isaac_config=best.config,
            )
        )
    return out


def results_as_series(
    results: Sequence[ConvResult],
) -> tuple[list[str], dict[str, list[float]]]:
    labels = [r.task.label for r in results]
    series = {
        "ISAAC": [r.isaac_tflops for r in results],
        "cuDNN": [r.cudnn_tflops for r in results],
    }
    return labels, series
