"""One entry point per table/figure of the paper's evaluation.

Every function returns a structured result *and* a rendered text block, so
the same code backs the pytest benchmarks, the CLI and EXPERIMENTS.md.
Budget parameters (sample counts, epochs) default to values that finish in
minutes on a laptop; the paper-scale numbers are noted per function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.cublas import CuBLASLike
from repro.core.config import GemmConfig
from repro.core.legality import is_legal_conv, is_legal_gemm
from repro.core.space import CONV_SPACE, GEMM_SPACE, table1_space
from repro.core.tuner import Isaac
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100, DeviceSpec
from repro.harness.analysis import (
    anatomy_table,
    kernel_anatomy,
    predication_overhead,
)
from repro.harness.conv_eval import run_conv_suite
from repro.harness.conv_eval import results_as_series as conv_series
from repro.harness.gemm_eval import run_gemm_suite
from repro.harness.gemm_eval import results_as_series as gemm_series
from repro.harness.report import render_series, render_table
from repro.mlp.crossval import fit_regressor
from repro.sampling.dataset import generate_gemm_dataset
from repro.sampling.generative import CategoricalModel
from repro.sampling.uniform import UniformSampler, acceptance_rate
from repro.workloads.conv_suites import TABLE5_TASKS, fp16_tasks
from repro.workloads.gemm_suites import TABLE4_TASKS, fig8_tasks


@dataclass
class ExperimentResult:
    """Uniform wrapper: experiment id, rendered text, structured payload."""

    exp_id: str
    text: str
    data: object

    def __str__(self) -> str:
        return f"== {self.exp_id} ==\n{self.text}"


# ----------------------------------------------------------------------
# Table 1 — sampling acceptance rates
# ----------------------------------------------------------------------

def run_table1(
    device: DeviceSpec = GTX_980_TI,
    *,
    n_eval: int = 20_000,
    n_uniform_eval: int = 200_000,
    target_accepted: int = 1_000,
    seed: int = 0,
) -> ExperimentResult:
    """Categorical vs uniform acceptance, in the paper's power-of-two-in-
    [1,16] space (Table 1 caption)."""
    from repro.core.config import ConvConfig
    rng = np.random.default_rng(seed)
    rows = []
    for name, base, make, legal in (
        ("GEMM", GEMM_SPACE, GemmConfig.from_dict, is_legal_gemm),
        ("CONV", CONV_SPACE, ConvConfig.from_dict, is_legal_conv),
    ):
        space = table1_space(base)
        accept = lambda pt: legal(make(pt), DType.FP32, device)  # noqa: E731
        uniform = UniformSampler(space, rng)
        u_rate = (
            sum(accept(p) for p in uniform.sample_batch(n_uniform_eval))
            / n_uniform_eval
        )
        model = CategoricalModel(space)
        model.fit(accept, rng, target_accepted=target_accepted)
        c_rate = acceptance_rate(
            _SamplerAdapter(model, rng), accept, n_eval
        )
        rows.append([name, f"{c_rate:.1%}", f"{u_rate:.2%}"])
    text = render_table(
        ["", "Categorical", "Uniform"],
        rows,
        title="Table 1: proportion of samples accepted "
        "(paper: GEMM 20% vs 0.1%, CONV 15% vs 0.1%)",
    )
    return ExperimentResult("table1", text, rows)


class _SamplerAdapter:
    """Give CategoricalModel the .sample() signature acceptance_rate wants."""

    def __init__(self, model: CategoricalModel, rng: np.random.Generator):
        self._model = model
        self._rng = rng

    def sample(self) -> dict[str, int]:
        return self._model.sample(self._rng)


# ----------------------------------------------------------------------
# Table 2 — MLP architecture sweep; Figure 5 — dataset-size sweep
# ----------------------------------------------------------------------

#: The architectures of paper Table 2, in order.
TABLE2_ARCHS: tuple[tuple[int, ...], ...] = (
    (64,),
    (512,),
    (32, 64, 32),
    (64, 128, 64),
    (32, 64, 128, 64, 32),
    (64, 128, 256, 128, 64),
    (64, 128, 192, 256, 192, 128, 64),
)

#: Architectures for which the paper also reports the no-log ablation.
TABLE2_NOLOG_ARCHS = TABLE2_ARCHS[:4]


def run_table2(
    device: DeviceSpec = GTX_980_TI,
    *,
    n_train: int = 20_000,
    n_val: int = 2_000,
    epochs: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """Cross-validation MSE per architecture, with and without log features.

    Paper scale: 200k training / 10k validation samples.
    """
    rng = np.random.default_rng(seed)
    ds = generate_gemm_dataset(device, n_train + n_val, rng)
    xt, yt = ds.x[:n_train], ds.y[:n_train]
    xv, yv = ds.x[n_train:], ds.y[n_train:]

    rows = []
    results = []
    for arch in TABLE2_ARCHS:
        # Deeper networks need proportionally longer schedules to reach
        # their capacity (early stopping still guards against overfit).
        arch_epochs = epochs + 15 * max(0, len(arch) - 3)
        fit = fit_regressor(
            xt, yt, xv, yv, hidden=arch, epochs=arch_epochs, seed=seed
        )
        nolog_mse = None
        if arch in TABLE2_NOLOG_ARCHS:
            nolog = fit_regressor(
                xt, yt, xv, yv, hidden=arch, epochs=epochs, seed=seed,
                log_features=False,
            )
            nolog_mse = nolog.val_mse
        results.append((arch, fit.model.n_params, fit.val_mse, nolog_mse))
        rows.append(
            [
                ", ".join(map(str, arch)),
                _human_params(fit.model.n_params),
                f"{fit.val_mse:.3f}",
                f"({nolog_mse:.2f})" if nolog_mse is not None else "(-)",
            ]
        )
    text = render_table(
        ["Hidden layer sizes", "#weights", "MSE", "(no log)"],
        rows,
        title="Table 2: cross-validation MSE by MLP architecture",
    )
    return ExperimentResult("table2", text, results)


def _human_params(n: int) -> str:
    return f"{n / 1000:.0f}k" if n >= 1000 else str(n)


def run_fig5(
    device: DeviceSpec = GTX_980_TI,
    *,
    sizes: Sequence[int] = (2_500, 5_000, 10_000, 20_000, 40_000),
    n_val: int = 4_000,
    hidden: Sequence[int] = (32, 64, 32),
    epochs: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """Cross-validation MSE vs training-set size (paper: plateau ~150k)."""
    rng = np.random.default_rng(seed)
    ds = generate_gemm_dataset(device, max(sizes) + n_val, rng)
    xv, yv = ds.x[-n_val:], ds.y[-n_val:]
    mses = []
    for n in sizes:
        fit = fit_regressor(
            ds.x[:n], ds.y[:n], xv, yv, hidden=hidden, epochs=epochs,
            seed=seed,
        )
        mses.append(fit.val_mse)
    text = render_series(
        "train samples",
        list(sizes),
        {"cross-val MSE": mses},
        title="Figure 5: MSE vs dataset size",
        unit="",
    )
    return ExperimentResult("fig5", text, list(zip(sizes, mses)))


# ----------------------------------------------------------------------
# Table 3 — device specs
# ----------------------------------------------------------------------

def run_table3() -> ExperimentResult:
    rows_m = GTX_980_TI.describe_rows()
    rows_p = TESLA_P100.describe_rows()
    rows = [
        [name_m, val_m, val_p]
        for (name_m, val_m), (_, val_p) in zip(rows_m, rows_p)
    ]
    text = render_table(
        ["", "Maxwell", "Pascal"], rows, title="Table 3: test platforms"
    )
    return ExperimentResult("table3", text, rows)


# ----------------------------------------------------------------------
# Figures 6-8 — GEMM performance
# ----------------------------------------------------------------------

def _tuned_gemm(
    device: DeviceSpec,
    dtypes,
    *,
    n_samples: int,
    seed: int,
    epochs: int = 40,
) -> Isaac:
    tuner = Isaac(device, op="gemm", dtypes=dtypes)
    tuner.tune(n_samples=n_samples, seed=seed, epochs=epochs)
    return tuner


def run_fig6(
    *,
    n_samples: int = 12_000,
    seed: int = 0,
    reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """SGEMM on the GTX 980 TI: ISAAC vs cuBLAS."""
    tuner = tuner or _tuned_gemm(
        GTX_980_TI, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    results = run_gemm_suite(tuner, TABLE4_TASKS, reps=reps)
    labels, series = gemm_series(results, include_best=False)
    text = render_series(
        "task", labels, series,
        title="Figure 6: SGEMM performance on the GTX 980 TI",
    )
    return ExperimentResult("fig6", text, results)


def run_fig7(
    *,
    n_samples: int = 12_000,
    seed: int = 0,
    reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """SGEMM on the Tesla P100: ISAAC vs cuBLAS heuristics vs best kernel."""
    tuner = tuner or _tuned_gemm(
        TESLA_P100, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    results = run_gemm_suite(tuner, TABLE4_TASKS, reps=reps)
    labels, series = gemm_series(results, include_best=True)
    text = render_series(
        "task", labels, series,
        title="Figure 7: SGEMM performance on the Tesla P100",
    )
    return ExperimentResult("fig7", text, results)


def run_fig8(
    *,
    n_samples: int = 15_000,
    seed: int = 0,
    reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """Half/double-precision GEMM on the P100 (fp16 DL/HPL, fp64 science)."""
    tuner = tuner or _tuned_gemm(
        TESLA_P100, (DType.FP16, DType.FP64), n_samples=n_samples, seed=seed
    )
    tasks = fig8_tasks()
    results = run_gemm_suite(tuner, tasks, reps=reps)
    labels = [
        f"{r.task.group} {r.task.label} [{r.task.shape.dtype.name}]"
        for r in results
    ]
    _, series = gemm_series(results, include_best=True)
    text = render_series(
        "task", labels, series,
        title="Figure 8: H/DGEMM performance on the Tesla P100",
    )
    return ExperimentResult("fig8", text, results)


# ----------------------------------------------------------------------
# Figures 9-11 — CONV performance
# ----------------------------------------------------------------------

def _tuned_conv(
    device: DeviceSpec, dtypes, *, n_samples: int, seed: int
) -> Isaac:
    tuner = Isaac(device, op="conv", dtypes=dtypes)
    tuner.tune(n_samples=n_samples, seed=seed)
    return tuner


def run_fig9(
    *, n_samples: int = 10_000, seed: int = 0, reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """SCONV on the GTX 980 TI: ISAAC vs cuDNN."""
    tuner = tuner or _tuned_conv(
        GTX_980_TI, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    results = run_conv_suite(tuner, TABLE5_TASKS, reps=reps)
    labels, series = conv_series(results)
    text = render_series(
        "layer", labels, series,
        title="Figure 9: SCONV performance on the GTX 980 TI",
    )
    return ExperimentResult("fig9", text, results)


def run_fig10(
    *, n_samples: int = 10_000, seed: int = 0, reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """SCONV on the Tesla P100."""
    tuner = tuner or _tuned_conv(
        TESLA_P100, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    results = run_conv_suite(tuner, TABLE5_TASKS, reps=reps)
    labels, series = conv_series(results)
    text = render_series(
        "layer", labels, series,
        title="Figure 10: SCONV performance on the Tesla P100",
    )
    return ExperimentResult("fig10", text, results)


def run_fig11(
    *, n_samples: int = 10_000, seed: int = 0, reps: int = 3,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """HCONV on the Tesla P100 (fp16)."""
    tuner = tuner or _tuned_conv(
        TESLA_P100, (DType.FP16,), n_samples=n_samples, seed=seed
    )
    results = run_conv_suite(tuner, fp16_tasks(), reps=reps)
    labels, series = conv_series(results)
    text = render_series(
        "layer", labels, series,
        title="Figure 11: HCONV performance on the Tesla P100",
    )
    return ExperimentResult("fig11", text, results)


# ----------------------------------------------------------------------
# Table 6 — parameterization choices; §8.1 anatomy; §8.3 predication
# ----------------------------------------------------------------------

#: The ten problems of paper Table 6 (fp32, GTX 980 TI era configs).
TABLE6_PROBLEMS: tuple[tuple[str, GemmShape], ...] = (
    ("LINPACK (512)", GemmShape(512, 512, 512, DType.FP32, False, True)),
    ("LINPACK (2048)", GemmShape(2048, 2048, 2048, DType.FP32, False, True)),
    ("DeepBench-F (16)", GemmShape(2560, 16, 2560, DType.FP32, False, False)),
    ("DeepBench-F (128)", GemmShape(2560, 128, 2560, DType.FP32, False, False)),
    ("DeepBench-B (16)", GemmShape(2560, 16, 2560, DType.FP32, True, False)),
    ("DeepBench-B (128)", GemmShape(2560, 128, 2560, DType.FP32, True, False)),
    ("ICA (32)", GemmShape(32, 32, 60000, DType.FP32, False, True)),
    ("ICA (256)", GemmShape(256, 256, 60000, DType.FP32, False, True)),
    ("LAPACK (896)", GemmShape(896, 896, 32, DType.FP32, False, True)),
    ("LAPACK (4096)", GemmShape(4096, 4096, 32, DType.FP32, False, True)),
)


def run_table6(
    *,
    n_samples: int = 12_000,
    seed: int = 0,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """The tuning parameters ISAAC selects for each representative problem."""
    tuner = tuner or _tuned_gemm(
        GTX_980_TI, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    rows = []
    chosen = []
    for label, shape in TABLE6_PROBLEMS:
        best = tuner.best_kernel(shape, k=100, reps=3)
        c: GemmConfig = best.config
        chosen.append((label, c))
        rows.append(
            [label, c.ms, c.ns, c.ml, c.nl, c.u, c.ks, c.kl, c.kg]
        )
    text = render_table(
        ["Problem", "Ms", "Ns", "ML", "NL", "U", "Ks", "KL", "KG"],
        rows,
        title="Table 6: parameterization choices of ISAAC",
    )
    return ExperimentResult("table6", text, chosen)


def run_sec81(
    *,
    n_samples: int = 12_000,
    seed: int = 0,
    tuner: Isaac | None = None,
) -> ExperimentResult:
    """Kernel anatomy at (2560, 32, 2560) on the P100: ISAAC vs cuBLAS."""
    shape = GemmShape(2560, 32, 2560, DType.FP32, False, False)
    tuner = tuner or _tuned_gemm(
        TESLA_P100, (DType.FP32,), n_samples=n_samples, seed=seed
    )
    best = tuner.best_kernel(shape, k=100, reps=3)
    lib = CuBLASLike(TESLA_P100)
    cublas_kernel = lib.best_kernel(shape)
    anatomies = [
        kernel_anatomy(TESLA_P100, shape, best.config, "ISAAC"),
        kernel_anatomy(TESLA_P100, shape, cublas_kernel.cfg, "cuBLAS"),
    ]
    headers, rows = anatomy_table(anatomies)
    text = render_table(
        headers, rows,
        title="Sec 8.1: kernel anatomy at (M,N,K)=(2560,32,2560), Tesla P100",
    )
    return ExperimentResult("sec81", text, anatomies)


def run_sec83(
    device: DeviceSpec = GTX_980_TI,
) -> ExperimentResult:
    """Bounds-checking overhead: PTX predication vs CUDA-C checks (§8.3)."""
    cfg = GemmConfig(ms=8, ns=8, ml=128, nl=64, u=8, vec=4, db=2)
    rows = []
    results = []
    for m, n, k in ((1000, 1000, 1000), (2000, 500, 2000), (900, 100, 4000)):
        shape = GemmShape(m, n, k, DType.FP32, False, True)
        res = predication_overhead(device, shape, cfg)
        results.append(res)
        rows.append(
            [
                f"{m}x{n}x{k}",
                f"{res.predicated_overhead:.1%}",
                f"{res.checked_overhead:.1%}",
            ]
        )
    text = render_table(
        ["shape", "PTX predication", "CUDA-C checks"],
        rows,
        title="Sec 8.3: bounds-checking overhead "
        "(paper: ~2% predicated vs 15-20% checked)",
    )
    return ExperimentResult("sec83", text, results)
