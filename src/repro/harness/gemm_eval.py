"""GEMM evaluation runs: the data behind paper Figures 6, 7 and 8.

``run_gemm_suite`` evaluates a tuned ISAAC instance and the cuBLAS-like
baseline over Table 4's tasks on one device, returning one record per task
with the three series the paper plots (ISAAC, cuBLAS heuristics, cuBLAS
best kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.cublas import CuBLASLike
from repro.core.tuner import Isaac
from repro.workloads.gemm_suites import GemmTask


@dataclass(frozen=True)
class GemmResult:
    """One bar group of a GEMM performance figure."""

    task: GemmTask
    isaac_tflops: float
    cublas_heuristic_tflops: float
    cublas_best_tflops: float
    isaac_config: object

    @property
    def speedup_vs_heuristic(self) -> float:
        return self.isaac_tflops / self.cublas_heuristic_tflops

    @property
    def speedup_vs_best(self) -> float:
        return self.isaac_tflops / self.cublas_best_tflops


def run_gemm_suite(
    tuner: Isaac,
    tasks: Sequence[GemmTask],
    *,
    k: int = 100,
    reps: int = 3,
) -> list[GemmResult]:
    """Evaluate ISAAC and both cuBLAS modes on each task."""
    if not tuner.is_tuned:
        raise RuntimeError("tuner must be tuned before evaluation")
    lib = CuBLASLike(tuner.device)
    out: list[GemmResult] = []
    for task in tasks:
        best = tuner.best_kernel(task.shape, k=k, reps=reps)
        out.append(
            GemmResult(
                task=task,
                isaac_tflops=best.measured_tflops,
                cublas_heuristic_tflops=lib.tflops(
                    task.shape, "heuristic", reps=reps
                ),
                cublas_best_tflops=lib.tflops(task.shape, "best", reps=reps),
                isaac_config=best.config,
            )
        )
    return out


def results_as_series(
    results: Sequence[GemmResult], include_best: bool = True
) -> tuple[list[str], dict[str, list[float]]]:
    """(labels, series) in the layout of the paper's bar figures."""
    labels = [f"{r.task.group} {r.task.label}" for r in results]
    series: dict[str, list[float]] = {
        "ISAAC": [r.isaac_tflops for r in results],
        "cuBLAS (Heuristics)": [r.cublas_heuristic_tflops for r in results],
    }
    if include_best:
        series["cuBLAS (Best Kernel)"] = [
            r.cublas_best_tflops for r in results
        ]
    return labels, series
