"""Plain-text rendering of the paper's tables and figure series.

Figures are rendered as aligned numeric tables (one row per x-tick, one
column per series) so a terminal run of the benchmark harness prints the
same information the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                c.rjust(w) if _numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    unit: str = "TFLOPS",
) -> str:
    """A figure as a table: x ticks down the side, one column per series."""
    headers = [x_label, *(f"{name} ({unit})" for name in series)]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(vals[i] for vals in series.values())])
    return render_table(headers, rows, title=title)


def render_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """ASCII horizontal bars — a rough visual of the paper's bar figures."""
    peak = max(max(v) for v in series.values())
    lines = [title] if title else []
    for i, label in enumerate(labels):
        for name, vals in series.items():
            n = int(round(vals[i] / peak * width)) if peak > 0 else 0
            lines.append(f"{label:>16s} {name:<18s} {'#' * n} {vals[i]:.2f}")
        lines.append("")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}" if abs(cell) < 0.1 else f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def speedup_summary(
    labels: Sequence[str], ours: Sequence[float], theirs: Sequence[float]
) -> str:
    """One-line per-task speedups plus the geometric mean."""
    import math

    lines = []
    logs = []
    for label, a, b in zip(labels, ours, theirs):
        s = a / b if b > 0 else float("inf")
        logs.append(math.log(max(s, 1e-12)))
        lines.append(f"  {label}: {s:.2f}x")
    geo = math.exp(sum(logs) / len(logs)) if logs else float("nan")
    lines.append(f"  geomean: {geo:.2f}x")
    return "\n".join(lines)
