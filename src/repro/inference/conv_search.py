"""Shape-aware candidate generation for the CONV search.

The CONV tuning space is the product of five tiled dimensions and is far
too large to enumerate directly (hundreds of millions of points).  But the
performance of an implicit-GEMM kernel depends on the five-dimensional
tiling almost entirely through the induced *implicit-GEMM tile*
(block_m, block_n, thread tile, staging depth, splits) — how block_m
factors into (NB, PB, QB) only changes padding waste and load contiguity.

So the runtime search enumerates the legal implicit-GEMM tiles (the cached
GEMM set) and factorizes each block/thread tile over (N, Q, P) *for the
query shape*, batch-first so small batches are never padded away — the
input-aware factorization real libraries hand-code.  The result is a
per-shape candidate list of a few 10^5 ConvConfigs, which the MLP scores
exactly like GEMM candidates.

Two supplies exist.  :func:`conv_candidates` is the scalar reference: a
Python loop over the GEMM tile set, one projection / dedup / legality
check at a time.  :func:`conv_candidates_batch` is the hot path: it runs
the same factorization as array arithmetic over the cached GEMM survivor
*columns*, dedups via one packed-exponent ``np.unique``, applies
``conv_legal_mask`` once, and caches the result per *pow2 bucket* — the
factorization reads the query shape only through ``next_pow2(n)`` and
``next_pow2(q)`` (and legality through the dtype), so every shape in a
bucket shares one candidate set and repeated buckets skip generation
entirely.  Both paths produce bit-identical (configs, matrix) results in
identical order.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import conv_legal_mask, is_legal_conv
from repro.core.space import CONV_SPACE, GEMM_SPACE
from repro.core.types import ConvShape
from repro.gpu.device import DeviceSpec
from repro.inference.search import (
    CandidateRecord,
    KeyedRecordCache,
    legal_configs,
    legal_record,
)


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


def factorize_tile(
    block: int, thread: int, shape: ConvShape
) -> tuple[int, int, int, int, int, int] | None:
    """Split an implicit-GEMM M-tile into (NB, PB, QB) / (NT, PT, QT).

    Batch-first: NB covers the batch up to its next power of two, then QB
    covers the output width, and PB takes the rest.  The thread tile is
    factored under the block tile with the same priorities.  Returns None
    when the factorization cannot respect divisibility.
    """
    nb = min(_next_pow2(shape.n), block)
    rest = block // nb
    qb = min(_next_pow2(shape.q), rest)
    pb = rest // qb
    if nb * pb * qb != block:
        return None

    nt = min(thread, nb)
    rest_t = thread // nt
    qt = min(rest_t, qb)
    pt = rest_t // qt
    if nt * pt * qt != thread or pt > pb:
        return None
    return nb, pb, qb, nt, pt, qt


def conv_config_from_gemm(
    g: GemmConfig, shape: ConvShape
) -> ConvConfig | None:
    """Project one implicit-GEMM tile onto the 5-D CONV parameterization."""
    cg_vals = CONV_SPACE.values("cg")
    if g.kg not in cg_vals:
        return None
    factors = factorize_tile(g.ml, g.ms, shape)
    if factors is None:
        return None
    nb, pb, qb, nt, pt, qt = factors
    return ConvConfig(
        kt=g.ns,
        pt=pt,
        qt=qt,
        nt=nt,
        kb=g.nl,
        pb=pb,
        qb=qb,
        nb=nb,
        u=g.u,
        cs=g.ks,
        cl=g.kl,
        cg=g.kg,
        vec=g.vec,
        db=g.db,
    )


def conv_candidates(
    device: DeviceSpec,
    shape: ConvShape,
    *,
    max_candidates: int | None = None,
) -> list[ConvConfig]:
    """Legal CONV configs for one query shape, via tile factorization.

    The scalar reference path; the runtime search goes through the
    vectorized, bucket-cached :func:`conv_candidates_batch`.
    """
    gemm_cfgs, _ = legal_configs(device, shape.dtype, "gemm")
    seen: set[tuple] = set()
    out: list[ConvConfig] = []
    for g in gemm_cfgs:
        cfg = conv_config_from_gemm(g, shape)
        if cfg is None:
            continue
        key = tuple(cfg.as_dict().values())
        if key in seen:
            continue
        seen.add(key)
        if is_legal_conv(cfg, shape.dtype, device):
            out.append(cfg)
            if max_candidates is not None and len(out) >= max_candidates:
                break
    if not out:
        raise RuntimeError(f"no CONV candidate for {shape} on {device.name}")
    return out


# ----------------------------------------------------------------------
# Vectorized generation, cached per pow2 bucket
# ----------------------------------------------------------------------

#: Generated CONV candidate sets, shared by every search over the same
#: bucket (device, dtype, next_pow2(n), next_pow2(q)).
_BUCKET_CACHE = KeyedRecordCache()


def _bucket_space_params() -> tuple:
    """The value sets a bucket's contents derive from.

    Buckets are projected from the GEMM survivor set and constrained by
    CONV_SPACE (the ``cg`` membership test and the legality mask), so a
    record persisted before an edit to *either* space must regenerate.
    """
    return GEMM_SPACE.params + CONV_SPACE.params


def conv_bucket_key(
    device: DeviceSpec, shape: ConvShape
) -> tuple[str, str, str, int, int]:
    """The cache bucket one CONV query shape falls into.

    The tile factorization reads the shape only through ``next_pow2(n)``
    and ``next_pow2(q)`` (``pb`` takes whatever block budget remains, so
    ``p`` never enters), and CONV legality only through the dtype — so
    every shape agreeing on these shares one candidate set.
    """
    return (
        "conv",
        device.name,
        shape.dtype.name,
        _next_pow2(shape.n),
        _next_pow2(shape.q),
    )


def _dedup_first_rows(cols: dict[str, np.ndarray]) -> np.ndarray:
    """Indices of first occurrences of unique rows, in original order.

    Matches the scalar loop's ``seen``-set semantics.  Every column is a
    power of two <= 2**15, so a row packs into one int64 of 4-bit
    exponents — ``np.unique`` on that key is ~20x cheaper than on a 2-D
    row view.  Anything wider falls back to the row-wise unique.
    """
    names = ConvConfig.param_names()
    packable = all(
        (cols[n] > 0).all()
        and (cols[n] & (cols[n] - 1) == 0).all()
        and cols[n].max(initial=1) <= 1 << 15
        for n in names
    )
    if packable:
        key = np.zeros(len(cols[names[0]]), dtype=np.int64)
        for n in names:
            key = (key << 4) | np.log2(cols[n]).astype(np.int64)
        _, first = np.unique(key, return_index=True)
    else:
        rows = np.column_stack([cols[n] for n in names])
        _, first = np.unique(rows, axis=0, return_index=True)
    first.sort()
    return first


def _generate_bucket(
    device: DeviceSpec, shape: ConvShape
) -> CandidateRecord:
    """Vectorized :func:`conv_candidates` over the GEMM survivor columns."""
    gemm_rec = legal_record(device, shape.dtype, "gemm")
    g = gemm_rec.params
    if g is None:
        # The GEMM set came from the scalar fallback (op registered no
        # legal_mask / columns): generate scalar-wise too.
        configs = conv_candidates(device, shape)
        return CandidateRecord(op="conv", params=None, configs=configs)

    # conv_config_from_gemm, over columns: cg must be a CONV_SPACE value
    # (all powers of two, so membership is a range test on the exponent
    # domain — isin keeps it literal), then the batch-first factorization.
    cg_vals = np.asarray(CONV_SPACE.values("cg"), dtype=np.int64)
    ok = np.isin(g["kg"], cg_vals)

    np2n = _next_pow2(shape.n)
    np2q = _next_pow2(shape.q)
    nb = np.minimum(np2n, g["ml"])
    rest = g["ml"] // nb
    qb = np.minimum(np2q, rest)
    pb = rest // qb
    ok &= nb * pb * qb == g["ml"]

    nt = np.minimum(g["ms"], nb)
    rest_t = g["ms"] // nt
    qt = np.minimum(rest_t, qb)
    pt = rest_t // qt
    ok &= (nt * pt * qt == g["ms"]) & (pt <= pb)

    vi = np.flatnonzero(ok)
    cols = {
        "kt": g["ns"][vi], "pt": pt[vi], "qt": qt[vi], "nt": nt[vi],
        "kb": g["nl"][vi], "pb": pb[vi], "qb": qb[vi], "nb": nb[vi],
        "u": g["u"][vi], "cs": g["ks"][vi], "cl": g["kl"][vi],
        "cg": g["kg"][vi], "vec": g["vec"][vi], "db": g["db"][vi],
    }
    first = _dedup_first_rows(cols)
    deduped = {n: c[first] for n, c in cols.items()}
    legal = conv_legal_mask(device, deduped, shape.dtype)
    li = np.flatnonzero(legal)
    params = {n: np.ascontiguousarray(c[li]) for n, c in deduped.items()}
    return CandidateRecord(
        op="conv", params=params, space_params=_bucket_space_params()
    )


def conv_candidates_batch(
    device: DeviceSpec, shape: ConvShape
) -> tuple[list[ConvConfig], np.ndarray]:
    """Candidates + log-feature matrix for one shape, via the bucket cache.

    Bit-identical to ``conv_candidates`` followed by the op's
    ``config_matrix`` (same candidates, same order, same float64 bits),
    but generated as array arithmetic and shared by every shape in the
    same pow2 bucket.  Thread-safe: concurrent queries generate each
    bucket once.
    """
    key = conv_bucket_key(device, shape)
    rec = _BUCKET_CACHE.get(
        key,
        lambda: _generate_bucket(device, shape),
        # Buckets persisted before a GEMM_SPACE/CONV_SPACE edit must
        # regenerate — their contents derive from both spaces.
        validate=lambda r: (
            r.space_params is None
            or r.space_params == _bucket_space_params()
        ),
    )
    if not rec.configs:
        raise RuntimeError(f"no CONV candidate for {shape} on {device.name}")
    return rec.configs, rec.matrix


def seed_bucket_record(
    key: Hashable,
    params: Mapping[str, np.ndarray],
    space_params: tuple | None = None,
) -> bool:
    """Publish a stored bucket (candidate-store load); True if kept."""
    return _BUCKET_CACHE.seed(
        tuple(key),
        CandidateRecord(
            op="conv", params=dict(params), space_params=space_params
        ),
    )


def bucket_cache_snapshot() -> dict[Hashable, CandidateRecord]:
    """Current bucket records (for the on-disk candidate store)."""
    return _BUCKET_CACHE.snapshot()


def clear_bucket_cache() -> None:
    _BUCKET_CACHE.clear()
