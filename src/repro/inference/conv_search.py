"""Shape-aware candidate generation for the CONV search.

The CONV tuning space is the product of five tiled dimensions and is far
too large to enumerate directly (hundreds of millions of points).  But the
performance of an implicit-GEMM kernel depends on the five-dimensional
tiling almost entirely through the induced *implicit-GEMM tile*
(block_m, block_n, thread tile, staging depth, splits) — how block_m
factors into (NB, PB, QB) only changes padding waste and load contiguity.

So the runtime search enumerates the legal implicit-GEMM tiles (the cached
GEMM set) and factorizes each block/thread tile over (N, Q, P) *for the
query shape*, batch-first so small batches are never padded away — the
input-aware factorization real libraries hand-code.  The result is a
per-shape candidate list of a few 10^5 ConvConfigs, which the MLP scores
exactly like GEMM candidates.
"""

from __future__ import annotations

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import is_legal_conv
from repro.core.space import CONV_SPACE
from repro.core.types import ConvShape
from repro.gpu.device import DeviceSpec
from repro.inference.search import legal_configs


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


def factorize_tile(
    block: int, thread: int, shape: ConvShape
) -> tuple[int, int, int, int, int, int] | None:
    """Split an implicit-GEMM M-tile into (NB, PB, QB) / (NT, PT, QT).

    Batch-first: NB covers the batch up to its next power of two, then QB
    covers the output width, and PB takes the rest.  The thread tile is
    factored under the block tile with the same priorities.  Returns None
    when the factorization cannot respect divisibility.
    """
    nb = min(_next_pow2(shape.n), block)
    rest = block // nb
    qb = min(_next_pow2(shape.q), rest)
    pb = rest // qb
    if nb * pb * qb != block:
        return None

    nt = min(thread, nb)
    rest_t = thread // nt
    qt = min(rest_t, qb)
    pt = rest_t // qt
    if nt * pt * qt != thread or pt > pb:
        return None
    return nb, pb, qb, nt, pt, qt


def conv_config_from_gemm(
    g: GemmConfig, shape: ConvShape
) -> ConvConfig | None:
    """Project one implicit-GEMM tile onto the 5-D CONV parameterization."""
    cg_vals = CONV_SPACE.values("cg")
    if g.kg not in cg_vals:
        return None
    factors = factorize_tile(g.ml, g.ms, shape)
    if factors is None:
        return None
    nb, pb, qb, nt, pt, qt = factors
    return ConvConfig(
        kt=g.ns,
        pt=pt,
        qt=qt,
        nt=nt,
        kb=g.nl,
        pb=pb,
        qb=qb,
        nb=nb,
        u=g.u,
        cs=g.ks,
        cl=g.kl,
        cg=g.kg,
        vec=g.vec,
        db=g.db,
    )


def conv_candidates(
    device: DeviceSpec,
    shape: ConvShape,
    *,
    max_candidates: int | None = None,
) -> list[ConvConfig]:
    """Legal CONV configs for one query shape, via tile factorization."""
    gemm_cfgs, _ = legal_configs(device, shape.dtype, "gemm")
    seen: set[tuple] = set()
    out: list[ConvConfig] = []
    for g in gemm_cfgs:
        cfg = conv_config_from_gemm(g, shape)
        if cfg is None:
            continue
        key = tuple(cfg.as_dict().values())
        if key in seen:
            continue
        seen.add(key)
        if is_legal_conv(cfg, shape.dtype, device):
            out.append(cfg)
            if max_candidates is not None and len(out) >= max_candidates:
                break
    if not out:
        raise RuntimeError(f"no CONV candidate for {shape} on {device.name}")
    return out
