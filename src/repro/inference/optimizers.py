"""Alternative discrete optimizers for runtime kernel inference (§6).

The paper opts for exhaustive search but notes that "any discrete
optimization method (e.g., simulated annealing, genetic algorithm,
exhaustive search) may be used for this purpose".  This module implements
both alternatives over the legal configuration list, with the same
interface as :class:`~repro.inference.search.ExhaustiveSearch.top_k`:
they return the candidates the *model* believes are fastest, to be fed to
the top-k re-ranking stage.

Both operate on candidate *indices* into the legal-config list and query
the model through a shared vectorized scorer, so a fitness evaluation
costs one MLP row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.inference.search import ExhaustiveSearch, Prediction


class _Scorer:
    """Vectorized model evaluation for arbitrary candidate index sets."""

    def __init__(self, search: ExhaustiveSearch, shape):
        self._search = search
        self._shape = shape
        self._configs, self._cfg_matrix = search.candidates(shape)
        self._shape_vec = search.spec.shape_vector(shape, log=True)
        self._cache: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._configs)

    def config(self, idx: int):
        return self._configs[idx]

    def score(self, indices: Sequence[int]) -> np.ndarray:
        """Predicted log2-TFLOPS for each index (memoized)."""
        missing = [i for i in indices if i not in self._cache]
        if missing:
            design = np.hstack(
                [
                    self._cfg_matrix[missing],
                    np.tile(self._shape_vec, (len(missing), 1)),
                ]
            )
            fit = self._search._fit
            preds = fit.y_scaler.inverse_transform(
                fit.model.predict(fit.x_scaler.transform(design))
            )
            for i, p in zip(missing, np.atleast_1d(preds).ravel()):
                self._cache[i] = float(p)
        return np.array([self._cache[i] for i in indices])

    @property
    def evaluations(self) -> int:
        return len(self._cache)

    def best_k(self, k: int) -> list[Prediction]:
        items = sorted(self._cache.items(), key=lambda kv: -kv[1])[:k]
        return [
            Prediction(
                config=self._configs[i], predicted_tflops=float(2.0**p)
            )
            for i, p in items
        ]


@dataclass
class SearchBudget:
    """Model-evaluation budget accounting for the heuristic searches."""

    max_evaluations: int = 10_000


def simulated_annealing(
    search: ExhaustiveSearch,
    shape,
    *,
    k: int = 100,
    budget: SearchBudget | None = None,
    iters: int = 4_000,
    t0: float = 1.0,
    t1: float = 0.01,
    seed: int = 0,
) -> list[Prediction]:
    """Simulated annealing over the legal-config index space.

    Neighborhood: jump to a uniformly random index with probability 0.2
    (restart pressure), otherwise a local step of at most ±32 positions —
    the enumeration order is lexicographic in the tuning parameters, so
    nearby indices share most parameter values.
    """
    budget = budget or SearchBudget()
    rng = np.random.default_rng(seed)
    scorer = _Scorer(search, shape)
    n = len(scorer)

    current = int(rng.integers(n))
    current_score = scorer.score([current])[0]
    iters = min(iters, budget.max_evaluations)
    for step in range(iters):
        t = t0 * (t1 / t0) ** (step / max(1, iters - 1))
        if rng.random() < 0.2:
            cand = int(rng.integers(n))
        else:
            cand = int(np.clip(current + rng.integers(-32, 33), 0, n - 1))
        cand_score = scorer.score([cand])[0]
        if cand_score >= current_score or rng.random() < np.exp(
            (cand_score - current_score) / max(t, 1e-9)
        ):
            current, current_score = cand, cand_score
        if scorer.evaluations >= budget.max_evaluations:
            break
    return scorer.best_k(k)


def genetic_algorithm(
    search: ExhaustiveSearch,
    shape,
    *,
    k: int = 100,
    budget: SearchBudget | None = None,
    population: int = 128,
    generations: int = 30,
    elite_frac: float = 0.25,
    mutation: float = 0.3,
    seed: int = 0,
) -> list[Prediction]:
    """A simple index-space genetic algorithm.

    Crossover averages two parent indices (a crude but effective blend in
    the lexicographic enumeration); mutation perturbs by a geometric step.
    """
    budget = budget or SearchBudget()
    rng = np.random.default_rng(seed)
    scorer = _Scorer(search, shape)
    n = len(scorer)

    pop = rng.integers(n, size=population)
    for _ in range(generations):
        scores = scorer.score(list(map(int, pop)))
        order = np.argsort(-scores)
        elite = pop[order[: max(2, int(population * elite_frac))]]
        children = []
        while len(children) < population - len(elite):
            pa, pb = rng.choice(elite, size=2)
            child = (int(pa) + int(pb)) // 2
            if rng.random() < mutation:
                child += int(rng.geometric(0.05)) * rng.choice((-1, 1))
            children.append(int(np.clip(child, 0, n - 1)))
        pop = np.concatenate([elite, np.array(children, dtype=int)])
        if scorer.evaluations >= budget.max_evaluations:
            break
    return scorer.best_k(k)


def exhaustive(
    search: ExhaustiveSearch, shape, *, k: int = 100, **_ignored
) -> list[Prediction]:
    """The paper's choice, wrapped for interface parity."""
    return search.top_k(shape, k)


SEARCH_METHODS = {
    "exhaustive": exhaustive,
    "annealing": simulated_annealing,
    "genetic": genetic_algorithm,
}
