"""Exhaustive runtime search over tuning parameters (paper §6).

At runtime the input parameters are fixed, so the trained model is
optimized over tuning parameters only.  The paper opts for exhaustive
search: it finds the global optimum of the model within the search range,
is trivially batchable (up to a million configurations per second), and
yields the top-k list that the re-ranking step re-benchmarks.

The legal configuration set for a (device, dtype) pair is enumerated once
and cached module-wide, together with its feature sub-matrix, so repeated
searches only pay one matrix product per MLP layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.legality import is_legal_conv, is_legal_gemm
from repro.core.space import CONV_SPACE, GEMM_SPACE, ParamSpace
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.mlp.crossval import FitResult
from repro.sampling.features import (
    conv_config_matrix,
    conv_shape_vector,
    gemm_config_matrix,
    gemm_shape_vector,
)

_LEGAL_CACHE: dict[tuple[str, str, str], tuple[list, np.ndarray]] = {}


def legal_configs(
    device: DeviceSpec,
    dtype: DType,
    op: str = "gemm",
    space: ParamSpace | None = None,
) -> tuple[list, np.ndarray]:
    """All legal configs for (device, dtype) plus their log-feature matrix.

    Cached: the enumeration walks the full product space once (a few
    seconds for GEMM's ~2M points) and is reused by every later search.
    """
    if op != "gemm":
        raise ValueError(
            "only the GEMM space is enumerable; CONV candidates are "
            "generated per shape by repro.inference.conv_search"
        )
    space = space or GEMM_SPACE
    key = (device.name, dtype.name, space.name)
    if key in _LEGAL_CACHE:
        return _LEGAL_CACHE[key]

    configs: list = []
    for point in space.iter_points():
        cfg = GemmConfig.from_dict(point)
        if is_legal_gemm(cfg, dtype, device):
            configs.append(cfg)
    matrix = gemm_config_matrix(configs, log=True)

    _LEGAL_CACHE[key] = (configs, matrix)
    return _LEGAL_CACHE[key]


def clear_cache() -> None:
    _LEGAL_CACHE.clear()


@dataclass
class Prediction:
    """One candidate from the exhaustive search."""

    config: object
    predicted_tflops: float


class ExhaustiveSearch:
    """Vectorized model evaluation over every legal tuning vector."""

    def __init__(
        self,
        fit: FitResult,
        device: DeviceSpec,
        op: str = "gemm",
        space: ParamSpace | None = None,
    ):
        if op not in ("gemm", "conv"):
            raise ValueError(f"unknown op {op!r}")
        self._fit = fit
        self._device = device
        self._op = op
        self._space = space
        self._conv_cache: dict = {}

    def candidates(self, shape) -> tuple[list, np.ndarray]:
        """Candidate configs + config-feature matrix for one query shape."""
        if self._op == "gemm":
            return legal_configs(self._device, shape.dtype, "gemm", self._space)
        key = shape
        if key not in self._conv_cache:
            from repro.inference.conv_search import conv_candidates

            configs = conv_candidates(self._device, shape)
            self._conv_cache[key] = (configs, conv_config_matrix(configs))
        return self._conv_cache[key]

    def predictions(self, shape) -> np.ndarray:
        """Predicted log2-TFLOPS for every candidate config at this shape."""
        configs, cfg_matrix = self.candidates(shape)
        if self._op == "gemm":
            shape_vec = gemm_shape_vector(shape, log=True)
        else:
            shape_vec = conv_shape_vector(shape, log=True)
        design = np.hstack(
            [cfg_matrix, np.tile(shape_vec, (len(configs), 1))]
        )
        z = self._fit.x_scaler.transform(design)
        pred = self._fit.model.predict(z)
        return self._fit.y_scaler.inverse_transform(pred)

    def top_k(self, shape, k: int = 100) -> list[Prediction]:
        """The k configs the model believes are fastest, best first."""
        configs, _ = self.candidates(shape)
        preds = self.predictions(shape)
        k = min(k, len(configs))
        if k == 0:
            raise RuntimeError(
                f"no legal configuration for {shape} on {self._device.name}"
            )
        top = np.argpartition(-preds, k - 1)[:k]
        top = top[np.argsort(-preds[top])]
        return [
            Prediction(config=configs[i], predicted_tflops=float(2.0 ** preds[i]))
            for i in top
        ]
