"""Exhaustive runtime search over tuning parameters (paper §6).

At runtime the input parameters are fixed, so the trained model is
optimized over tuning parameters only.  The paper opts for exhaustive
search: it finds the global optimum of the model within the search range,
is trivially batchable (up to a million configurations per second), and
yields the top-k list that the re-ranking step re-benchmarks.

Which configurations are searched, and how they are featurized, comes from
the :mod:`~repro.core.ops` registry — any registered op plugs in here
unchanged.

The hot path is pre-scaled and batched.  The candidate feature matrix is
standardized by the fit's x-scaler *once* and immediately folded through
the MLP's first layer (the layer is affine, so the config and shape
columns contribute additively):

    z1 = [Zc | Zs] @ W1 + b1 = (Zc @ W1c + b1) + Zs @ W1s

The cached term ``H0 = Zc @ W1c + b1`` never changes between queries; one
query only standardizes its shape-feature vector, adds the rank-one shape
term, and runs the remaining layers chunk-wise through preallocated
buffers.  :meth:`ExhaustiveSearch.top_k_batch` amortizes further by
pushing many query shapes through each cache-resident chunk of ``H0``.

Cold queries additionally run a **two-stage cascade**: stage 1 scores all
candidates with the full model evaluated in float32 over a low-precision
twin of ``H0``, keeps the ``cascade_keep`` best plus every candidate within
``2*delta`` of that threshold, and stage 2 re-scores only that shortlist
in full float64 precision.  ``delta`` is a per-dtype margin calibrated
offline (:meth:`ExhaustiveSearch.calibrate_cascade`, persisted with the
fit) bounding ``|full - proxy|``; because the proxy is the same network
at reduced precision, ``delta`` is rounding-sized (~1e-6 standardized
units) rather than model-sized, and under that bound the shortlist
provably contains the exhaustive top-k — the cascade is bit-identical to
the exhaustive search.  (Cheaper stage-1 families — collapsed linear
readouts, distilled students, certified interval bounds — were measured
and rejected: their score error is orders of magnitude above the
~0.01-unit gap between the top-k frontier and the candidate bulk, so no
margin both sound and useful exists for them.)  Whenever the bound cannot
be trusted — no calibration, weights changed since calibration, shortlist
blown wide, or an observed gap above ``delta`` — the query transparently
falls back to exhaustive scoring.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.core.ops import OpSpec, get_op
from repro.core.soa import LazyConfigList
from repro.core.space import ParamSpace
from repro.core.types import DType
from repro.gpu.device import DeviceSpec
from repro.mlp.crossval import CascadeCalibration, FitResult

#: Rows per chunk of the folded evaluation: intermediates stay cache-resident
#: (8192 x 64 float64 = 4 MiB) instead of streaming through DRAM.
_CHUNK_ROWS = 8192

#: Cap on (query shapes x candidates) prediction elements materialized at
#: once by top_k_batch (32M float64 = 256 MiB).
_BATCH_BLOCK_ELEMS = 32_000_000

#: Rows per chunk of the cascade's float32 stage 1.  Smaller than the
#: float64 chunk: the half-width intermediates of the whole layer stack
#: then stay L2-resident (measured ~13% faster than ``_CHUNK_ROWS``).
#: Calibration and query time share this constant, so stage-1 scores are
#: bit-reproducible for a given candidate set.
_CASCADE_CHUNK = 2048

#: Default stage-2 shortlist length (before margin widening); the engine
#: and CLI expose it as ``cascade_keep``.
_CASCADE_KEEP = 256

#: If the margin-widened shortlist exceeds this fraction of the candidate
#: set, stage 1 is not discriminating for this query and the exhaustive
#: path is cheaper than paying both stages.
_CASCADE_MAX_FRAC = 0.5


# ----------------------------------------------------------------------
# Candidate records and the once-per-key cache
# ----------------------------------------------------------------------

@dataclass
class CandidateRecord:
    """One cached candidate set, in array and (lazily) object form.

    ``params`` holds the surviving tuning-parameter columns of the
    vectorized enumeration — the persistable form the on-disk candidate
    store round-trips.  ``configs``/``matrix`` are materialized from the
    columns on first use (or populated directly by the scalar fallback,
    in which case ``params`` may be None).  ``space_params`` remembers
    the value sets the set was enumerated from, so a record persisted
    before a :class:`~repro.core.space.ParamSpace` edit is detected as
    stale and re-enumerated instead of silently served.
    """

    op: str
    params: dict[str, np.ndarray] | None = None
    matrix: np.ndarray | None = None
    configs: list | None = None
    space_params: tuple | None = None

    @property
    def ready(self) -> bool:
        return self.configs is not None and self.matrix is not None

    def materialize(self) -> "CandidateRecord":
        """Build configs + log-feature matrix from the stored columns.

        Bit-identical to the scalar path: the columns preserve
        ``iter_points`` ordering and the matrix applies the same float64
        log transform (``tests`` and ``bench_cold_start`` assert it).
        The configs sequence is a :class:`LazyConfigList` — objects are
        constructed only for the rows a search actually touches (its
        top-k slice), never for the whole 10^5-row set.
        """
        spec = get_op(self.op)
        if self.matrix is None and self.params is not None:
            builder = spec.config_matrix_from_params
            if builder is not None:
                self.matrix = builder(self.params, log=True)
        if self.configs is None:
            self.configs = LazyConfigList(spec.config_type, self.params)
        if self.matrix is None:  # op without a columns-native builder
            self.matrix = spec.config_matrix(self.configs, log=True)
        return self


class KeyedRecordCache:
    """A thread-safe map of :class:`CandidateRecord` built once per key.

    Concurrent callers of the same key elect one builder (per-key locks);
    different keys build in parallel.  ``seed`` publishes a params-only
    record (e.g. loaded from the on-disk candidate store) without racing
    an in-flight enumeration.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._records: dict[Hashable, CandidateRecord] = {}
        self._key_locks: dict[Hashable, threading.Lock] = {}

    def get(
        self,
        key: Hashable,
        build: Callable[[], CandidateRecord],
        validate: Callable[[CandidateRecord], bool] | None = None,
    ) -> CandidateRecord:
        with self._lock:
            rec = self._records.get(key)
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        if rec is not None and rec.ready and (
            validate is None or validate(rec)
        ):
            return rec
        with key_lock:
            with self._lock:
                rec = self._records.get(key)
            if rec is not None and validate is not None and not validate(rec):
                rec = None  # stale (e.g. space contents changed): rebuild
            if rec is not None and not rec.ready:
                try:
                    rec.materialize()
                except Exception as exc:
                    # A seeded record that cannot materialize (e.g. a
                    # stale on-disk schema) must not poison the key.
                    import warnings

                    warnings.warn(
                        f"discarding unusable candidate record {key}: "
                        f"{exc}",
                        stacklevel=3,
                    )
                    rec = None
            if rec is None:
                rec = build().materialize()
            with self._lock:
                # A seed may have published while we built (seed takes
                # only the outer lock).  Never replace a live ready
                # record: callers that already hold it must stay
                # canonical, and candidate sets are big enough that two
                # copies per key is a real cost.
                current = self._records.get(key)
                if (
                    current is not None
                    and current is not rec
                    and current.ready
                    and (validate is None or validate(current))
                ):
                    return current
                self._records[key] = rec
            return rec

    def peek(self, key: Hashable) -> CandidateRecord | None:
        """The ready record for ``key``, or None — never builds."""
        with self._lock:
            rec = self._records.get(key)
        return rec if rec is not None and rec.ready else None

    def seed(self, key: Hashable, record: CandidateRecord) -> bool:
        """Publish a record if the key is absent; returns True if kept."""
        with self._lock:
            if key in self._records:
                return False
            self._records[key] = record
            return True

    def snapshot(self) -> dict[Hashable, CandidateRecord]:
        with self._lock:
            return dict(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._key_locks.clear()


#: Enumerated candidate sets + their log-feature matrices, shared by every
#: search over the same (op, device, dtype, space).  Keyed by
#: OpSpec.candidate_cache_key, so only dtype-enumerable ops land here.
_LEGAL_CACHE = KeyedRecordCache()


def _enum_key(
    spec: OpSpec, device: DeviceSpec, dtype: DType, space: ParamSpace
) -> tuple[str, str, str, str]:
    return (spec.name, device.name, dtype.name, space.name)


def _check_enumerable(spec: OpSpec) -> None:
    if not spec.enumerable:
        raise ValueError(
            f"{spec.name.upper()} candidates are generated per query "
            "shape by the op's candidate generator, not enumerated per "
            "dtype"
        )


def _scalar_enumeration(
    spec: OpSpec, device: DeviceSpec, dtype: DType, space: ParamSpace
) -> tuple[list, np.ndarray]:
    """Reference path: walk X̂ point by point through scalar ``is_legal``."""
    configs: list = []
    for point in space.iter_points():
        cfg = spec.config_from_point(point)
        if spec.is_legal(cfg, dtype, device):
            configs.append(cfg)
    return configs, spec.config_matrix(configs, log=True)


def _enumerate_record(
    spec: OpSpec, device: DeviceSpec, dtype: DType, space: ParamSpace
) -> CandidateRecord:
    """Enumerate X for one (op, device, dtype, space) as a record.

    Array-native when the op registers ``legal_mask``: materialize X̂ as
    struct-of-arrays columns (:meth:`ParamSpace.grid`), apply the mask
    once, and keep only the surviving columns — config objects and the
    feature matrix are derived from them afterwards.  Ops without a mask
    (or whose space doesn't cover the config fields) fall back to the
    scalar walk.
    """
    names = set(space.names)
    vectorizable = (
        spec.legal_mask is not None
        and set(spec.config_type.param_names()) <= names
    )
    if not vectorizable:
        configs, matrix = _scalar_enumeration(spec, device, dtype, space)
        return CandidateRecord(
            op=spec.name, params=None, matrix=matrix, configs=configs,
            space_params=space.params,
        )
    cols = space.grid()
    mask = np.asarray(spec.legal_mask(device, cols, dtype), dtype=bool)
    idx = np.flatnonzero(mask)
    params = {n: np.ascontiguousarray(c[idx]) for n, c in cols.items()}
    return CandidateRecord(
        op=spec.name, params=params, space_params=space.params
    )


def legal_record(
    device: DeviceSpec,
    dtype: DType,
    op: str | OpSpec = "gemm",
    space: ParamSpace | None = None,
) -> CandidateRecord:
    """The cached (or freshly enumerated) record for (op, device, dtype)."""
    spec = get_op(op)
    _check_enumerable(spec)
    space = space or spec.space
    key = _enum_key(spec, device, dtype, space)
    return _LEGAL_CACHE.get(
        key,
        lambda: _enumerate_record(spec, device, dtype, space),
        # A record persisted before this space's value sets changed must
        # not be served under the new definition.
        validate=lambda r: (
            r.space_params is None or r.space_params == space.params
        ),
    )


def legal_configs(
    device: DeviceSpec,
    dtype: DType,
    op: str | OpSpec = "gemm",
    space: ParamSpace | None = None,
) -> tuple[list, np.ndarray]:
    """All legal configs for (device, dtype) plus their log-feature matrix.

    Only ops whose candidate set is shape-independent (``enumerable``) can
    be enumerated here.  Vectorized and cached: one ``legal_mask`` pass
    over the gridded product space (tens of milliseconds for GEMM's ~2M
    points, vs seconds for the scalar walk) is shared by every later
    search, and thread-safe — concurrent callers enumerate each key once.
    """
    rec = legal_record(device, dtype, op, space)
    return rec.configs, rec.matrix


def legal_configs_reference(
    device: DeviceSpec,
    dtype: DType,
    op: str | OpSpec = "gemm",
    space: ParamSpace | None = None,
) -> tuple[list, np.ndarray]:
    """Uncached scalar enumeration — the parity/benchmark reference."""
    spec = get_op(op)
    _check_enumerable(spec)
    return _scalar_enumeration(spec, device, dtype, space or spec.space)


def seed_enum_record(
    key: Hashable,
    op: str,
    params: Mapping[str, np.ndarray],
    space_params: tuple | None = None,
) -> bool:
    """Publish a stored enumeration (candidate-store load); True if kept."""
    record = CandidateRecord(
        op=op, params=dict(params), space_params=space_params
    )
    return _LEGAL_CACHE.seed(tuple(key), record)


def enum_cache_snapshot() -> dict[Hashable, CandidateRecord]:
    """Current enumeration records (for the on-disk candidate store)."""
    return _LEGAL_CACHE.snapshot()


def cached_matrix_for(configs: list) -> np.ndarray | None:
    """The log-feature matrix already cached for this exact configs list.

    Ops whose scalar ``candidates`` delegates to another op's
    :func:`legal_configs` (bgemm-style) return the cached list itself;
    matching by identity recovers its matrix without an O(n) rebuild.
    """
    for rec in _LEGAL_CACHE.snapshot().values():
        if rec.configs is configs:
            return rec.matrix
    return None


def clear_cache() -> None:
    from repro.inference import conv_search

    _LEGAL_CACHE.clear()
    conv_search.clear_bucket_cache()


@dataclass
class Prediction:
    """One candidate from the exhaustive search."""

    config: object
    predicted_tflops: float


class _FoldedMLP:
    """The fit's scaler + first layer, folded for a fixed feature split.

    Splits the standardization and the first (affine) layer into a
    config-column part — applied once per candidate set — and a
    shape-column part applied per query.  The remaining layers run over
    preallocated chunk buffers with in-place activations, numerically
    identical (modulo float association) to the plain forward pass.
    """

    def __init__(self, fit: FitResult, n_config_features: int):
        layers = fit.model.layers
        scaler = fit.x_scaler
        nc = n_config_features
        w1 = layers[0].w
        self._mean_c = scaler.mean_[:nc].copy()
        self._scale_c = scaler.scale_[:nc].copy()
        self._mean_s = scaler.mean_[nc:].copy()
        self._scale_s = scaler.scale_[nc:].copy()
        # True copies, not views: the snapshot must diverge from the live
        # model when it is mutated in place, so is_current() can tell.
        self._w1_cfg = np.array(w1[:nc], order="C", copy=True)
        self._w1_shape = np.array(w1[nc:], order="C", copy=True)
        self._b1 = layers[0].b.copy()
        self._act0 = layers[0].activation
        self._rest = layers[1:]
        self._fit = fit
        widths = [w1.shape[1]] + [lyr.w.shape[1] for lyr in self._rest]
        self._bufs = [np.empty((_CHUNK_ROWS, w)) for w in widths]

    def is_current(self) -> bool:
        """Whether the folded snapshot still matches the live model.

        The first layer and scaler stats are copied at fold time (they are
        baked into cached ``H0`` terms); in-place model mutation — pruning,
        further fine-tuning — must invalidate the fold.  Cheap: the first
        layer is ~n_features x width floats.
        """
        layers = self._fit.model.layers
        scaler = self._fit.x_scaler
        nc = len(self._mean_c)
        w1 = layers[0].w
        return (
            w1.shape[0] == nc + len(self._mean_s)
            and np.array_equal(self._w1_cfg, w1[:nc])
            and np.array_equal(self._w1_shape, w1[nc:])
            and np.array_equal(self._b1, layers[0].b)
            and np.array_equal(self._mean_c, scaler.mean_[:nc])
            and np.array_equal(self._scale_c, scaler.scale_[:nc])
            and np.array_equal(self._mean_s, scaler.mean_[nc:])
            and np.array_equal(self._scale_s, scaler.scale_[nc:])
        )

    @staticmethod
    def supports(fit: FitResult, n_features: int) -> bool:
        """Whether the model/scaler expose what folding needs."""
        layers = getattr(fit.model, "layers", None)
        if not layers:
            return False
        first = layers[0]
        if not hasattr(first, "w") or not hasattr(first, "activation"):
            return False
        return (
            first.w.shape[0] == n_features
            and fit.x_scaler.mean_ is not None
            and len(fit.x_scaler.mean_) == n_features
        )

    # ------------------------------------------------------------------
    def prescale(self, cfg_matrix: np.ndarray) -> np.ndarray:
        """``H0``: standardized config columns through the first layer."""
        z = (cfg_matrix - self._mean_c) / self._scale_c
        return z @ self._w1_cfg + self._b1

    def _shape_term(self, shape_vec: np.ndarray) -> np.ndarray:
        z = (shape_vec - self._mean_s) / self._scale_s
        return z @ self._w1_shape

    @staticmethod
    def _activate(act, a: np.ndarray) -> np.ndarray:
        if act.name == "relu":
            np.maximum(a, 0.0, out=a)
        elif act.name != "identity":
            a[...] = act.fn(a)
        return a

    def _eval_chunk(
        self, h0_chunk: np.ndarray, h: np.ndarray, out_row: np.ndarray
    ) -> None:
        m = len(h0_chunk)
        a = self._bufs[0][:m]
        np.add(h0_chunk, h, out=a)
        self._activate(self._act0, a)
        for layer, buf in zip(self._rest, self._bufs[1:]):
            nxt = buf[:m]
            np.dot(a, layer.w, out=nxt)
            nxt += layer.b
            self._activate(layer.activation, nxt)
            a = nxt
        out_row[:] = a[:, 0]

    def predict(self, h0: np.ndarray, shape_vec: np.ndarray) -> np.ndarray:
        """Standardized model outputs for every candidate at one shape."""
        h = self._shape_term(shape_vec)
        n = len(h0)
        out = np.empty(n)
        for lo in range(0, n, _CHUNK_ROWS):
            hi = min(n, lo + _CHUNK_ROWS)
            self._eval_chunk(h0[lo:hi], h, out[lo:hi])
        return out

    def predict_batch(
        self, h0: np.ndarray, shape_vecs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """(n_shapes, n_candidates) outputs, one pass over ``h0``.

        Each chunk of the candidate term is evaluated for every shape
        while it is cache-resident, so the batch pays the memory traffic
        of a single query.
        """
        hs = [self._shape_term(v) for v in shape_vecs]
        n = len(h0)
        out = np.empty((len(hs), n))
        for lo in range(0, n, _CHUNK_ROWS):
            hi = min(n, lo + _CHUNK_ROWS)
            chunk = h0[lo:hi]
            for b, h in enumerate(hs):
                self._eval_chunk(chunk, h, out[b, lo:hi])
        return out


@dataclass
class CascadeStats:
    """Counters for the two-stage cascade, kept per search instance.

    ``pruned`` sums candidates stage 2 never scored; ``fallbacks`` counts
    queries that started stage 1 but finished exhaustively (blown
    shortlist or failed margin check).  Queries that never entered the
    cascade (disabled, uncalibrated, tiny candidate set) count as
    ``exhaustive_queries`` only.
    """

    cascade_queries: int = 0
    exhaustive_queries: int = 0
    fallbacks: int = 0
    pruned: int = 0
    stage1_ms: float = 0.0
    stage2_ms: float = 0.0


class _Cascade:
    """Stage-1 scorer: the full network evaluated in float32.

    Runs every layer of the folded model in float32 over the cached
    float32 twin of ``H0``, chunk-wise through preallocated buffers (the
    float64 hot path's structure, at half the memory traffic and roughly
    twice the sgemm throughput).  The proxy is therefore the same
    function as the exhaustive scorer up to float32 rounding, so the
    calibrated per-dtype margin ``delta`` is rounding-sized (~1e-6
    standardized units) — small against the ~0.01-unit spread of scores
    near the top-k frontier, which is what makes the widened shortlist
    barely wider than ``keep``.  Let ``delta >= max_i |f_i - p_i|``; for
    the ``keep``-th largest proxy ``tau``, every true top-k candidate
    satisfies ``p >= tau - 2*delta``, so the shortlist provably contains
    the exhaustive top-k.

    ``_FoldedMLP.is_current()`` only watches the first layer and scalers,
    so the later layers are snapshotted here and re-checked by
    :meth:`is_current` — in-place mutation of *any* layer disables the
    cascade until it is rebuilt.
    """

    __slots__ = ("margins", "_ws", "_bs", "_acts", "_w_out", "_b_out",
                 "_act_out", "_rest_snapshot", "_folded", "_bufs")

    def __init__(self, folded: _FoldedMLP, margins: Mapping[str, float]):
        self.margins = dict(margins)
        rest = folded._rest
        self._ws = [
            np.ascontiguousarray(lyr.w, dtype=np.float32)
            for lyr in rest[:-1]
        ]
        self._bs = [lyr.b.astype(np.float32) for lyr in rest[:-1]]
        self._acts = [lyr.activation for lyr in rest[:-1]]
        last = rest[-1]
        self._w_out = np.ascontiguousarray(last.w[:, 0], dtype=np.float32)
        self._b_out = np.float32(last.b[0])
        self._act_out = last.activation
        self._rest_snapshot = [(lyr.w.copy(), lyr.b.copy()) for lyr in rest]
        self._folded = folded
        widths = [folded._b1.shape[0]] + [w.shape[1] for w in self._ws]
        self._bufs = [
            np.empty((_CASCADE_CHUNK, w), dtype=np.float32) for w in widths
        ]

    def is_current(self) -> bool:
        rest = self._folded._rest
        if len(rest) != len(self._rest_snapshot):
            return False
        return all(
            np.array_equal(w, lyr.w) and np.array_equal(b, lyr.b)
            for (w, b), lyr in zip(self._rest_snapshot, rest)
        )

    def _score_chunk(
        self, chunk: np.ndarray, h: np.ndarray, out_row: np.ndarray
    ) -> None:
        m = len(chunk)
        a = self._bufs[0][:m]
        np.add(chunk, h, out=a)
        _FoldedMLP._activate(self._folded._act0, a)
        for w, b, act, buf in zip(
            self._ws, self._bs, self._acts, self._bufs[1:]
        ):
            nxt = buf[:m]
            np.dot(a, w, out=nxt)
            np.add(nxt, b, out=nxt)
            _FoldedMLP._activate(act, nxt)
            a = nxt
        np.dot(a, self._w_out, out=out_row)
        np.add(out_row, self._b_out, out=out_row)
        _FoldedMLP._activate(self._act_out, out_row)

    def scores(self, h0_lo: np.ndarray, shape_vec: np.ndarray) -> np.ndarray:
        """Float32 proxy scores for every candidate at one query shape.

        Chunk boundaries are fixed multiples of ``_CHUNK_ROWS``, so the
        result is bit-reproducible for a given candidate set — the
        calibration-time and query-time proxies are the same numbers.
        """
        h = self._folded._shape_term(shape_vec).astype(np.float32)
        n = len(h0_lo)
        out = np.empty(n, dtype=np.float32)
        for lo in range(0, n, _CASCADE_CHUNK):
            hi = min(n, lo + _CASCADE_CHUNK)
            self._score_chunk(h0_lo[lo:hi], h, out[lo:hi])
        return out

    def scores_many(
        self, h0_lo: np.ndarray, shape_vecs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """(n_shapes, n_candidates) proxies, one pass over ``h0_lo``.

        Per-shape results are bit-identical to :meth:`scores` (same
        chunking, same per-shape operations); only the traffic over the
        low-precision ``H0`` twin is amortized across the batch.
        """
        hs = [
            self._folded._shape_term(v).astype(np.float32)
            for v in shape_vecs
        ]
        n = len(h0_lo)
        out = np.empty((len(hs), n), dtype=np.float32)
        for lo in range(0, n, _CASCADE_CHUNK):
            hi = min(n, lo + _CASCADE_CHUNK)
            chunk = h0_lo[lo:hi]
            for b, h in enumerate(hs):
                self._score_chunk(chunk, h, out[b, lo:hi])
        return out


@dataclass
class _CandidateSet:
    """One op's candidates with precomputed search-side artifacts."""

    configs: list
    cfg_matrix: np.ndarray
    h0: np.ndarray | None = None
    #: float32 twin of ``h0`` the cascade's stage 1 streams over (half
    #: the memory traffic of the full-precision term).
    h0_lo: np.ndarray | None = None


class ExhaustiveSearch:
    """Vectorized model evaluation over every legal tuning vector.

    ``op`` is any name registered with :func:`repro.core.ops.register_op`
    (or an :class:`~repro.core.ops.OpSpec` directly).
    """

    def __init__(
        self,
        fit: FitResult,
        device: DeviceSpec,
        op: str | OpSpec = "gemm",
        space: ParamSpace | None = None,
        *,
        cascade: bool = True,
        cascade_keep: int = _CASCADE_KEEP,
    ):
        self._spec = get_op(op)
        self._fit = fit
        self._device = device
        self._space = space
        self._sets: dict[Hashable, _CandidateSet] = {}
        self._adopted: dict[Hashable, np.ndarray] = {}
        self._adopted_lo: dict[Hashable, np.ndarray] = {}
        n_features = len(self._spec.feature_names)
        self._folded = (
            _FoldedMLP(fit, self._spec.n_config_features)
            if _FoldedMLP.supports(fit, n_features)
            else None
        )
        self._cascade_enabled = bool(cascade)
        self._cascade_keep = max(1, int(cascade_keep))
        self._cascade: _Cascade | None = None
        self._cascade_calib: CascadeCalibration | None = None
        self.cascade_stats = CascadeStats()

    @property
    def spec(self) -> OpSpec:
        return self._spec

    @property
    def op(self) -> str:
        return self._spec.name

    # ------------------------------------------------------------------
    def _refresh_fold(self) -> None:
        """Re-fold if the model/scaler was mutated in place (e.g. pruned)."""
        if self._folded is None or self._folded.is_current():
            return
        self._folded = _FoldedMLP(self._fit, self._spec.n_config_features)
        self._adopted.clear()  # prescaled against the stale fold
        self._adopted_lo.clear()
        self._cascade = None  # collapsed from the stale layers
        self._cascade_calib = None
        for cs in self._sets.values():
            cs.h0 = None
            cs.h0_lo = None

    def refold(self) -> bool:
        """Re-fold *now* after an in-place model swap; True if it refolded.

        Every search entry point re-checks the fold lazily, but a hot
        swap wants the invalidation to complete inside the swapper's
        critical section — the caller holds the same lock searches take,
        so once this returns no reader can ever pair the new weights
        with a stale prescaled ``H0``.
        """
        if self._folded is None:
            return False
        stale = not self._folded.is_current()
        self._refresh_fold()
        return stale

    def _candidate_set(self, shape) -> _CandidateSet:
        self._refresh_fold()
        key = self._spec.candidate_cache_key(self._device, shape, self._space)
        cs = self._sets.get(key)
        if cs is None:
            if self._spec.candidates_batch is not None:
                # Array-native supply: list + log-feature matrix in one
                # call, cached module-wide behind the op's candidate key.
                configs, matrix = self._spec.candidates_batch(
                    self._device, shape, self._space
                )
            else:
                # Enumerable ops share one candidate set module-wide, so
                # a later search instance must not rebuild the feature
                # matrix the first one already paid for.
                rec = (
                    _LEGAL_CACHE.peek(key) if self._spec.enumerable
                    else None
                )
                if rec is not None:
                    configs, matrix = rec.configs, rec.matrix
                else:
                    configs = self._spec.candidates(
                        self._device, shape, self._space
                    )
                    matrix = cached_matrix_for(configs)
                    if matrix is None:
                        matrix = self._spec.config_matrix(configs, log=True)
                    if self._spec.enumerable:
                        _LEGAL_CACHE.seed(key, CandidateRecord(
                            op=self._spec.name, matrix=matrix,
                            configs=configs,
                        ))
            cs = _CandidateSet(configs=configs, cfg_matrix=matrix)
            self._sets[key] = cs
        if cs.h0 is None and self._folded is not None:
            adopted = self._adopted.get(key)
            if (
                adopted is not None
                and adopted.shape[0] == cs.cfg_matrix.shape[0]
            ):
                cs.h0 = adopted
            else:
                cs.h0 = self._folded.prescale(cs.cfg_matrix)
        return cs

    def prescaled_snapshot(self) -> dict[Hashable, np.ndarray]:
        """Every computed ``H0`` term, by candidate key.

        The worker tier ships these through shared memory so a fresh
        worker skips the per-set prescale matmul; only sets this search
        has actually touched (and whose fold is current) appear.
        """
        self._refresh_fold()
        return {
            key: cs.h0
            for key, cs in self._sets.items()
            if cs.h0 is not None
        }

    def adopt_prescaled(self, key: Hashable, h0: np.ndarray) -> None:
        """Accept an externally computed ``H0`` for a candidate key.

        The array (typically a read-only shared-memory view) is used
        verbatim iff its row count matches the candidate set built for
        ``key`` — it was prescaled from the same fit bytes, so the values
        are bit-identical to a local :meth:`_FoldedMLP.prescale`.  A
        mismatch (space edit between export and attach) silently falls
        back to prescaling locally.
        """
        if self._folded is None:
            return
        self._adopted[key] = h0

    # ------------------------------------------------------------------
    # Two-stage cascade
    # ------------------------------------------------------------------
    def set_cascade(self, enabled: bool, keep: int | None = None) -> None:
        """Flip the cascade on/off and/or change the shortlist length."""
        self._cascade_enabled = bool(enabled)
        if keep is not None:
            self._cascade_keep = max(1, int(keep))

    def _cascade_state(self) -> _Cascade | None:
        """The live stage-1 scorer, rebuilt and currency-checked.

        Returns None — and thus exhaustive search — unless the fit
        carries a calibration whose weights digest matches the *current*
        weights and the collapsed-layer snapshot is still current.
        """
        if not self._cascade_enabled or self._folded is None:
            return None
        calib = self._fit.cascade
        cas = self._cascade
        # The calibration identity check catches the fit's ``cascade``
        # being replaced (or dropped) with no weight mutation — e.g. an
        # engine disarming a tuner mid-swap before the refold lands.
        if (cas is not None and calib is self._cascade_calib
                and cas.is_current()):
            return cas
        self._cascade = None
        self._cascade_calib = None
        if calib is None or not calib.margins:
            return None
        from repro.mlp.serialize import fit_weights_digest

        if calib.weights_digest != fit_weights_digest(self._fit):
            # Calibrated against different weights (hot-swap, in-place
            # mutation): pruning with these margins would be unsafe.
            return None
        self._cascade = _Cascade(self._folded, calib.margins)
        self._cascade_calib = calib
        return self._cascade

    def _ensure_lowres(self, key: Hashable, cs: _CandidateSet) -> np.ndarray:
        """The float32 ``H0`` twin for one candidate set, built lazily."""
        if cs.h0_lo is None:
            adopted = self._adopted_lo.get(key)
            if (
                adopted is not None
                and adopted.shape == cs.h0.shape
                and adopted.dtype == np.float32
            ):
                cs.h0_lo = adopted
            else:
                cs.h0_lo = cs.h0.astype(np.float32)
        return cs.h0_lo

    def cascade_snapshot(self) -> dict[Hashable, np.ndarray]:
        """Every computed float32 ``H0`` twin, by candidate key.

        The worker tier ships these through shared memory alongside the
        full-precision terms so a fresh worker runs the cascade with zero
        per-worker copies.
        """
        self._refresh_fold()
        return {
            key: cs.h0_lo
            for key, cs in self._sets.items()
            if cs.h0_lo is not None
        }

    def adopt_cascade(self, key: Hashable, h0_lo: np.ndarray) -> None:
        """Accept an externally computed float32 twin for a candidate key.

        Same contract as :meth:`adopt_prescaled`: the view is used
        verbatim iff it matches the set built for ``key`` (it was cast
        from bit-identical ``H0`` values, so the twin is bit-identical
        too); any mismatch falls back to casting locally.
        """
        if self._folded is None:
            return
        self._adopted_lo[key] = h0_lo

    def calibrate_cascade(
        self,
        dtypes: Sequence[DType],
        *,
        n_shapes: int = 4,
        seed: int = 0,
        safety: float = 4.0,
    ) -> CascadeCalibration:
        """Measure per-dtype pruning margins for this fit on this device.

        For each dtype, samples ``n_shapes`` query shapes from the op's
        shape sampler and records the largest gap between the full
        standardized model output and the stage-1 proxy over the whole
        candidate set; the margin is that maximum times ``safety`` (plus
        a tiny absolute floor).  Deterministic for a given seed.  Returns
        the calibration; the caller attaches it to the fit
        (``fit.cascade = ...``) to arm the cascade.
        """
        self._refresh_fold()
        if self._folded is None:
            raise RuntimeError(
                "cascade calibration needs the folded fast path "
                "(fit not foldable for this op)"
            )
        from repro.mlp.serialize import fit_weights_digest

        cas = _Cascade(self._folded, {})
        rng = np.random.default_rng(seed)
        margins: dict[str, float] = {}
        for dtype in dtypes:
            sampler = self._spec.make_shape_sampler((dtype,))
            delta = 0.0
            for _ in range(n_shapes):
                shape = sampler(rng)
                cs = self._candidate_set(shape)
                key = self._spec.candidate_cache_key(
                    self._device, shape, self._space
                )
                vec = self._spec.shape_vector(shape, log=True)
                f = self._folded.predict(cs.h0, vec)
                p = cas.scores(self._ensure_lowres(key, cs), vec)
                gap = float(np.max(np.abs(f - p.astype(np.float64))))
                delta = max(delta, gap)
            margins[dtype.name] = delta * safety + 1e-9
        return CascadeCalibration(
            margins=margins,
            weights_digest=fit_weights_digest(self._fit),
            n_shapes=n_shapes,
            safety=safety,
        )

    def _cascade_ready(
        self, cs: _CandidateSet, dtype_name: str, k: int
    ) -> tuple[_Cascade, float] | None:
        """Stage-1 scorer + margin if the cascade applies, else None."""
        if k <= 0:
            return None
        cas = self._cascade_state()
        if cas is None:
            return None
        delta = cas.margins.get(dtype_name)
        if delta is None or not np.isfinite(delta) or delta < 0:
            return None
        keep = max(self._cascade_keep, k)
        if keep * 4 >= len(cs.configs):
            return None  # tiny sets: stage 1 cannot pay for itself
        return cas, float(delta)

    def _cascade_finish(
        self,
        cs: _CandidateSet,
        shape,
        k: int,
        proxy: np.ndarray,
        delta: float,
    ) -> list[Prediction] | None:
        """Shortlist + stage-2 rerank from precomputed proxy scores.

        Returns None on fallback (shortlist blown wide, or an observed
        ``|full - proxy|`` above the calibrated margin — in which case
        the pruned candidates cannot be trusted either).
        """
        stats = self.cascade_stats
        n = len(proxy)
        keep = max(self._cascade_keep, k)
        tau = np.partition(proxy, n - keep)[n - keep]
        # Threshold and comparison in float64: a float32 subtraction
        # could round the cutoff *up* and silently narrow the provable
        # shortlist.
        thr = float(tau) - 2.0 * delta
        p64 = proxy.astype(np.float64)
        survivors = np.flatnonzero(p64 >= thr)
        if len(survivors) > n * _CASCADE_MAX_FRAC:
            stats.fallbacks += 1
            return None
        t1 = time.perf_counter()
        f = self._folded.predict(
            np.ascontiguousarray(cs.h0[survivors]),
            self._spec.shape_vector(shape, log=True),
        )
        if np.max(np.abs(f - p64[survivors])) > delta:
            stats.fallbacks += 1
            stats.stage2_ms += (time.perf_counter() - t1) * 1e3
            return None
        preds = self._fit.y_scaler.inverse_transform(f)
        kk = min(k, len(survivors))
        top = np.argpartition(-preds, kk - 1)[:kk]
        top = top[np.argsort(-preds[top])]
        out = [
            Prediction(
                config=cs.configs[survivors[i]],
                predicted_tflops=float(2.0 ** preds[i]),
            )
            for i in top
        ]
        stats.cascade_queries += 1
        stats.pruned += n - len(survivors)
        stats.stage2_ms += (time.perf_counter() - t1) * 1e3
        return out

    def _cascade_select(
        self, cs: _CandidateSet, shape, k: int
    ) -> list[Prediction] | None:
        """One query through both stages; None means search exhaustively."""
        ready = self._cascade_ready(cs, shape.dtype.name, k)
        if ready is None:
            return None
        cas, delta = ready
        key = self._spec.candidate_cache_key(self._device, shape, self._space)
        t0 = time.perf_counter()
        proxy = cas.scores(
            self._ensure_lowres(key, cs),
            self._spec.shape_vector(shape, log=True),
        )
        self.cascade_stats.stage1_ms += (time.perf_counter() - t0) * 1e3
        return self._cascade_finish(cs, shape, k, proxy, delta)

    def candidates(self, shape) -> tuple[list, np.ndarray]:
        """Candidate configs + config-feature matrix for one query shape."""
        cs = self._candidate_set(shape)
        return cs.configs, cs.cfg_matrix

    # ------------------------------------------------------------------
    def predictions(self, shape) -> np.ndarray:
        """Predicted log2-TFLOPS for every candidate config at this shape."""
        cs = self._candidate_set(shape)
        if self._folded is None:
            return self._predict_reference(cs, shape)
        pred = self._folded.predict(
            cs.h0, self._spec.shape_vector(shape, log=True)
        )
        return self._fit.y_scaler.inverse_transform(pred)

    def predictions_reference(self, shape) -> np.ndarray:
        """The unfolded path: build and re-standardize the full design
        matrix per query.  Kept as the numerical reference the pre-scaled
        path is regression-tested (and benchmarked) against."""
        return self._predict_reference(self._candidate_set(shape), shape)

    def _predict_reference(self, cs: _CandidateSet, shape) -> np.ndarray:
        shape_vec = self._spec.shape_vector(shape, log=True)
        design = np.hstack(
            [cs.cfg_matrix, np.tile(shape_vec, (len(cs.configs), 1))]
        )
        z = self._fit.x_scaler.transform(design)
        pred = self._fit.model.predict(z)
        return self._fit.y_scaler.inverse_transform(pred)

    # ------------------------------------------------------------------
    def _select(self, configs: list, preds: np.ndarray, k: int, shape):
        k = min(k, len(configs))
        if k == 0:
            raise RuntimeError(
                f"no legal configuration for {shape} on {self._device.name}"
            )
        top = np.argpartition(-preds, k - 1)[:k]
        top = top[np.argsort(-preds[top])]
        return [
            Prediction(config=configs[i], predicted_tflops=float(2.0 ** preds[i]))
            for i in top
        ]

    def top_k(self, shape, k: int = 100) -> list[Prediction]:
        """The k configs the model believes are fastest, best first."""
        cs = self._candidate_set(shape)
        if self._folded is not None:
            sel = self._cascade_select(cs, shape, k)
            if sel is not None:
                return sel
        preds = self.predictions(shape)
        self.cascade_stats.exhaustive_queries += 1
        return self._select(cs.configs, preds, k, shape)

    def top_k_batch(
        self, shapes: Sequence, k: int = 100
    ) -> list[list[Prediction]]:
        """Per-shape top-k for many query shapes in one model pass.

        Shapes sharing a candidate set (e.g. GEMM shapes of one dtype) are
        evaluated together chunk-wise; results match per-shape
        :meth:`top_k` exactly.  Cascade-eligible shapes run stage 1
        batched over the same cache-resident chunks; fallbacks rejoin the
        exhaustive batch path.
        """
        results: list[list[Prediction] | None] = [None] * len(shapes)
        groups: dict[Hashable, list[int]] = {}
        for i, shape in enumerate(shapes):
            key = self._spec.candidate_cache_key(
                self._device, shape, self._space
            )
            groups.setdefault(key, []).append(i)
        for key, idxs in groups.items():
            cs = self._candidate_set(shapes[idxs[0]])
            if self._folded is None:
                for i in idxs:
                    results[i] = self.top_k(shapes[i], k)
                continue
            pending = idxs
            # All shapes in a group share a dtype (it is part of the
            # candidate cache key), so one margin covers the group.
            ready = self._cascade_ready(cs, shapes[idxs[0]].dtype.name, k)
            if ready is not None:
                cas, delta = ready
                h0_lo = self._ensure_lowres(key, cs)
                per = max(
                    1, (2 * _BATCH_BLOCK_ELEMS) // max(1, len(cs.configs))
                )
                pending = []
                for lo in range(0, len(idxs), per):
                    sub = idxs[lo:lo + per]
                    t0 = time.perf_counter()
                    proxies = cas.scores_many(
                        h0_lo,
                        [
                            self._spec.shape_vector(shapes[i], log=True)
                            for i in sub
                        ],
                    )
                    self.cascade_stats.stage1_ms += (
                        time.perf_counter() - t0
                    ) * 1e3
                    for row, i in zip(proxies, sub):
                        sel = self._cascade_finish(
                            cs, shapes[i], k, row, delta
                        )
                        if sel is None:
                            pending.append(i)
                        else:
                            results[i] = sel
            # Bound the materialized (shapes x candidates) prediction block
            # so arbitrarily large batches cannot exhaust memory.
            per_group = max(1, _BATCH_BLOCK_ELEMS // max(1, len(cs.configs)))
            for lo in range(0, len(pending), per_group):
                sub = pending[lo:lo + per_group]
                vecs = [
                    self._spec.shape_vector(shapes[i], log=True) for i in sub
                ]
                rows = self._fit.y_scaler.inverse_transform(
                    self._folded.predict_batch(cs.h0, vecs)
                )
                for row, i in zip(rows, sub):
                    self.cascade_stats.exhaustive_queries += 1
                    results[i] = self._select(cs.configs, row, k, shapes[i])
        return results  # type: ignore[return-value]
