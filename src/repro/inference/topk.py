"""Top-k re-ranking on the device (paper §6).

"It is trivial to obtain the 100 (or more) fastest configurations for our
model, and re-evaluate them on the target GPU to smooth out the inherent
noise of our predictive model."  The model's argmax can be wrong in two
ways — model error and measurement noise — and re-benchmarking a short list
fixes both at negligible cost relative to exhaustive on-device search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.ops import OpSpec, get_op
from repro.gpu.device import DeviceSpec
from repro.gpu.simulator import IllegalKernelError
from repro.inference.search import Prediction


@dataclass
class RankedKernel:
    """A candidate after on-device re-evaluation.

    ``source`` records where the numbers come from: ``"reranked"`` means
    ``predicted_tflops`` is the model's estimate and ``measured_tflops``
    was benchmarked on the device; ``"cache"`` means the kernel was read
    back from a profile cache, which persists only the measurement —
    ``predicted_tflops`` is then NaN rather than a fake copy of the
    measured value.
    """

    config: object
    predicted_tflops: float
    measured_tflops: float
    source: str = "reranked"


def rerank(
    device: DeviceSpec,
    shape,
    candidates: Sequence[Prediction],
    *,
    op: str | OpSpec = "gemm",
    reps: int = 3,
) -> list[RankedKernel]:
    """Benchmark each candidate on the device; best measured first."""
    bench = get_op(op).benchmark
    ranked: list[RankedKernel] = []
    for cand in candidates:
        try:
            measured = bench(device, cand.config, shape, reps=reps)
        except IllegalKernelError:
            continue  # the search space should preclude this; stay safe
        ranked.append(
            RankedKernel(
                config=cand.config,
                predicted_tflops=cand.predicted_tflops,
                measured_tflops=measured,
            )
        )
    if not ranked:
        raise RuntimeError("no candidate survived re-ranking")
    ranked.sort(key=lambda r: -r.measured_tflops)
    return ranked


def best_after_rerank(
    device: DeviceSpec,
    shape,
    candidates: Sequence[Prediction],
    *,
    op: str | OpSpec = "gemm",
    reps: int = 3,
) -> RankedKernel:
    return rerank(device, shape, candidates, op=op, reps=reps)[0]
