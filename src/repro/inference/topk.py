"""Top-k re-ranking on the device (paper §6).

"It is trivial to obtain the 100 (or more) fastest configurations for our
model, and re-evaluate them on the target GPU to smooth out the inherent
noise of our predictive model."  The model's argmax can be wrong in two
ways — model error and measurement noise — and re-benchmarking a short list
fixes both at negligible cost relative to exhaustive on-device search.

The whole shortlist is benchmarked in *one* batched simulator call
(``OpSpec.benchmark_pairs``), not config-by-config; candidates the
simulator rejects as illegal are counted and surfaced
(:class:`RerankReport.dropped`) instead of silently vanishing.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Sequence

from repro.core.ops import OpSpec, get_op
from repro.gpu.device import DeviceSpec
from repro.inference.search import Prediction


@dataclass
class RankedKernel:
    """A candidate after on-device re-evaluation.

    ``source`` records where the numbers come from: ``"reranked"`` means
    ``predicted_tflops`` is the model's estimate and ``measured_tflops``
    was benchmarked on the device; ``"cache"`` means the kernel was read
    back from a profile cache, which persists only the measurement —
    ``predicted_tflops`` is then NaN rather than a fake copy of the
    measured value.

    ``model_version`` tags which fit produced the shortlist this kernel
    was reranked from (0 = the offline fit, bumped by every online
    fine-tune).  None when no model was involved — cache hits, or
    callers that predate the versioned store.
    """

    config: object
    predicted_tflops: float
    measured_tflops: float
    source: str = "reranked"
    model_version: int | None = None


@dataclass
class RerankReport:
    """Everything one re-ranking pass did.

    ``dropped`` counts shortlist candidates the simulator refused as
    illegal (outside X, or not fitting on the device).  The search space
    should preclude these, so a non-zero count is a signal worth
    surfacing — :func:`rerank` turns it into a warning.
    """

    ranked: list[RankedKernel]
    dropped: int

    @property
    def evaluated(self) -> int:
        return len(self.ranked) + self.dropped


def rerank_with_report(
    device: DeviceSpec,
    shape,
    candidates: Sequence[Prediction],
    *,
    op: str | OpSpec = "gemm",
    reps: int = 3,
) -> RerankReport:
    """Benchmark the whole shortlist in one batched call; best measured first."""
    spec = get_op(op)
    cfgs = [cand.config for cand in candidates]
    measured = spec.benchmark_pairs(
        device, cfgs, [shape] * len(cfgs), reps=reps
    )
    ranked = [
        RankedKernel(
            config=cand.config,
            predicted_tflops=cand.predicted_tflops,
            measured_tflops=float(m),
        )
        for cand, m in zip(candidates, measured)
        if not math.isnan(m)
    ]
    dropped = len(cfgs) - len(ranked)
    ranked.sort(key=lambda r: -r.measured_tflops)
    return RerankReport(ranked=ranked, dropped=dropped)


def rerank(
    device: DeviceSpec,
    shape,
    candidates: Sequence[Prediction],
    *,
    op: str | OpSpec = "gemm",
    reps: int = 3,
) -> list[RankedKernel]:
    """Benchmark each candidate on the device; best measured first.

    Illegal candidates are dropped from the ranking but no longer
    silently: the drop count is reported through a ``RuntimeWarning``
    (use :func:`rerank_with_report` to get it programmatically).
    """
    report = rerank_with_report(device, shape, candidates, op=op, reps=reps)
    if report.dropped:
        warnings.warn(
            f"rerank dropped {report.dropped} of {report.evaluated} "
            "shortlist candidates as illegal kernels",
            RuntimeWarning,
            stacklevel=2,
        )
    if not report.ranked:
        raise RuntimeError("no candidate survived re-ranking")
    return report.ranked


def best_after_rerank(
    device: DeviceSpec,
    shape,
    candidates: Sequence[Prediction],
    *,
    op: str | OpSpec = "gemm",
    reps: int = 3,
) -> RankedKernel:
    return rerank(device, shape, candidates, op=op, reps=reps)[0]
