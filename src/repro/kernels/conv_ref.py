"""Functional convolution: direct reference and implicit-GEMM executor.

``conv_reference`` evaluates the paper's equation (1) directly;
``execute_conv`` runs the implicit-GEMM lowering with the tiled
decomposition of a :class:`~repro.core.config.ConvConfig`, exercising the
indirection table, the five-dimensional tiling (projected to the implicit
GEMM) and the CS/CL/CG reduction splits.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ConvConfig
from repro.core.types import ConvShape, DType
from repro.kernels.im2col import (
    filters_as_matrix,
    im2col,
    output_from_gemm,
)
from repro.kernels.tiling import ExecutionTrace, tiled_matmul

_ACCUM = {
    DType.FP16: np.float32,
    DType.FP32: np.float64,
    DType.FP64: np.float64,
}


def make_tensors(
    shape: ConvShape, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random I (C,H,W,N) and F (C,R,S,K) tensors for a problem shape."""
    rng = np.random.default_rng(seed)
    dt = np.dtype(shape.dtype.numpy_name)
    i_tensor = rng.standard_normal((shape.c, shape.h, shape.w, shape.n))
    f_tensor = rng.standard_normal((shape.c, shape.r, shape.s, shape.k))
    return i_tensor.astype(dt), f_tensor.astype(dt)


def conv_reference(
    i_tensor: np.ndarray, f_tensor: np.ndarray, shape: ConvShape
) -> np.ndarray:
    """Direct evaluation of paper eq. (1): O[k,p,q,n] = sum_crs I*F."""
    acc = _ACCUM[shape.dtype]
    out = np.zeros((shape.k, shape.p, shape.q, shape.n), dtype=acc)
    if shape.pad_h or shape.pad_w:
        padded = np.zeros(
            (
                shape.c,
                shape.h + 2 * shape.pad_h,
                shape.w + 2 * shape.pad_w,
                shape.n,
            ),
            dtype=i_tensor.dtype,
        )
        padded[
            :,
            shape.pad_h : shape.pad_h + shape.h,
            shape.pad_w : shape.pad_w + shape.w,
            :,
        ] = i_tensor
    else:
        padded = i_tensor

    for r in range(shape.r):
        for s in range(shape.s):
            # window: (C, P, Q, N) slab at filter tap (r, s)
            slab = padded[
                :,
                r : r + shape.p * shape.stride_h : shape.stride_h,
                s : s + shape.q * shape.stride_w : shape.stride_w,
                :,
            ].astype(acc, copy=False)
            taps = f_tensor[:, r, s, :].astype(acc, copy=False)  # (C, K)
            # O[k,p,q,n] += sum_c taps[c,k] * slab[c,p,q,n]
            out += np.tensordot(taps, slab, axes=([0], [0]))
    return out.astype(i_tensor.dtype)


def execute_conv(
    cfg: ConvConfig,
    shape: ConvShape,
    i_tensor: np.ndarray,
    f_tensor: np.ndarray,
    trace: ExecutionTrace | None = None,
) -> np.ndarray:
    """Run the implicit-GEMM decomposition described by ``cfg``.

    The (NPQ, CRS) operand is gathered through the indirection table, then
    multiplied with the flattened filters using the same tiled machinery as
    GEMM, with CONV's block tile / prefetch / reduction-split parameters.
    """
    lhs = im2col(i_tensor, shape)
    rhs = filters_as_matrix(f_tensor, shape)
    gemm_out = tiled_matmul(
        lhs,
        rhs,
        ml=cfg.block_m,
        nl=cfg.block_n,
        u=cfg.u,
        ks=cfg.cs,
        kl=cfg.cl,
        kg=cfg.cg,
        accum_dtype=_ACCUM[shape.dtype],
        trace=trace,
    )
    return output_from_gemm(gemm_out, shape)
