"""Functional GEMM: reference implementation and parameterized executor.

``gemm_reference`` is the oracle (plain ``@``); ``execute_gemm`` runs the
exact tiled decomposition a :class:`~repro.core.config.GemmConfig`
describes.  Tests assert that *every legal configuration* produces the
reference result — the hardware-independent half of the paper's claim that
the kernel generator is correct over the whole parameter space (including
predicated edge tiles and all three reduction-splitting levels).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.kernels.tiling import ExecutionTrace, tiled_matmul

_ACCUM = {
    DType.FP16: np.float32,   # fp16 kernels keep wider accumulators
    DType.FP32: np.float64,   # execute in extended precision for testing
    DType.FP64: np.float64,
}


def make_operands(
    shape: GemmShape, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random logical (M,K) and (K,N) operands for a problem shape.

    Storage transposition (``ta``/``tb``) affects addressing, not values, so
    operands are returned in logical layout; ``as_stored`` gives the
    physical buffers.
    """
    rng = np.random.default_rng(seed)
    dt = np.dtype(shape.dtype.numpy_name)
    a = rng.standard_normal((shape.m, shape.k)).astype(dt)
    b = rng.standard_normal((shape.k, shape.n)).astype(dt)
    return a, b


def as_stored(
    shape: GemmShape, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Physical buffers as the kernel would see them (transposed storage)."""
    return (
        np.ascontiguousarray(a.T) if shape.ta else a,
        np.ascontiguousarray(b.T) if shape.tb else b,
    )


def gemm_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Oracle: numpy matmul with wide accumulation."""
    wide = (a.astype(np.float64) @ b.astype(np.float64))
    return wide.astype(a.dtype)


def execute_gemm(
    cfg: GemmConfig,
    shape: GemmShape,
    a: np.ndarray,
    b: np.ndarray,
    trace: ExecutionTrace | None = None,
) -> np.ndarray:
    """Run the tiled kernel decomposition described by ``cfg``.

    ``a``/``b`` are logical (M,K)/(K,N) arrays matching ``shape``.
    """
    if a.shape != (shape.m, shape.k):
        raise ValueError(f"A has shape {a.shape}, expected {(shape.m, shape.k)}")
    if b.shape != (shape.k, shape.n):
        raise ValueError(f"B has shape {b.shape}, expected {(shape.k, shape.n)}")
    return tiled_matmul(
        a,
        b,
        ml=cfg.ml,
        nl=cfg.nl,
        u=cfg.u,
        ks=cfg.ks,
        kl=cfg.kl,
        kg=cfg.kg,
        accum_dtype=_ACCUM[shape.dtype],
        trace=trace,
    )
