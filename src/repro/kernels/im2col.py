"""Indirection-table construction for implicit-GEMM convolution (§3.3).

The paper lowers multi-channel convolution to matrix multiplication by
"scrambling" tiles of I into shared memory through an *indirection table*
that pre-resolves the (c, r, s) -> address arithmetic.  This module builds
that table explicitly and provides the im2col gather it implies, so the
functional convolution executor performs the very same index computation a
generated kernel would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ConvShape


@dataclass(frozen=True)
class IndirectionTable:
    """Pre-decomposed reduction indices for one convolution shape.

    ``c``, ``r``, ``s`` are parallel arrays of length CRS: entry ``i``
    decomposes flat reduction index ``i`` into channel / filter-row /
    filter-column, using the same c-major, then r, then s order as the
    filter tensor's memory layout (F is C x R x S x K).
    """

    c: np.ndarray
    r: np.ndarray
    s: np.ndarray

    def __len__(self) -> int:
        return len(self.c)


def build_indirection_table(shape: ConvShape) -> IndirectionTable:
    idx = np.arange(shape.crs)
    s = idx % shape.s
    r = (idx // shape.s) % shape.r
    c = idx // (shape.r * shape.s)
    return IndirectionTable(c=c, r=r, s=s)


def row_coords(shape: ConvShape) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose implicit-GEMM row indices into (n, p, q).

    Rows are n-major then p then q, matching the output layout used by
    :func:`output_from_gemm`.
    """
    rows = np.arange(shape.npq)
    q = rows % shape.q
    p = (rows // shape.q) % shape.p
    n = rows // (shape.p * shape.q)
    return n, p, q


def im2col(i_tensor: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Materialize the (NPQ, CRS) implicit-GEMM left operand.

    ``i_tensor`` is the input in the paper's C x H x W x N layout.  Padding
    is handled by gathering from a zero-extended copy, mirroring how a
    kernel's predication returns zero for out-of-image taps.
    """
    if i_tensor.shape != (shape.c, shape.h, shape.w, shape.n):
        raise ValueError(
            f"I has shape {i_tensor.shape}, expected "
            f"{(shape.c, shape.h, shape.w, shape.n)}"
        )
    if shape.pad_h or shape.pad_w:
        padded = np.zeros(
            (
                shape.c,
                shape.h + 2 * shape.pad_h,
                shape.w + 2 * shape.pad_w,
                shape.n,
            ),
            dtype=i_tensor.dtype,
        )
        padded[
            :,
            shape.pad_h : shape.pad_h + shape.h,
            shape.pad_w : shape.pad_w + shape.w,
            :,
        ] = i_tensor
    else:
        padded = i_tensor

    table = build_indirection_table(shape)
    n_idx, p_idx, q_idx = row_coords(shape)

    # Gather: rows index (n, p, q), columns index (c, r, s).
    h_idx = p_idx[:, None] * shape.stride_h + table.r[None, :]
    w_idx = q_idx[:, None] * shape.stride_w + table.s[None, :]
    return padded[
        table.c[None, :],
        h_idx,
        w_idx,
        n_idx[:, None],
    ]


def filters_as_matrix(f_tensor: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Flatten F (C x R x S x K) to the (CRS, K) implicit-GEMM right operand."""
    if f_tensor.shape != (shape.c, shape.r, shape.s, shape.k):
        raise ValueError(
            f"F has shape {f_tensor.shape}, expected "
            f"{(shape.c, shape.r, shape.s, shape.k)}"
        )
    return f_tensor.reshape(shape.crs, shape.k)


def output_from_gemm(gemm_out: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Fold the (NPQ, K) implicit-GEMM result back to K x P x Q x N."""
    if gemm_out.shape != (shape.npq, shape.k):
        raise ValueError(
            f"GEMM output has shape {gemm_out.shape}, expected "
            f"{(shape.npq, shape.k)}"
        )
    npqk = gemm_out.reshape(shape.n, shape.p, shape.q, shape.k)
    return np.transpose(npqk, (3, 1, 2, 0))
