"""Shared blocked-matmul machinery for the functional kernel executors.

``tiled_matmul`` executes *exactly* the decomposition the paper's Figure 3
describes — block tiles, U-stepped staged main loop, in-thread (KS),
in-block (KL) and grid-level (KG) reduction splits, and predicated edge
handling — with numpy doing the per-tile arithmetic.  It is deliberately
structured like the generated kernel rather than like idiomatic numpy, so
tests can assert that every legal configuration computes the right answer
and that the executor's operation counts agree with the code generator's
static accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ceil_div


@dataclass
class ExecutionTrace:
    """Dynamic counters recorded while executing a tiled kernel.

    * ``macs`` — multiply-accumulates actually performed (edge-clipped, so
      this must equal ``M*N*K`` for a correct run).
    * ``staged_a_elems`` / ``staged_b_elems`` — elements copied into the
      shared-memory stand-in, padded edges excluded.
    * ``global_accumulations`` — KG partial tiles merged through the
      global-atomics stand-in.
    * ``block_reductions`` — KL partial tiles merged through the
      shared-memory stand-in.
    * ``blocks_executed`` — total blocks over the whole grid.
    """

    macs: int = 0
    staged_a_elems: int = 0
    staged_b_elems: int = 0
    global_accumulations: int = 0
    block_reductions: int = 0
    blocks_executed: int = 0


def tiled_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    ml: int,
    nl: int,
    u: int,
    ks: int = 1,
    kl: int = 1,
    kg: int = 1,
    accum_dtype: np.dtype | type = np.float64,
    trace: ExecutionTrace | None = None,
) -> np.ndarray:
    """Compute ``a @ b`` with the paper's tiled decomposition.

    ``a`` is (M, K) and ``b`` is (K, N) in logical layout (transposition is
    a storage-level concern handled by the codegen; the math is identical).
    The returned array has ``a``'s dtype; accumulation runs in
    ``accum_dtype`` like the PTX kernels keep fp32 accumulators for fp16.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible operands {a.shape} x {b.shape}")
    m, k = a.shape
    _, n = b.shape
    out_dtype = a.dtype
    c = np.zeros((m, n), dtype=accum_dtype)

    gm, gn = ceil_div(m, ml), ceil_div(n, nl)
    kb = ceil_div(k, kg)

    for z in range(kg):                      # grid-level reduction split
        k_lo, k_hi = z * kb, min(k, (z + 1) * kb)
        if k_lo >= k_hi:
            continue
        for bi in range(gm):
            row_lo, row_hi = bi * ml, min(m, (bi + 1) * ml)
            for bj in range(gn):
                col_lo, col_hi = bj * nl, min(n, (bj + 1) * nl)
                tile = _block_reduce(
                    a, b, row_lo, row_hi, col_lo, col_hi,
                    k_lo, k_hi, u=u, ks=ks, kl=kl,
                    accum_dtype=accum_dtype, trace=trace,
                )
                # KG > 1: partials merge via the global-atomics stand-in.
                c[row_lo:row_hi, col_lo:col_hi] += tile
                if trace is not None:
                    trace.blocks_executed += 1
                    if kg > 1:
                        trace.global_accumulations += 1

    return c.astype(out_dtype)


def _block_reduce(
    a: np.ndarray,
    b: np.ndarray,
    row_lo: int,
    row_hi: int,
    col_lo: int,
    col_hi: int,
    k_lo: int,
    k_hi: int,
    *,
    u: int,
    ks: int,
    kl: int,
    accum_dtype: np.dtype | type,
    trace: ExecutionTrace | None,
) -> np.ndarray:
    """One block's contribution: KL slices, each U-stepped and KS-chained."""
    rows, cols = row_hi - row_lo, col_hi - col_lo
    kb = k_hi - k_lo
    slice_extent = ceil_div(kb, kl)

    partials = []
    for sl in range(kl):                     # in-block reduction split
        s_lo = k_lo + sl * slice_extent
        s_hi = min(k_hi, s_lo + slice_extent)
        if s_lo >= s_hi:
            continue
        # KS independent accumulation chains: interleave the U-steps.
        chains = [
            np.zeros((rows, cols), dtype=accum_dtype) for _ in range(ks)
        ]
        step_idx = 0
        for k0 in range(s_lo, s_hi, u):      # staged main loop
            k1 = min(s_hi, k0 + u)
            a_tile = a[row_lo:row_hi, k0:k1].astype(accum_dtype, copy=False)
            b_tile = b[k0:k1, col_lo:col_hi].astype(accum_dtype, copy=False)
            chains[step_idx % ks] += a_tile @ b_tile
            step_idx += 1
            if trace is not None:
                depth = k1 - k0
                trace.staged_a_elems += rows * depth
                trace.staged_b_elems += depth * cols
                trace.macs += rows * cols * depth
        acc = chains[0]
        for extra in chains[1:]:
            acc += extra
        partials.append(acc)

    tile = partials[0]
    for p in partials[1:]:                   # shared-memory tree reduction
        tile += p
        if trace is not None:
            trace.block_reductions += 1
    return tile
