"""Subpackage of the ISAAC reproduction."""
