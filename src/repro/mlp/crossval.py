"""Cross-validation utilities for the Table 2 / Figure 5 experiments.

The paper reports "cross-validation MSE ... measured on a fixed set of
10,000 data-points separate from the ... samples used for training" — i.e.
held-out validation error on standardized targets.  ``holdout_mse`` is that
protocol; ``kfold_mse`` is the classical rotation variant for smaller
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mlp.losses import mse
from repro.mlp.network import MLP
from repro.mlp.optimizers import Adam
from repro.mlp.scaler import StandardScaler, TargetScaler
from repro.mlp.training import History, train


@dataclass(frozen=True)
class FitLineage:
    """Provenance of one fit in the versioned model store.

    ``model_version`` 0 is the offline fit; each online fine-tune bumps
    it by one and records its ``parent_version``.  ``n_samples`` counts
    the pairs the fit (or fine-tune) trained on and ``seed`` is the
    training seed — together enough to replay (and verify) an online
    update log bit-for-bit.
    """

    model_version: int = 0
    parent_version: int | None = None
    n_samples: int = 0
    seed: int = 0


@dataclass(frozen=True)
class CascadeCalibration:
    """Offline-calibrated safety margins for the two-stage cascade search.

    ``margins`` maps a dtype name to delta: the largest gap observed
    between the full standardized model output and the cascade's cheap
    stage-1 proxy over the calibration shapes, times ``safety``.  The
    cascade keeps every candidate whose proxy score is within ``2*delta``
    of the shortlist threshold, which provably contains the exhaustive
    top-k whenever the margin holds (and query-time checks fall back to
    exhaustive scoring whenever it does not).

    ``weights_digest`` hashes every model weight and scaler statistic at
    calibration time; a mismatch at query time means the weights moved
    since calibration (fine-tune hot-swap, in-place mutation) and
    disables the cascade until recalibration — stale-margin pruning is
    structurally impossible.
    """

    margins: dict[str, float]
    weights_digest: str
    n_shapes: int = 0
    safety: float = 4.0


@dataclass
class FitResult:
    """A trained model with its transforms and held-out error.

    ``lineage`` is None for fits that predate the versioned model store
    (or were never versioned); readers treat that as version 0.
    ``cascade`` is None until the two-stage search margins have been
    calibrated for this exact set of weights (``Isaac.tune`` /
    ``Engine.warmup`` do so); uncalibrated fits always search
    exhaustively.
    """

    model: MLP
    x_scaler: StandardScaler
    y_scaler: TargetScaler
    history: History
    val_mse: float
    lineage: FitLineage | None = None
    cascade: CascadeCalibration | None = None

    @property
    def model_version(self) -> int:
        return self.lineage.model_version if self.lineage else 0


def fit_regressor(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    *,
    hidden: Sequence[int] = (32, 64, 32),
    log_features: bool = True,
    epochs: int = 60,
    batch_size: int = 256,
    lr: float = 1e-3,
    seed: int = 0,
    patience: int = 10,
) -> FitResult:
    """Standardize, (optionally log-) transform, train, and score.

    ``log_features=False`` reproduces the paper's no-log ablation: raw
    integer features are standardized but products/ratios stay products,
    and the network converges "to much worse solutions — if at all".
    """
    xt = _maybe_log(x_train, log_features)
    xv = _maybe_log(x_val, log_features)
    xs = StandardScaler().fit(xt)
    ys = TargetScaler().fit(y_train)

    model = MLP(x_train.shape[1], hidden, seed=seed)
    history = train(
        model,
        xs.transform(xt),
        ys.transform(y_train),
        epochs=epochs,
        batch_size=batch_size,
        optimizer=Adam(lr=lr),
        x_val=xs.transform(xv),
        y_val=ys.transform(y_val),
        patience=patience,
        seed=seed,
    )
    val = mse(model.predict(xs.transform(xv)), ys.transform(y_val))
    return FitResult(model=model, x_scaler=xs, y_scaler=ys,
                     history=history, val_mse=val)


def _maybe_log(x: np.ndarray, log: bool) -> np.ndarray:
    if not log:
        return np.asarray(x, dtype=np.float64)
    out = np.asarray(x, dtype=np.float64).copy()
    mask = out > 0
    out[mask] = np.log2(out[mask])
    return out


def holdout_mse(
    x: np.ndarray,
    y: np.ndarray,
    *,
    val_frac: float = 0.1,
    seed: int = 0,
    **fit_kwargs,
) -> float:
    """The paper's protocol: one held-out split, standardized-target MSE."""
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(y))
    n_val = max(1, int(len(y) * val_frac))
    val, tr = idx[:n_val], idx[n_val:]
    result = fit_regressor(x[tr], y[tr], x[val], y[val], seed=seed, **fit_kwargs)
    return result.val_mse


def kfold_mse(
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 5,
    seed: int = 0,
    **fit_kwargs,
) -> list[float]:
    """Classical k-fold rotation; returns per-fold validation MSE."""
    if k < 2:
        raise ValueError("k must be at least 2")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(y))
    folds = np.array_split(idx, k)
    out = []
    for i in range(k):
        val = folds[i]
        tr = np.concatenate([folds[j] for j in range(k) if j != i])
        result = fit_regressor(
            x[tr], y[tr], x[val], y[val], seed=seed + i, **fit_kwargs
        )
        out.append(result.val_mse)
    return out
