"""Dense layers and activations for the from-scratch MLP.

The paper's regression network is a plain fully-connected MLP (Figure 4,
Algorithm 1): ``z_n = W_n a_{n-1}; a_n = f_n(z_n)`` with a shared nonlinear
activation per layer.  ReLU is the paper's choice — "appropriate to handle
maximums" in the latency-hiding performance surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass
class Activation:
    """A differentiable elementwise nonlinearity."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    grad: Callable[[np.ndarray, np.ndarray], np.ndarray]  # (z, a) -> da/dz


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return 1.0 - a * a


def _identity(z: np.ndarray) -> np.ndarray:
    return z


def _identity_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


ACTIVATIONS: dict[str, Activation] = {
    "relu": Activation("relu", _relu, _relu_grad),
    "tanh": Activation("tanh", _tanh, _tanh_grad),
    "identity": Activation("identity", _identity, _identity_grad),
}


class Dense:
    """A fully connected layer ``a = f(x W + b)``.

    Weights use He initialization (appropriate for ReLU); the bias starts at
    zero.  ``forward`` caches what ``backward`` needs, so one instance is
    used for one (forward, backward) pair at a time — the standard
    minibatch training pattern.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        activation: str,
        rng: np.random.Generator,
    ):
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; "
                f"known: {sorted(ACTIVATIONS)}"
            )
        scale = np.sqrt(2.0 / n_in)
        self.w = rng.standard_normal((n_in, n_out)) * scale
        self.b = np.zeros(n_out)
        self.activation = ACTIVATIONS[activation]
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self._a: np.ndarray | None = None
        self.grad_w = np.zeros_like(self.w)
        self.grad_b = np.zeros_like(self.b)

    @property
    def n_params(self) -> int:
        return self.w.size + self.b.size

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        z = x @ self.w + self.b
        a = self.activation.fn(z)
        if train:
            self._x, self._z, self._a = x, z, a
        return a

    def backward(self, grad_a: np.ndarray) -> np.ndarray:
        """Given dL/da, accumulate dL/dW, dL/db; return dL/dx."""
        if self._x is None or self._z is None or self._a is None:
            raise RuntimeError("backward called before forward(train=True)")
        grad_z = grad_a * self.activation.grad(self._z, self._a)
        self.grad_w = self._x.T @ grad_z
        self.grad_b = grad_z.sum(axis=0)
        return grad_z @ self.w.T
