"""Loss functions for regression training.

The paper uses mean squared error — the maximum-likelihood choice when
measurements are the true performance plus Gaussian noise (§5.1).
"""

from __future__ import annotations

import numpy as np


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    diff = pred - target
    return float(np.mean(diff * diff))


def mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """d(MSE)/d(pred) — the gradient fed to backprop."""
    return 2.0 * (pred - target) / len(pred)


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error (reported as a secondary diagnostic)."""
    return float(np.mean(np.abs(pred - target)))
