"""The multi-layer perceptron of paper §5 (Figure 4 / Algorithm 1)."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.mlp.layers import Dense


class MLP:
    """A scalar-output regression MLP.

    ``hidden`` follows the paper's Table 2 notation: e.g. ``(32, 64, 32)``
    is the three-hidden-layer network with 5k weights.  Hidden layers share
    one activation (ReLU by default); the output layer is linear, as usual
    for MSE regression.
    """

    def __init__(
        self,
        n_features: int,
        hidden: Sequence[int],
        *,
        activation: str = "relu",
        seed: int = 0,
    ):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if any(h <= 0 for h in hidden):
            raise ValueError(f"hidden sizes must be positive, got {hidden}")
        rng = np.random.default_rng(seed)
        sizes = [n_features, *hidden, 1]
        self.layers: list[Dense] = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            act = activation if i < len(sizes) - 2 else "identity"
            self.layers.append(Dense(n_in, n_out, act, rng))
        self.hidden = tuple(hidden)
        self.n_features = n_features

    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Trainable parameter count (the paper's '#weights' column)."""
        return sum(layer.n_params for layer in self.layers)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Algorithm 1: returns predictions of shape (n,)."""
        a = np.atleast_2d(x)
        for layer in self.layers:
            a = layer.forward(a, train=train)
        return a[:, 0]

    def backward(self, grad_out: np.ndarray) -> None:
        """Backpropagate dL/dy_hat of shape (n,) through all layers."""
        grad = np.atleast_2d(grad_out).reshape(-1, 1)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def predict(self, x: np.ndarray, batch_size: int = 65536) -> np.ndarray:
        """Inference in batches (the runtime search evaluates millions)."""
        x = np.atleast_2d(x)
        if len(x) <= batch_size:
            return self.forward(x)
        out = np.empty(len(x))
        for lo in range(0, len(x), batch_size):
            hi = min(len(x), lo + batch_size)
            out[lo:hi] = self.forward(x[lo:hi])
        return out

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[np.ndarray]:
        for layer in self.layers:
            yield layer.w
            yield layer.b

    def gradients(self) -> Iterator[np.ndarray]:
        for layer in self.layers:
            yield layer.grad_w
            yield layer.grad_b

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        current = list(self.parameters())
        if len(weights) != len(current):
            raise ValueError("weight list length mismatch")
        for dst, src in zip(current, weights):
            if dst.shape != src.shape:
                raise ValueError(f"shape mismatch {dst.shape} vs {src.shape}")
            dst[...] = src

    def describe(self) -> str:
        arch = ", ".join(str(h) for h in self.hidden)
        return f"MLP[{arch}] ({self.n_params} weights)"
