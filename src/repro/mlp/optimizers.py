"""First-order optimizers for MLP training.

The paper trains with stochastic gradient descent (§5.1); Adam is provided
as the practical default since it converges in far fewer epochs on this
problem, and momentum-SGD sits between the two.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class Optimizer:
    """Base class: update parameters in place from matching gradients."""

    def step(
        self, params: Iterable[np.ndarray], grads: Iterable[np.ndarray]
    ) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain or momentum SGD (the paper's choice)."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params, grads) -> None:
        params = list(params)
        grads = list(grads)
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.lr * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam(Optimizer):
    """Adam with bias correction — the practical default here."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params, grads) -> None:
        params = list(params)
        grads = list(grads)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
