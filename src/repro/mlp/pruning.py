"""Magnitude pruning for the regression MLP (paper §5.2).

"Research on neural networks inference tends to show that it is preferrable
to train larger networks even if it means pruning or binarizing them
afterwards" — the paper cites Hubara et al. to argue that deeper/wider
models need not raise runtime-inference latency.  This module implements
the standard realization of that idea: global magnitude pruning with
optional fine-tuning, plus the latency accounting that motivates it
(effective multiply-accumulate count of the sparse model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mlp.network import MLP
from repro.mlp.optimizers import Adam
from repro.mlp.training import train


@dataclass
class PruneReport:
    """Outcome of one pruning pass."""

    sparsity: float            # fraction of weights set to zero
    kept_weights: int
    total_weights: int
    dense_macs: int            # multiply-accumulates per inference row
    sparse_macs: int

    @property
    def mac_reduction(self) -> float:
        return 1.0 - self.sparse_macs / self.dense_macs


def weight_masks(model: MLP, sparsity: float) -> list[np.ndarray]:
    """Global magnitude masks: the smallest ``sparsity`` fraction of all
    connection weights (biases are never pruned) is zeroed."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    all_mags = np.concatenate(
        [np.abs(layer.w).ravel() for layer in model.layers]
    )
    if sparsity == 0.0:
        threshold = -np.inf
    else:
        threshold = np.quantile(all_mags, sparsity)
    return [np.abs(layer.w) > threshold for layer in model.layers]


def apply_masks(model: MLP, masks: list[np.ndarray]) -> None:
    for layer, mask in zip(model.layers, masks):
        layer.w *= mask


def prune(
    model: MLP,
    sparsity: float,
    *,
    x_finetune: np.ndarray | None = None,
    y_finetune: np.ndarray | None = None,
    finetune_epochs: int = 10,
    seed: int = 0,
) -> PruneReport:
    """Prune in place; optionally fine-tune with the masks held fixed.

    Fine-tuning uses masked gradient steps: pruned connections stay zero,
    surviving ones recover the function (the classic prune-retrain loop).
    """
    masks = weight_masks(model, sparsity)
    apply_masks(model, masks)

    if x_finetune is not None and y_finetune is not None:
        opt = Adam(lr=5e-4)
        for _ in range(finetune_epochs):
            train(
                model, x_finetune, y_finetune,
                epochs=1, optimizer=opt, seed=seed, shuffle=True,
            )
            apply_masks(model, masks)  # re-zero anything the step revived

    kept = int(sum(m.sum() for m in masks))
    total = int(sum(m.size for m in masks))
    dense_macs = sum(layer.w.size for layer in model.layers)
    sparse_macs = kept
    return PruneReport(
        sparsity=1.0 - kept / total,
        kept_weights=kept,
        total_weights=total,
        dense_macs=dense_macs,
        sparse_macs=sparse_macs,
    )


def sparsity_of(model: MLP) -> float:
    """Current fraction of exactly-zero connection weights."""
    zeros = sum(int((layer.w == 0).sum()) for layer in model.layers)
    total = sum(layer.w.size for layer in model.layers)
    return zeros / total
