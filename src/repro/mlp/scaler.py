"""Feature / target standardization.

After the paper's log transform, features still span different ranges
(log2 of tile sizes vs boolean layout flags); standardizing keeps SGD
well-conditioned.  Targets are standardized too, so cross-validation MSE
is reported in variance-of-y units — the scale on which Table 2's 0.06–0.17
numbers live.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-column zero-mean unit-variance scaling with inverse transform."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant columns scale by 1 so transform is a no-op for them.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        return (np.atleast_2d(np.asarray(x, dtype=np.float64)) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check()
        return np.atleast_2d(x) * self.scale_ + self.mean_

    def _check(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler used before fit()")


class TargetScaler:
    """1-D convenience wrapper for standardizing regression targets."""

    def __init__(self):
        self.mean_ = 0.0
        self.scale_ = 1.0
        self._fitted = False

    def fit(self, y: np.ndarray) -> "TargetScaler":
        y = np.asarray(y, dtype=np.float64)
        self.mean_ = float(y.mean())
        std = float(y.std())
        self.scale_ = std if std > 1e-12 else 1.0
        self._fitted = True
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(y, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(y, dtype=np.float64) * self.scale_ + self.mean_
