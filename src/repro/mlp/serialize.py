"""Persistence for trained regressors.

A tuned ISAAC deployment ships the trained model, not the training data
(§6: predictions are "cached on the filesystem, or even used as a kernel
generation backend").  This module serializes a
:class:`~repro.mlp.crossval.FitResult` — network weights, architecture,
activation, both scalers and the held-out MSE — to a single ``.npz`` file
and restores it bit-exactly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.mlp.crossval import CascadeCalibration, FitLineage, FitResult
from repro.mlp.network import MLP
from repro.mlp.scaler import StandardScaler, TargetScaler
from repro.mlp.training import History

FORMAT_VERSION = 1


def fit_weights_digest(fit: FitResult) -> str:
    """BLAKE2b over every weight, bias and scaler statistic of a fit.

    The cascade's calibrated margins are only valid for the exact weights
    they were measured against; this digest is stored inside
    :class:`~repro.mlp.crossval.CascadeCalibration` and re-checked before
    pruning, so a hot-swapped or mutated model can never prune with a
    stale margin.
    """
    h = hashlib.blake2b(digest_size=16)
    for layer in fit.model.layers:
        h.update(np.ascontiguousarray(layer.w, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(layer.b, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(fit.x_scaler.mean_, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(fit.x_scaler.scale_, dtype=np.float64).tobytes())
    h.update(np.float64(fit.y_scaler.mean_).tobytes())
    h.update(np.float64(fit.y_scaler.scale_).tobytes())
    return h.hexdigest()


def fit_to_bytes(fit: FitResult) -> bytes:
    """The ``.npz`` serialization of a fit, in memory.

    The worker tier ships each (device, op) fit to its processes through
    this — one pipe message per worker at warm boot, same format as the
    on-disk model store, restored bit-exactly by :func:`fit_from_bytes`.
    """
    import io

    buf = io.BytesIO()
    _write_fit(fit, buf)
    return buf.getvalue()


def fit_from_bytes(data: bytes) -> FitResult:
    """Restore a regressor serialized by :func:`fit_to_bytes`."""
    import io

    return _read_fit(io.BytesIO(data), "<bytes>")


def save_fit(fit: FitResult, path: str | Path) -> None:
    """Write a trained regressor to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as f:
        _write_fit(fit, f)


def _write_fit(fit: FitResult, f) -> None:
    meta = {
        "format_version": FORMAT_VERSION,
        "n_features": fit.model.n_features,
        "hidden": list(fit.model.hidden),
        "activation": fit.model.layers[0].activation.name,
        "val_mse": fit.val_mse,
        "y_mean": fit.y_scaler.mean_,
        "y_scale": fit.y_scaler.scale_,
        "train_mse": fit.history.train_mse,
        "val_mse_curve": fit.history.val_mse,
        "best_epoch": fit.history.best_epoch,
    }
    if fit.lineage is not None:
        # Optional header: stored fits that predate the versioned model
        # store simply lack the key, and old readers ignore it — the
        # format version does not change in either direction.
        meta["lineage"] = {
            "model_version": fit.lineage.model_version,
            "parent_version": fit.lineage.parent_version,
            "n_samples": fit.lineage.n_samples,
            "seed": fit.lineage.seed,
        }
    if fit.cascade is not None:
        # Optional header too, same back-compat contract as "lineage".
        meta["cascade"] = {
            "margins": {k: float(v) for k, v in fit.cascade.margins.items()},
            "weights_digest": fit.cascade.weights_digest,
            "n_shapes": fit.cascade.n_shapes,
            "safety": fit.cascade.safety,
        }
    arrays: dict[str, np.ndarray] = {
        "x_mean": fit.x_scaler.mean_,
        "x_scale": fit.x_scaler.scale_,
    }
    for i, layer in enumerate(fit.model.layers):
        arrays[f"w{i}"] = layer.w
        arrays[f"b{i}"] = layer.b
    np.savez(f, meta=json.dumps(meta), **arrays)


def load_fit(path: str | Path) -> FitResult:
    """Restore a regressor saved by :func:`save_fit`."""
    path = Path(path)
    with open(path, "rb") as f:
        return _read_fit(f, path)


def _read_fit(f, origin) -> FitResult:
    with np.load(f, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported format version {meta.get('format_version')!r} "
                f"in {origin}"
            )
        model = MLP(
            meta["n_features"],
            tuple(meta["hidden"]),
            activation=meta["activation"],
            seed=0,
        )
        weights = []
        for i in range(len(model.layers)):
            weights.append(data[f"w{i}"])
            weights.append(data[f"b{i}"])
        model.set_weights(weights)

        xs = StandardScaler()
        xs.mean_ = data["x_mean"]
        xs.scale_ = data["x_scale"]
        ys = TargetScaler()
        ys.mean_ = float(meta["y_mean"])
        ys.scale_ = float(meta["y_scale"])
        ys._fitted = True

        history = History(
            train_mse=list(meta["train_mse"]),
            val_mse=list(meta["val_mse_curve"]),
            best_epoch=int(meta["best_epoch"]),
        )
        raw_lineage = meta.get("lineage")
        lineage = None
        if raw_lineage is not None:
            parent = raw_lineage.get("parent_version")
            lineage = FitLineage(
                model_version=int(raw_lineage.get("model_version", 0)),
                parent_version=None if parent is None else int(parent),
                n_samples=int(raw_lineage.get("n_samples", 0)),
                seed=int(raw_lineage.get("seed", 0)),
            )
        raw_cascade = meta.get("cascade")
        cascade = None
        if raw_cascade is not None:
            cascade = CascadeCalibration(
                margins={
                    str(k): float(v)
                    for k, v in raw_cascade.get("margins", {}).items()
                },
                weights_digest=str(raw_cascade.get("weights_digest", "")),
                n_shapes=int(raw_cascade.get("n_shapes", 0)),
                safety=float(raw_cascade.get("safety", 0.0)),
            )
    return FitResult(
        model=model,
        x_scaler=xs,
        y_scaler=ys,
        history=history,
        val_mse=float(meta["val_mse"]),
        lineage=lineage,
        cascade=cascade,
    )
