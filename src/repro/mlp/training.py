"""Minibatch training loop with validation tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mlp.losses import mse, mse_grad
from repro.mlp.network import MLP
from repro.mlp.optimizers import Adam, Optimizer


@dataclass
class History:
    """Per-epoch loss curves produced by :func:`train`."""

    train_mse: list[float] = field(default_factory=list)
    val_mse: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def best_val_mse(self) -> float:
        if not self.val_mse:
            raise ValueError("no validation data was tracked")
        return min(self.val_mse)

    @property
    def final_train_mse(self) -> float:
        return self.train_mse[-1]


def train(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    *,
    epochs: int = 50,
    batch_size: int = 256,
    optimizer: Optimizer | None = None,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
    patience: int = 0,
    seed: int = 0,
    shuffle: bool = True,
) -> History:
    """Train ``model`` to minimize MSE.

    ``patience > 0`` enables early stopping on validation MSE and restores
    the best weights afterwards.  The data must already be transformed
    (log features / standardization) — the trainer is policy-free.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if len(x) != len(y):
        raise ValueError(f"{len(x)} samples vs {len(y)} targets")
    if len(x) == 0:
        raise ValueError("empty training set")

    opt = optimizer if optimizer is not None else Adam()
    rng = np.random.default_rng(seed)
    history = History()
    track_val = x_val is not None and y_val is not None
    best_val = np.inf
    best_weights = None
    stale = 0

    for epoch in range(epochs):
        order = rng.permutation(len(x)) if shuffle else np.arange(len(x))
        epoch_loss = 0.0
        n_batches = 0
        for lo in range(0, len(x), batch_size):
            idx = order[lo : lo + batch_size]
            xb, yb = x[idx], y[idx]
            pred = model.forward(xb, train=True)
            epoch_loss += mse(pred, yb)
            n_batches += 1
            model.backward(mse_grad(pred, yb))
            opt.step(model.parameters(), model.gradients())
        history.train_mse.append(epoch_loss / n_batches)

        if track_val:
            val = mse(model.predict(x_val), np.asarray(y_val).ravel())
            history.val_mse.append(val)
            if val < best_val - 1e-9:
                best_val = val
                history.best_epoch = epoch
                stale = 0
                if patience > 0:
                    best_weights = model.get_weights()
            else:
                stale += 1
                if patience > 0 and stale >= patience:
                    break

    if best_weights is not None:
        model.set_weights(best_weights)
    return history
