"""Vectorized counts extraction: tiling parameters -> instruction counts, N at a time.

The code generators (:mod:`repro.ptx.gemm_codegen`,
:mod:`repro.ptx.conv_codegen`) compute one kernel's exact per-block
instruction mix from its tiling parameters.  The offline pipeline prices
hundreds of thousands of such kernels; this module re-derives the same
accounting on struct-of-arrays inputs so one call covers a whole batch.

Every expression below mirrors its scalar counterpart line by line — same
operations, same order, same integer/float promotion — so the batched
counts are bit-identical to ``GemmKernel.block_counts()`` /
``ConvKernel.block_counts()``.  The parity tests in
``tests/test_simulator_batched.py`` hold both sides to that standard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.soa import ConvPairArrays, GemmPairArrays
from repro.gpu.device import DeviceSpec
from repro.ptx.counts import BlockCountsArrays
from repro.ptx.gemm_codegen import BOUNDS_MODES, _SECTOR_BYTES


@dataclass(frozen=True)
class LaunchArrays:
    """Everything the batched simulator needs about N kernel launches."""

    counts: BlockCountsArrays
    grid_m: np.ndarray
    grid_n: np.ndarray
    kg: np.ndarray
    grid_size: np.ndarray
    threads_per_block: np.ndarray
    useful_flops: np.ndarray
    padded_flops: np.ndarray
    staged_bytes: np.ndarray
    staged_depth: np.ndarray
    a_bytes_frac: np.ndarray
    dsize: np.ndarray

    def __len__(self) -> int:
        return len(self.grid_size)


def _ceil_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return -(-a // b)


def _smem_vec_arrays(frag: np.ndarray, dsize: np.ndarray) -> np.ndarray:
    """Widest shared-memory vector width for fragments of ``frag`` elems."""
    widest = np.maximum(1, 16 // dsize)
    cap = np.minimum(frag, widest)
    v = np.ones_like(frag)
    for _ in range(3):  # widest <= 8 elements: at most three doublings
        nxt = v * 2
        grow = (nxt <= cap) & (frag % nxt == 0)
        v = np.where(grow, nxt, v)
    return v


def coalescing_multipliers(
    run_elems: np.ndarray, dsize: np.ndarray, device: DeviceSpec
) -> np.ndarray:
    """Vectorized :func:`repro.ptx.gemm_codegen.coalescing_multiplier`."""
    eff = np.minimum(1.0, run_elems * dsize / _SECTOR_BYTES)
    return np.minimum(device.coalesce_penalty, 1.0 / np.maximum(eff, 1e-9))


def _check_bounds_mode(bounds_mode: str) -> None:
    if bounds_mode not in BOUNDS_MODES:
        raise ValueError(f"unknown bounds mode {bounds_mode!r}")


def gemm_launch_arrays(
    device: DeviceSpec,
    soa: GemmPairArrays,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> LaunchArrays:
    """Batched ``GemmKernel.kernel_counts()`` plus launch-level quantities."""
    _check_bounds_mode(bounds_mode)
    ms, ns, ml, nl, u = soa.ms, soa.ns, soa.ml, soa.nl, soa.u
    ks, kl, kg, vec, db = soa.ks, soa.kl, soa.kg, soa.vec, soa.db
    dsize = soa.dsize
    threads = soa.threads

    # Effective shape: padded mode rounds M, N up to block-tile multiples.
    if bounds_mode == "padded":
        m_eff = _ceil_div(soa.m, ml) * ml
        n_eff = _ceil_div(soa.n, nl) * nl
    else:
        m_eff, n_eff = soa.m, soa.n
    k = soa.k

    kb = _ceil_div(k, kg)                  # K handled per block
    iters = _ceil_div(kb, kl * u)          # per-slice main-loop trips

    # -- main loop, per thread, per iteration --------------------------
    packed = (
        allow_fp16x2
        & np.bool_(device.fp16x2)
        & (dsize == 2)
        & (vec >= 2)
        & (ns % 2 == 0)
    )
    fma_iter = ms * ns * u
    fma_iter = np.where(packed, fma_iter // 2, fma_iter)
    flops_per_fma = np.where(packed, 4, 2)

    sva = _smem_vec_arrays(ms, dsize)
    svb = _smem_vec_arrays(ns, dsize)
    lds_iter = u * (ms // sva + ns // svb)

    stage_elems = (ml + nl) * u            # per slice-iteration
    ldg_iter = stage_elems * kl // (threads * vec)
    # Memory-level parallelism is set by the vectorized staging pattern;
    # checked mode's branches serialize accesses (§8.3), so the scalar
    # expansion below must not raise it and make checked mode faster.
    mlp_iter = ldg_iter
    if bounds_mode == "checked":
        ldg_iter = ldg_iter * vec
    sts_a = (ml * u * kl) // threads
    sts_b = (nl * u * kl) // threads
    sts_iter = sts_a // np.where(soa.ta, 1, vec) + (
        sts_b // np.where(soa.tb, vec, 1)
    )

    iop_iter = 2 * ldg_iter + 4
    if bounds_mode == "predicated":
        iop_iter = iop_iter + np.maximum(
            1, (0.15 * ldg_iter).astype(np.int64)
        )
    elif bounds_mode == "checked":
        iop_iter = iop_iter + 5 * ldg_iter + 4

    bar_iter = np.where(db == 2, 1, 2)

    # -- per-thread totals over the main loop --------------------------
    fma = fma_iter * iters
    lds = lds_iter * iters
    ldg = ldg_iter * iters
    sts = sts_iter * iters
    iop = iop_iter * iters + 40            # +prologue index setup
    bar = bar_iter * iters

    # -- KL shared-tree reduction epilogue ------------------------------
    acc = ms * ns
    kl_split = kl > 1
    sts = sts + np.where(kl_split, acc, 0)
    lds = lds + np.where(kl_split, acc * (kl - 1) // kl, 0)
    fma = fma + np.where(kl_split, acc * (kl - 1) // kl, 0)
    bar = bar + np.where(
        kl_split,
        np.maximum(1, np.log2(np.maximum(kl, 1)).astype(np.int64)),
        0,
    )

    # -- output epilogue -------------------------------------------------
    out_per_thread = np.maximum(1, acc // kl)
    kg_split = kg > 1
    atom = np.where(kg_split, out_per_thread, 0)
    stg = np.where(kg_split, 0, np.maximum(1, out_per_thread // vec))
    iop = iop + 2 * (atom + stg)

    # -- traffic ---------------------------------------------------------
    run_a = np.where(soa.ta, ml, u)
    run_b = np.where(soa.tb, u, nl)
    ideal_a = ml * kb * dsize
    ideal_b = nl * kb * dsize
    mult_a = coalescing_multipliers(run_a, dsize, device)
    mult_b = coalescing_multipliers(run_b, dsize, device)
    ldg_bytes = ideal_a * mult_a + ideal_b * mult_b
    ideal_bytes = (ideal_a + ideal_b).astype(np.float64)
    st_bytes = ml * nl * dsize * np.where(kg_split, 2.0, 1.0)

    mlp = np.maximum(1.0, mlp_iter.astype(np.float64)) * np.where(
        db == 2, 1.5, 1.0
    )
    ilp = np.minimum(ms * ns * ks, 48).astype(np.float64)

    counts = BlockCountsArrays(
        fma=fma * threads,
        iop=iop * threads,
        ldg=ldg * threads,
        stg=stg * threads,
        atom=atom * threads,
        lds=lds * threads,
        sts=sts * threads,
        bar=bar,
        ldg_bytes=ldg_bytes,
        ideal_ldg_bytes=ideal_bytes,
        st_bytes=st_bytes,
        flops_per_fma=flops_per_fma,
        mlp=mlp,
        ilp=ilp,
    )

    gm = _ceil_div(m_eff, ml)
    gn = _ceil_div(n_eff, nl)
    return LaunchArrays(
        counts=counts,
        grid_m=gm,
        grid_n=gn,
        kg=kg,
        grid_size=gm * gn * kg,
        threads_per_block=threads,
        useful_flops=2 * soa.m * soa.n * k,
        padded_flops=2 * gm * ml * gn * nl * k,
        staged_bytes=db * (ml + nl) * u * kl * dsize,
        staged_depth=u * kl,
        a_bytes_frac=ml / (ml + nl),
        dsize=dsize,
    )


def conv_launch_arrays(
    device: DeviceSpec,
    soa: ConvPairArrays,
    *,
    bounds_mode: str = "predicated",
    allow_fp16x2: bool = True,
) -> LaunchArrays:
    """Batched ``ConvKernel.kernel_counts()`` plus launch-level quantities."""
    _check_bounds_mode(bounds_mode)
    u, cs, cl, cg, vec, db = soa.u, soa.cs, soa.cl, soa.cg, soa.vec, soa.db
    dsize = soa.dsize
    threads = soa.threads
    tm, tn = soa.thread_m, soa.thread_n
    bm, bn = soa.block_m, soa.block_n

    crs_b = _ceil_div(soa.crs, cg)
    iters = _ceil_div(crs_b, cl * u)

    packed = (
        allow_fp16x2
        & np.bool_(device.fp16x2)
        & (dsize == 2)
        & (vec >= 2)
        & (soa.kt % 2 == 0)
    )
    fma_iter = tm * tn * u
    fma_iter = np.where(packed, fma_iter // 2, fma_iter)
    flops_per_fma = np.where(packed, 4, 2)

    widest = np.maximum(1, 16 // dsize)
    sva = np.maximum(1, np.minimum(tm, widest))
    svb = np.maximum(1, np.minimum(tn, widest))
    lds_iter = u * (_ceil_div(tm, sva) + _ceil_div(tn, svb))

    stage_elems = (bm + bn) * u * cl
    ldg_iter = np.maximum(1, stage_elems // (threads * vec))
    # Indirection-table lookup per staged I element (shared load + iadd).
    i_stage_per_thread = np.maximum(1, (bm * u * cl) // threads)
    lds_iter = lds_iter + i_stage_per_thread
    sts_iter = np.maximum(1, stage_elems // threads)  # scrambled: scalar stores

    iop_iter = 2 * ldg_iter + i_stage_per_thread + 4
    if bounds_mode == "predicated":
        iop_iter = iop_iter + np.maximum(
            1, (0.2 * ldg_iter).astype(np.int64)
        )
    elif bounds_mode == "checked":
        iop_iter = iop_iter + 4 * ldg_iter + 2

    bar_iter = np.where(db == 2, 1, 2)

    fma = fma_iter * iters
    lds = lds_iter * iters
    ldg = ldg_iter * iters
    sts = sts_iter * iters
    iop = iop_iter * iters + 60
    bar = bar_iter * iters

    # Indirection-table build: U*CL entries of (c, r, s) decomposition,
    # ~4 integer ops and one shared store each, spread across the block.
    table_entries = u * cl
    iop = iop + np.maximum(1, 4 * table_entries // threads)
    sts = sts + np.maximum(1, table_entries // threads)

    acc = tm * tn
    cl_split = cl > 1
    sts = sts + np.where(cl_split, acc, 0)
    lds = lds + np.where(cl_split, acc * (cl - 1) // cl, 0)
    fma = fma + np.where(cl_split, acc * (cl - 1) // cl, 0)
    # int.bit_length() - 1 == floor(log2) for positive values.
    bar = bar + np.where(
        cl_split,
        np.maximum(
            1, np.floor(np.log2(np.maximum(cl, 1))).astype(np.int64)
        ),
        0,
    )

    out_per_thread = np.maximum(1, acc // cl)
    cg_split = cg > 1
    atom = np.where(cg_split, out_per_thread, 0)
    stg = np.where(cg_split, 0, np.maximum(1, out_per_thread // vec))
    iop = iop + 2 * (atom + stg)

    # Traffic.  I is C x H x W x N (batch-contiguous), F is C x R x S x K
    # (channel-contiguous), O is K x P x Q x N (batch-contiguous).
    run_i = np.where(soa.n > 1, soa.nb, soa.qb)
    run_f = soa.kb
    ideal_i = bm * crs_b * dsize
    ideal_f = bn * crs_b * dsize
    mult_i = coalescing_multipliers(run_i, dsize, device)
    mult_f = coalescing_multipliers(run_f, dsize, device)
    ldg_bytes = ideal_i * mult_i + ideal_f * mult_f
    ideal_bytes = (ideal_i + ideal_f).astype(np.float64)
    st_bytes = bm * bn * dsize * np.where(cg_split, 2.0, 1.0)

    mlp = np.maximum(1.0, ldg_iter.astype(np.float64)) * np.where(
        db == 2, 1.5, 1.0
    )
    ilp = np.minimum(acc * cs, 48).astype(np.float64)

    counts = BlockCountsArrays(
        fma=fma * threads,
        iop=iop * threads,
        ldg=ldg * threads,
        stg=stg * threads,
        atom=atom * threads,
        lds=lds * threads,
        sts=sts * threads,
        bar=bar,
        ldg_bytes=ldg_bytes,
        ideal_ldg_bytes=ideal_bytes,
        st_bytes=st_bytes,
        flops_per_fma=flops_per_fma,
        mlp=mlp,
        ilp=ilp,
    )

    gk = _ceil_div(soa.k, soa.kb)
    gp = _ceil_div(soa.p, soa.pb)
    gq = _ceil_div(soa.q, soa.qb)
    gn = _ceil_div(soa.n, soa.nb)
    # Implicit-GEMM grid: NPQ tiles x K tiles.
    covered = gk * soa.kb * gp * soa.pb * gq * soa.qb * gn * soa.nb
    return LaunchArrays(
        counts=counts,
        grid_m=gp * gq * gn,
        grid_n=gk,
        kg=cg,
        grid_size=gk * gp * gq * gn * cg,
        threads_per_block=threads,
        useful_flops=2 * soa.k * soa.p * soa.q * soa.n * soa.c * soa.r * soa.s,
        padded_flops=2 * covered * soa.crs,
        staged_bytes=db * (bm + bn) * u * cl * dsize,
        staged_depth=u * cl,
        a_bytes_frac=bm / (bm + bn),
        dsize=dsize,
    )
