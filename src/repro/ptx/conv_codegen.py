"""CONV kernel generator via implicit GEMM (paper §3.3).

Multi-channel convolution is lowered to an implicit (NPQ, K, CRS) matrix
multiplication: tiles of I and F are scrambled into shared memory through an
*indirection table* that pre-resolves the (c, r, s) -> address arithmetic,
keeping integer math out of the inner loop.  The generator therefore reuses
the GEMM instruction accounting through :meth:`ConvConfig.as_gemm_config`
and adds the convolution-specific surcharges:

* prologue construction of the indirection table (one entry per staged
  reduction index, rebuilt when the CG split rotates the CRS range);
* one table lookup (shared load + integer add) per staged I element;
* different coalescing runs: I and O are batch-contiguous (runs of N),
  F is output-channel-contiguous (runs of K).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ConvConfig
from repro.core.legality import conv_resources
from repro.core.types import ConvShape, DType, GemmShape, ceil_div
from repro.gpu.device import DeviceSpec
from repro.ptx.counts import BlockCounts, KernelCounts
from repro.ptx.gemm_codegen import (
    BOUNDS_MODES,
    coalescing_multiplier,
)


def uses_packed_fp16(
    cfg: ConvConfig, shape: ConvShape, device: DeviceSpec
) -> bool:
    return (
        device.fp16x2
        and shape.dtype is DType.FP16
        and cfg.vec >= 2
        and cfg.kt % 2 == 0
    )


@dataclass(frozen=True)
class ConvKernel:
    """A generated implicit-GEMM convolution kernel."""

    cfg: ConvConfig
    shape: ConvShape
    device: DeviceSpec
    bounds_mode: str = "predicated"
    allow_fp16x2: bool = True

    def __post_init__(self) -> None:
        if self.bounds_mode not in BOUNDS_MODES:
            raise ValueError(f"unknown bounds mode {self.bounds_mode!r}")

    @property
    def packed(self) -> bool:
        return self.allow_fp16x2 and uses_packed_fp16(
            self.cfg, self.shape, self.device
        )

    def implicit_gemm_shape(self) -> GemmShape:
        return self.shape.implicit_gemm()

    def block_counts(self) -> BlockCounts:
        cfg, shape = self.cfg, self.shape
        dt = shape.dtype
        dsize = dt.size
        threads = cfg.threads

        crs_b = cfg.crs_per_block(shape)
        iters = cfg.main_loop_iters(shape)

        tm, tn = cfg.thread_m, cfg.thread_n
        bm, bn = cfg.block_m, cfg.block_n

        fma_iter = tm * tn * cfg.u
        flops_per_fma = 2
        if self.packed:
            fma_iter //= 2
            flops_per_fma = 4

        widest = max(1, 16 // dsize)
        sva = max(1, min(tm, widest))
        svb = max(1, min(tn, widest))
        lds_iter = cfg.u * (ceil_div(tm, sva) + ceil_div(tn, svb))

        stage_elems = (bm + bn) * cfg.u * cfg.cl
        ldg_iter = max(1, stage_elems // (threads * cfg.vec))
        # Indirection-table lookup per staged I element (shared load + iadd).
        i_stage_per_thread = max(1, (bm * cfg.u * cfg.cl) // threads)
        lds_iter += i_stage_per_thread
        sts_iter = max(1, stage_elems // threads)  # scrambled: scalar stores

        iop_iter = 2 * ldg_iter + i_stage_per_thread + 4
        if self.bounds_mode == "predicated":
            iop_iter += max(1, int(0.2 * ldg_iter))
        elif self.bounds_mode == "checked":
            iop_iter += 4 * ldg_iter + 2

        bar_iter = 1 if cfg.db == 2 else 2

        fma = fma_iter * iters
        lds = lds_iter * iters
        ldg = ldg_iter * iters
        sts = sts_iter * iters
        iop = iop_iter * iters + 60
        bar = bar_iter * iters

        # Indirection-table build: U*CL entries of (c, r, s) decomposition,
        # ~4 integer ops and one shared store each, spread across the block.
        table_entries = cfg.u * cfg.cl
        iop += max(1, 4 * table_entries // threads)
        sts += max(1, table_entries // threads)

        acc = tm * tn
        if cfg.cl > 1:
            sts += acc
            lds += acc * (cfg.cl - 1) // cfg.cl
            fma += acc * (cfg.cl - 1) // cfg.cl
            bar += max(1, cfg.cl.bit_length() - 1)

        out_per_thread = max(1, acc // cfg.cl)
        atom = stg = 0
        if cfg.cg > 1:
            atom = out_per_thread
        else:
            stg = max(1, out_per_thread // cfg.vec)
        iop += 2 * (atom + stg)

        # Traffic.  I is C x H x W x N (batch-contiguous), F is C x R x S x K
        # (channel-contiguous), O is K x P x Q x N (batch-contiguous).
        run_i = cfg.nb if shape.n > 1 else cfg.qb
        run_f = cfg.kb
        ideal_i = bm * crs_b * dsize
        ideal_f = bn * crs_b * dsize
        mult_i = coalescing_multiplier(run_i, dt, self.device)
        mult_f = coalescing_multiplier(run_f, dt, self.device)
        ldg_bytes = ideal_i * mult_i + ideal_f * mult_f
        ideal_bytes = ideal_i + ideal_f
        st_bytes = bm * bn * dsize * (2.0 if cfg.cg > 1 else 1.0)

        mlp = max(1.0, float(ldg_iter)) * (1.5 if cfg.db == 2 else 1.0)
        ilp = float(min(acc * cfg.cs, 48))

        return BlockCounts(
            fma=fma * threads,
            iop=iop * threads,
            ldg=ldg * threads,
            stg=stg * threads,
            atom=atom * threads,
            lds=lds * threads,
            sts=sts * threads,
            bar=bar,
            ldg_bytes=ldg_bytes,
            ideal_ldg_bytes=ideal_bytes,
            st_bytes=st_bytes,
            flops_per_fma=flops_per_fma,
            mlp=mlp,
            ilp=ilp,
        )

    def kernel_counts(self) -> KernelCounts:
        return KernelCounts(
            block=self.block_counts(),
            grid_size=self.cfg.grid_size(self.shape),
            threads_per_block=self.cfg.threads,
        )

    def resources(self):
        return conv_resources(self.cfg, self.shape.dtype)

    def name(self) -> str:
        s, c = self.shape, self.cfg
        return (
            f"{s.dtype.short_name}conv_{c.kb}x{c.pb}x{c.qb}x{c.nb}"
            f"_u{c.u}_cl{c.cl}_cg{c.cg}_v{c.vec}"
        )

    def emit(self) -> str:
        from repro.ptx.module import render_conv_kernel

        return render_conv_kernel(self)
