"""Instruction-count summaries produced by the kernel generators.

The simulator never inspects individual instructions — like the analytical
models the paper builds on (§5.2, eqs. (2)–(3)), it needs *how many*
arithmetic and memory instructions a kernel executes, per block, plus the
global traffic they imply.  The code generators compute these counts exactly
from the tiling parameters; :mod:`repro.ptx.module` can additionally render
a textual kernel for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class BlockCounts:
    """Instructions executed by *one block* over its whole lifetime.

    All counts are thread-instructions (a warp executing one instruction on
    32 lanes contributes 32).  Memory-op counts are vectorized instructions:
    one ``ld.global.v4.f32`` counts once, with its width reflected in the
    byte fields.

    * ``fma`` — multiply-accumulate instructions (packed fp16x2 counts one
      instruction for two FLOPs; see ``flops_per_fma``).
    * ``iop`` — integer/address/predicate ALU instructions.
    * ``ldg`` / ``stg`` — global loads / plain global stores.
    * ``atom`` — global atomic reductions (the KG > 1 epilogue).
    * ``lds`` / ``sts`` — shared-memory loads / stores.
    * ``bar`` — ``bar.sync`` barriers (block-wide, counted once each).
    * ``ldg_bytes`` — global-load traffic *as issued* (after the coalescing
      multiplier, before L2 filtering).
    * ``ideal_ldg_bytes`` — compulsory bytes (perfectly coalesced).
    * ``st_bytes`` — global store/atomic traffic.
    * ``flops_per_fma`` — 2 normally, 4 when packed fp16x2 is in use.
    * ``mlp`` — independent in-flight memory requests per thread in the main
      loop (memory-level parallelism; feeds the latency-hiding model).
    * ``ilp`` — independent arithmetic chains per thread (instruction-level
      parallelism from the thread tile and the KS split).
    """

    fma: int
    iop: int
    ldg: int
    stg: int
    atom: int
    lds: int
    sts: int
    bar: int
    ldg_bytes: float
    ideal_ldg_bytes: float
    st_bytes: float
    flops_per_fma: int = 2
    mlp: float = 1.0
    ilp: float = 1.0

    @property
    def flops(self) -> int:
        """FLOPs this block performs (padded — includes predicated-off lanes)."""
        return self.fma * self.flops_per_fma

    @property
    def arith(self) -> int:
        return self.fma + self.iop

    @property
    def smem_ops(self) -> int:
        return self.lds + self.sts

    @property
    def global_ops(self) -> int:
        return self.ldg + self.stg + self.atom

    def scaled(self, factor: float) -> "BlockCounts":
        """Scale every extensive field (used for partial edge blocks)."""
        return BlockCounts(
            fma=int(self.fma * factor),
            iop=int(self.iop * factor),
            ldg=int(self.ldg * factor),
            stg=int(self.stg * factor),
            atom=int(self.atom * factor),
            lds=int(self.lds * factor),
            sts=int(self.sts * factor),
            bar=max(1, int(self.bar * factor)),
            ldg_bytes=self.ldg_bytes * factor,
            ideal_ldg_bytes=self.ideal_ldg_bytes * factor,
            st_bytes=self.st_bytes * factor,
            flops_per_fma=self.flops_per_fma,
            mlp=self.mlp,
            ilp=self.ilp,
        )


@dataclass(frozen=True, slots=True)
class BlockCountsArrays:
    """Struct-of-arrays :class:`BlockCounts` for a batch of kernels.

    Produced by the vectorized counts extraction
    (:mod:`repro.ptx.batch_counts`) and consumed by the batched simulator:
    one int64/float64 column per :class:`BlockCounts` field, all parallel.
    """

    fma: np.ndarray
    iop: np.ndarray
    ldg: np.ndarray
    stg: np.ndarray
    atom: np.ndarray
    lds: np.ndarray
    sts: np.ndarray
    bar: np.ndarray
    ldg_bytes: np.ndarray
    ideal_ldg_bytes: np.ndarray
    st_bytes: np.ndarray
    flops_per_fma: np.ndarray
    mlp: np.ndarray
    ilp: np.ndarray

    def __len__(self) -> int:
        return len(self.fma)

    @property
    def flops(self) -> np.ndarray:
        return self.fma * self.flops_per_fma

    @property
    def smem_ops(self) -> np.ndarray:
        return self.lds + self.sts

    def row(self, i: int) -> BlockCounts:
        return BlockCounts(
            fma=int(self.fma[i]),
            iop=int(self.iop[i]),
            ldg=int(self.ldg[i]),
            stg=int(self.stg[i]),
            atom=int(self.atom[i]),
            lds=int(self.lds[i]),
            sts=int(self.sts[i]),
            bar=int(self.bar[i]),
            ldg_bytes=float(self.ldg_bytes[i]),
            ideal_ldg_bytes=float(self.ideal_ldg_bytes[i]),
            st_bytes=float(self.st_bytes[i]),
            flops_per_fma=int(self.flops_per_fma[i]),
            mlp=float(self.mlp[i]),
            ilp=float(self.ilp[i]),
        )


@dataclass(frozen=True, slots=True)
class KernelCounts:
    """Counts for a full kernel launch: per-block counts plus grid totals."""

    block: BlockCounts
    grid_size: int
    threads_per_block: int

    @property
    def total_flops(self) -> int:
        return self.block.flops * self.grid_size

    @property
    def total_ldg_bytes(self) -> float:
        return self.block.ldg_bytes * self.grid_size

    @property
    def total_ideal_ldg_bytes(self) -> float:
        return self.block.ideal_ldg_bytes * self.grid_size

    @property
    def total_st_bytes(self) -> float:
        return self.block.st_bytes * self.grid_size
