"""GEMM kernel generator: tiling parameters -> instruction counts + PTX text.

This is the reproduction of the paper's §3.2 parameterization (Figure 3).
Given a :class:`~repro.core.config.GemmConfig` and a problem shape, it
computes the exact per-block instruction mix of the generated kernel —
main-loop FMAs, cooperative staging loads/stores, shared-memory operand
fetches, the KL shared-reduction and KG atomic epilogues, addressing
arithmetic — together with the global traffic implied by the transposition
layout (coalescing) and the chosen bounds-checking mode (§8.3).

Bounds modes:

* ``"predicated"`` — PTX-style guard predicates on edge accesses (~2%
  overhead; the paper's choice).
* ``"checked"``    — CUDA-C-style explicit bounds tests and branches
  (the 15–20% overhead that motivated the move to PTX).
* ``"padded"``     — no checks; the caller must round the problem up to
  tile multiples, paying with extra FLOPs instead of extra instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import GemmConfig
from repro.core.legality import gemm_resources
from repro.core.types import DType, GemmShape, round_up
from repro.gpu.device import DeviceSpec
from repro.ptx.counts import BlockCounts, KernelCounts

BOUNDS_MODES = ("predicated", "checked", "padded")

#: DRAM transaction granularity: a 32-byte sector (Maxwell/Pascal L2 sectors).
_SECTOR_BYTES = 32


def _smem_vec(frag: int, dtype: DType) -> int:
    """Widest shared-memory vector load usable for a fragment of ``frag`` elems."""
    widest = max(1, 16 // dtype.size)
    v = 1
    while v * 2 <= min(frag, widest) and frag % (v * 2) == 0:
        v *= 2
    return v


def coalescing_multiplier(
    run_elems: int, dtype: DType, device: DeviceSpec
) -> float:
    """Traffic inflation for strided access with contiguous runs of ``run_elems``.

    A warp whose accesses cover only ``run_elems * dtype.size`` contiguous
    bytes per 32-byte sector wastes the remainder of each sector; DRAM-type
    differences (GDDR5 vs HBM2 burst behaviour) cap the worst case via
    ``device.coalesce_penalty``.
    """
    eff = min(1.0, run_elems * dtype.size / _SECTOR_BYTES)
    return min(device.coalesce_penalty, 1.0 / max(eff, 1e-9))


def uses_packed_fp16(
    cfg: GemmConfig, shape: GemmShape, device: DeviceSpec
) -> bool:
    """Whether the generator can emit fp16x2 packed FMAs for this kernel.

    Requires hardware support, half-precision data, vectorized loads (the
    packed path consumes register pairs) and an even thread-tile column
    count so accumulators pair up.
    """
    return (
        device.fp16x2
        and shape.dtype is DType.FP16
        and cfg.vec >= 2
        and cfg.ns % 2 == 0
    )


@dataclass(frozen=True)
class GemmKernel:
    """A generated GEMM kernel: config + shape + codegen decisions."""

    cfg: GemmConfig
    shape: GemmShape
    device: DeviceSpec
    bounds_mode: str = "predicated"
    allow_fp16x2: bool = True

    def __post_init__(self) -> None:
        if self.bounds_mode not in BOUNDS_MODES:
            raise ValueError(f"unknown bounds mode {self.bounds_mode!r}")

    # ------------------------------------------------------------------
    @property
    def effective_shape(self) -> GemmShape:
        """Shape the kernel actually runs: padded modes round M, N up."""
        if self.bounds_mode != "padded":
            return self.shape
        s = self.shape
        return GemmShape(
            m=round_up(s.m, self.cfg.ml),
            n=round_up(s.n, self.cfg.nl),
            k=s.k,
            dtype=s.dtype,
            ta=s.ta,
            tb=s.tb,
        )

    @property
    def packed(self) -> bool:
        return self.allow_fp16x2 and uses_packed_fp16(
            self.cfg, self.shape, self.device
        )

    @property
    def needs_transpose_a(self) -> bool:
        """A must be scrambled while staged: its global-contiguous dimension
        disagrees with the shared-memory operand layout (paper §7.3,
        DeepBench backward)."""
        return self.shape.ta

    @property
    def needs_transpose_b(self) -> bool:
        return not self.shape.tb

    # ------------------------------------------------------------------
    def block_counts(self) -> BlockCounts:
        cfg, shape, dt = self.cfg, self.effective_shape, self.shape.dtype
        dsize = dt.size
        threads = cfg.threads

        kb = cfg.k_per_block(shape)              # K handled per block
        iters = cfg.main_loop_iters(shape)       # per-slice main-loop trips

        # -- main loop, per thread, per iteration --------------------------
        fma_iter = cfg.ms * cfg.ns * cfg.u
        flops_per_fma = 2
        if self.packed:
            fma_iter //= 2
            flops_per_fma = 4

        sva = _smem_vec(cfg.ms, dt)
        svb = _smem_vec(cfg.ns, dt)
        lds_iter = cfg.u * (cfg.ms // sva + cfg.ns // svb)

        stage_elems = (cfg.ml + cfg.nl) * cfg.u           # per slice-iteration
        ldg_iter = stage_elems * cfg.kl // (threads * cfg.vec)
        # Memory-level parallelism is set by the vectorized staging pattern;
        # checked mode's branches serialize accesses (§8.3), so the scalar
        # expansion below must not raise it and make checked mode faster.
        mlp_iter = ldg_iter
        if self.bounds_mode == "checked":
            # CUDA-C bounds tests wrap each element access in a branch,
            # which also defeats vectorized loads (§8.3): scalar accesses.
            ldg_iter *= cfg.vec
        sts_a = (cfg.ml * cfg.u * cfg.kl) // threads
        sts_b = (cfg.nl * cfg.u * cfg.kl) // threads
        sts_iter = sts_a // (1 if self.needs_transpose_a else cfg.vec) + (
            sts_b // (1 if self.needs_transpose_b else cfg.vec)
        )

        iop_iter = 2 * ldg_iter + 4
        if self.bounds_mode == "predicated":
            iop_iter += max(1, int(0.15 * ldg_iter))
        elif self.bounds_mode == "checked":
            # Two index compares, a select, an address clamp and a branch
            # per guarded scalar access.
            iop_iter += 5 * ldg_iter + 4

        bar_iter = 1 if cfg.db == 2 else 2

        # -- per-thread totals over the main loop --------------------------
        fma = fma_iter * iters
        lds = lds_iter * iters
        ldg = ldg_iter * iters
        sts = sts_iter * iters
        iop = iop_iter * iters + 40               # +prologue index setup
        bar = bar_iter * iters

        # -- KL shared-tree reduction epilogue ------------------------------
        acc = cfg.ms * cfg.ns
        if cfg.kl > 1:
            sts += acc
            lds += acc * (cfg.kl - 1) // cfg.kl
            fma += acc * (cfg.kl - 1) // cfg.kl   # float adds share the pipe
            bar += max(1, int(math.log2(cfg.kl)))

        # -- output epilogue -------------------------------------------------
        out_per_thread = max(1, acc // cfg.kl)
        atom = stg = 0
        if cfg.kg > 1:
            atom = out_per_thread
        else:
            stg = max(1, out_per_thread // cfg.vec)
        iop += 2 * (atom + stg)

        # -- traffic ---------------------------------------------------------
        run_a = cfg.u if not shape.ta else cfg.ml
        run_b = cfg.nl if not shape.tb else cfg.u
        ideal_a = cfg.ml * kb * dsize
        ideal_b = cfg.nl * kb * dsize
        mult_a = coalescing_multiplier(run_a, dt, self.device)
        mult_b = coalescing_multiplier(run_b, dt, self.device)
        if self.bounds_mode == "predicated":
            # Guarded lanes on edge tiles still fetch their line.
            pass
        ldg_bytes = ideal_a * mult_a + ideal_b * mult_b
        ideal_bytes = ideal_a + ideal_b
        st_bytes = cfg.ml * cfg.nl * dsize * (2.0 if cfg.kg > 1 else 1.0)

        mlp = max(1.0, float(mlp_iter)) * (1.5 if cfg.db == 2 else 1.0)
        ilp = float(min(cfg.ms * cfg.ns * cfg.ks, 48))

        return BlockCounts(
            fma=fma * threads,
            iop=iop * threads,
            ldg=ldg * threads,
            stg=stg * threads,
            atom=atom * threads,
            lds=lds * threads,
            sts=sts * threads,
            bar=bar,
            ldg_bytes=ldg_bytes,
            ideal_ldg_bytes=ideal_bytes,
            st_bytes=st_bytes,
            flops_per_fma=flops_per_fma,
            mlp=mlp,
            ilp=ilp,
        )

    def kernel_counts(self) -> KernelCounts:
        shape = self.effective_shape
        return KernelCounts(
            block=self.block_counts(),
            grid_size=self.cfg.grid_size(shape),
            threads_per_block=self.cfg.threads,
        )

    # ------------------------------------------------------------------
    def resources(self):
        return gemm_resources(self.cfg, self.shape.dtype)

    def name(self) -> str:
        s, c = self.shape, self.cfg
        return (
            f"{s.dtype.short_name}gemm_{s.layout_code.lower()}"
            f"_{c.ml}x{c.nl}x{c.u}_{c.ms}x{c.ns}"
            f"_kl{c.kl}_kg{c.kg}_v{c.vec}"
        )

    def emit(self) -> str:
        """Render the pseudo-PTX kernel text (for inspection and the verifier)."""
        from repro.ptx.module import render_gemm_kernel

        return render_gemm_kernel(self)
