"""A miniature PTX-like instruction set.

Only the subset the GEMM/CONV templates need is modelled.  Instructions are
plain records; :mod:`repro.ptx.module` renders them to text and
:mod:`repro.ptx.verifier` re-parses that text to cross-check the resource
accounting.  The paper's predication argument (§8.3) is first-class: every
instruction may carry a guard predicate, which is how generated kernels do
bounds checking without padding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Execution pipe an opcode occupies (drives the timing model)."""

    ALU = "alu"          # integer / address / predicate math
    FMA = "fma"          # floating multiply-accumulate
    LDST_GLOBAL = "ldg"  # global memory access
    LDST_SHARED = "lds"  # shared memory access
    ATOMIC = "atom"      # global atomic reduction
    BARRIER = "bar"      # block synchronization
    CONTROL = "ctl"      # branches, returns


#: opcode -> (pipe, human description)
OPCODES: dict[str, tuple[OpClass, str]] = {
    "mov": (OpClass.ALU, "register move"),
    "mov.u32": (OpClass.ALU, "register move (u32)"),
    "add.s32": (OpClass.ALU, "integer add"),
    "mad.lo.s32": (OpClass.ALU, "integer multiply-add"),
    "shl.b32": (OpClass.ALU, "shift left"),
    "and.b32": (OpClass.ALU, "bitwise and"),
    "setp.lt.s32": (OpClass.ALU, "set predicate (less-than)"),
    "setp.ge.s32": (OpClass.ALU, "set predicate (greater-equal)"),
    "fma.rn.f16x2": (OpClass.FMA, "packed half2 FMA"),
    "fma.rn.f16": (OpClass.FMA, "half FMA"),
    "fma.rn.f32": (OpClass.FMA, "single FMA"),
    "fma.rn.f64": (OpClass.FMA, "double FMA"),
    "ld.global.nc": (OpClass.LDST_GLOBAL, "global load (non-coherent)"),
    "st.global": (OpClass.LDST_GLOBAL, "global store"),
    "red.global.add": (OpClass.ATOMIC, "global atomic reduction"),
    "ld.shared": (OpClass.LDST_SHARED, "shared load"),
    "st.shared": (OpClass.LDST_SHARED, "shared store"),
    "bar.sync": (OpClass.BARRIER, "barrier"),
    "bra": (OpClass.CONTROL, "branch"),
    "ret": (OpClass.CONTROL, "return"),
}


@dataclass(frozen=True, slots=True)
class Instr:
    """One (possibly predicated, possibly vectorized) instruction."""

    opcode: str
    dst: str = ""
    srcs: tuple[str, ...] = ()
    pred: str | None = None
    vec: int = 1
    repeat: int = 1       # static count this line stands for (unroll factor)

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")
        if self.vec not in (1, 2, 4):
            raise ValueError(f"illegal vector width {self.vec}")

    @property
    def op_class(self) -> OpClass:
        return OPCODES[self.opcode][0]

    def render(self) -> str:
        guard = f"@{self.pred} " if self.pred else ""
        op = self.opcode
        if self.vec > 1 and self.op_class in (
            OpClass.LDST_GLOBAL,
            OpClass.LDST_SHARED,
        ):
            head, _, tail = op.partition(".")
            op = f"{head}.{tail}.v{self.vec}" if tail else f"{op}.v{self.vec}"
        operands = ", ".join(x for x in (self.dst, *self.srcs) if x)
        line = f"{guard}{op} {operands};".rstrip()
        if self.repeat > 1:
            line += f"  // x{self.repeat}"
        return line


def classify(opcode: str) -> OpClass:
    if opcode not in OPCODES:
        raise ValueError(f"unknown opcode {opcode!r}")
    return OPCODES[opcode][0]


def fma_opcode(dtype_name: str, packed: bool) -> str:
    """The FMA opcode for a dtype; packed selects the half2 dual-issue form."""
    if dtype_name == "FP16":
        return "fma.rn.f16x2" if packed else "fma.rn.f16"
    if dtype_name == "FP32":
        return "fma.rn.f32"
    if dtype_name == "FP64":
        return "fma.rn.f64"
    raise ValueError(f"unknown dtype {dtype_name!r}")
