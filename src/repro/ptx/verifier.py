"""Static verifier for rendered pseudo-PTX kernels.

Compilation failures on real hardware (the paper's X̂ \\ X distinction)
surface as resource-limit violations at JIT time.  This verifier plays the
driver's role for our rendered kernels: it re-parses the text and checks

* every opcode is a known ISA member,
* declared shared memory matches the legality model and the device limit,
* declared registers stay within per-thread limits,
* every loop label that is branched to exists,
* barriers are present wherever shared memory is both written and read.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec
from repro.ptx.isa import OPCODES

_SHARED_DECL = re.compile(r"\.shared\s+\.align\s+\d+\s+\.b8\s+\w+\[(\d+)\]")
_REG_DECL = re.compile(r"\.reg\s+\.(\w+)\s+%\w+<(\d+)>")
_LABEL = re.compile(r"^(\w+):")
_BRANCH = re.compile(r"\bbra\s+(\w+)")
_INSTR = re.compile(r"^\s*(?:@%?\w+\s+)?([a-z][\w.]*)\s")

_REG_WIDTH_WORDS = {"f16": 1, "f32": 1, "b32": 1, "f64": 2, "pred": 0}


@dataclass
class VerifyResult:
    ok: bool
    errors: list[str] = field(default_factory=list)
    smem_bytes: int = 0
    reg_words: int = 0
    opcode_histogram: dict[str, int] = field(default_factory=dict)


def _strip_comment(line: str) -> str:
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def verify_ptx(text: str, device: DeviceSpec) -> VerifyResult:
    """Check a rendered kernel against ISA and device limits."""
    errors: list[str] = []
    smem = 0
    reg_words = 0
    labels: set[str] = set()
    branches: list[str] = []
    histogram: dict[str, int] = {}
    barrier_seen = False
    shared_written = False
    shared_read_before_barrier = False

    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if m := _SHARED_DECL.search(line):
            smem += int(m.group(1))
            continue
        if m := _REG_DECL.search(line):
            ty, count = m.group(1), int(m.group(2))
            reg_words += _REG_WIDTH_WORDS.get(ty, 1) * count
            continue
        if m := _LABEL.match(line):
            labels.add(m.group(1))
            continue
        if line.startswith(".") or line in ("{", "}", ")") or line.startswith(
            (".visible", ".param")
        ) or line.endswith("(") :
            continue
        if m := _INSTR.match(line):
            op = m.group(1)
            base = _base_opcode(op)
            if base is None:
                errors.append(f"unknown opcode: {op!r}")
            else:
                histogram[base] = histogram.get(base, 0) + 1
                if base == "bar.sync":
                    barrier_seen = True
                if base == "st.shared":
                    shared_written = True
                if base == "ld.shared" and shared_written and not barrier_seen:
                    shared_read_before_barrier = True
        if m := _BRANCH.search(line):
            branches.append(m.group(1))

    for target in branches:
        if target not in labels:
            errors.append(f"branch to undefined label {target!r}")
    if smem > device.smem_per_block_kb * 1024:
        errors.append(
            f"shared memory {smem}B exceeds {device.smem_per_block_kb}KB limit"
        )
    if smem == 0:
        errors.append("no shared memory declared (staging tile missing)")
    if reg_words > device.max_regs_per_thread:
        errors.append(
            f"declared register words {reg_words} exceed "
            f"{device.max_regs_per_thread}/thread"
        )
    if shared_written and not barrier_seen:
        errors.append("shared memory written but no barrier present")

    return VerifyResult(
        ok=not errors,
        errors=errors,
        smem_bytes=smem,
        reg_words=reg_words,
        opcode_histogram=histogram,
    )


def _base_opcode(op: str) -> str | None:
    """Map a rendered opcode (possibly with .vN suffix) to its ISA entry."""
    if op in OPCODES:
        return op
    parts = op.split(".")
    if parts and parts[-1].startswith("v") and parts[-1][1:].isdigit():
        stripped = ".".join(parts[:-1])
        if stripped in OPCODES:
            return stripped
    return None
