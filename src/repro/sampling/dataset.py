"""Training-data synthesis: benchmark random (shape, config) pairs (§4).

The data-generation step produces pairs (x, y) where x concatenates input
and tuning parameters and y is a performance measurement of the induced
kernel on the target hardware — here, the simulated device with its
deterministic measurement noise.  Shapes are drawn log-uniformly over the
practically relevant ranges so the benchmark suites of §7 are squarely
in-distribution; configs come from the fitted categorical generative model
(rejection-sampled to legality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.batched import BatchedGemmShape
from repro.core.ops import OpSpec, get_op
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.noise import DEFAULT_SIGMA
from repro.sampling.generative import CategoricalModel


def _log_uniform_int(
    rng: np.random.Generator, lo: int, hi: int, round_pow2_prob: float = 0.5
) -> int:
    """Log-uniform integer in [lo, hi]; sometimes snapped to a power of two.

    Real workloads mix arbitrary extents (60000-sample ICA windows) with
    power-of-two ones (LINPACK blocks), so the sampler covers both.
    """
    v = int(round(2 ** rng.uniform(np.log2(lo), np.log2(hi))))
    v = max(lo, min(hi, v))
    if rng.random() < round_pow2_prob:
        v = 1 << max(0, int(round(np.log2(v))))
        v = max(lo, min(hi, v))
    return v


# ----------------------------------------------------------------------
# Shape samplers
# ----------------------------------------------------------------------

@dataclass
class GemmShapeSampler:
    """Random GEMM input parameters covering the paper's workload ranges."""

    m_range: tuple[int, int] = (16, 4096)
    n_range: tuple[int, int] = (16, 4096)
    k_range: tuple[int, int] = (16, 65536)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16, DType.FP64)

    def __call__(self, rng: np.random.Generator) -> GemmShape:
        return GemmShape(
            m=_log_uniform_int(rng, *self.m_range),
            n=_log_uniform_int(rng, *self.n_range),
            k=_log_uniform_int(rng, *self.k_range),
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
            ta=bool(rng.integers(2)),
            tb=bool(rng.integers(2)),
        )


@dataclass
class ConvShapeSampler:
    """Random CONV input parameters spanning the DeepBench-style layers."""

    n_range: tuple[int, int] = (1, 32)
    c_range: tuple[int, int] = (1, 1024)
    k_range: tuple[int, int] = (16, 2048)
    pq_range: tuple[int, int] = (7, 256)
    filter_sizes: tuple[int, ...] = (1, 3, 5, 7, 11, 20)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16)

    def __call__(self, rng: np.random.Generator) -> ConvShape:
        r = int(self.filter_sizes[rng.integers(len(self.filter_sizes))])
        s = int(self.filter_sizes[rng.integers(len(self.filter_sizes))])
        p = _log_uniform_int(rng, *self.pq_range)
        q = _log_uniform_int(rng, *self.pq_range)
        return ConvShape.from_output(
            n=_log_uniform_int(rng, *self.n_range),
            p=p,
            q=q,
            k=_log_uniform_int(rng, *self.k_range),
            c=_log_uniform_int(rng, *self.c_range),
            r=r,
            s=s,
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
        )


@dataclass
class BatchedGemmShapeSampler:
    """Random strided-batched GEMM inputs: many small identical products.

    RNN timestep stacks and attention blocks launch hundreds of small
    GEMMs, so the batch range is wide while the per-element extents stay
    modest (a large batched product would be a plain GEMM).
    """

    batch_range: tuple[int, int] = (2, 256)
    m_range: tuple[int, int] = (16, 1024)
    n_range: tuple[int, int] = (16, 1024)
    k_range: tuple[int, int] = (16, 4096)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16)

    def __call__(self, rng: np.random.Generator) -> BatchedGemmShape:
        base = GemmShape(
            m=_log_uniform_int(rng, *self.m_range),
            n=_log_uniform_int(rng, *self.n_range),
            k=_log_uniform_int(rng, *self.k_range),
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
            ta=bool(rng.integers(2)),
            tb=bool(rng.integers(2)),
        )
        return BatchedGemmShape(
            batch=_log_uniform_int(rng, *self.batch_range), base=base
        )


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------

@dataclass
class Dataset:
    """Raw (un-transformed) features and measured log-performance targets.

    ``x`` holds *raw integer-valued* features; the log transform and
    standardization are training-time choices (so the no-log ablation can
    reuse the same data).  ``y`` is ``log2(measured TFLOPS)``.
    """

    x: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, n: int) -> "Dataset":
        if n > len(self):
            raise ValueError(f"requested {n} of {len(self)} samples")
        return Dataset(self.x[:n], self.y[:n], self.feature_names)

    def split(self, val_frac: float, rng: np.random.Generator):
        idx = rng.permutation(len(self))
        n_val = int(len(self) * val_frac)
        val, train = idx[:n_val], idx[n_val:]
        return (
            Dataset(self.x[train], self.y[train], self.feature_names),
            Dataset(self.x[val], self.y[val], self.feature_names),
        )


def fit_generative_models(
    device: DeviceSpec,
    *,
    op: str | OpSpec = "gemm",
    dtypes: Sequence[DType] | None = None,
    rng: np.random.Generator | None = None,
    target_accepted: int = 400,
    alpha: float = 100.0,
) -> dict[DType, CategoricalModel]:
    """One categorical model per data-type (legality depends on the dtype)."""
    spec = get_op(op)
    rng = rng if rng is not None else np.random.default_rng(0)
    dtypes = spec.default_dtypes if dtypes is None else tuple(dtypes)
    out: dict[DType, CategoricalModel] = {}
    for dt in dtypes:
        accept = _make_accept(device, spec, dt)
        model = CategoricalModel(spec.space, alpha=alpha)
        model.fit(accept, rng, target_accepted=target_accepted)
        out[dt] = model
    return out


def _make_accept(device: DeviceSpec, op: str | OpSpec, dtype: DType):
    spec = get_op(op)
    return lambda pt: spec.is_legal(spec.config_from_point(pt), dtype, device)


def generate_dataset(
    device: DeviceSpec,
    op: str | OpSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], object] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] | None = None,
) -> Dataset:
    """Benchmark ``n`` random legal kernels of ``op`` on the simulated device.

    Everything op-specific — the shape sampler, the tuning space behind the
    generative model, legality, the simulator benchmark and the feature
    encoding — comes from the op's :class:`~repro.core.ops.OpSpec`.
    """
    spec = get_op(op)
    dtypes = spec.default_dtypes if dtypes is None else tuple(dtypes)
    shape_sampler = shape_sampler or spec.make_shape_sampler(dtypes)
    samplers = samplers or fit_generative_models(
        device, op=spec, dtypes=dtypes, rng=rng
    )
    feature_names = spec.feature_names
    xs = np.empty((n, len(feature_names)))
    ys = np.empty(n)
    for i in range(n):
        shape = shape_sampler(rng)
        accept = _make_accept(device, spec, shape.dtype)
        point = samplers[shape.dtype].sample_legal(accept, rng)
        cfg = spec.config_from_point(point)
        tflops = spec.benchmark(device, cfg, shape, reps=reps, sigma=sigma)
        xs[i] = spec.encode(cfg, shape, log=False)
        ys[i] = np.log2(max(tflops, 1e-6))
    return Dataset(xs, ys, feature_names)


def generate_gemm_dataset(
    device: DeviceSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], GemmShape] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16, DType.FP64),
) -> Dataset:
    """Benchmark ``n`` random legal GEMM kernels on the simulated device."""
    return generate_dataset(
        device, "gemm", n, rng,
        samplers=samplers, shape_sampler=shape_sampler,
        sigma=sigma, reps=reps, dtypes=dtypes,
    )


def generate_conv_dataset(
    device: DeviceSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], ConvShape] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16),
) -> Dataset:
    """Benchmark ``n`` random legal CONV kernels on the simulated device."""
    return generate_dataset(
        device, "conv", n, rng,
        samplers=samplers, shape_sampler=shape_sampler,
        sigma=sigma, reps=reps, dtypes=dtypes,
    )
