"""Training-data synthesis: benchmark random (shape, config) pairs (§4).

The data-generation step produces pairs (x, y) where x concatenates input
and tuning parameters and y is a performance measurement of the induced
kernel on the target hardware — here, the simulated device with its
deterministic measurement noise.  Shapes are drawn log-uniformly over the
practically relevant ranges so the benchmark suites of §7 are squarely
in-distribution; configs come from the fitted categorical generative model
(rejection-sampled to legality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.batched import BatchedGemmShape
from repro.core.ops import OpSpec, get_op
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import DeviceSpec
from repro.gpu.noise import DEFAULT_SIGMA
from repro.sampling.generative import CategoricalModel


def _log_uniform_int(
    rng: np.random.Generator, lo: int, hi: int, round_pow2_prob: float = 0.5
) -> int:
    """Log-uniform integer in [lo, hi]; sometimes snapped to a power of two.

    Real workloads mix arbitrary extents (60000-sample ICA windows) with
    power-of-two ones (LINPACK blocks), so the sampler covers both.
    """
    v = int(round(2 ** rng.uniform(np.log2(lo), np.log2(hi))))
    v = max(lo, min(hi, v))
    if rng.random() < round_pow2_prob:
        v = 1 << max(0, int(round(np.log2(v))))
        v = max(lo, min(hi, v))
    return v


# ----------------------------------------------------------------------
# Shape samplers
# ----------------------------------------------------------------------

@dataclass
class GemmShapeSampler:
    """Random GEMM input parameters covering the paper's workload ranges."""

    m_range: tuple[int, int] = (16, 4096)
    n_range: tuple[int, int] = (16, 4096)
    k_range: tuple[int, int] = (16, 65536)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16, DType.FP64)

    def __call__(self, rng: np.random.Generator) -> GemmShape:
        return GemmShape(
            m=_log_uniform_int(rng, *self.m_range),
            n=_log_uniform_int(rng, *self.n_range),
            k=_log_uniform_int(rng, *self.k_range),
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
            ta=bool(rng.integers(2)),
            tb=bool(rng.integers(2)),
        )


@dataclass
class ConvShapeSampler:
    """Random CONV input parameters spanning the DeepBench-style layers."""

    n_range: tuple[int, int] = (1, 32)
    c_range: tuple[int, int] = (1, 1024)
    k_range: tuple[int, int] = (16, 2048)
    pq_range: tuple[int, int] = (7, 256)
    filter_sizes: tuple[int, ...] = (1, 3, 5, 7, 11, 20)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16)

    def __call__(self, rng: np.random.Generator) -> ConvShape:
        r = int(self.filter_sizes[rng.integers(len(self.filter_sizes))])
        s = int(self.filter_sizes[rng.integers(len(self.filter_sizes))])
        p = _log_uniform_int(rng, *self.pq_range)
        q = _log_uniform_int(rng, *self.pq_range)
        return ConvShape.from_output(
            n=_log_uniform_int(rng, *self.n_range),
            p=p,
            q=q,
            k=_log_uniform_int(rng, *self.k_range),
            c=_log_uniform_int(rng, *self.c_range),
            r=r,
            s=s,
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
        )


@dataclass
class BatchedGemmShapeSampler:
    """Random strided-batched GEMM inputs: many small identical products.

    RNN timestep stacks and attention blocks launch hundreds of small
    GEMMs, so the batch range is wide while the per-element extents stay
    modest (a large batched product would be a plain GEMM).
    """

    batch_range: tuple[int, int] = (2, 256)
    m_range: tuple[int, int] = (16, 1024)
    n_range: tuple[int, int] = (16, 1024)
    k_range: tuple[int, int] = (16, 4096)
    dtypes: tuple[DType, ...] = (DType.FP32, DType.FP16)

    def __call__(self, rng: np.random.Generator) -> BatchedGemmShape:
        base = GemmShape(
            m=_log_uniform_int(rng, *self.m_range),
            n=_log_uniform_int(rng, *self.n_range),
            k=_log_uniform_int(rng, *self.k_range),
            dtype=self.dtypes[rng.integers(len(self.dtypes))],
            ta=bool(rng.integers(2)),
            tb=bool(rng.integers(2)),
        )
        return BatchedGemmShape(
            batch=_log_uniform_int(rng, *self.batch_range), base=base
        )


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------

@dataclass
class Dataset:
    """Raw (un-transformed) features and measured log-performance targets.

    ``x`` holds *raw integer-valued* features; the log transform and
    standardization are training-time choices (so the no-log ablation can
    reuse the same data).  ``y`` is ``log2(measured TFLOPS)``.
    """

    x: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, n: int) -> "Dataset":
        if n > len(self):
            raise ValueError(f"requested {n} of {len(self)} samples")
        return Dataset(self.x[:n], self.y[:n], self.feature_names)

    def split(self, val_frac: float, rng: np.random.Generator):
        idx = rng.permutation(len(self))
        n_val = int(len(self) * val_frac)
        val, train = idx[:n_val], idx[n_val:]
        return (
            Dataset(self.x[train], self.y[train], self.feature_names),
            Dataset(self.x[val], self.y[val], self.feature_names),
        )


def fit_generative_models(
    device: DeviceSpec,
    *,
    op: str | OpSpec = "gemm",
    dtypes: Sequence[DType] | None = None,
    rng: np.random.Generator | None = None,
    target_accepted: int = 400,
    alpha: float = 100.0,
) -> dict[DType, CategoricalModel]:
    """One categorical model per data-type (legality depends on the dtype)."""
    spec = get_op(op)
    rng = rng if rng is not None else np.random.default_rng(0)
    dtypes = spec.default_dtypes if dtypes is None else tuple(dtypes)
    out: dict[DType, CategoricalModel] = {}
    for dt in dtypes:
        accept = _make_accept(device, spec, dt)
        model = CategoricalModel(spec.space, alpha=alpha)
        model.fit(accept, rng, target_accepted=target_accepted)
        out[dt] = model
    return out


def _make_accept(device: DeviceSpec, op: str | OpSpec, dtype: DType):
    spec = get_op(op)
    return lambda pt: spec.is_legal(spec.config_from_point(pt), dtype, device)


#: Rejection-sampling effort cap, per requested sample (mirrors
#: CategoricalModel.sample_legal's max_tries).
_MAX_DRAWS_PER_SAMPLE = 1000


def _sample_legal_configs(
    device: DeviceSpec,
    spec: OpSpec,
    model: CategoricalModel,
    dtype: DType,
    count: int,
    rng: np.random.Generator,
) -> list:
    """``count`` legal configs of one dtype via batched rejection sampling.

    Draws struct-of-arrays batches from the generative model and filters
    them through the op's vectorized legality mask; falls back to per-point
    :meth:`~repro.sampling.generative.CategoricalModel.sample_legal` when
    either side lacks the batched API.
    """
    if spec.legal_mask is None or not hasattr(model, "sample_batch"):
        accept = _make_accept(device, spec, dtype)
        return [
            spec.config_from_point(model.sample_legal(accept, rng))
            for _ in range(count)
        ]
    out: list = []
    draws = 0
    max_draws = max(10_000, _MAX_DRAWS_PER_SAMPLE * count)
    while len(out) < count and draws < max_draws:
        batch_n = min(max(256, 4 * (count - len(out))), 65_536)
        cols = model.sample_batch(batch_n, rng)
        draws += batch_n
        mask = spec.legal_mask(device, cols, dtype)
        names = tuple(cols)
        for j in np.flatnonzero(mask):
            out.append(
                spec.config_from_point(
                    {name: int(cols[name][j]) for name in names}
                )
            )
            if len(out) == count:
                break
    if len(out) < count:
        raise RuntimeError(
            f"only {len(out)}/{count} legal samples in {draws} draws — "
            "acceptance collapsed?"
        )
    return out


def generate_dataset(
    device: DeviceSpec,
    op: str | OpSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], object] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] | None = None,
    batched: bool = True,
) -> Dataset:
    """Benchmark ``n`` random legal kernels of ``op`` on the simulated device.

    Everything op-specific — the shape sampler, the tuning space behind the
    generative model, legality, the simulator benchmark and the feature
    encoding — comes from the op's :class:`~repro.core.ops.OpSpec`.

    The default path is *sample shapes, then batch-evaluate*: all ``n``
    shapes are drawn first, configs are batch-rejection-sampled per dtype
    through the op's vectorized legality mask, and one
    ``OpSpec.benchmark_pairs`` call prices the whole batch through the
    array-core simulator.  ``batched=False`` runs the legacy per-sample
    loop instead, whose RNG consumption order (shape, then config, per
    sample) is preserved exactly — a fixed seed reproduces pre-batching
    datasets bit for bit.  Both paths are deterministic for a fixed seed;
    they draw the same distribution but consume the RNG in different
    orders, so their datasets differ sample-by-sample.
    """
    spec = get_op(op)
    dtypes = spec.default_dtypes if dtypes is None else tuple(dtypes)
    shape_sampler = shape_sampler or spec.make_shape_sampler(dtypes)
    samplers = samplers or fit_generative_models(
        device, op=spec, dtypes=dtypes, rng=rng
    )
    feature_names = spec.feature_names
    if not batched:
        return _generate_dataset_loop(
            device, spec, n, rng,
            samplers=samplers, shape_sampler=shape_sampler,
            sigma=sigma, reps=reps,
        )

    shapes = [shape_sampler(rng) for _ in range(n)]
    configs: list = [None] * n
    by_dtype: dict[DType, list[int]] = {}
    for i, shape in enumerate(shapes):
        by_dtype.setdefault(shape.dtype, []).append(i)
    for dt, idxs in by_dtype.items():
        cfgs = _sample_legal_configs(
            device, spec, samplers[dt], dt, len(idxs), rng
        )
        for i, cfg in zip(idxs, cfgs):
            configs[i] = cfg

    if n == 0:
        return Dataset(
            np.empty((0, len(feature_names))), np.empty(0), feature_names
        )
    tflops = spec.benchmark_pairs(
        device, configs, shapes, reps=reps, sigma=sigma
    )
    bad = np.isnan(tflops)
    if bad.any():
        raise RuntimeError(
            f"{int(bad.sum())} sampled configs were illegal under the "
            "batched simulator — legality mask and simulator disagree"
        )
    xs = np.concatenate(
        [
            spec.config_matrix(configs, False),
            np.stack([spec.shape_vector(s, False) for s in shapes]),
        ],
        axis=1,
    )
    ys = np.log2(np.maximum(tflops, 1e-6))
    return Dataset(xs, ys, feature_names)


def _generate_dataset_loop(
    device: DeviceSpec,
    spec: OpSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel],
    shape_sampler: Callable[[np.random.Generator], object],
    sigma: float,
    reps: int,
) -> Dataset:
    """Legacy per-sample path: one shape, one config, one benchmark per trip.

    Kept as the reference the batched path is benchmarked against, and for
    samplers without a batch API.  The acceptance closures are built once
    per dtype up front rather than once per sample.
    """
    feature_names = spec.feature_names
    accepts: dict[DType, Callable] = {}
    xs = np.empty((n, len(feature_names)))
    ys = np.empty(n)
    for i in range(n):
        shape = shape_sampler(rng)
        accept = accepts.get(shape.dtype)
        if accept is None:
            accept = accepts.setdefault(
                shape.dtype, _make_accept(device, spec, shape.dtype)
            )
        point = samplers[shape.dtype].sample_legal(accept, rng)
        cfg = spec.config_from_point(point)
        tflops = spec.benchmark(device, cfg, shape, reps=reps, sigma=sigma)
        xs[i] = spec.encode(cfg, shape, log=False)
        ys[i] = np.log2(max(tflops, 1e-6))
    return Dataset(xs, ys, feature_names)


def generate_gemm_dataset(
    device: DeviceSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], GemmShape] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16, DType.FP64),
    batched: bool = True,
) -> Dataset:
    """Benchmark ``n`` random legal GEMM kernels on the simulated device."""
    return generate_dataset(
        device, "gemm", n, rng,
        samplers=samplers, shape_sampler=shape_sampler,
        sigma=sigma, reps=reps, dtypes=dtypes, batched=batched,
    )


def generate_conv_dataset(
    device: DeviceSpec,
    n: int,
    rng: np.random.Generator,
    *,
    samplers: dict[DType, CategoricalModel] | None = None,
    shape_sampler: Callable[[np.random.Generator], ConvShape] | None = None,
    sigma: float = DEFAULT_SIGMA,
    reps: int = 1,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16),
    batched: bool = True,
) -> Dataset:
    """Benchmark ``n`` random legal CONV kernels on the simulated device."""
    return generate_dataset(
        device, "conv", n, rng,
        samplers=samplers, shape_sampler=shape_sampler,
        sigma=sigma, reps=reps, dtypes=dtypes, batched=batched,
    )
