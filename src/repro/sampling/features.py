"""Feature encoding for the regression model (§5.2).

A sample x concatenates the tuning parameters with the input parameters —
for GEMM that is 10 + 6 = 16 components, matching the paper's
``X ⊂ N^16``.  The paper's key observation is that performance depends on
*products, ratios and maxima* of these quantities, which an MLP models
poorly on raw inputs; taking ``a_{-1} = log(x)`` turns products into sums
and "greatly improved the performance of our system".  ``log=False``
reproduces the paper's no-log ablation (Table 2, bracketed column).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, GemmShape

GEMM_CONFIG_FEATURES = GemmConfig.param_names()          # 10
GEMM_SHAPE_FEATURES = ("m", "n", "k", "dtype_bytes", "ta", "tb")  # 6
GEMM_FEATURES = GEMM_CONFIG_FEATURES + GEMM_SHAPE_FEATURES

CONV_CONFIG_FEATURES = ConvConfig.param_names()          # 14
CONV_SHAPE_FEATURES = (
    "n", "c", "h", "w", "k", "r", "s", "npq", "crs", "dtype_bytes",
)  # 10 (npq / crs are the implicit-GEMM extents)
CONV_FEATURES = CONV_CONFIG_FEATURES + CONV_SHAPE_FEATURES

BGEMM_SHAPE_FEATURES = ("batch",) + GEMM_SHAPE_FEATURES  # 7
BGEMM_FEATURES = GEMM_CONFIG_FEATURES + BGEMM_SHAPE_FEATURES


def _log_positive(x: np.ndarray) -> np.ndarray:
    """log2 of positive features; 0/1 flags pass through unchanged."""
    out = x.astype(np.float64, copy=True)
    mask = out > 0
    out[mask] = np.log2(out[mask])
    return out


def config_matrix_from_params(
    params: Mapping[str, np.ndarray],
    feature_names: Sequence[str],
    log: bool = True,
) -> np.ndarray:
    """Config-feature matrix straight from struct-of-arrays columns.

    Bit-identical to ``*_config_matrix`` over the equivalent config
    objects (same float64 conversion, same log transform) without ever
    materializing them — the array-native path of the candidate pipeline.
    """
    raw = np.column_stack(
        [np.asarray(params[n]) for n in feature_names]
    ).astype(np.float64)
    return _log_positive(raw) if log else raw


# ----------------------------------------------------------------------
# GEMM
# ----------------------------------------------------------------------

def gemm_config_matrix(
    configs: Sequence[GemmConfig], log: bool = True
) -> np.ndarray:
    """(n_configs, 10) matrix of tuning-parameter features."""
    raw = np.array(
        [[getattr(c, p) for p in GEMM_CONFIG_FEATURES] for c in configs],
        dtype=np.float64,
    )
    return _log_positive(raw) if log else raw


def gemm_shape_vector(shape: GemmShape, log: bool = True) -> np.ndarray:
    """(6,) vector of input-parameter features.

    The layout flags are encoded as ``1 + flag`` so the log2 transform maps
    them to 0/1 — the raw (training) and log (inference) paths then agree
    after the training-side log, instead of the raw flags collapsing to a
    constant ``log2(1) = 0`` column the model cannot learn from.
    """
    raw = np.array(
        [
            shape.m,
            shape.n,
            shape.k,
            shape.dtype.size,
            1.0 + shape.ta,
            1.0 + shape.tb,
        ],
        dtype=np.float64,
    )
    return _log_positive(raw) if log else raw


def encode_gemm(
    cfg: GemmConfig, shape: GemmShape, log: bool = True
) -> np.ndarray:
    """Full 16-component feature vector for one (config, shape) pair."""
    return np.concatenate(
        [gemm_config_matrix([cfg], log)[0], gemm_shape_vector(shape, log)]
    )


def gemm_design_matrix(
    configs: Sequence[GemmConfig], shape: GemmShape, log: bool = True
) -> np.ndarray:
    """Feature matrix for many configs at one fixed shape.

    This is the runtime-inference layout: input parameters are fixed by the
    user, the model is evaluated over all candidate tuning vectors (§6).
    """
    cfg_part = gemm_config_matrix(configs, log)
    shape_part = np.tile(gemm_shape_vector(shape, log), (len(configs), 1))
    return np.hstack([cfg_part, shape_part])


# ----------------------------------------------------------------------
# CONV
# ----------------------------------------------------------------------

def conv_config_matrix(
    configs: Sequence[ConvConfig], log: bool = True
) -> np.ndarray:
    raw = np.array(
        [[getattr(c, p) for p in CONV_CONFIG_FEATURES] for c in configs],
        dtype=np.float64,
    )
    return _log_positive(raw) if log else raw


def conv_shape_vector(shape: ConvShape, log: bool = True) -> np.ndarray:
    raw = np.array(
        [
            shape.n,
            shape.c,
            shape.h,
            shape.w,
            shape.k,
            shape.r,
            shape.s,
            shape.npq,
            shape.crs,
            shape.dtype.size,
        ],
        dtype=np.float64,
    )
    return _log_positive(raw) if log else raw


def encode_conv(
    cfg: ConvConfig, shape: ConvShape, log: bool = True
) -> np.ndarray:
    return np.concatenate(
        [conv_config_matrix([cfg], log)[0], conv_shape_vector(shape, log)]
    )


def conv_design_matrix(
    configs: Sequence[ConvConfig], shape: ConvShape, log: bool = True
) -> np.ndarray:
    cfg_part = conv_config_matrix(configs, log)
    shape_part = np.tile(conv_shape_vector(shape, log), (len(configs), 1))
    return np.hstack([cfg_part, shape_part])


# ----------------------------------------------------------------------
# Batched GEMM
# ----------------------------------------------------------------------

def bgemm_shape_vector(shape, log: bool = True) -> np.ndarray:
    """(7,) vector: the batch extent prepended to the base GEMM features."""
    batch = np.log2(shape.batch) if log else float(shape.batch)
    return np.concatenate([[batch], gemm_shape_vector(shape.base, log)])
