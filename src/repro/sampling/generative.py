"""The paper's categorical generative model over legal configurations (§4.1).

``p(x in X) = p(x_0) p(x_1) ... p(x_N)`` — each tuning parameter is an
independent categorical variable whose distribution is estimated as the
proportion of accepted values observed during a short uniform-sampling
phase, smoothed by a Dirichlet prior with concentration ``alpha`` (the
paper initializes every count at alpha = 100 so no probability is ever
exactly zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.space import ParamSpace
from repro.sampling.uniform import UniformSampler

#: The paper's Dirichlet concentration ("our implementation uses alpha=100").
PAPER_ALPHA = 100.0


@dataclass
class FitStats:
    """Bookkeeping from the uniform warm-up phase."""

    uniform_draws: int
    accepted: int

    @property
    def uniform_acceptance(self) -> float:
        return self.accepted / self.uniform_draws if self.uniform_draws else 0.0


class CategoricalModel:
    """Independent-marginal generative model fitted from accepted samples."""

    def __init__(
        self,
        space: ParamSpace,
        alpha: float = PAPER_ALPHA,
    ):
        if alpha <= 0:
            raise ValueError("alpha must be positive (counts may never be zero)")
        self._space = space
        self._alpha = alpha
        self._names = space.names
        self._values = {n: space.values(n) for n in self._names}
        self._counts: dict[str, np.ndarray] = {
            n: np.full(len(v), alpha, dtype=np.float64)
            for n, v in self._values.items()
        }
        self.fit_stats: FitStats | None = None

    # ------------------------------------------------------------------
    @property
    def space(self) -> ParamSpace:
        return self._space

    @property
    def alpha(self) -> float:
        return self._alpha

    def probabilities(self, name: str) -> np.ndarray:
        """Posterior-mean marginal distribution of one parameter."""
        counts = self._counts[name]
        return counts / counts.sum()

    # ------------------------------------------------------------------
    def observe(self, point: Mapping[str, int]) -> None:
        """Record one *accepted* configuration."""
        for name in self._names:
            vals = self._values[name]
            self._counts[name][vals.index(point[name])] += 1.0

    def fit(
        self,
        accept: Callable[[Mapping[str, int]], bool],
        rng: np.random.Generator,
        *,
        target_accepted: int = 1000,
        max_draws: int = 2_000_000,
        batch: int = 4096,
    ) -> FitStats:
        """Uniform warm-up: draw until ``target_accepted`` legal samples.

        The paper describes "a short period of uniform sampling"; we cap the
        total effort with ``max_draws`` so an impossibly strict acceptance
        function cannot hang the fit.
        """
        uniform = UniformSampler(self._space, rng)
        accepted = 0
        draws = 0
        while accepted < target_accepted and draws < max_draws:
            for point in uniform.sample_batch(min(batch, max_draws - draws)):
                draws += 1
                if accept(point):
                    accepted += 1
                    self.observe(point)
                    if accepted >= target_accepted:
                        break
        self.fit_stats = FitStats(uniform_draws=draws, accepted=accepted)
        return self.fit_stats

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator | None = None) -> dict[str, int]:
        rng = rng if rng is not None else self._rng_fallback()
        out: dict[str, int] = {}
        for name in self._names:
            p = self.probabilities(name)
            idx = rng.choice(len(p), p=p)
            out[name] = int(self._values[name][idx])
        return out

    def sample_batch(
        self, n: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Draw ``n`` configurations at once, struct-of-arrays.

        Returns one int64 column per parameter (rows are independent draws
        from the factored model) — the shape the vectorized legality masks
        consume.  One ``rng.choice`` call per parameter replaces ``n * N``
        scalar draws, which is what makes batched rejection sampling in
        the dataset generator an order of magnitude faster than per-point
        :meth:`sample_legal`.
        """
        out: dict[str, np.ndarray] = {}
        for name in self._names:
            p = self.probabilities(name)
            idx = rng.choice(len(p), size=n, p=p)
            out[name] = np.asarray(self._values[name], dtype=np.int64)[idx]
        return out

    def sample_legal(
        self,
        accept: Callable[[Mapping[str, int]], bool],
        rng: np.random.Generator,
        max_tries: int = 1000,
    ) -> dict[str, int]:
        """Rejection-sample until ``accept`` admits a draw."""
        for _ in range(max_tries):
            point = self.sample(rng)
            if accept(point):
                return point
        raise RuntimeError(
            f"no legal sample in {max_tries} tries — acceptance collapsed?"
        )

    def log_prob(self, point: Mapping[str, int]) -> float:
        """Log-likelihood of a configuration under the factored model."""
        total = 0.0
        for name in self._names:
            p = self.probabilities(name)
            idx = self._values[name].index(point[name])
            total += float(np.log(p[idx]))
        return total

    def _rng_fallback(self) -> np.random.Generator:
        if not hasattr(self, "_default_rng"):
            self._default_rng = np.random.default_rng(0)
        return self._default_rng

    # Convenience: make the model usable wherever a sampler is expected.
    def __call__(self) -> dict[str, int]:  # pragma: no cover - sugar
        return self.sample()
