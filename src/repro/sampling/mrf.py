"""Pairwise Markov-random-field generative model (paper §9 future work).

The categorical model of §4.1 assumes the tuning parameters independent —
but legality constraints are strongly *joint* (e.g. the thread count is a
product of four parameters).  The paper's conclusion suggests "better
generative modeling techniques (e.g., Markov random field)".

This module implements that extension: a pairwise MRF over the parameter
value-indices whose unary and pairwise potentials are fitted from the same
accepted-sample stream the categorical model uses, sampled with Gibbs
sweeps.  The pairwise terms let the model learn, e.g., that a large block
tile co-occurs with a large thread tile — raising acceptance beyond the
independence ceiling.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping

import numpy as np

from repro.core.space import ParamSpace
from repro.sampling.uniform import UniformSampler


class PairwiseMRF:
    """log p(x) ∝ Σ_i θ_i(x_i) + Σ_{i<j} θ_ij(x_i, x_j), fitted by counting.

    Potentials are smoothed maximum-likelihood estimates from accepted
    samples: ``θ_i = log(count_i + α)`` and
    ``θ_ij = log((count_ij + α) / ((count_i + α)(count_j + α)))`` — the
    pointwise-mutual-information parameterization, which reduces to the
    independent model when parameters are uncorrelated in the data.
    """

    def __init__(self, space: ParamSpace, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self._space = space
        self._alpha = alpha
        self._names = space.names
        self._values = {n: space.values(n) for n in self._names}
        self._card = {n: len(v) for n, v in self._values.items()}
        self._unary = {
            n: np.zeros(self._card[n]) for n in self._names
        }
        self._pair: dict[tuple[str, str], np.ndarray] = {
            (a, b): np.zeros((self._card[a], self._card[b]))
            for a, b in itertools.combinations(self._names, 2)
        }
        self._n_obs = 0

    # ------------------------------------------------------------------
    @property
    def space(self) -> ParamSpace:
        return self._space

    def observe(self, point: Mapping[str, int]) -> None:
        idx = {
            n: self._values[n].index(point[n]) for n in self._names
        }
        for n in self._names:
            self._unary[n][idx[n]] += 1.0
        for (a, b), table in self._pair.items():
            table[idx[a], idx[b]] += 1.0
        self._n_obs += 1

    def fit(
        self,
        accept: Callable[[Mapping[str, int]], bool],
        rng: np.random.Generator,
        *,
        target_accepted: int = 1000,
        max_draws: int = 2_000_000,
        batch: int = 4096,
    ) -> int:
        """Uniform warm-up identical to the categorical model's."""
        uniform = UniformSampler(self._space, rng)
        accepted = 0
        draws = 0
        while accepted < target_accepted and draws < max_draws:
            for point in uniform.sample_batch(min(batch, max_draws - draws)):
                draws += 1
                if accept(point):
                    accepted += 1
                    self.observe(point)
                    if accepted >= target_accepted:
                        break
        return accepted

    # ------------------------------------------------------------------
    def _log_unary(self, name: str) -> np.ndarray:
        return np.log(self._unary[name] + self._alpha)

    def _log_pair(self, a: str, b: str) -> np.ndarray:
        """PMI-style pairwise potential θ_ab (0 under independence)."""
        ca = self._unary[a] + self._alpha
        cb = self._unary[b] + self._alpha
        cab = self._pair[(a, b)] + self._alpha / (
            self._card[a] * self._card[b]
        )
        total = max(self._n_obs, 1)
        joint = cab / cab.sum()
        marg = np.outer(ca / ca.sum(), cb / cb.sum())
        return np.log(joint) - np.log(marg)

    def conditional(
        self, name: str, assignment: Mapping[str, int]
    ) -> np.ndarray:
        """p(x_name | rest) under the fitted potentials."""
        logits = self._log_unary(name).copy()
        for (a, b) in self._pair:
            if a == name and b in assignment:
                jb = self._values[b].index(assignment[b])
                logits += self._log_pair(a, b)[:, jb]
            elif b == name and a in assignment:
                ja = self._values[a].index(assignment[a])
                logits += self._log_pair(a, b)[ja, :]
        logits -= logits.max()
        p = np.exp(logits)
        return p / p.sum()

    def sample(
        self,
        rng: np.random.Generator,
        *,
        sweeps: int = 3,
        init: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        """Gibbs sampling: start from the unary marginals, sweep the
        conditionals a few times."""
        point: dict[str, int] = {}
        if init is not None:
            point.update(init)
        else:
            for n in self._names:
                p = self._unary[n] + self._alpha
                p = p / p.sum()
                point[n] = int(self._values[n][rng.choice(len(p), p=p)])
        for _ in range(sweeps):
            for n in self._names:
                others = {k: v for k, v in point.items() if k != n}
                p = self.conditional(n, others)
                point[n] = int(self._values[n][rng.choice(len(p), p=p)])
        return point

    def sample_legal(
        self,
        accept: Callable[[Mapping[str, int]], bool],
        rng: np.random.Generator,
        max_tries: int = 1000,
    ) -> dict[str, int]:
        for _ in range(max_tries):
            point = self.sample(rng)
            if accept(point):
                return point
        raise RuntimeError("no legal sample — MRF acceptance collapsed?")
