"""Uniform sampling over X̂ — the naive baseline of paper Table 1."""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.space import ParamSpace


class UniformSampler:
    """Draws each tuning parameter independently and uniformly."""

    def __init__(self, space: ParamSpace, rng: np.random.Generator):
        self._space = space
        self._rng = rng
        self._names = space.names
        self._values = [space.values(n) for n in self._names]

    @property
    def space(self) -> ParamSpace:
        return self._space

    def sample(self) -> dict[str, int]:
        return {
            name: int(vals[self._rng.integers(len(vals))])
            for name, vals in zip(self._names, self._values)
        }

    def sample_batch(self, n: int) -> list[dict[str, int]]:
        """Vectorized batch draw (one RNG call per parameter)."""
        cols = {
            name: self._rng.integers(len(vals), size=n)
            for name, vals in zip(self._names, self._values)
        }
        return [
            {
                name: int(self._space.values(name)[cols[name][i]])
                for name in self._names
            }
            for i in range(n)
        ]


def acceptance_rate(
    sampler,
    accept: Callable[[Mapping[str, int]], bool],
    n: int,
) -> float:
    """Fraction of ``n`` draws from ``sampler`` that ``accept`` admits.

    Works for both :class:`UniformSampler` and the categorical generative
    model; this is the quantity paper Table 1 reports.
    """
    hits = 0
    for _ in range(n):
        if accept(sampler.sample()):
            hits += 1
    return hits / n
