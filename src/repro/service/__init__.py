"""Service layer: the concurrent front door over the tuning pipeline.

:class:`~repro.service.engine.Engine` owns model loading, two-level
result caching and batched dispatch for every registered (device, op)
tuner, so clients issue :class:`~repro.service.engine.KernelRequest`
objects instead of hand-wiring ``Isaac`` + ``ExhaustiveSearch`` +
``ProfileCache`` per pair.
"""

from repro.service.engine import (
    Engine,
    EngineError,
    EngineStats,
    KernelReply,
    KernelRequest,
)

__all__ = [
    "Engine",
    "EngineError",
    "EngineStats",
    "KernelReply",
    "KernelRequest",
]
