"""Service layer: the concurrent front doors over the tuning pipeline.

:class:`~repro.service.engine.Engine` owns model loading, two-level
result caching and batched dispatch for every registered (device, op)
tuner, so clients issue :class:`~repro.service.engine.KernelRequest`
objects instead of hand-wiring ``Isaac`` + ``ExhaustiveSearch`` +
``ProfileCache`` per pair.

:class:`~repro.service.async_engine.AsyncEngine` is the asyncio front
door on top: per-shard time-windowed micro-batching, request coalescing,
admission control (:class:`~repro.service.async_engine.BackpressureError`)
and graceful drain — for serving independent request streams at rate.

:mod:`~repro.service.faults` is the chaos plane: deterministic seeded
fault plans (:class:`~repro.service.faults.FaultPlan`) injected at named
sites across the stack, for fault-tolerance tests that replay exactly.

:mod:`~repro.service.slo` is the config compiler: a
:class:`~repro.service.slo.ServingSLO` (five adopter-facing inputs)
compiles into a :class:`~repro.service.slo.ServingPlan` carrying every
derived serving knob, with guard rails that reject infeasible specs
before boot via an aggregated
:class:`~repro.service.slo.SLOConfigError` report.
"""

from repro.service.async_engine import (
    AsyncEngine,
    AsyncEngineStats,
    BackpressureError,
    ShardStats,
)
from repro.service.engine import (
    DeadlineExceeded,
    Engine,
    EngineError,
    EngineStats,
    KernelReply,
    KernelRequest,
)
from repro.service.faults import FaultPlan, FaultSpec, InjectedFault
from repro.service.slo import (
    ServingPlan,
    ServingSLO,
    SLOConfigError,
    WorkloadProfile,
)

__all__ = [
    "AsyncEngine",
    "AsyncEngineStats",
    "BackpressureError",
    "DeadlineExceeded",
    "Engine",
    "EngineError",
    "EngineStats",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KernelReply",
    "KernelRequest",
    "SLOConfigError",
    "ServingPlan",
    "ServingSLO",
    "ShardStats",
    "WorkloadProfile",
]
