"""AsyncEngine: time-windowed dynamic micro-batching over the Engine.

The sync :class:`~repro.service.engine.Engine` already batches requests —
but only the ones a single caller hands it together in one
:meth:`~repro.service.engine.Engine.query_many` call.  A service does not
see traffic that way: requests arrive one at a time from thousands of
independent clients, and mapping each onto a thread means every miss pays
a *full* model pass while the per-tuner lock serializes them anyway.

:class:`AsyncEngine` is the asyncio front door that turns independent
request streams back into batches:

* **sharding** — misses are routed to a per-(device, op, dtype, k, reps)
  shard, the exact grouping :meth:`Isaac.top_k_batch` can answer in one
  model pass;
* **dynamic micro-batching** — each shard's worker task accumulates
  requests for a configurable window (default 2 ms) or until a maximum
  batch size, then flushes the whole batch through the engine's batched
  search path on a worker thread.  Under load, batches fill instantly;
  when idle, a lone request waits at most one window;
* **coalescing** — duplicate in-flight shapes attach to the leader's
  future before they ever occupy queue space (on top of the engine's own
  thread-level dedup);
* **admission control** — a global pending bound plus bounded per-shard
  queues; when the service is saturated, submits fail fast with
  :class:`BackpressureError` instead of growing an unbounded backlog;
* **graceful drain** — :meth:`aclose` stops admissions, lets every shard
  flush what it already accepted (those batches are marked ``drain``),
  then flushes the engine's caches to disk;
* **stats** — per-shard queue depth, batch-size histogram, flush-reason
  counts and a p50/p95/max latency reservoir (:meth:`stats`).

Answers are *config-identical* to ``Engine.query`` and to
``Isaac.best_kernel``: the front door only changes when and with whom a
request reaches the search, never what the search returns
(``tests/test_engine_equivalence.py`` holds that bar, and
``benchmarks/bench_serving_async.py`` holds the >=3x throughput bar at
concurrency 64).

Async use (servers, tests)::

    async with AsyncEngine.open("models/") as engine:
        reply = await engine.query(KernelRequest("gemm", shape))

Sync use (harness, legacy callers) — a background event-loop thread::

    engine = AsyncEngine(sync_engine).start()
    replies = engine.query_many_sync(requests)
    engine.close()
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from repro.core.ops import OpSpec
from repro.inference.topk import RankedKernel
from repro.service.engine import (
    DeadlineExceeded,
    Engine,
    EngineError,
    KernelReply,
    KernelRequest,
)
from repro.service.faults import InjectedFault, inject


class BackpressureError(EngineError):
    """The service is saturated; the request was refused, not queued.

    Raised by :meth:`AsyncEngine.query` when the global pending bound or
    the target shard's queue is full.  Clients should treat it like HTTP
    503: back off and retry, or shed the request.

    ``transient`` distinguishes load (queues full — draining, retry
    after a window) from configuration (the shard bound hit — permanent
    until the service is reconfigured; retrying cannot help).
    """

    def __init__(self, message: str, *, transient: bool = True):
        super().__init__(message)
        self.transient = transient


#: Sentinel a draining shard worker stops on (after flushing the backlog).
_CLOSE = object()


def _consume_result(future: asyncio.Future) -> None:
    """Mark an abandoned future's outcome as retrieved.

    A client whose deadline expired stops waiting, but the search (and
    its :meth:`_settle`) still completes; without this callback a failed
    settle would log "exception was never retrieved" noise.
    """
    if not future.cancelled():
        future.exception()


class _CircuitBreaker:
    """Closed / open / half-open gate in front of the worker pool.

    ``record_failure`` counts *consecutive* pool-RPC failures; at
    ``threshold`` the breaker trips open and :meth:`allow` refuses the
    pool, sending every flush down the in-process path (answers stay
    config-identical — only placement changes).  After ``reset_s`` the
    next flush becomes a half-open probe: exactly one flush is allowed
    through; its success closes the breaker (a *recovery*), its failure
    re-opens it.  Thread-safe — flushes record from executor threads.
    """

    def __init__(self, threshold: int, reset_s: float):
        self._threshold = threshold
        self._reset_s = reset_s
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        now = time.monotonic()
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if now - self._opened_at >= self._reset_s:
                    self._state = "half-open"
                    self._probing = True
                    return True
                return False
            # half-open: one probe at a time.
            if not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == "half-open":
                self.recoveries += 1
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        now = time.monotonic()
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self._threshold:
                if self._state != "open":
                    self.trips += 1
                self._state = "open"
                self._opened_at = now
                self._failures = 0
                self._probing = False

    def abandon_probe(self) -> None:
        """A probe flush that never reached the pool (all cache hits /
        fallbacks) proves nothing: return to open and wait again."""
        now = time.monotonic()
        with self._lock:
            if self._state == "half-open" and self._probing:
                self._state = "open"
                self._opened_at = now
                self._probing = False


@dataclass
class _Pending:
    """One admitted cache miss waiting for its shard to flush."""

    request: KernelRequest
    key: str
    future: asyncio.Future
    t_submit: float
    deadline: float | None = None


class _Shard:
    """One (device, op, dtype, k, reps) queue + its worker task + stats.

    ``lock`` guards the stats containers only: mutation happens on the
    event loop, but :meth:`AsyncEngine.stats` may read from any thread
    (including after a shutdown race), so reservoir/counter access is
    locked rather than relying on loop affinity.
    """

    __slots__ = (
        "key", "queue", "worker", "lock", "submitted", "batches",
        "reasons", "sizes", "latencies", "queue_waits", "search_times",
    )

    def __init__(self, key: tuple, maxsize: int):
        self.key = key
        self.queue: asyncio.Queue = asyncio.Queue(maxsize)
        self.worker: asyncio.Task | None = None
        self.lock = threading.Lock()
        self.submitted = 0
        self.batches = 0
        self.reasons = Counter()      # "window" | "full" | "drain"
        self.sizes = Counter()        # batch size -> count
        self.latencies: deque[float] = deque(maxlen=4096)
        # The miss latency split: time spent waiting for the batch to
        # form vs. time inside the dispatched search itself.
        self.queue_waits: deque[float] = deque(maxlen=4096)
        self.search_times: deque[float] = deque(maxlen=4096)


def _percentile_ms(sorted_s: list[float], q: float) -> float:
    # Fresh-engine contract: empty reservoirs report 0.0, matching the
    # EngineStats hit-ratio properties (never NaN, never a div-by-zero).
    if not sorted_s:
        return 0.0
    return sorted_s[int(q * (len(sorted_s) - 1))] * 1e3


def _ring_index(key: object, n: int) -> int:
    """Deterministic slot for ``key`` among ``n`` survivors (re-homing)."""
    import hashlib

    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n


@dataclass(frozen=True)
class ShardStats:
    """One shard's counters (a point-in-time snapshot)."""

    shard: tuple                 # (device, op, dtype, k, reps)
    queue_depth: int
    submitted: int
    batches: int
    flush_reasons: dict[str, int]
    batch_sizes: dict[int, int]
    p50_ms: float
    p95_ms: float
    max_ms: float

    @property
    def mean_batch(self) -> float:
        n = sum(self.batch_sizes.values())
        if n == 0:
            # Same fresh-engine contract as the hit-ratio properties:
            # no traffic reports 0.0, not NaN.
            return 0.0
        return sum(s * c for s, c in self.batch_sizes.items()) / n


@dataclass(frozen=True)
class AsyncEngineStats:
    """Service-level counters plus one :class:`ShardStats` per shard.

    Latency is reported **split**: ``hit_*`` covers requests answered
    inline from the caches (microseconds), ``miss_*`` covers everything
    that waited for a search (leaders and coalesced waiters).  A single
    merged reservoir would report the search latency as if every caller
    paid it the moment the hit ratio is high.  Misses split once more —
    ``miss_queue_p50_ms`` (batching-window wait) vs ``miss_search_p50_ms``
    (the dispatched search itself) — so a fat window and a slow search
    are distinguishable from the outside.

    The ``cascade_*`` counters come from the underlying engine (summed
    over its hot tuners): shortlist-path searches, exhaustive ones, and
    query-time safety fallbacks.
    """

    submitted: int
    cache_hits: int
    coalesced: int
    rejected: int
    batch_failures: int
    pending: int
    workers: int
    worker_flushes: int
    worker_fallbacks: int
    hit_p50_ms: float
    hit_p95_ms: float
    miss_p50_ms: float
    miss_p95_ms: float
    miss_queue_p50_ms: float
    miss_search_p50_ms: float
    cascade_searches: int
    exhaustive_searches: int
    cascade_fallbacks: int
    model_versions: dict[int, int]
    online_updates: int
    shards: tuple[ShardStats, ...]
    deadlines_exceeded: int = 0
    deadline_shed: int = 0
    breaker_state: str = "closed"
    breaker_trips: int = 0
    breaker_recoveries: int = 0

    def describe(self) -> str:
        lines = [
            f"submitted={self.submitted} cache_hits={self.cache_hits} "
            f"coalesced={self.coalesced} rejected={self.rejected} "
            f"pending={self.pending}",
            f"  hit p50={self.hit_p50_ms:.3f}ms "
            f"p95={self.hit_p95_ms:.3f}ms | "
            f"miss p50={self.miss_p50_ms:.1f}ms "
            f"p95={self.miss_p95_ms:.1f}ms "
            f"(queue p50={self.miss_queue_p50_ms:.1f}ms, "
            f"search p50={self.miss_search_p50_ms:.1f}ms)",
        ]
        if self.cascade_searches or self.cascade_fallbacks:
            lines.append(
                f"  cascade searches={self.cascade_searches} "
                f"exhaustive={self.exhaustive_searches} "
                f"fallbacks={self.cascade_fallbacks}"
            )
        if self.deadlines_exceeded or self.deadline_shed:
            lines.append(
                f"  deadlines exceeded={self.deadlines_exceeded} "
                f"shed={self.deadline_shed}"
            )
        if self.workers:
            lines.append(
                f"  workers={self.workers} "
                f"worker_flushes={self.worker_flushes} "
                f"worker_fallbacks={self.worker_fallbacks} "
                f"breaker={self.breaker_state} "
                f"trips={self.breaker_trips} "
                f"recoveries={self.breaker_recoveries}"
            )
        if self.model_versions:
            by_version = " ".join(
                f"v{v}={n}" for v, n in sorted(self.model_versions.items())
            )
            lines.append(
                f"  online updates={self.online_updates} "
                f"searches by model version: {by_version}"
            )
        for s in self.shards:
            dev, op, dtype, k, reps = s.shard
            lines.append(
                f"  [{op}/{dtype} k={k} reps={reps} @ {dev}] "
                f"depth={s.queue_depth} batches={s.batches} "
                f"mean_batch={s.mean_batch:.1f} "
                f"reasons={dict(s.flush_reasons)} "
                f"p50={s.p50_ms:.1f}ms p95={s.p95_ms:.1f}ms "
                f"max={s.max_ms:.1f}ms"
            )
        return "\n".join(lines)


class AsyncEngine:
    """Asyncio front door with per-shard dynamic micro-batching.

    Parameters
    ----------
    engine:
        The sync :class:`Engine` doing the actual serving.  ``None``
        builds a private one from ``engine_kwargs`` (then owned: closed
        by :meth:`aclose`).  Passing an engine you constructed leaves its
        lifetime to you unless ``own_engine=True``.
    window_ms:
        How long the first request of a batch waits for company.  ``0``
        selects the explicit immediate-flush mode: each batch is
        whatever is already queued when its first request is picked up
        (coalescing still applies), no flush timer is ever armed, and
        an idle shard parks on its queue instead of spinning.
    max_batch:
        Flush early once a batch reaches this size.
    max_pending:
        Global bound on admitted-but-unanswered misses; beyond it,
        :meth:`query` raises :class:`BackpressureError`.
    max_queue:
        Per-shard queue bound (second line of admission control).
    max_shards:
        Bound on live shards.  ``k``/``reps`` are client-controlled
        parts of the shard key, and every shard owns a worker task, a
        queue and a latency reservoir for the engine's lifetime — the
        bound stops a client sweeping those knobs from leaking one of
        each per distinct tuple.  Exceeding it raises a *non-transient*
        :class:`BackpressureError`.
    max_workers:
        Threads flushing batches (defaults to one per CPU up to 4).
        Distinct shards flush concurrently; one shard flushes one batch
        at a time (the per-tuner lock would serialize it anyway).
    workers:
        Worker *processes* for the sharded serving tier.  ``0`` (the
        default) keeps every flush in-process; ``N >= 1`` boots a
        :class:`~repro.service.worker_pool.WorkerPool` (lazily, on the
        first miss flush, or eagerly via :meth:`start_workers`) and
        executes miss searches there — each flush stripes its request
        keys across the pool's consistent-hash ring, so even a single
        hot shard fans out over every worker.  The parent keeps the
        caches authoritative: only misses ship, results write back
        through :meth:`Engine.store_search_result`.  Worker failures
        fall back to the in-process path, so answers (and their
        config-identity to ``Engine.query``) never depend on pool
        health.
    worker_timeout_s:
        Per-RPC reply deadline for the worker tier (pool
        ``reply_timeout_s``).  A hung-but-alive worker is detected when
        its reply misses this deadline, killed, respawned from the same
        shared segment and the flush replayed.  ``None`` (default)
        keeps the crash-only detection.
    worker_heartbeat_s:
        Watchdog ping period for the worker tier; ``None`` disables.
    breaker_threshold:
        Consecutive pool-RPC failures before the circuit breaker trips
        open and every flush falls back in-process.
    breaker_reset_s:
        Seconds an open breaker waits before letting one half-open
        probe flush test the pool again (success re-closes it).
    """

    def __init__(
        self,
        engine: Engine | None = None,
        *,
        window_ms: float = 2.0,
        max_batch: int = 32,
        max_pending: int = 1024,
        max_queue: int = 256,
        max_shards: int = 64,
        max_workers: int | None = None,
        workers: int = 0,
        worker_timeout_s: float | None = None,
        worker_heartbeat_s: float | None = None,
        breaker_threshold: int = 8,
        breaker_reset_s: float = 30.0,
        own_engine: bool | None = None,
        **engine_kwargs,
    ):
        if engine is None:
            engine = Engine(**engine_kwargs)
            own_engine = True if own_engine is None else own_engine
        elif engine_kwargs:
            raise TypeError(
                "engine_kwargs are only accepted when AsyncEngine builds "
                f"its own Engine, got {sorted(engine_kwargs)}"
            )
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_pending <= 0:
            raise ValueError(
                f"max_pending must be positive, got {max_pending}"
            )
        if max_queue <= 0:
            # asyncio.Queue(0) means *unbounded*; refuse rather than
            # silently disable the per-shard admission bound.
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if max_shards <= 0:
            raise ValueError(
                f"max_shards must be positive, got {max_shards}"
            )
        if max_batch > max_pending:
            raise ValueError(
                f"max_batch ({max_batch}) must not exceed max_pending "
                f"({max_pending}): a full batch could never be admitted"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1 when given, got {max_workers}"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if worker_timeout_s is not None and worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be positive, got {worker_timeout_s}"
            )
        if worker_heartbeat_s is not None and worker_heartbeat_s <= 0:
            raise ValueError(
                f"worker_heartbeat_s must be positive, got "
                f"{worker_heartbeat_s}"
            )
        if breaker_threshold <= 0:
            raise ValueError(
                f"breaker_threshold must be positive, got {breaker_threshold}"
            )
        if breaker_reset_s <= 0:
            raise ValueError(
                f"breaker_reset_s must be positive, got {breaker_reset_s}"
            )
        self._engine = engine
        self._own_engine = bool(own_engine)
        self._window_s = window_ms / 1e3
        self._max_batch = max_batch
        self._max_pending = max_pending
        self._max_queue = max_queue
        self._max_shards = max_shards
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        #: the compiled ServingPlan when built via from_slo, else None.
        self._plan = None

        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._shards: dict[tuple, _Shard] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending = 0
        self._closed = False
        self._drained = False

        self._n_workers = workers
        self._pool = None
        self._pool_lock = threading.Lock()
        self._worker_timeout_s = worker_timeout_s
        self._worker_heartbeat_s = worker_heartbeat_s
        self._breaker = _CircuitBreaker(breaker_threshold, breaker_reset_s)

        #: the background fine-tune driver (created on loop bind when
        #: the engine has an online learner configured).
        self._online_task: asyncio.Task | None = None
        self._version_counts: Counter[int] = Counter()

        # Hits are answered inline and misses via shard reservoirs; the
        # split keeps a cache-dominated workload from reporting the
        # (huge) search latency as if every caller paid it.
        self._lat_lock = threading.Lock()
        self._hit_latencies: deque[float] = deque(maxlen=4096)
        self._coalesced_latencies: deque[float] = deque(maxlen=4096)

        self._n_submitted = 0
        self._n_cache_hits = 0
        self._n_coalesced = 0
        self._n_rejected = 0
        self._n_batch_failures = 0
        self._n_worker_flushes = 0
        self._n_worker_fallbacks = 0
        self._n_deadlines = 0
        self._n_deadline_shed = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        model_dir: str | Path,
        *,
        window_ms: float = 2.0,
        max_batch: int = 32,
        max_pending: int = 1024,
        max_queue: int = 256,
        max_shards: int = 64,
        max_workers: int | None = None,
        workers: int = 0,
        worker_timeout_s: float | None = None,
        worker_heartbeat_s: float | None = None,
        breaker_threshold: int = 8,
        breaker_reset_s: float = 30.0,
        **engine_kwargs,
    ) -> "AsyncEngine":
        """An owned front door over ``Engine.open(model_dir)``."""
        return cls(
            Engine.open(model_dir, **engine_kwargs),
            window_ms=window_ms,
            max_batch=max_batch,
            max_pending=max_pending,
            max_queue=max_queue,
            max_shards=max_shards,
            max_workers=max_workers,
            workers=workers,
            worker_timeout_s=worker_timeout_s,
            worker_heartbeat_s=worker_heartbeat_s,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            own_engine=True,
        )

    @classmethod
    def from_slo(
        cls,
        source: "Engine | str | Path",
        slo,
        **engine_kwargs,
    ) -> "AsyncEngine":
        """Boot a fully derived configuration from a :class:`ServingSLO`.

        ``source`` is either a model directory (an owned ``Engine`` is
        opened with the plan's cache/cascade settings, plus any extra
        ``engine_kwargs``) or an already-built ``Engine`` (the caller is
        responsible for sizing it; only ``own_engine`` is accepted as a
        keyword then).  ``slo`` may be a ``ServingSLO`` -- compiled
        here, so an infeasible spec fails before anything boots -- or an
        already-compiled ``ServingPlan``.
        """
        from repro.service.slo import ServingPlan, ServingSLO

        if isinstance(slo, ServingSLO):
            plan = slo.compile()
        elif isinstance(slo, ServingPlan):
            plan = slo
        else:
            raise TypeError(
                f"expected ServingSLO or ServingPlan, got {type(slo)!r}"
            )
        if isinstance(source, Engine):
            own = bool(engine_kwargs.pop("own_engine", False))
            if engine_kwargs:
                raise TypeError(
                    "engine_kwargs are only accepted when from_slo opens "
                    f"its own Engine, got {sorted(engine_kwargs)}"
                )
            engine = cls(source, own_engine=own, **plan.async_kwargs())
        else:
            inner = Engine.open(
                source, **{**plan.engine_kwargs(), **engine_kwargs}
            )
            engine = cls(inner, own_engine=True, **plan.async_kwargs())
        engine._plan = plan
        return engine

    @property
    def plan(self):
        """The compiled ``ServingPlan`` when built via ``from_slo``."""
        return self._plan

    @property
    def engine(self) -> Engine:
        """The sync engine underneath (model store, caches, stats)."""
        return self._engine

    # Thin delegations so harness code can treat either front door alike.
    def devices(self) -> tuple[str, ...]:
        return self._engine.devices()

    def ops(self, device: str | None = None) -> tuple[str, ...]:
        return self._engine.ops(device)

    def op_for_shape(self, shape: Any, *, device: str | None = None) -> str:
        return self._engine.op_for_shape(shape, device=device)

    # ------------------------------------------------------------------
    # The async serving path
    # ------------------------------------------------------------------
    async def query(self, request: KernelRequest) -> KernelReply:
        """Answer one request: cache -> coalesce -> shard micro-batch.

        Cache hits are answered inline on the event loop (no thread hop,
        no queueing).  Misses join their shard's current batch; duplicate
        in-flight shapes await the leader's future.  Raises
        :class:`BackpressureError` when saturated.
        """
        if self._closed:
            raise EngineError("async engine is closed")
        loop = self._bind_loop()
        t0 = loop.time()
        try:
            request, spec, key = self._engine.resolve(request)
        except DeadlineExceeded:
            # Admission check: a non-positive budget is dead on arrival.
            self._n_deadlines += 1
            raise
        deadline = None
        if request.deadline_ms is not None:
            deadline = t0 + request.deadline_ms / 1e3
        self._n_submitted += 1

        reply = self._engine.probe_cache(request, spec, key)
        if reply is not None:
            self._n_cache_hits += 1
            with self._lat_lock:
                self._hit_latencies.append(loop.time() - t0)
            return reply

        leader = self._inflight.get(key)
        if leader is not None:
            self._n_coalesced += 1
            reply = await self._await_reply(leader, deadline, request,
                                            own=False)
            # A coalesced waiter paid (part of) the leader's search, so
            # its wait belongs on the miss side of the latency split.
            with self._lat_lock:
                self._coalesced_latencies.append(loop.time() - t0)
            # The leader's reply carries the leader's request envelope.
            return replace(reply, request=request)

        if self._pending >= self._max_pending:
            self._n_rejected += 1
            raise BackpressureError(
                f"{self._pending} requests pending (bound "
                f"{self._max_pending}); request refused"
            )
        future: asyncio.Future = loop.create_future()
        shard = self._shard_for(request, spec)
        item = _Pending(request, key, future, loop.time(), deadline)
        try:
            shard.queue.put_nowait(item)
        except asyncio.QueueFull:
            self._n_rejected += 1
            raise BackpressureError(
                f"shard {shard.key} queue full "
                f"({shard.queue.maxsize} deep); request refused"
            ) from None
        self._inflight[key] = future
        self._pending += 1
        shard.submitted += 1
        return await self._await_reply(future, deadline, request, own=True)

    async def _await_reply(
        self,
        future: asyncio.Future,
        deadline: float | None,
        request: KernelRequest,
        *,
        own: bool,
    ) -> KernelReply:
        """Await a (shielded) reply future within the request's deadline.

        The shield matters twice over: a coalesced waiter timing out
        must not cancel the leader's future, and a leader timing out
        must not cancel the search — the flush still completes, settles
        the future and warms the cache for the next request.  ``own``
        marks the future this caller created (nobody else will read it,
        so its eventual outcome is explicitly consumed).
        """
        if deadline is None:
            return await asyncio.shield(future)
        remaining = deadline - self._loop.time()
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), max(0.0, remaining)
            )
        except asyncio.TimeoutError:
            self._n_deadlines += 1
            if own:
                future.add_done_callback(_consume_result)
            raise DeadlineExceeded(
                f"deadline_ms={request.deadline_ms} expired while waiting "
                "for the search"
            ) from None

    async def query_many(
        self, requests: Sequence[KernelRequest]
    ) -> list[KernelReply]:
        """Concurrent :meth:`query` for every request; replies align.

        A batch API: callers asked for every answer, so submissions that
        hit admission control wait one batching window and retry instead
        of failing the whole batch (matching ``Engine.query_many``,
        which cannot fail that way).  Per-request fail-fast backpressure
        remains :meth:`query`'s contract.
        """

        async def with_retry(request: KernelRequest) -> KernelReply:
            while True:
                try:
                    return await self.query(request)
                except BackpressureError as exc:
                    if not exc.transient:  # shard bound: retry can't help
                        raise
                    await asyncio.sleep(max(self._window_s, 1e-3))

        return list(
            await asyncio.gather(*(with_retry(r) for r in requests))
        )

    # ------------------------------------------------------------------
    # Shards and their workers
    # ------------------------------------------------------------------
    def _shard_for(self, request: KernelRequest, spec: OpSpec) -> _Shard:
        # One shard per batchable unit — KernelRequest.group_key is the
        # same grouping the sync batching planner flushes through one
        # top_k_batch pass, shared so the two can never diverge.
        key = request.group_key()
        shard = self._shards.get(key)
        if shard is None:
            if len(self._shards) >= self._max_shards:
                # k/reps are client-controlled: without a bound, a
                # client sweeping them would leak one worker task +
                # queue + reservoir per distinct tuple, forever.
                self._n_rejected += 1
                raise BackpressureError(
                    f"{len(self._shards)} shards live (bound "
                    f"{self._max_shards}); request for new shard {key} "
                    "refused",
                    transient=False,
                )
            shard = _Shard(key, self._max_queue)
            shard.worker = self._loop.create_task(self._worker(shard))
            self._shards[key] = shard
        return shard

    async def _worker(self, shard: _Shard) -> None:
        """Accumulate one shard's batches and flush them, forever.

        One batch at a time per shard: while a flush runs on its worker
        thread, the event loop keeps admitting requests into the queue,
        so the next batch is already forming.
        """
        loop = self._loop
        immediate = self._window_s <= 0.0
        while True:
            item = await shard.queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            draining = False
            if immediate:
                # Explicit zero-window mode: flush whatever is already
                # queued, without arming a timer.  The only await is the
                # blocking get() above, so an idle shard parks on the
                # queue -- no timer churn and no busy spin.
                while len(batch) < self._max_batch:
                    try:
                        nxt = shard.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is _CLOSE:
                        draining = True
                        break
                    batch.append(nxt)
            else:
                deadline = loop.time() + self._window_s
                while len(batch) < self._max_batch:
                    remaining = deadline - loop.time()
                    try:
                        if remaining <= 0:
                            nxt = shard.queue.get_nowait()
                        else:
                            nxt = await asyncio.wait_for(
                                shard.queue.get(), remaining
                            )
                    except (asyncio.QueueEmpty, asyncio.TimeoutError):
                        break
                    if nxt is _CLOSE:
                        draining = True
                        break
                    batch.append(nxt)
            if draining:
                # Nothing can sit behind the sentinel: aclose() enqueues
                # it only after admissions stop, so consuming it means
                # this batch is the shard's last.
                reason = "drain"
            elif len(batch) >= self._max_batch:
                reason = "full"
            elif immediate:
                reason = "immediate"
            else:
                reason = "window"
            batch = self._shed_expired(shard, batch)
            if batch:
                await self._flush(shard, batch, reason)
            if draining:
                return

    def _shed_expired(
        self, shard: _Shard, batch: list[_Pending]
    ) -> list[_Pending]:
        """Drop batch members whose deadline already passed.

        Queue shedding, not just client-side timeouts: an expired
        request would burn a worker's search budget on an answer nobody
        is waiting for, and in a deep queue that work delays every
        live request behind it.
        """
        now = self._loop.time()
        kept: list[_Pending] = []
        for p in batch:
            if p.deadline is not None and now >= p.deadline:
                self._n_deadline_shed += 1
                self._settle(
                    shard, p, None,
                    DeadlineExceeded(
                        f"deadline_ms={p.request.deadline_ms} expired in "
                        "the shard queue before the flush"
                    ),
                )
            else:
                kept.append(p)
        return kept

    async def _flush(
        self, shard: _Shard, batch: list[_Pending], reason: str
    ) -> None:
        """One micro-batch through the engine's batched search path.

        With a worker tier configured, the batch goes to the process
        pool instead (still on an executor thread — the parent side of
        the RPC blocks on pipe futures); any pool-level failure falls
        back to the in-process path below, so worker health can delay an
        answer but never change or lose one.
        """
        loop = self._loop
        requests = [p.request for p in batch]
        t_flush = loop.time()
        try:
            inject("async.flush")
        except InjectedFault as exc:
            # A chaos fault at the flush site settles the whole batch
            # with a typed error; letting it propagate would kill the
            # shard's worker task and deadlock every later request.
            for p in batch:
                self._settle(shard, p, None, exc, t_flush)
            with shard.lock:
                shard.batches += 1
                shard.reasons[reason] += 1
                shard.sizes[len(batch)] += 1
            return
        use_pool = bool(self._n_workers)
        if use_pool and not self._breaker.allow():
            # Breaker open: the pool has been failing; route in-process
            # until a half-open probe proves it healthy again.
            use_pool = False
            self._n_worker_fallbacks += len(batch)
        if use_pool:
            # A live deadline caps how long we wait on worker pipes; the
            # earliest one in the batch governs (plus slack so a reply
            # racing the deadline still lands).
            timeout_s = None
            deadlines = [p.deadline for p in batch if p.deadline is not None]
            if deadlines:
                timeout_s = max(0.05, min(deadlines) - loop.time() + 0.25)
                if self._worker_timeout_s is not None:
                    # The deadline tightens the configured RPC timeout,
                    # never loosens it.
                    timeout_s = min(timeout_s, self._worker_timeout_s)
            try:
                outcomes = await loop.run_in_executor(
                    self._get_executor(),
                    functools.partial(self._pool_flush, requests, timeout_s),
                )
            except Exception:
                # Pool unusable (e.g. boot failure, now disabled):
                # serve this batch in-process like workers=0.
                self._breaker.record_failure()
                self._n_worker_fallbacks += len(batch)
            else:
                for p, (reply, exc) in zip(batch, outcomes):
                    self._settle(shard, p, reply, exc, t_flush)
                with shard.lock:
                    shard.batches += 1
                    shard.reasons[reason] += 1
                    shard.sizes[len(batch)] += 1
                return
        try:
            replies = await loop.run_in_executor(
                self._get_executor(), self._engine.query_many, requests
            )
        except Exception:
            # A poisoned batch (one illegal request) must not take its
            # neighbours down: fall back to per-request resolution —
            # dispatched concurrently, so recovering a big batch does
            # not stall the shard for max_batch serial round-trips —
            # and only the genuinely bad requests fail.
            self._n_batch_failures += 1

            async def recover(p: _Pending):
                try:
                    reply = await loop.run_in_executor(
                        self._get_executor(), self._engine.query,
                        p.request,
                    )
                except Exception as exc:
                    return p, None, exc
                return p, reply, None

            for p, reply, exc in await asyncio.gather(
                *(recover(p) for p in batch)
            ):
                self._settle(shard, p, reply, exc, t_flush)
        else:
            for p, reply in zip(batch, replies):
                self._settle(shard, p, reply, None, t_flush)
        with shard.lock:
            shard.batches += 1
            shard.reasons[reason] += 1
            shard.sizes[len(batch)] += 1

    def _settle(
        self,
        shard: _Shard,
        p: _Pending,
        reply: KernelReply | None,
        exc: BaseException | None,
        t_flush: float | None = None,
    ) -> None:
        if self._inflight.get(p.key) is p.future:
            del self._inflight[p.key]
        self._pending -= 1
        now = self._loop.time()
        with shard.lock:
            shard.latencies.append(now - p.t_submit)
            if t_flush is not None:
                # Split the miss: batching-window wait vs. search time.
                shard.queue_waits.append(max(0.0, t_flush - p.t_submit))
                shard.search_times.append(max(0.0, now - t_flush))
        if reply is not None and reply.source == "search":
            with self._lat_lock:
                self._version_counts[reply.model_version or 0] += 1
        if p.future.done():  # e.g. cancelled by a dying caller
            return
        if exc is not None:
            p.future.set_exception(exc)
        else:
            p.future.set_result(reply)

    # ------------------------------------------------------------------
    # The sharded worker tier (workers >= 1)
    # ------------------------------------------------------------------
    def start_workers(self) -> int:
        """Boot the worker pool now instead of on the first miss flush.

        Returns the number of live worker processes (0 when the tier is
        not configured).  Idempotent; callers that want boot cost out of
        their serving latency (the CLI, benchmarks) call this once
        up front.
        """
        if not self._n_workers:
            return 0
        return len(self._ensure_pool())

    def _ensure_pool(self):
        pool = self._pool
        if pool is not None:
            return pool
        with self._pool_lock:
            if self._pool is None:
                from repro.service.worker_pool import WorkerPool

                try:
                    self._pool = WorkerPool(
                        self._engine,
                        self._n_workers,
                        reply_timeout_s=self._worker_timeout_s,
                        heartbeat_s=self._worker_heartbeat_s,
                    )
                except BaseException:
                    # A boot that cannot succeed (resource limits, bad
                    # state) must not be retried on every flush; degrade
                    # to the in-process path for the engine's lifetime.
                    self._n_workers = 0
                    raise
            return self._pool

    def _pool_flush(
        self,
        requests: Sequence[KernelRequest],
        timeout_s: float | None = None,
    ) -> list[tuple[KernelReply | None, BaseException | None]]:
        """One shard batch through the worker pool (executor thread).

        The parent stays cache-authoritative: each request probes the
        two cache levels here (a racing flush may have stored its key),
        only true misses ship to workers, and every worker result is
        written back through :meth:`Engine.store_search_result`.  Misses
        stripe across the ring *by request cache key*, so one hot shard
        spreads over every worker.  Any per-request worker failure —
        crash after retries, unservable pair, search error — falls back
        to ``Engine.query`` in-process, which re-raises genuine request
        errors with their real tracebacks.
        """
        pool = self._ensure_pool()
        resolved = [self._engine.resolve(r) for r in requests]
        out: list = [None] * len(requests)
        by_worker: dict[int, list[int]] = {}
        alive = [w for w in range(len(pool)) if pool.alive(w)]
        for i, (req, spec, key) in enumerate(resolved):
            reply = self._engine.probe_cache(req, spec, key)
            if reply is not None:
                out[i] = (reply, None)
                continue
            wid = None
            if alive and (req.device, req.op) in pool.pairs:
                wid = pool.route(key)
                if not pool.alive(wid):
                    # Deterministic re-home keeps retries stable.
                    wid = alive[_ring_index(key, len(alive))]
            if wid is None:
                self._n_worker_fallbacks += 1
                out[i] = self._inprocess_one(req)
            else:
                by_worker.setdefault(wid, []).append(i)
        submitted = []
        for wid, idxs in by_worker.items():
            req0 = resolved[idxs[0]][0]
            shapes = [resolved[i][0].shape for i in idxs]
            # One shard per batch => one (device, op, k, reps) per batch.
            submitted.append((idxs, pool.submit_flush(
                wid, req0.device, req0.op, shapes, req0.k, req0.reps,
                timeout_s=timeout_s,
            )))
            self._n_worker_flushes += 1
        if not submitted:
            # A half-open probe that never reached the pool proves
            # nothing; re-open so the next flush probes for real.
            self._breaker.abandon_probe()
        for idxs, future in submitted:
            try:
                results = future.result()
            except Exception:
                self._breaker.record_failure()
                results = [(False, "worker crashed")] * len(idxs)
            else:
                self._breaker.record_success()
            for i, (ok, payload) in zip(idxs, results):
                req = resolved[i][0]
                if not ok:
                    self._n_worker_fallbacks += 1
                    out[i] = self._inprocess_one(req)
                    continue
                cfg, pred, meas, version = payload
                best = RankedKernel(
                    config=cfg, predicted_tflops=pred,
                    measured_tflops=meas, source="reranked",
                    model_version=version,
                )
                try:
                    out[i] = (
                        self._engine.store_search_result(req, best), None
                    )
                except Exception as exc:
                    out[i] = (None, exc)
        return out

    def _inprocess_one(
        self, request: KernelRequest
    ) -> tuple[KernelReply | None, BaseException | None]:
        try:
            return self._engine.query(request), None
        except Exception as exc:
            return None, exc

    def _get_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            import os

            workers = self._max_workers or max(
                self._n_workers + 1, min(4, (os.cpu_count() or 2))
            )
            self._executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-async-engine",
            )
        return self._executor

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            # First use binds the serving loop; under _start_lock so a
            # concurrent start()/auto-start cannot bind a second loop
            # and strand one side's submissions.
            with self._start_lock:
                if self._loop is None:
                    self._loop = loop
        if loop is not self._loop:
            raise EngineError(
                "AsyncEngine is bound to another event loop; create one "
                "front door per loop (or use start() + query_sync)"
            )
        if (
            self._online_task is None
            and not self._closed
            and self._engine.online is not None
        ):
            self._online_task = loop.create_task(self._online_loop())
        return loop

    # ------------------------------------------------------------------
    # The online fine-tune driver (asyncio side)
    # ------------------------------------------------------------------
    async def _online_loop(self) -> None:
        """Drive the engine's online learner from the serving loop.

        Training and hot-swapping run on the executor (they hold the
        tuner locks, never the loop); finished updates propagate to the
        worker tier so workers answer with the same model version the
        parent would.
        """
        learner = self._engine.online
        interval = learner.config.interval_s if learner else None
        poll = min(interval / 2, 1.0) if interval else 0.25
        loop = self._loop
        while not self._closed:
            await asyncio.sleep(poll)
            try:
                await loop.run_in_executor(
                    self._get_executor(), self._run_online_once
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                continue  # serving never depends on fine-tune health

    def _run_online_once(self) -> int:
        """One cadence step (executor thread): train, swap, propagate."""
        updates = self._engine.run_online_updates()
        pool = self._pool
        if updates and pool is not None:
            fits = self._engine.export_fits(
                sorted({(u.device, u.op) for u in updates})
            )
            pool.broadcast_fits(fits)
        return len(updates)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> AsyncEngineStats:
        """A consistent snapshot of service + per-shard counters.

        Safe from any thread: if the serving loop (background bridge or
        caller-owned) is running and we are not on it, the snapshot is
        taken *on* the loop so counters and reservoirs are never read
        mid-update.
        """
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is not loop:
                try:
                    return asyncio.run_coroutine_threadsafe(
                        self._snapshot_async(), loop
                    ).result(timeout=1.0)
                except (FuturesTimeoutError, RuntimeError):
                    # The loop stopped (close() raced us) or is blocked;
                    # the direct read below is still safe — the shard
                    # stats containers are lock-guarded.
                    pass
        return self._snapshot()

    async def _snapshot_async(self) -> AsyncEngineStats:
        return self._snapshot()

    def _snapshot(self) -> AsyncEngineStats:
        shards = []
        miss_all: list[float] = []
        queue_all: list[float] = []
        search_all: list[float] = []
        for shard in list(self._shards.values()):
            with shard.lock:
                lat = sorted(shard.latencies)
                reasons = dict(shard.reasons)
                sizes = dict(shard.sizes)
                batches = shard.batches
                queue_all.extend(shard.queue_waits)
                search_all.extend(shard.search_times)
            miss_all.extend(lat)
            shards.append(ShardStats(
                shard=shard.key,
                queue_depth=shard.queue.qsize(),
                submitted=shard.submitted,
                batches=batches,
                flush_reasons=reasons,
                batch_sizes=sizes,
                p50_ms=_percentile_ms(lat, 0.50),
                p95_ms=_percentile_ms(lat, 0.95),
                max_ms=lat[-1] * 1e3 if lat else float("nan"),
            ))
        with self._lat_lock:
            hits = sorted(self._hit_latencies)
            miss_all.extend(self._coalesced_latencies)
            versions = dict(self._version_counts)
        miss_all.sort()
        queue_all.sort()
        search_all.sort()
        learner = self._engine.online
        online_updates = len(learner.update_log()) if learner else 0
        estats = self._engine.stats()
        return AsyncEngineStats(
            submitted=self._n_submitted,
            cache_hits=self._n_cache_hits,
            coalesced=self._n_coalesced,
            rejected=self._n_rejected,
            batch_failures=self._n_batch_failures,
            pending=self._pending,
            workers=self._n_workers,
            worker_flushes=self._n_worker_flushes,
            worker_fallbacks=self._n_worker_fallbacks,
            hit_p50_ms=_percentile_ms(hits, 0.50),
            hit_p95_ms=_percentile_ms(hits, 0.95),
            miss_p50_ms=_percentile_ms(miss_all, 0.50),
            miss_p95_ms=_percentile_ms(miss_all, 0.95),
            miss_queue_p50_ms=_percentile_ms(queue_all, 0.50),
            miss_search_p50_ms=_percentile_ms(search_all, 0.50),
            cascade_searches=estats.cascade_searches,
            exhaustive_searches=estats.exhaustive_searches,
            cascade_fallbacks=estats.cascade_fallbacks,
            model_versions=versions,
            online_updates=online_updates,
            shards=tuple(shards),
            deadlines_exceeded=self._n_deadlines,
            deadline_shed=self._n_deadline_shed,
            breaker_state=self._breaker.state,
            breaker_trips=self._breaker.trips,
            breaker_recoveries=self._breaker.recoveries,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Graceful drain: refuse new work, flush the backlog, flush disk.

        Everything admitted before ``aclose`` is answered (those batches
        flush with reason ``drain``); then the executor stops and, for an
        owned engine, ``Engine.close()`` persists profiles + candidates.
        Idempotent.  Must run on the engine's bound loop (from sync code
        use :meth:`close`); the guard raises *before* the engine refuses
        new work, and finalization is in a ``finally`` so a failed drain
        can never skip the disk flush.
        """
        if self._loop is not None:
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is not None and running is not self._loop:
                raise EngineError(
                    "aclose() must run on the engine's bound event "
                    "loop; from sync code use close()"
                )
        self._closed = True
        if self._drained:
            return
        try:
            for shard in list(self._shards.values()):
                await shard.queue.put(_CLOSE)
            workers = [s.worker for s in self._shards.values() if s.worker]
            if workers:
                await asyncio.gather(*workers)
        finally:
            self._drained = True
            if self._online_task is not None:
                self._online_task.cancel()
                try:
                    await self._online_task
                except (asyncio.CancelledError, Exception):
                    pass
                self._online_task = None
            # Shards are drained (or died trying): no flush can still
            # reach the pool, so stop the worker processes and free the
            # shared segment before the caches flush to disk.
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._own_engine:
                self._engine.close()

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Sync bridge: a background event-loop thread
    # ------------------------------------------------------------------
    def start(self) -> "AsyncEngine":
        """Run the front door on a private background event loop.

        For sync callers (the harness, the CLI, legacy scripts): after
        ``start()``, :meth:`query_sync` / :meth:`query_many_sync` submit
        from any thread and :meth:`close` drains and stops the loop.
        """
        with self._start_lock:
            if self._loop is not None:
                raise EngineError(
                    "AsyncEngine already bound to an event loop"
                )
            self._spawn_loop_locked()
        return self

    def _spawn_loop_locked(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-async-engine-loop",
            daemon=True,
        )
        self._thread.start()

    def _bridge_submit(self, coro):
        """Schedule a coroutine on the background loop; races with
        :meth:`close` are serialized by ``_start_lock``, so a submission
        either lands before the loop stops (its callback runs — FIFO —
        and resolves the future, if only with an error) or observes the
        closed engine and fails cleanly, never hangs."""
        with self._start_lock:
            if self._closed:
                coro.close()
                raise EngineError("async engine is closed")
            if self._thread is None:
                if self._loop is not None:
                    coro.close()
                    raise EngineError(
                        "AsyncEngine is bound to a caller-owned event "
                        "loop; use the async API there"
                    )
                self._spawn_loop_locked()
            return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def query_sync(
        self, request: KernelRequest, timeout: float | None = None
    ) -> KernelReply:
        """Blocking :meth:`query` via the background loop (auto-started)."""
        return self._bridge_submit(self.query(request)).result(timeout)

    def query_many_sync(
        self,
        requests: Sequence[KernelRequest],
        timeout: float | None = None,
    ) -> list[KernelReply]:
        """Blocking :meth:`query_many` via the background loop."""
        return self._bridge_submit(
            self.query_many(list(requests))
        ).result(timeout)

    def close(self) -> None:
        """Sync drain + shutdown (for background-loop / never-started use).

        Inside a caller-owned running loop use ``await aclose()``
        instead.  Holds ``_start_lock`` for the whole teardown, so a
        racing :meth:`query_sync` either submits before the loop stops
        (and gets an answer or a clean error) or waits and is refused.
        """
        if self._loop is not None and self._loop.is_running():
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is self._loop:
                raise EngineError(
                    "close() called from inside the event loop; use "
                    "`await aclose()`"
                )
        with self._start_lock:
            if self._thread is not None:
                asyncio.run_coroutine_threadsafe(
                    self.aclose(), self._loop
                ).result()
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join()
                self._loop.close()
                self._thread = None
                return
            if self._loop is not None and self._loop.is_running():
                raise EngineError(
                    "a caller-owned event loop is still serving; "
                    "`await aclose()` there instead"
                )
            # Never served from a loop: nothing to drain.
            self._closed = True
            self._drained = True
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._own_engine:
                self._engine.close()

    def __enter__(self) -> "AsyncEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
