"""The Engine: one concurrent front door for tuning, search and serving.

The paper's deliverable is a runtime answer to *"which kernel for this
shape, now"*.  The low-level API answers it one pair at a time: callers
hand-wire an :class:`~repro.core.tuner.Isaac` per (device, op), consult a
:class:`~repro.core.profile_cache.ProfileCache` themselves, and loop over
shapes.  That cannot serve heavy multi-tenant traffic.  Like AutoTVM's
``task -> tuner -> apply_history_best`` flow and cuDNN's single-handle
heuristics API, :class:`Engine` is the one stable facade in front of the
whole pipeline:

* **model store** — :meth:`Engine.open` points the engine at a directory
  of fits saved by :meth:`Engine.tune` / :meth:`Isaac.save`; each
  (device, op) tuner is loaded lazily on first use and kept hot;
* **two-level cache** — a thread-safe in-memory LRU in front of the
  on-disk :class:`ProfileCache`, consulted before any model search; new
  results are written through to both levels, so LRU eviction falls back
  to the profile cache rather than re-searching;
* **batching planner** — :meth:`query_many` groups concurrent mixed-op /
  mixed-device requests by (device, op, dtype, k, reps) and routes each
  group through :meth:`Isaac.top_k_batch`, amortizing the model pass the
  way a deployment warms its cache for a whole network
  (:meth:`Engine.warmup`);
* **candidate store** — enumerated candidate sets (the vectorized
  product-space survivors, plus per-bucket CONV generations) persist as
  ``.npz`` records next to the profile cache; :meth:`Engine.open` seeds
  the in-process caches from it, so a warmed deployment cold-starts
  without enumerating any product space (saved on :meth:`warmup` /
  :meth:`close`);
* **concurrency** — :meth:`query` / :meth:`query_many` are thread-safe:
  per-tuner locks serialize the (stateful) exhaustive search, duplicate
  in-flight shapes are deduplicated so N concurrent queries for one shape
  cost one search, and groups are dispatched on a ``ThreadPoolExecutor``.

``Isaac`` remains the documented low-level API; the engine composes it
without changing its semantics — :meth:`query` returns exactly what
:meth:`Isaac.best_kernel` would for the same (shape, k, reps).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core import integrity
from repro.core.candidate_store import CandidateStore
from repro.core.ops import OpSpec, get_op
from repro.core.profile_cache import ProfileCache
from repro.core.tuner import Isaac, TuneReport
from repro.core.types import DType
from repro.gpu.device import DeviceSpec, get_device
from repro.inference.topk import RankedKernel, best_after_rerank, rerank
from repro.service.faults import inject
from repro.service.online import ModelUpdate, OnlineConfig, OnlineLearner
from repro.workloads.networks import NetworkStep


class EngineError(RuntimeError):
    """A request the engine cannot serve (unknown model, closed engine)."""


class DeadlineExceeded(EngineError):
    """A request's ``deadline_ms`` budget ran out before its answer.

    Raised at admission when the budget is already non-positive, when a
    queued request expires before its batch flushes (shed, never
    searched), and to a waiting client whose reply did not arrive in
    time.  Always a per-request error: the engine itself stays healthy.
    """


# ----------------------------------------------------------------------
# Request / reply envelope
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KernelRequest:
    """One "which kernel?" question.

    ``device`` may be omitted when the engine serves a single device.
    ``k`` (re-ranked short-list length) and ``reps`` (benchmark
    repetitions) are search-time knobs: like ``Isaac.best_kernel``'s
    ``cache`` parameter, they are not part of the cached result's
    identity — the first answer for a (device, op, shape) is served to
    every later request for it.

    ``deadline_ms`` is this request's end-to-end budget, measured from
    admission.  ``None`` (the default) means wait forever.  A request
    whose budget runs out fails with :class:`DeadlineExceeded` — at
    admission if already non-positive, shed from its shard queue if it
    expires before the batch flushes, or raised to the waiting client.
    Like ``k``/``reps`` it is not part of result identity or of
    :meth:`group_key`.
    """

    op: str
    shape: Any
    device: str | None = None
    k: int = 100
    reps: int = 3
    deadline_ms: float | None = None

    def group_key(self) -> tuple:
        """The batchable-unit key for a *resolved* request.

        Requests sharing this tuple can be answered by one
        :meth:`Isaac.top_k_batch` pass — it is the grouping of the sync
        engine's batching planner and of the async engine's shards, kept
        in one place so the two can never diverge.
        """
        return (self.device, self.op, self.shape.dtype.name, self.k,
                self.reps)


@dataclass(frozen=True)
class KernelReply:
    """The engine's answer, with provenance.

    ``source`` is ``"search"`` for a fresh model search + re-rank,
    ``"lru"`` for an in-memory hit and ``"profile"`` for an on-disk
    profile-cache hit (both cache sources report ``predicted_tflops`` as
    NaN — the caches persist only measurements).

    ``model_version`` names the fit that ranked a ``"search"`` answer
    (0 = offline fit, incremented by each online fine-tune); cache hits
    carry None — the caches persist measurements, not provenance.
    """

    request: KernelRequest
    config: Any
    predicted_tflops: float
    measured_tflops: float
    source: str
    model_version: int | None = None

    @property
    def tflops(self) -> float:
        return self.measured_tflops


@dataclass
class EngineStats:
    """Counters since construction (returned by :meth:`Engine.stats`).

    The ``cascade_*`` fields aggregate the two-stage cascade counters of
    every hot tuner's search: searches served from the shortlist path,
    searches that ran exhaustively (disabled/uncalibrated/tiny sets),
    query-time fallbacks (failed margin or width check), candidates
    stage 2 never scored, and wall-clock spent in each stage.
    """

    lru_hits: int = 0
    profile_hits: int = 0
    searches: int = 0
    dedup_waits: int = 0
    evictions: int = 0
    online_updates: int = 0
    model_swaps: int = 0
    cascade_searches: int = 0
    exhaustive_searches: int = 0
    cascade_fallbacks: int = 0
    cascade_pruned: int = 0
    cascade_stage1_ms: float = 0.0
    cascade_stage2_ms: float = 0.0

    @property
    def queries(self) -> int:
        return self.lru_hits + self.profile_hits + self.searches

    @property
    def lru_hit_ratio(self) -> float:
        """Fraction of queries served from the in-memory LRU."""
        return self.lru_hits / self.queries if self.queries else 0.0

    @property
    def profile_hit_ratio(self) -> float:
        """Fraction of queries served from the on-disk profile cache."""
        return self.profile_hits / self.queries if self.queries else 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries served from either cache level."""
        hits = self.lru_hits + self.profile_hits
        return hits / self.queries if self.queries else 0.0


# ----------------------------------------------------------------------
# In-memory level-1 cache
# ----------------------------------------------------------------------

class _LruCache:
    """A bounded mapping with least-recently-used eviction.

    Not internally locked: the engine guards every access with its cache
    lock (the same lock that orders writes to the profile cache behind
    it).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"lru_capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.evictions = 0
        self._data: OrderedDict[str, tuple[Any, float]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> tuple[Any, float] | None:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: str, value: tuple[Any, float]) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1


def _device_slug(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")


def _model_filename(device_name: str, op_name: str) -> str:
    return f"{_device_slug(device_name)}--{op_name}.npz"


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class Engine:
    """Concurrent facade over every (device, op) tuner.

    Typical service use::

        with Engine.open("models/") as engine:
            reply = engine.query(KernelRequest("gemm", shape))
            replies = engine.query_many(requests)   # batched dispatch

    Typical offline use::

        engine = Engine(model_dir="models/")
        engine.tune("pascal", "gemm", n_samples=20_000)   # fits + saves
    """

    def __init__(
        self,
        *,
        model_dir: str | Path | None = None,
        profile_cache: ProfileCache | str | Path | None = None,
        candidate_store: CandidateStore | str | Path | None = None,
        lru_capacity: int = 4096,
        max_workers: int | None = None,
        online: OnlineConfig | None = None,
        cascade: bool = True,
        cascade_keep: int | None = None,
    ):
        if max_workers is not None and max_workers < 0:
            # 0 is meaningful (inline group dispatch, no executor).
            raise ValueError(
                f"max_workers must be >= 0 when given, got {max_workers}"
            )
        if cascade_keep is not None and cascade_keep < 1:
            raise ValueError(
                f"cascade_keep must be >= 1 when given, got {cascade_keep}"
            )
        self._model_dir = Path(model_dir) if model_dir is not None else None
        #: two-stage cascade policy, applied to every tuner the engine
        #: serves (registered, tuned or lazily loaded).
        self._cascade_enabled = bool(cascade)
        self._cascade_keep = cascade_keep
        if isinstance(profile_cache, (str, Path)):
            profile_cache = ProfileCache(profile_cache)
        self._profiles = profile_cache
        if isinstance(candidate_store, (str, Path)):
            candidate_store = CandidateStore(candidate_store)
        self._candidates = candidate_store
        if self._candidates is not None:
            # Seed the in-process candidate caches: a warmed store means
            # this engine never re-enumerates a product space.
            self._candidates.load()
        self._lru = _LruCache(lru_capacity)
        self._stats = EngineStats()

        #: hot tuners + lazily loadable fits, both keyed (device name, op).
        self._tuners: dict[tuple[str, str], Isaac] = {}
        self._model_index: dict[tuple[str, str], Path] = {}
        self._tuner_locks: dict[tuple[str, str], threading.Lock] = {}
        self._load_locks: dict[tuple[str, str], threading.Lock] = {}

        self._registry_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._inflight: dict[str, threading.Event] = {}

        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._closed = False

        #: the online learning loop (None = frozen fits, the default —
        #: the offline determinism contract depends on that default).
        self._learner = OnlineLearner(online) if online is not None else None
        self._online_thread: threading.Thread | None = None
        self._online_stop = threading.Event()
        self._online_wake = threading.Event()
        self._online_finalized = False
        self._n_swaps = 0

        if self._model_dir is not None and self._model_dir.is_dir():
            self._scan_model_dir()

    # ------------------------------------------------------------------
    # Model store
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        model_dir: str | Path,
        *,
        profile_cache: ProfileCache | str | Path | None = None,
        candidate_store: CandidateStore | str | Path | None = None,
        **kwargs,
    ) -> "Engine":
        """An engine over a directory of saved fits.

        Every ``*.npz`` with an ``Isaac.save`` sidecar is indexed; the
        tuner itself is loaded on first query for its (device, op) and
        kept hot.  Unless overridden, tuned-kernel profiles persist in
        ``<model_dir>/profiles.json`` and enumerated candidate sets in
        ``<model_dir>/candidates/`` (loaded now, so a warmed store makes
        cold start skip product-space enumeration entirely).
        """
        model_dir = Path(model_dir)
        if not model_dir.is_dir():
            raise EngineError(
                f"model directory {model_dir} does not exist; create one "
                "with Engine(model_dir=...).tune(...) or Isaac.save()"
            )
        if profile_cache is None:
            profile_cache = model_dir / "profiles.json"
        if candidate_store is None:
            candidate_store = model_dir / "candidates"
        return cls(
            model_dir=model_dir,
            profile_cache=profile_cache,
            candidate_store=candidate_store,
            **kwargs,
        )

    def _scan_model_dir(self) -> None:
        import json
        import warnings

        for path in sorted(self._model_dir.glob("*.npz")):
            sidecar = path.with_suffix(path.suffix + ".meta.json")
            if not sidecar.exists():
                continue
            if integrity.check(path) is False:
                target = integrity.quarantine(path)
                warnings.warn(
                    f"model file {path} failed its integrity check; "
                    f"quarantined to {target.name} — retune or restore "
                    "the fit to serve this (device, op) again",
                    stacklevel=2,
                )
                continue
            meta = json.loads(sidecar.read_text())
            self._model_index[(meta["device"], meta["op"])] = path

    def register(self, tuner: Isaac) -> None:
        """Serve an already-tuned (or loaded) ``Isaac`` through the engine."""
        if not tuner.is_tuned:
            raise EngineError(
                f"tuner for ({tuner.device.name}, {tuner.op}) is not tuned"
            )
        key = (tuner.device.name, tuner.op)
        self._configure_cascade(tuner)
        with self._registry_lock:
            self._tuners[key] = tuner
            self._tuner_locks.setdefault(key, threading.Lock())

    def _configure_cascade(self, tuner: Isaac) -> None:
        """Apply the engine's cascade policy to one tuner's search."""
        search = tuner.searcher
        if search is not None:
            search.set_cascade(self._cascade_enabled,
                               keep=self._cascade_keep)

    def tune(
        self,
        device: str | DeviceSpec,
        op: str | OpSpec,
        *,
        dtypes: Sequence[DType] | None = None,
        save: bool = True,
        **tune_kwargs,
    ) -> TuneReport:
        """Run the offline phase for one (device, op) and serve the result.

        With a ``model_dir`` configured (and ``save=True``), the fit is
        persisted there under a canonical name so a later
        :meth:`Engine.open` finds it.
        """
        if isinstance(device, str):
            device = get_device(device)
        tuner = Isaac(device, op=op, dtypes=dtypes)
        report = tuner.tune(**tune_kwargs)
        if save and self._model_dir is not None:
            self._model_dir.mkdir(parents=True, exist_ok=True)
            path = self._model_dir / _model_filename(device.name, tuner.op)
            tuner.save(path)
            with self._registry_lock:
                self._model_index[(device.name, tuner.op)] = path
        self.register(tuner)
        return report

    def _tuner(self, device_name: str, op_name: str) -> Isaac:
        """The hot tuner for (device, op), lazily loading a saved fit.

        The load itself runs outside ``_registry_lock`` (under a per-key
        lock) so one cold model load never stalls lookups of already-hot
        pairs.
        """
        key = (device_name, op_name)
        with self._registry_lock:
            tuner = self._tuners.get(key)
            if tuner is not None:
                return tuner
            path = self._model_index.get(key)
            if path is None:
                known = sorted(set(self._tuners) | set(self._model_index))
                raise EngineError(
                    f"no model for device={device_name!r} op={op_name!r}; "
                    f"available: {known or 'none'}"
                )
            load_lock = self._load_locks.setdefault(key, threading.Lock())
        with load_lock:
            with self._registry_lock:
                tuner = self._tuners.get(key)
                if tuner is not None:
                    return tuner
            try:
                tuner = Isaac.load(path)
            except Exception as exc:
                # A fit that rotted after the boot-time scan: quarantine
                # it and drop the index entry so later queries fail fast
                # with a typed error instead of re-parsing garbage.
                import warnings

                target = None
                if path.exists():
                    target = integrity.quarantine(path)
                with self._registry_lock:
                    self._model_index.pop(key, None)
                warnings.warn(
                    f"model file {path} is unreadable; quarantined to "
                    f"{target.name if target else '(missing)'}",
                    stacklevel=2,
                )
                raise EngineError(
                    f"model for device={device_name!r} op={op_name!r} is "
                    f"unreadable and was quarantined ({exc})"
                ) from exc
            self._configure_cascade(tuner)
            with self._registry_lock:
                self._tuners[key] = tuner
                self._tuner_locks.setdefault(key, threading.Lock())
            return tuner

    def _known_pairs(self) -> set[tuple[str, str]]:
        with self._registry_lock:
            return set(self._tuners) | set(self._model_index)

    def devices(self) -> tuple[str, ...]:
        """Device names the engine can serve (hot or lazily loadable)."""
        return tuple(sorted({d for d, _ in self._known_pairs()}))

    def ops(self, device: str | None = None) -> tuple[str, ...]:
        """Op names servable (optionally restricted to one device)."""
        pairs = self._known_pairs()
        return tuple(
            sorted({o for d, o in pairs if device is None or d == device})
        )

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, request: KernelRequest
    ) -> tuple[KernelRequest, OpSpec, str]:
        """Canonicalize one request: full device name + its cache key."""
        if self._closed:
            raise EngineError("engine is closed")
        spec = get_op(request.op)
        device_name = request.device
        if device_name is None:
            known = self.devices()
            if len(known) != 1:
                raise EngineError(
                    "request names no device and the engine serves "
                    f"{list(known) or 'none'}; set KernelRequest.device"
                )
            device_name = known[0]
        else:
            # Accept aliases ("pascal") but key everything canonically.
            device_name = get_device(device_name).name
        if not isinstance(request.shape, spec.shape_type):
            raise EngineError(
                f"op {spec.name!r} expects {spec.shape_type.__name__}, "
                f"got {type(request.shape).__name__}"
            )
        if request.k < 1:
            raise EngineError(f"k must be >= 1, got {request.k}")
        if request.reps < 1:
            raise EngineError(f"reps must be >= 1, got {request.reps}")
        if request.deadline_ms is not None and request.deadline_ms <= 0:
            raise DeadlineExceeded(
                f"deadline_ms={request.deadline_ms} was already spent at "
                "admission"
            )
        if request.device != device_name or request.op != spec.name:
            request = replace(request, device=device_name, op=spec.name)
        return request, spec, spec.profile_key(device_name, request.shape)

    def _cached_reply_locked(
        self, request: KernelRequest, spec: OpSpec, key: str
    ) -> KernelReply | None:
        """Level-1 then level-2 lookup; caller holds the cache lock."""
        hit = self._lru.get(key)
        if hit is not None:
            self._stats.lru_hits += 1
            cfg, tflops = hit
            return self._cache_reply(request, cfg, tflops, "lru")
        if self._profiles is not None:
            found = self._profiles.get(spec, request.device, request.shape)
            if found is not None:
                cfg, tflops = found
                self._lru.put(key, (cfg, tflops))
                self._stats.profile_hits += 1
                return self._cache_reply(request, cfg, tflops, "profile")
        return None

    @staticmethod
    def _cache_reply(
        request: KernelRequest, cfg: Any, tflops: float, source: str
    ) -> KernelReply:
        return KernelReply(
            request=request,
            config=cfg,
            predicted_tflops=float("nan"),
            measured_tflops=tflops,
            source=source,
        )

    def _store_locked(
        self, request: KernelRequest, spec: OpSpec, key: str,
        best: RankedKernel,
    ) -> None:
        """Write-through: LRU + the profile cache's in-memory map."""
        self._lru.put(key, (best.config, best.measured_tflops))
        self._stats.evictions = self._lru.evictions
        self._stats.searches += 1
        if self._profiles is not None:
            self._profiles.put(
                spec,
                request.device,
                request.shape,
                best.config,
                best.measured_tflops,
            )

    # ------------------------------------------------------------------
    # Hooks for the asyncio front door (service/async_engine.py)
    # ------------------------------------------------------------------
    def resolve(self, request: KernelRequest) -> tuple[KernelRequest, OpSpec, str]:
        """Canonicalized request, its :class:`OpSpec` and its cache key.

        The cache key identifies a (device, op, shape) result — ``k`` and
        ``reps`` are search-time knobs, not part of result identity — so
        front doors (e.g. :class:`~repro.service.async_engine.AsyncEngine`)
        can coalesce duplicate traffic before it ever reaches a queue.
        """
        return self._resolve(request)

    def probe_cache(
        self, request: KernelRequest, spec: OpSpec, key: str
    ) -> KernelReply | None:
        """Serve one resolved request from the two cache levels only.

        Returns None on a full miss (no search is started).  Thread-safe;
        hits count in :meth:`stats` exactly like :meth:`query` hits.
        """
        with self._cache_lock:
            return self._cached_reply_locked(request, spec, key)

    def store_search_result(
        self, request: KernelRequest, best: RankedKernel
    ) -> KernelReply:
        """Publish a search result computed elsewhere (the worker tier).

        Written through both cache levels and counted as a search in
        :meth:`stats`, exactly as if :meth:`query` had run it; returns
        the reply to hand to the caller.
        """
        inject("engine.store")
        request, spec, key = self._resolve(request)
        with self._cache_lock:
            self._store_locked(request, spec, key, best)
        if self._learner is not None and best.source == "reranked":
            # The worker tier ships only its winning pair back; feed it.
            tuner = self._tuner(request.device, request.op)
            self._observe_rerank(tuner, spec, request.shape, [best])
        return KernelReply(
            request=request,
            config=best.config,
            predicted_tflops=best.predicted_tflops,
            measured_tflops=best.measured_tflops,
            source="search",
            model_version=best.model_version,
        )

    def export_fits(
        self, pairs: Iterable[tuple[str, str]]
    ) -> dict[tuple[str, str], tuple[bytes, tuple[str, ...]]]:
        """Current fit bytes (+ dtype names) for the given (device, op)
        pairs — what :meth:`WorkerPool.broadcast_fits` ships after an
        online hot-swap.  Each pair's bytes are read under its tuner
        lock, so a concurrent swap can never export a half-written fit.
        """
        from repro.mlp.serialize import fit_to_bytes

        out: dict[tuple[str, str], tuple[bytes, tuple[str, ...]]] = {}
        for device_name, op_name in pairs:
            tuner = self._tuner(device_name, op_name)
            lock = self._tuner_locks.get((device_name, op_name))
            if lock is None:
                continue
            with lock:
                out[(device_name, op_name)] = (
                    fit_to_bytes(tuner.fit_result),
                    tuple(d.name for d in tuner.dtypes),
                )
        return out

    def export_worker_state(self) -> "WorkerState":
        """Everything a worker process needs to serve this engine's pairs.

        Fits are serialized once per (device, op) — this loads any still
        lazy tuner, which is intended: worker boot is serve start.  The
        candidate caches and every ``H0`` term the hot searches have
        prescaled export as named arrays destined for one shared-memory
        segment (see :class:`~repro.core.soa.SharedArrayPack`); the
        metadata references arrays by name only, so it stays pipe-sized.
        """
        from repro.core.candidate_store import collect_cache_records
        from repro.mlp.serialize import fit_to_bytes

        fits: dict[tuple[str, str], tuple[bytes, tuple[str, ...]]] = {}
        for device_name, op_name in sorted(self._known_pairs()):
            tuner = self._tuner(device_name, op_name)
            fits[(device_name, op_name)] = (
                fit_to_bytes(tuner.fit_result),
                tuple(d.name for d in tuner.dtypes),
            )
        arrays: dict[str, np.ndarray] = {}
        records: list[dict] = []
        for i, (kind, key, op, space, params) in enumerate(
            collect_cache_records()
        ):
            columns = {}
            for pname, col in params.items():
                aname = f"rec{i}.{pname}"
                arrays[aname] = np.asarray(col)
                columns[pname] = aname
            records.append({
                "kind": kind, "key": key, "op": op, "space": space,
                "columns": columns,
            })
        prescaled: list[dict] = []
        cascade: list[dict] = []
        with self._registry_lock:
            hot = dict(self._tuners)
        n = m = 0
        for (device_name, op_name), tuner in sorted(hot.items()):
            search = tuner.searcher
            if search is None:
                continue
            for key, h0 in search.prescaled_snapshot().items():
                aname = f"h0.{n}"
                n += 1
                arrays[aname] = np.ascontiguousarray(h0)
                prescaled.append({
                    "device": device_name, "op": op_name, "key": key,
                    "name": aname,
                })
            for key, h0_lo in search.cascade_snapshot().items():
                aname = f"cas.{m}"
                m += 1
                arrays[aname] = np.ascontiguousarray(h0_lo)
                cascade.append({
                    "device": device_name, "op": op_name, "key": key,
                    "name": aname,
                })
        return WorkerState(
            fits=fits, records=records, prescaled=prescaled,
            arrays=arrays, cascade=cascade,
            cascade_enabled=self._cascade_enabled,
            cascade_keep=self._cascade_keep,
        )

    # ------------------------------------------------------------------
    # Single query (with in-flight deduplication)
    # ------------------------------------------------------------------
    def query(self, request: KernelRequest) -> KernelReply:
        """Answer one request: LRU -> profile cache -> model search.

        Thread-safe.  Concurrent queries for the same (device, op, shape)
        run exactly one search: the first becomes the leader, the rest
        wait on its result and read it from the cache.
        """
        request, spec, key = self._resolve(request)
        while True:
            with self._cache_lock:
                reply = self._cached_reply_locked(request, spec, key)
                if reply is not None:
                    return reply
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
                self._stats.dedup_waits += 1
            # Another thread is searching this key; wait outside the lock
            # and re-check — on leader failure the loop elects a new one.
            event.wait()
        try:
            best = self._search_one(request, spec)
            with self._cache_lock:
                self._store_locked(request, spec, key, best)
        finally:
            with self._cache_lock:
                event = self._inflight.pop(key)
            event.set()
        return KernelReply(
            request=request,
            config=best.config,
            predicted_tflops=best.predicted_tflops,
            measured_tflops=best.measured_tflops,
            source="search",
            model_version=best.model_version,
        )

    def _search_one(
        self, request: KernelRequest, spec: OpSpec
    ) -> RankedKernel:
        """One model search + device re-rank; identical to
        ``Isaac.best_kernel(shape, k=k, reps=reps)`` with no cache."""
        inject("engine.search")
        tuner = self._tuner(request.device, request.op)
        with self._tuner_locks[(request.device, request.op)]:
            # ExhaustiveSearch mutates per-instance caches and reuses
            # preallocated chunk buffers — one search per tuner at a time.
            # The model version is read under the same lock the hot-swap
            # takes, so it always names the fit that ranked this top-k.
            top = tuner.top_k(request.shape, request.k)
            version = tuner.fit_result.model_version
        ranked = rerank(
            tuner.device, request.shape, top, op=spec, reps=request.reps
        )
        best = ranked[0]
        best.model_version = version
        self._observe_rerank(tuner, spec, request.shape, ranked)
        return best

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def query_many(
        self, requests: Sequence[KernelRequest]
    ) -> list[KernelReply]:
        """Answer many requests through the batching planner.

        Cache hits are resolved inline; the misses are deduplicated and
        grouped by (device, op, dtype, k, reps), each group runs one
        :meth:`Isaac.top_k_batch` model pass, and groups execute
        concurrently on the engine's thread pool.  Replies align with
        ``requests`` and match per-request :meth:`query` exactly.
        """
        resolved = [self._resolve(r) for r in requests]
        replies: list[KernelReply | None] = [None] * len(resolved)

        # Pass 1 — serve from the two cache levels, dedupe the misses.
        owned: dict[str, list[int]] = {}
        theirs: dict[str, list[int]] = {}
        with self._cache_lock:
            for i, (req, spec, key) in enumerate(resolved):
                if key in owned:
                    owned[key].append(i)
                    continue
                if key in theirs:
                    theirs[key].append(i)
                    continue
                reply = self._cached_reply_locked(req, spec, key)
                if reply is not None:
                    replies[i] = reply
                elif key in self._inflight:
                    # Another thread is already searching this shape.
                    self._stats.dedup_waits += 1
                    theirs[key] = [i]
                else:
                    self._inflight[key] = threading.Event()
                    owned[key] = [i]

        # Pass 2 — group our misses for batched dispatch.
        groups: dict[tuple, list[str]] = {}
        for key, idxs in owned.items():
            req, _spec, _ = resolved[idxs[0]]
            groups.setdefault(req.group_key(), []).append(key)

        try:
            self._run_groups(groups, owned, resolved, replies)
        finally:
            with self._cache_lock:
                events = [self._inflight.pop(k) for k in owned]
            for event in events:
                event.set()

        # Pass 3 — collect shapes other threads were already searching.
        for key, idxs in theirs.items():
            reply = self.query(resolved[idxs[0]][0])
            for i in idxs:
                replies[i] = self._realign(reply, resolved[i][0])
        return replies  # type: ignore[return-value]

    def _run_groups(
        self,
        groups: dict[tuple, list[str]],
        owned: dict[str, list[int]],
        resolved: list[tuple[KernelRequest, OpSpec, str]],
        replies: list[KernelReply | None],
    ) -> None:
        if not groups:
            return
        work = list(groups.items())
        executor = self._get_executor() if len(work) > 1 else None
        if executor is None:
            for item in work:
                self._search_group(item, owned, resolved, replies)
            return
        futures = [
            executor.submit(self._search_group, item, owned, resolved,
                            replies)
            for item in work
        ]
        wait(futures)
        for future in futures:
            future.result()  # propagate the first failure

    def _search_group(
        self,
        item: tuple[tuple, list[str]],
        owned: dict[str, list[int]],
        resolved: list[tuple[KernelRequest, OpSpec, str]],
        replies: list[KernelReply | None],
    ) -> None:
        """One (device, op, dtype, k, reps) group: batch search + rerank."""
        inject("engine.search")
        (device_name, op_name, _dtype, k, reps), keys = item
        spec = get_op(op_name)
        tuner = self._tuner(device_name, op_name)
        shapes = [resolved[owned[key][0]][0].shape for key in keys]
        with self._tuner_locks[(device_name, op_name)]:
            tops = tuner.top_k_batch(shapes, k)
            version = tuner.fit_result.model_version
        for key, shape, top in zip(keys, shapes, tops):
            ranked = rerank(tuner.device, shape, top, op=spec, reps=reps)
            best = ranked[0]
            best.model_version = version
            self._observe_rerank(tuner, spec, shape, ranked)
            leader_req = resolved[owned[key][0]][0]
            with self._cache_lock:
                self._store_locked(leader_req, spec, key, best)
            for i in owned[key]:
                replies[i] = KernelReply(
                    request=resolved[i][0],
                    config=best.config,
                    predicted_tflops=best.predicted_tflops,
                    measured_tflops=best.measured_tflops,
                    source="search",
                    model_version=version,
                )

    @staticmethod
    def _realign(reply: KernelReply, request: KernelRequest) -> KernelReply:
        if reply.request is request:
            return reply
        return replace(reply, request=request)

    def _get_executor(self) -> ThreadPoolExecutor | None:
        if self._max_workers == 0:
            return None
        with self._executor_lock:
            if self._executor is None:
                import os

                workers = self._max_workers or min(
                    8, (os.cpu_count() or 2)
                )
                self._executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-engine",
                )
            return self._executor

    # ------------------------------------------------------------------
    # Warmup
    # ------------------------------------------------------------------
    def warmup(
        self,
        network: NetworkStep | Iterable[NetworkStep],
        *,
        device: str | None = None,
        k: int = 100,
        reps: int = 3,
    ) -> int:
        """Pre-populate the cache for whole network graphs.

        Accepts one :class:`NetworkStep` or an iterable of them; each
        kernel's op is inferred from its shape type among the ops served
        for the device.  Returns the number of fresh searches (shapes
        already cached cost nothing).
        """
        steps = [network] if isinstance(network, NetworkStep) else list(network)
        requests = []
        seen: set[str] = set()
        for step in steps:
            for _label, shape in step.kernels:
                req = KernelRequest(
                    op=self.op_for_shape(shape, device=device),
                    shape=shape,
                    device=device,
                    k=k,
                    reps=reps,
                )
                req, _spec, key = self._resolve(req)
                if key not in seen:
                    seen.add(key)
                    requests.append(req)
        # Calibrate cascade margins for every pair the warmup touches so
        # the cold searches below (and all later traffic) already serve
        # from the shortlist path.  Fits loaded from a store that predates
        # the cascade get calibrated here and re-persisted.
        for device_name, op_name in sorted(
            {(r.device, r.op) for r in requests}
        ):
            self.ensure_cascade(device_name, op_name)
        replies = self.query_many(requests)
        # Searches populate the candidate caches; persist them so the next
        # process cold-starts off the store instead of re-enumerating.
        self.save_candidates()
        return sum(1 for r in replies if r.source == "search")

    def ensure_cascade(self, device: str, op: str) -> bool:
        """Make (device, op)'s cascade calibration current; True if armed.

        No-op when the engine disables the cascade.  Otherwise, if the
        pair's fit carries no calibration — or one whose weights digest
        no longer matches the live weights — the margins are recalibrated
        under the tuner lock and, when the fit came from the model store,
        re-saved so the next process boots already calibrated.
        """
        if not self._cascade_enabled:
            return False
        from repro.mlp.serialize import fit_weights_digest

        key = (get_device(device).name, get_op(op).name)
        tuner = self._tuner(*key)
        with self._tuner_locks[key]:
            fit = tuner.fit_result
            if fit is None or tuner.searcher is None:
                return False
            calib = fit.cascade
            if (calib is not None
                    and calib.weights_digest == fit_weights_digest(fit)):
                return True
            tuner.calibrate_cascade()
            path = self._model_index.get(key)
            if path is not None:
                tuner.save(path)
        return True

    def op_for_shape(self, shape: Any, *, device: str | None = None) -> str:
        """The served op whose shape type matches ``shape``.

        This is how workload graphs (which carry bare shapes, not op
        names) map onto the engine: a ``GemmShape`` resolves to ``gemm``,
        a ``ConvShape`` to ``conv``, and so on for registered ops.
        """
        if device is None:
            known = self.devices()
            device_ops = self.ops() if len(known) != 1 else self.ops(known[0])
        else:
            device_ops = self.ops(get_device(device).name)
        for op_name in device_ops:
            if isinstance(shape, get_op(op_name).shape_type):
                return op_name
        raise EngineError(
            f"no served op accepts shape type {type(shape).__name__} "
            f"(ops: {list(device_ops) or 'none'})"
        )

    # ------------------------------------------------------------------
    # The online learning loop
    # ------------------------------------------------------------------
    @property
    def online(self) -> OnlineLearner | None:
        """The online learner (None when serving frozen fits)."""
        return self._learner

    def _observe_rerank(
        self, tuner: Isaac, spec: OpSpec, shape: Any, ranked: Sequence
    ) -> None:
        """Feed every measured (config, time) pair of one re-rank into
        the replay buffer.  A no-op on frozen engines; never raises into
        the serving path."""
        learner = self._learner
        if learner is None:
            return
        device_name, op_name = tuner.device.name, tuner.op

        def make():
            ds = tuner.dataset
            ax = ds.x if ds is not None else None
            ay = ds.y if ds is not None else None
            return tuner.fit_result, ax, ay, len(spec.feature_names)

        learner.ensure_registered(device_name, op_name, make)
        due = False
        for kernel in ranked:
            features = spec.encode(kernel.config, shape, log=False)
            due |= learner.observe(
                device_name, op_name, features, kernel.measured_tflops
            )
        if due:
            self._online_wake.set()

    def run_online_updates(self) -> list[ModelUpdate]:
        """Train every due fine-tune job and hot-swap the results in.

        The synchronous driver of the loop: the background thread calls
        it on its cadence, tests and benchmarks call it directly at
        pinned points (which is what makes a traffic replay bit-
        reproducible).  Returns the applied updates so front doors can
        propagate new fits to their worker tier.
        """
        learner = self._learner
        if learner is None:
            return []
        learner.tick()
        updates = learner.run_due()
        for update in updates:
            self._apply_update(update)
        return updates

    def _apply_update(self, update: ModelUpdate) -> None:
        """Atomic hot-swap of one (device, op) fit.

        Holds the pair's tuner lock — the lock every search takes — so a
        reader either completes against the old (fit, H0) pair or starts
        against the new one; the eager ``refold()`` inside the critical
        section means no reader can ever mix the two.

        The swap drops the cascade calibration (its margins hashed the
        old weights) and, when the cascade is enabled, recalibrates for
        the new ones inside the same critical section — so no search ever
        observes new weights with stale pruning margins, and the first
        post-swap query already serves from the shortlist path.
        """
        key = (update.device, update.op)
        with self._registry_lock:
            tuner = self._tuners.get(key)
            lock = self._tuner_locks.get(key)
        if tuner is None or lock is None:
            return
        with lock:
            live = tuner.fit_result
            had_calibration = live.cascade is not None
            live.model.set_weights(update.fit.model.get_weights())
            live.history = update.fit.history
            live.val_mse = update.fit.val_mse
            live.lineage = update.fit.lineage
            live.cascade = None
            if tuner.searcher is not None:
                tuner.searcher.refold()
                if self._cascade_enabled and had_calibration:
                    tuner.calibrate_cascade()
        self._n_swaps += 1

    def start_online(self) -> bool:
        """Run the fine-tune loop on a background thread; True if started.

        The thread wakes when a cadence trips (or every poll interval
        for the wall-clock trigger), trains due jobs and swaps them in.
        No-op for frozen engines and when already running.
        """
        if self._learner is None or self._closed:
            return False
        if self._online_thread is not None:
            return False
        self._online_stop.clear()
        self._online_thread = threading.Thread(
            target=self._online_loop, name="repro-online", daemon=True
        )
        self._online_thread.start()
        return True

    def _online_loop(self) -> None:
        interval = self._learner.config.interval_s
        poll = min(interval / 2, 1.0) if interval else 0.25
        while not self._online_stop.is_set():
            self._online_wake.wait(poll)
            self._online_wake.clear()
            if self._online_stop.is_set():
                return
            try:
                self.run_online_updates()
            except Exception:
                import warnings

                warnings.warn(
                    "online fine-tune failed; serving continues on the "
                    "current fit",
                    RuntimeWarning,
                )

    def _stop_online_thread(self) -> None:
        thread = self._online_thread
        if thread is None:
            return
        self._online_stop.set()
        self._online_wake.set()
        thread.join(timeout=60)
        self._online_thread = None

    def _finalize_online(self) -> None:
        """Close-path flush: train leftovers, persist latest fits once.

        Idempotent — a second ``close()`` (or a close racing the
        background thread) must not retrain or rewrite anything.
        """
        if self._learner is None or self._online_finalized:
            return
        self._online_finalized = True
        self._stop_online_thread()
        for update in self._learner.flush():
            self._apply_update(update)
        if self._model_dir is None:
            return
        import json

        persisted = False
        for device_name, op_name in self._learner.registered():
            if self._learner.version(device_name, op_name) <= 0:
                continue
            with self._registry_lock:
                tuner = self._tuners.get((device_name, op_name))
            if tuner is None:
                continue
            self._model_dir.mkdir(parents=True, exist_ok=True)
            path = self._model_dir / _model_filename(device_name, op_name)
            tuner.save(path)
            with self._registry_lock:
                self._model_index[(device_name, op_name)] = path
            persisted = True
        log = self._learner.update_log()
        if persisted or log:
            self._model_dir.mkdir(parents=True, exist_ok=True)
            log_path = self._model_dir / "online_updates.json"
            log_path.write_text(
                json.dumps([r.to_json() for r in log], indent=2)
            )
            integrity.write_digest(log_path)
            inject("online.log", log_path)

    def online_status(self) -> dict[tuple[str, str], dict]:
        """Per-(device, op) version/buffer/update counters (CLI, stats)."""
        if self._learner is None:
            return {}
        return self._learner.describe()

    def model_version(self, device: str, op: str) -> int:
        """The live fit version for (device, op); 0 when never updated."""
        key = (get_device(device).name, get_op(op).name)
        if key not in self._known_pairs():
            return 0
        tuner = self._tuner(*key)
        if tuner.fit_result is None:
            return 0
        return tuner.fit_result.model_version

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        updates = (
            len(self._learner.update_log())
            if self._learner is not None else 0
        )
        with self._registry_lock:
            searchers = [t.searcher for t in self._tuners.values()]
        cascade = [s.cascade_stats for s in searchers if s is not None]
        with self._cache_lock:
            return replace(
                self._stats,
                evictions=self._lru.evictions,
                online_updates=updates,
                model_swaps=self._n_swaps,
                cascade_searches=sum(c.cascade_queries for c in cascade),
                exhaustive_searches=sum(
                    c.exhaustive_queries for c in cascade
                ),
                cascade_fallbacks=sum(c.fallbacks for c in cascade),
                cascade_pruned=sum(c.pruned for c in cascade),
                cascade_stage1_ms=sum(c.stage1_ms for c in cascade),
                cascade_stage2_ms=sum(c.stage2_ms for c in cascade),
            )

    def save_profiles(self) -> None:
        """Flush the write-through profile cache to disk (atomic replace)."""
        if self._profiles is None:
            return
        with self._cache_lock:
            self._profiles.save()

    def save_candidates(self) -> int:
        """Persist enumerated candidate sets to the store (if configured)."""
        if self._candidates is None:
            return 0
        return self._candidates.save()

    def close(self) -> None:
        """Stop serving, drain in-flight searches, then flush; idempotent.

        Ordering matters: new queries are refused first, then the thread
        pool and any in-flight leaders finish (their results land in the
        write-through profile map), and only then is the profile cache
        flushed — so nothing computed before ``close()`` returned is
        lost.
        """
        if self._closed:
            return
        self._closed = True
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        # Leaders always publish + set their event (in a finally), so
        # these waits terminate even if a search failed.
        while True:
            with self._cache_lock:
                events = list(self._inflight.values())
            if not events:
                break
            for event in events:
                event.wait()
        # Drained: every measured pair has reached the replay buffer, so
        # the final flush-train sees all of them, and the fine-tuned fit
        # persists (exactly once) before the caches do.
        self._finalize_online()
        self.save_profiles()
        self.save_candidates()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker tier: exported state + the worker-process slim engine
# ----------------------------------------------------------------------

@dataclass
class WorkerState:
    """One engine's serving state, split for cross-process shipping.

    ``fits`` (small: tens of KB of npz bytes per pair) travel over the
    boot pipe; ``arrays`` (large: survivor columns, prescaled ``H0``
    terms and their float32 cascade twins, ~160k rows each) are destined
    for one :class:`~repro.core.soa.SharedArrayPack` segment.
    ``records``, ``prescaled`` and ``cascade`` reference arrays by
    manifest name, never by value; ``cascade_enabled``/``cascade_keep``
    carry the parent engine's cascade policy to every worker.
    """

    fits: dict[tuple[str, str], tuple[bytes, tuple[str, ...]]]
    records: list[dict]
    prescaled: list[dict]
    arrays: dict[str, np.ndarray]
    cascade: list[dict] = field(default_factory=list)
    cascade_enabled: bool = True
    cascade_keep: int | None = None


class WorkerEngine:
    """The worker-process side of the sharded serving tier.

    A slim, single-process searcher rebuilt from a :class:`WorkerState`
    export: it seeds the candidate caches with zero-copy shared-memory
    views, restores each (device, op) tuner from its fit bytes, adopts
    the parent's prescaled ``H0`` terms, and answers batched searches.
    It keeps **no caches of its own** — the parent's LRU/profile levels
    stay authoritative and only misses are shipped here, so worker
    results are config-identical to the in-process path (same fit bytes,
    same candidate columns, same deterministic measurement noise).
    """

    def __init__(
        self,
        fits: Mapping[tuple[str, str], tuple[bytes, tuple[str, ...]]],
        records: Sequence[Mapping],
        prescaled: Sequence[Mapping],
        views: Mapping[str, np.ndarray],
        shared_bytes: int = 0,
        cascade: Sequence[Mapping] = (),
        cascade_enabled: bool = True,
        cascade_keep: int | None = None,
    ):
        from repro.core.candidate_store import seed_cache_record
        from repro.mlp.serialize import fit_from_bytes

        self.shared_bytes = int(shared_bytes)
        self.seeded_records = 0
        self.adopted_h0 = 0
        self.adopted_cascade = 0
        self.adopted_fits = 0
        self.searches = 0
        self._cascade_enabled = bool(cascade_enabled)
        self._cascade_keep = cascade_keep
        for rec in records:
            params = {
                p: views[name] for p, name in rec["columns"].items()
            }
            if seed_cache_record(
                rec["kind"], tuple(rec["key"]), rec["op"], params,
                rec["space"],
            ):
                self.seeded_records += 1
        self._tuners: dict[tuple[str, str], Isaac] = {}
        for (device_name, op_name), (blob, dtype_names) in fits.items():
            tuner = Isaac.from_fit(
                get_device(device_name),
                op_name,
                fit_from_bytes(blob),
                dtypes=tuple(DType[n] for n in dtype_names),
            )
            self._apply_cascade_policy(tuner)
            self._tuners[(device_name, op_name)] = tuner
        for item in prescaled:
            tuner = self._tuners.get((item["device"], item["op"]))
            if tuner is None or tuner.searcher is None:
                continue
            tuner.searcher.adopt_prescaled(
                tuple(item["key"]), views[item["name"]]
            )
            self.adopted_h0 += 1
        for item in cascade:
            tuner = self._tuners.get((item["device"], item["op"]))
            if tuner is None or tuner.searcher is None:
                continue
            tuner.searcher.adopt_cascade(
                tuple(item["key"]), views[item["name"]]
            )
            self.adopted_cascade += 1

    def _apply_cascade_policy(self, tuner: Isaac) -> None:
        search = tuner.searcher
        if search is not None:
            search.set_cascade(self._cascade_enabled,
                               keep=self._cascade_keep)

    def pairs(self) -> tuple[tuple[str, str], ...]:
        """The (device, op) pairs this worker can search."""
        return tuple(sorted(self._tuners))

    def adopt_fits(
        self,
        fits: Mapping[tuple[str, str], tuple[bytes, tuple[str, ...]]],
    ) -> dict[tuple[str, str], int]:
        """Hot-swap updated fits shipped by the parent's online loop.

        Each pair's tuner is rebuilt from the new fit bytes with a fresh
        search (its prescaled ``H0`` terms were folded through the old
        weights, so re-adopting them would tear the (fit, H0) pair — the
        worker re-prescales lazily from the shared candidate columns
        instead).  The worker is single-threaded between RPCs, so the
        whole swap is atomic from the parent's point of view.  Returns
        the adopted version per pair.
        """
        from repro.mlp.serialize import fit_from_bytes

        adopted: dict[tuple[str, str], int] = {}
        for (device_name, op_name), (blob, dtype_names) in fits.items():
            fit = fit_from_bytes(blob)
            tuner = Isaac.from_fit(
                get_device(device_name),
                op_name,
                fit,
                dtypes=tuple(DType[n] for n in dtype_names),
            )
            # The shipped fit bytes carry the parent's fresh cascade
            # calibration (or none): the rebuilt search arms itself from
            # those margins alone, so a worker can never prune against
            # the old weights' margins.
            self._apply_cascade_policy(tuner)
            self._tuners[(device_name, op_name)] = tuner
            adopted[(device_name, op_name)] = fit.model_version
            self.adopted_fits += 1
        return adopted

    def stats(self) -> dict:
        """Zero-copy accounting, reported back over the control pipe."""
        cascade_searches = exhaustive = fallbacks = 0
        for tuner in self._tuners.values():
            search = tuner.searcher
            if search is None:
                continue
            cs = search.cascade_stats
            cascade_searches += cs.cascade_queries
            exhaustive += cs.exhaustive_queries
            fallbacks += cs.fallbacks
        return {
            "shared_bytes": self.shared_bytes,
            "seeded_records": self.seeded_records,
            "adopted_h0": self.adopted_h0,
            "adopted_cascade": self.adopted_cascade,
            "adopted_fits": self.adopted_fits,
            "searches": self.searches,
            "cascade_searches": cascade_searches,
            "exhaustive_searches": exhaustive,
            "cascade_fallbacks": fallbacks,
        }

    # ------------------------------------------------------------------
    def search_batch(
        self, device: str, op: str, shapes: Sequence, k: int, reps: int
    ) -> list[tuple[bool, Any]]:
        """One flush: per-shape ``(ok, payload)`` results, order-aligned.

        ``payload`` is ``(config, predicted_tflops, measured_tflops,
        model_version)`` on success — the :class:`RankedKernel` fields
        the parent writes back through :meth:`Engine.store_search_result`
        — or an error string.  A poisoned batch falls back per-shape so
        one bad request cannot fail its whole flush.
        """
        tuner = self._tuners.get((device, op))
        if tuner is None:
            err = f"worker has no tuner for ({device!r}, {op!r})"
            return [(False, err) for _ in shapes]
        spec = tuner.spec
        try:
            tops = tuner.top_k_batch(list(shapes), k)
        except Exception:
            tops = None
        if tops is not None:
            return [
                self._rerank_one(tuner, spec, shape, top, reps)
                for shape, top in zip(shapes, tops)
            ]
        out: list[tuple[bool, Any]] = []
        for shape in shapes:
            try:
                top = tuner.top_k(shape, k)
            except Exception as exc:
                out.append((False, f"{type(exc).__name__}: {exc}"))
                continue
            out.append(self._rerank_one(tuner, spec, shape, top, reps))
        return out

    def _rerank_one(
        self, tuner: Isaac, spec: OpSpec, shape: Any, top: list, reps: int
    ) -> tuple[bool, Any]:
        try:
            best = best_after_rerank(
                tuner.device, shape, top, op=spec, reps=reps
            )
        except Exception as exc:
            return (False, f"{type(exc).__name__}: {exc}")
        self.searches += 1
        version = (
            tuner.fit_result.model_version
            if tuner.fit_result is not None else 0
        )
        return (
            True,
            (best.config, best.predicted_tflops, best.measured_tflops,
             version),
        )
