"""Deterministic fault injection: the serving tier's chaos plane.

The robustness machinery in the serving stack — reply deadlines, the
hung-worker watchdog, the circuit breaker, quarantine-and-rebuild of
corrupt state files — only earns trust if its failure paths can be
*driven*, deterministically, in tests.  This module provides that
driver.

A :class:`FaultPlan` is a frozen, picklable description of faults to
inject: each :class:`FaultSpec` names an injection *site* (a dotted
path such as ``"worker.reply"`` or ``"candidate_store.load"``), a
trigger window (skip the first ``after`` hits, then fire at most
``times`` times), a firing ``probability``, and an *action*:

``raise``
    raise :class:`InjectedFault` at the checkpoint;
``sleep``
    delay ``delay_s`` seconds, then continue (latency injection);
``hang``
    delay ``hang_s`` seconds (default five minutes) — long enough
    that only an external deadline or watchdog can end the wait;
``corrupt``
    flip bytes of the file the checkpoint is guarding (sites that
    guard a file pass its path to :func:`inject`);
``kill``
    ``SIGKILL`` the current process (worker-crash injection).

Production code threads explicit ``inject(site)`` checkpoints through
its failure-relevant paths.  Disarmed (the default), a checkpoint is a
single global read — zero overhead.  Armed via :func:`arm` or the
:func:`armed` context manager, every fire decision is a pure function
of ``(plan seed, site, hit index)``: replaying the same plan against
the same call sequence fires the same faults, which is what makes
chaos test failures reproducible.

The plan is plain data (stdlib only, no numpy) so it can be pickled
over a worker pipe and armed inside a live worker process.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "arm",
    "armed",
    "disarm",
    "fire_log",
    "inject",
]

_ACTIONS = ("raise", "sleep", "hang", "corrupt", "kill")


class InjectedFault(RuntimeError):
    """An error raised on purpose by an armed :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it triggers, when, and what it does."""

    site: str
    action: str = "raise"
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    delay_s: float = 0.05
    hang_s: float = 300.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("site must be a non-empty dotted path")
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 (or None for unbounded), got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0 or self.hang_s < 0:
            raise ValueError("delay_s and hang_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of :class:`FaultSpec`s.

    The plan itself is immutable; per-site hit counters live in the
    armed runtime state, not here, so one plan value can be armed in
    several processes at once (parent and workers) without sharing
    mutable state.
    """

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted({s.site for s in self.specs}))


def _draw(seed: int, site: str, spec_index: int, hit: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (spec, hit) pair."""
    token = f"{seed}:{site}:{spec_index}:{hit}".encode()
    raw = int.from_bytes(hashlib.blake2b(token, digest_size=8).digest(), "big")
    return raw / float(1 << 64)


class _ArmedPlan:
    """Runtime state for one armed plan: hit/fire counters + fire log."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self.log: list[tuple[str, int, str]] = []

    def decide(self, site: str) -> list[FaultSpec]:
        """Advance counters for ``site`` and return the specs that fire."""
        firing: list[FaultSpec] = []
        with self._lock:
            for idx, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                hit = self._hits.get(idx, 0)
                self._hits[idx] = hit + 1
                if hit < spec.after:
                    continue
                if spec.times is not None and self._fired.get(idx, 0) >= spec.times:
                    continue
                if spec.probability < 1.0 and _draw(
                    self.plan.seed, site, idx, hit
                ) >= spec.probability:
                    continue
                self._fired[idx] = self._fired.get(idx, 0) + 1
                self.log.append((site, hit, spec.action))
                firing.append(spec)
        return firing

    def fire_counts(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for idx, n in self._fired.items():
                site = self.plan.specs[idx].site
                counts[site] = counts.get(site, 0) + n
            return counts


_armed: _ArmedPlan | None = None
_arm_lock = threading.Lock()


def arm(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide, replacing any previously armed plan."""
    global _armed
    with _arm_lock:
        _armed = _ArmedPlan(plan)


def disarm() -> None:
    """Disarm fault injection; checkpoints return to zero-cost no-ops."""
    global _armed
    with _arm_lock:
        _armed = None


@contextmanager
def armed(plan: FaultPlan) -> Iterator[None]:
    """Context manager: arm ``plan`` for the block, then disarm."""
    arm(plan)
    try:
        yield
    finally:
        disarm()


def fire_log() -> tuple[tuple[str, int, str], ...]:
    """(site, hit index, action) tuples fired so far, in firing order."""
    state = _armed
    if state is None:
        return ()
    with state._lock:
        return tuple(state.log)


def fire_counts() -> dict[str, int]:
    """Fired-fault counts per site for the currently armed plan."""
    state = _armed
    return {} if state is None else state.fire_counts()


def _corrupt_file(path: "os.PathLike[str] | str", seed: int, hit: int) -> None:
    """Flip bytes of ``path`` at deterministic, seed-derived offsets."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    token = f"{seed}:corrupt:{hit}".encode()
    base = int.from_bytes(hashlib.blake2b(token, digest_size=8).digest(), "big")
    with open(path, "r+b") as fh:
        for i in range(8):
            offset = (base + i * 2654435761) % size
            fh.seek(offset)
            byte = fh.read(1)
            if not byte:
                continue
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))


def inject(site: str, path: "os.PathLike[str] | str | None" = None) -> None:
    """Fault-injection checkpoint.

    No-op (one global read) unless a plan is armed.  ``path`` is the
    file a persistence checkpoint is guarding; only ``corrupt`` faults
    use it.
    """
    state = _armed
    if state is None:
        return
    for spec in state.decide(site):
        if spec.action == "raise":
            raise InjectedFault(f"injected fault at {site!r}")
        if spec.action == "sleep":
            time.sleep(spec.delay_s)
        elif spec.action == "hang":
            time.sleep(spec.hang_s)
        elif spec.action == "corrupt":
            if path is not None:
                with state._lock:
                    hit = len(state.log)
                _corrupt_file(path, state.plan.seed, hit)
        elif spec.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
