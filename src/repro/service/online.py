"""The online learning loop: replay buffer -> fine-tune -> versioned swap.

The offline/runtime split of the paper is absolute: fits are frozen at
tune time, yet the serving stack *measures* every reranked miss and then
throws the (features, measured-time) pair away.  This module closes that
loop.  Three pieces, deliberately engine-agnostic so both front doors
(and tests) drive them directly:

* :class:`ReplayBuffer` — a seeded, bounded reservoir of raw feature
  rows + log2-TFLOPS targets.  Once full, each new pair replaces a
  uniformly random resident (classic reservoir sampling), so the buffer
  stays an unbiased sample of everything ever observed while old traffic
  ages out statistically rather than by decree.  Seeded: the same
  insertion sequence always yields the same buffer contents.

* :func:`fine_tune_fit` — warm-starts a *copy* of the current model and
  runs a few :func:`repro.mlp.training.train` epochs on buffer pairs
  plus a held-out **anchor slice** of the original offline dataset.  The
  anchor pins the loss surface near the offline optimum, so a burst of
  narrow traffic cannot catastrophically forget the rest of the shape
  space.  Scalers are frozen — the feature/target transforms a fit
  shipped with are part of its identity (and of every prescaled ``H0``
  term derived from it), so fine-tuning only ever moves weights.

* :class:`OnlineLearner` — per-(device, op) orchestration: cadence
  (every ``update_every`` new pairs, or ``interval_s`` wall-clock for
  liveness), a FIFO queue of training snapshots, the monotonic version
  counter, and the replayable :class:`UpdateRecord` log.  Snapshots are
  captured at the moment the cadence trips, *not* when the background
  task gets around to training — so the bytes of every fine-tuned fit
  depend only on the traffic sequence and the pinned cadence, never on
  scheduler timing.  That is the online reproducibility contract: replay
  the same traffic, get bit-identical fits (the wall-clock trigger is
  explicitly outside it and off by default).

The atomic hot-swap itself lives in :class:`~repro.service.engine.Engine`
(it owns the per-tuner locks a swap must hold); workers re-adopt new
fits through :meth:`~repro.service.worker_pool.WorkerPool.broadcast_fits`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.mlp.crossval import FitLineage, FitResult, _maybe_log
from repro.mlp.losses import mse
from repro.mlp.network import MLP
from repro.mlp.optimizers import Adam
from repro.mlp.training import train

__all__ = [
    "OnlineConfig",
    "ReplayBuffer",
    "UpdateRecord",
    "ModelUpdate",
    "OnlineLearner",
    "fine_tune_fit",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online loop (all pinned: they are part of the
    reproducibility contract, not free-running heuristics).

    ``update_every`` is the deterministic cadence: a training snapshot
    is captured every N *observed* pairs per (device, op).  ``interval_s``
    adds a wall-clock liveness trigger for long-idle services — it
    changes *when* a snapshot is cut, so replays that rely on
    bit-identity leave it ``None`` (the default).

    ``rollback_tolerance`` is the regression guard: when set, a
    fine-tune whose anchor-slice ``val_mse`` exceeds the parent fit's by
    more than this relative fraction is *rejected* — the candidate fit
    is discarded instead of hot-swapped, and the rejection is logged in
    ``online_updates.json``.  ``None`` (the default) disables the guard;
    a negative value makes the guard strict enough to reject any
    non-improving update (chaos tests use it to force rejections).
    """

    buffer_capacity: int = 4096
    seed: int = 0
    update_every: int = 64
    interval_s: float | None = None
    epochs: int = 4
    batch_size: int = 64
    lr: float = 5e-4
    anchor_size: int = 512
    rollback_tolerance: float | None = None

    def __post_init__(self):
        if self.buffer_capacity <= 0:
            raise ValueError(
                f"buffer_capacity must be positive, got {self.buffer_capacity}"
            )
        if self.update_every <= 0:
            raise ValueError(
                f"update_every must be positive, got {self.update_every}"
            )
        if self.interval_s is not None and self.interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {self.interval_s}"
            )
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.anchor_size < 0:
            raise ValueError(
                f"anchor_size must be >= 0, got {self.anchor_size}"
            )


# ----------------------------------------------------------------------
# The replay buffer
# ----------------------------------------------------------------------

class ReplayBuffer:
    """A seeded, bounded reservoir of (raw features, log2-TFLOPS) pairs.

    Thread-safe.  Below capacity every pair is kept; at capacity each
    arrival replaces a uniformly random resident with probability
    ``capacity / total`` (reservoir sampling), so the buffer remains an
    unbiased sample of the full observation stream.  Determinism: one
    ``default_rng(seed)`` draw per overflowing add means the contents
    are a pure function of the insertion sequence.
    """

    def __init__(self, capacity: int, n_features: int, seed: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_features <= 0:
            raise ValueError(
                f"n_features must be positive, got {n_features}"
            )
        self.capacity = int(capacity)
        self.n_features = int(n_features)
        self._x = np.empty((capacity, n_features), dtype=np.float64)
        self._y = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._total = 0
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def total(self) -> int:
        """Pairs ever observed (monotonic, unlike ``len``)."""
        with self._lock:
            return self._total

    def add(self, features: np.ndarray, y: float) -> int:
        """Record one pair; returns the new observation total."""
        row = np.asarray(features, dtype=np.float64).ravel()
        if row.shape[0] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {row.shape[0]}"
            )
        with self._lock:
            self._total += 1
            if self._size < self.capacity:
                self._x[self._size] = row
                self._y[self._size] = float(y)
                self._size += 1
            else:
                j = int(self._rng.integers(self._total))
                if j < self.capacity:
                    self._x[j] = row
                    self._y[j] = float(y)
            return self._total

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """A consistent copy of the current contents (x, y)."""
        with self._lock:
            return (
                self._x[: self._size].copy(),
                self._y[: self._size].copy(),
            )


# ----------------------------------------------------------------------
# Fine-tuning
# ----------------------------------------------------------------------

def _clone_model(model: MLP) -> MLP:
    clone = MLP(
        model.n_features,
        model.hidden,
        activation=model.layers[0].activation.name,
        seed=0,
    )
    clone.set_weights(model.get_weights())
    return clone


def fine_tune_fit(
    fit: FitResult,
    x_raw: np.ndarray,
    y: np.ndarray,
    *,
    anchor_x: np.ndarray | None = None,
    anchor_y: np.ndarray | None = None,
    config: OnlineConfig,
    lineage: FitLineage,
) -> FitResult:
    """A few warm-started epochs on buffer + anchor pairs; new FitResult.

    ``x_raw`` rows are raw (un-logged) feature vectors in the op's
    ``[config | shape]`` layout — exactly ``OpSpec.encode(log=False)``
    and exactly the offline ``Dataset.x`` convention, so anchor rows mix
    in unmodified.  ``y`` is log2(TFLOPS), the offline target.  The
    fit's scalers are reused frozen (transforms are part of the model's
    identity); only the weights of a *copy* move, so the caller decides
    when the live model swaps.
    """
    xs = _maybe_log(np.atleast_2d(x_raw), True)
    ys = np.asarray(y, dtype=np.float64).ravel()
    have_anchor = (
        anchor_x is not None and anchor_y is not None and len(anchor_x) > 0
    )
    if have_anchor:
        xa = _maybe_log(np.atleast_2d(anchor_x), True)
        ya = np.asarray(anchor_y, dtype=np.float64).ravel()
        x_all = np.vstack([xs, xa])
        y_all = np.concatenate([ys, ya])
    else:
        x_all, y_all = xs, ys

    model = _clone_model(fit.model)
    zx = fit.x_scaler.transform(x_all)
    zy = fit.y_scaler.transform(y_all)
    history = train(
        model,
        zx,
        zy,
        epochs=config.epochs,
        batch_size=config.batch_size,
        optimizer=Adam(lr=config.lr),
        seed=config.seed,
        shuffle=True,
    )
    # Score on the anchor slice when there is one: it is the held-out
    # guard against forgetting.  Otherwise score on the tune pairs.
    if have_anchor:
        val = mse(model.predict(fit.x_scaler.transform(xa)),
                  fit.y_scaler.transform(ya))
    else:
        val = mse(model.predict(zx), zy)
    return FitResult(
        model=model,
        x_scaler=fit.x_scaler,
        y_scaler=fit.y_scaler,
        history=history,
        val_mse=float(val),
        lineage=lineage,
    )


# ----------------------------------------------------------------------
# Update log
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UpdateRecord:
    """One line of the replayable update log.

    ``digest`` is the BLAKE2b of the fine-tuned fit's bytes: replaying
    the same traffic with the same :class:`OnlineConfig` must reproduce
    every digest, which is how the reproducibility contract is audited
    without storing full fit blobs per update.

    ``status`` is ``"applied"`` for a hot-swapped fit and ``"rejected"``
    for a candidate the rollback guard discarded (its ``val_mse``
    regressed the anchor slice beyond ``rollback_tolerance`` relative to
    ``parent_val_mse``).  Rejected records keep the digest so a replay
    can audit the discarded bytes too.
    """

    device: str
    op: str
    version: int
    parent_version: int
    trigger: str            # "pairs" | "interval" | "flush"
    n_buffer: int
    n_anchor: int
    total_pairs: int
    val_mse: float
    digest: str
    status: str = "applied"     # "applied" | "rejected"
    parent_val_mse: float = float("nan")

    def to_json(self) -> dict:
        return {
            "device": self.device, "op": self.op,
            "version": self.version,
            "parent_version": self.parent_version,
            "trigger": self.trigger, "n_buffer": self.n_buffer,
            "n_anchor": self.n_anchor, "total_pairs": self.total_pairs,
            "val_mse": self.val_mse, "digest": self.digest,
            "status": self.status, "parent_val_mse": self.parent_val_mse,
        }


@dataclass(frozen=True)
class ModelUpdate:
    """One fine-tuned fit ready for the engine to hot-swap in."""

    device: str
    op: str
    fit: FitResult
    record: UpdateRecord


# ----------------------------------------------------------------------
# The learner
# ----------------------------------------------------------------------

@dataclass
class _Snapshot:
    """One queued training job, frozen at cadence-trip time."""

    x: np.ndarray
    y: np.ndarray
    total: int
    trigger: str


class _PairState:
    """Everything the learner tracks for one (device, op)."""

    __slots__ = (
        "buffer", "anchor_x", "anchor_y", "fit", "version",
        "last_snapshot_total", "last_update_t", "jobs",
    )

    def __init__(
        self,
        buffer: ReplayBuffer,
        anchor_x: np.ndarray | None,
        anchor_y: np.ndarray | None,
        fit: FitResult,
        version: int,
    ):
        self.buffer = buffer
        self.anchor_x = anchor_x
        self.anchor_y = anchor_y
        self.fit = fit
        self.version = version
        self.last_snapshot_total = 0
        self.last_update_t = time.monotonic()
        self.jobs: deque[_Snapshot] = deque()


class OnlineLearner:
    """Cadenced fine-tuning over per-(device, op) replay buffers.

    The learner owns no locks on the serving path's models: it trains
    detached copies and hands finished :class:`ModelUpdate` objects to
    whoever called :meth:`run_due` — the engine applies them under its
    per-tuner locks.  Observation, cadence and training are decoupled so
    a slow fine-tune can never stall a search, while snapshot capture at
    cadence-trip time keeps the produced bytes schedule-independent.
    """

    def __init__(self, config: OnlineConfig | None = None):
        self.config = config or OnlineConfig()
        self._states: dict[tuple[str, str], _PairState] = {}
        self._lock = threading.Lock()
        self._log: list[UpdateRecord] = []
        self._train_lock = threading.Lock()

    # -- registration --------------------------------------------------
    def ensure_registered(
        self,
        device: str,
        op: str,
        make: Callable[[], tuple[FitResult, np.ndarray | None,
                                  np.ndarray | None, int]],
    ) -> _PairState:
        """The state for (device, op), creating it from ``make`` once.

        ``make`` returns (fit, full anchor x, full anchor y, n_features);
        the anchor slice is subsampled here with the pinned seed so every
        replica of the same traffic carves the same slice.
        """
        key = (device, op)
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                return state
        fit, ax, ay, n_features = make()
        cfg = self.config
        if ax is not None and len(ax) > cfg.anchor_size:
            rng = np.random.default_rng(cfg.seed)
            idx = rng.permutation(len(ax))[: cfg.anchor_size]
            idx.sort()
            ax, ay = ax[idx].copy(), ay[idx].copy()
        version = fit.model_version
        state = _PairState(
            ReplayBuffer(cfg.buffer_capacity, n_features, seed=cfg.seed),
            ax, ay, fit, version,
        )
        with self._lock:
            return self._states.setdefault(key, state)

    def registered(self) -> tuple[tuple[str, str], ...]:
        with self._lock:
            return tuple(sorted(self._states))

    # -- observation + cadence -----------------------------------------
    def observe(
        self, device: str, op: str, features: np.ndarray, tflops: float
    ) -> bool:
        """Record one measured pair; True if a training job became due."""
        with self._lock:
            state = self._states.get((device, op))
        if state is None or not np.isfinite(tflops) or tflops <= 0:
            return False
        y = float(np.log2(max(float(tflops), 1e-6)))
        total = state.buffer.add(features, y)
        with self._lock:
            if total - state.last_snapshot_total >= self.config.update_every:
                self._capture_locked(state, "pairs")
                return True
        return False

    def tick(self, now: float | None = None) -> bool:
        """Wall-clock liveness cadence; True if any job became due."""
        interval = self.config.interval_s
        if interval is None:
            return False
        now = time.monotonic() if now is None else now
        due = False
        with self._lock:
            for state in self._states.values():
                if (
                    state.buffer.total > state.last_snapshot_total
                    and now - state.last_update_t >= interval
                ):
                    self._capture_locked(state, "interval")
                    due = True
        return due

    def _capture_locked(self, state: _PairState, trigger: str) -> None:
        x, y = state.buffer.snapshot()
        state.last_snapshot_total = state.buffer.total
        state.last_update_t = time.monotonic()
        state.jobs.append(_Snapshot(x=x, y=y, total=state.last_snapshot_total,
                                    trigger=trigger))

    def pending(self) -> int:
        with self._lock:
            return sum(len(s.jobs) for s in self._states.values())

    # -- training ------------------------------------------------------
    def run_due(self) -> list[ModelUpdate]:
        """Fine-tune every queued snapshot, FIFO per pair; returns swaps.

        Serialized by a train lock: concurrent callers (a background
        task racing a close-flush) never interleave updates of one pair,
        so the version chain stays linear.
        """
        from repro.mlp.serialize import fit_to_bytes

        updates: list[ModelUpdate] = []
        with self._train_lock:
            while True:
                with self._lock:
                    item = None
                    for key, state in self._states.items():
                        if state.jobs:
                            item = (key, state, state.jobs.popleft())
                            break
                if item is None:
                    break
                (device, op), state, snap = item
                if len(snap.x) == 0:
                    continue
                parent = state.version
                lineage = FitLineage(
                    model_version=parent + 1,
                    parent_version=parent,
                    n_samples=len(snap.x) + (
                        len(state.anchor_x) if state.anchor_x is not None
                        else 0
                    ),
                    seed=self.config.seed,
                )
                from repro.service.faults import inject

                inject("online.fine_tune")
                fit = fine_tune_fit(
                    state.fit, snap.x, snap.y,
                    anchor_x=state.anchor_x, anchor_y=state.anchor_y,
                    config=self.config, lineage=lineage,
                )
                digest = hashlib.blake2b(
                    fit_to_bytes(fit), digest_size=16
                ).hexdigest()
                parent_val, rejected = self._judge(state, fit)
                record = UpdateRecord(
                    device=device, op=op,
                    version=lineage.model_version,
                    parent_version=parent,
                    trigger=snap.trigger,
                    n_buffer=len(snap.x),
                    n_anchor=(
                        len(state.anchor_x) if state.anchor_x is not None
                        else 0
                    ),
                    total_pairs=snap.total,
                    val_mse=fit.val_mse,
                    digest=digest,
                    status="rejected" if rejected else "applied",
                    parent_val_mse=parent_val,
                )
                with self._lock:
                    if not rejected:
                        state.fit = fit
                        state.version = lineage.model_version
                    self._log.append(record)
                if not rejected:
                    updates.append(ModelUpdate(device, op, fit, record))
        return updates

    def _judge(
        self, state: _PairState, fit: FitResult
    ) -> tuple[float, bool]:
        """(parent anchor val_mse, reject?) for one candidate fit.

        The guard compares the candidate's anchor-slice ``val_mse`` to
        the *parent's* on the same slice, through the same frozen
        scalers, so the two numbers are directly comparable.  Disabled
        (tolerance None) or with no anchor slice, nothing is rejected —
        there is no held-out signal to judge by.
        """
        tol = self.config.rollback_tolerance
        anchored = (
            state.anchor_x is not None
            and state.anchor_y is not None
            and len(state.anchor_x) > 0
        )
        if tol is None or not anchored:
            return float("nan"), False
        xa = state.fit.x_scaler.transform(
            _maybe_log(np.atleast_2d(state.anchor_x), True)
        )
        ya = state.fit.y_scaler.transform(
            np.asarray(state.anchor_y, dtype=np.float64).ravel()
        )
        parent_val = float(mse(state.fit.model.predict(xa), ya))
        return parent_val, bool(fit.val_mse > parent_val * (1.0 + tol))

    def flush(self) -> list[ModelUpdate]:
        """Consume every unconsumed pair now (the close() path).

        Captures a final snapshot for any pair with observations newer
        than its last one, then trains everything queued.
        """
        with self._lock:
            for state in self._states.values():
                if state.buffer.total > state.last_snapshot_total:
                    self._capture_locked(state, "flush")
        return self.run_due()

    # -- introspection -------------------------------------------------
    def version(self, device: str, op: str) -> int:
        with self._lock:
            state = self._states.get((device, op))
            return state.version if state is not None else 0

    def latest_fit(self, device: str, op: str) -> FitResult | None:
        with self._lock:
            state = self._states.get((device, op))
            return state.fit if state is not None else None

    def update_log(self) -> tuple[UpdateRecord, ...]:
        with self._lock:
            return tuple(self._log)

    def describe(self) -> dict[tuple[str, str], dict]:
        """Per-pair counters for stats endpoints and the CLI."""
        out: dict[tuple[str, str], dict] = {}
        with self._lock:
            states: Iterable = list(self._states.items())
            log = list(self._log)
        for key, state in states:
            updates = [r for r in log if (r.device, r.op) == key]
            out[key] = {
                "version": state.version,
                "buffer_size": len(state.buffer),
                "total_pairs": state.buffer.total,
                "pending_jobs": len(state.jobs),
                "updates": len(
                    [r for r in updates if r.status == "applied"]
                ),
                "rejections": len(
                    [r for r in updates if r.status == "rejected"]
                ),
                "val_mse": state.fit.val_mse,
            }
        return out
