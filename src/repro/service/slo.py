"""SLO-driven config compiler for the serving stack.

The serving tier exposes a dozen-plus interacting knobs (flush window,
batch and admission bounds, shard queue depth, LRU capacity, thread-pool
width, worker processes, deadlines, breaker thresholds, online cadence).
Hand-balancing them requires knowing how they interact; this module
replaces that with the config-compiler pattern: adopters state a
:class:`ServingSLO` (at most five parameters -- target throughput, a p95
latency budget, a memory cap, a workload modifier and an optional worker
count) and :meth:`ServingSLO.compile` derives every internal knob from
it.

Parameters fall into four buckets:

``SLO``
    The five adopter-facing inputs on :class:`ServingSLO`.
``derived``
    Everything computed from the SLO: ``window_ms``, ``max_batch``,
    ``max_pending``, ``max_queue``, ``lru_capacity``, thread widths,
    worker supervision timeouts, breaker settings, the recommended
    per-request deadline and the online update cadence.
``expert``
    Escape hatches the compiler leaves alone unless the adopter reaches
    past the SLO surface (`deadline_ms` applied per request,
    ``cascade_keep`` overriding the calibrated survivor count).
``pinned``
    Values with one correct setting (`max_shards`, cascade enabled).

Guard rails run before anything boots.  Every violated rail is collected
-- there are no silent clamps and no first-error-only reporting -- and
raised as one :class:`SLOConfigError` whose message names each rail.

The same rail vocabulary backs :func:`check_serving_knobs`, which the
``serve`` CLI routes raw (non-SLO) knobs through so nonsensical
combinations (negative deadlines, ``max_batch > max_pending``, a zero
cascade survivor count) are rejected with the same aggregated report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.service.engine import EngineError

__all__ = [
    "MEMORY_FLOOR_MB",
    "MIN_WINDOW_MS",
    "MAX_WINDOW_MS",
    "SLOConfigError",
    "ServingPlan",
    "ServingSLO",
    "Violation",
    "WORKLOAD_PROFILES",
    "WorkloadProfile",
    "check_serving_knobs",
    "validate_serving_knobs",
]

# Smallest memory cap the compiler will plan for.  Below this even the
# floor-sized LRU plus one admission window of pending requests does not
# fit, so the spec is rejected rather than silently shrunk.
MEMORY_FLOOR_MB = 64.0

# Flush-window clamp.  Below half a millisecond the event-loop timer
# resolution dominates and batching stops paying for itself; above 20 ms
# the window itself becomes a visible latency tax on every cold miss.
MIN_WINDOW_MS = 0.5
MAX_WINDOW_MS = 20.0

# Sizing model for the memory-derived bounds.  A pending request is an
# asyncio future plus a small request dataclass (~8 KiB with queue and
# bookkeeping overhead); an LRU entry is a keyed kernel config plus
# timing metadata (~2 KiB).  The shares keep the two pools from jointly
# over-committing the cap: a quarter for in-flight admission, half for
# the profile cache, the rest headroom for the model and executor.
PENDING_KB = 8.0
LRU_KB = 2.0
PENDING_SHARE = 0.25
LRU_SHARE = 0.5

# Hard bounds on derived values that are independent of the SLO.
MIN_BATCH = 8
MAX_BATCH = 512
MIN_LRU = 256
MAX_WORKER_PROCS = 64
MAX_FLUSH_THREADS = 8

# The recommended per-request deadline is a multiple of the p95 budget:
# tight enough to shed requests that already blew the SLO, loose enough
# that an ordinary cold-path search is not sheared off.
DEADLINE_P95_MULT = 4.0


@dataclass(frozen=True)
class Violation:
    """One violated guard rail: a stable slug plus a human sentence."""

    rail: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rail}] {self.message}"


class SLOConfigError(EngineError):
    """Aggregated guard-rail report raised before anything boots.

    Every violated rail is listed -- callers never see a first-error-only
    message and the compiler never silently clamps an unsafe value.
    """

    def __init__(self, violations: tuple[Violation, ...] | list[Violation]):
        self.violations = tuple(violations)
        lines = [
            f"serving config rejected: {len(self.violations)} guard-rail "
            f"violation(s)"
        ]
        lines.extend(f"  [{v.rail}] {v.message}" for v in self.violations)
        super().__init__("\n".join(lines))

    @property
    def rails(self) -> tuple[str, ...]:
        """Stable slugs of every violated rail, in report order."""
        return tuple(v.rail for v in self.violations)


@dataclass(frozen=True)
class WorkloadProfile:
    """Calibrated shape of one workload modifier.

    The numbers are calibrated against the zipf workloads in
    ``benchmarks/bench_serving_async.py`` (see ``tests/test_slo.py``,
    which replays scaled-down versions of those workloads through each
    preset and asserts the compiled plan meets its budget).
    """

    name: str
    # Fraction of the p95 budget spent waiting for a flush window.
    window_frac: float
    # Peak-to-mean arrival ratio the admission bounds must absorb.
    burst: float
    # Expected distinct (device, op, shape, k, reps) population.
    distinct_shapes: int
    # Expected fraction of queries that miss every cache level.
    miss_ratio: float
    # Consecutive worker-tier failures before the breaker opens.
    breaker_threshold: int


WORKLOAD_PROFILES: dict[str, WorkloadProfile] = {
    # Flat arrival rate, warm working set: spend little of the budget
    # on the window, size admission for mild 2x bursts.
    "steady": WorkloadProfile(
        name="steady",
        window_frac=1 / 20,
        burst=2.0,
        distinct_shapes=4096,
        miss_ratio=0.02,
        breaker_threshold=8,
    ),
    # Spiky arrivals: a wider window amortises the spikes into larger
    # batches and admission absorbs 6x peaks; the breaker is slower to
    # open because bursts produce correlated transient failures.
    "bursty": WorkloadProfile(
        name="bursty",
        window_frac=1 / 10,
        burst=6.0,
        distinct_shapes=4096,
        miss_ratio=0.05,
        breaker_threshold=16,
    ),
    # Cold-heavy: most queries search, so the window stays narrow (the
    # search dominates latency, batching buys little), the LRU is sized
    # for a large distinct population and the breaker trips fast.
    "cold-heavy": WorkloadProfile(
        name="cold-heavy",
        window_frac=1 / 40,
        burst=2.0,
        distinct_shapes=32768,
        miss_ratio=0.50,
        breaker_threshold=4,
    ),
}


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def _is_finite_number(value: object) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


@dataclass(frozen=True)
class ServingPlan:
    """A fully derived serving configuration plus its derivation trace.

    Produced only by :meth:`ServingSLO.compile`; every field except the
    originating ``slo`` is a derived or pinned knob.  ``derivation``
    records one ``(knob, value, why)`` triple per derived knob so the
    CLI can print how each setting follows from the SLO.
    """

    slo: ServingSLO
    window_ms: float
    max_batch: int
    max_pending: int
    max_queue: int
    max_shards: int
    lru_capacity: int
    flush_threads: int
    engine_threads: int
    workers: int
    worker_timeout_s: float | None
    worker_heartbeat_s: float | None
    deadline_ms: float
    breaker_threshold: int
    breaker_reset_s: float
    online_update_every: int
    cascade: bool = True
    cascade_keep: int | None = None
    derivation: tuple[tuple[str, str, str], ...] = field(default=())

    def async_kwargs(self) -> dict[str, object]:
        """Keyword arguments for the ``AsyncEngine`` constructor."""
        kwargs: dict[str, object] = {
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "max_pending": self.max_pending,
            "max_queue": self.max_queue,
            "max_shards": self.max_shards,
            "max_workers": self.flush_threads,
            "workers": self.workers,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
        }
        if self.workers > 0:
            kwargs["worker_timeout_s"] = self.worker_timeout_s
            kwargs["worker_heartbeat_s"] = self.worker_heartbeat_s
        return kwargs

    def engine_kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``Engine.open`` / ``Engine()``."""
        return {
            "lru_capacity": self.lru_capacity,
            "max_workers": self.engine_threads,
            "cascade": self.cascade,
            "cascade_keep": self.cascade_keep,
        }

    def describe(self) -> str:
        """Human-readable plan: inputs, derivation, classification."""
        slo = self.slo
        workers = "auto" if slo.workers is None else str(slo.workers)
        lines = [
            "compiled serving plan",
            "  SLO inputs:",
            f"    target_qps={slo.target_qps:g}  p95_ms={slo.p95_ms:g}  "
            f"memory_mb={slo.memory_mb:g}  workload={slo.workload}  "
            f"workers={workers}",
            "  derived:",
        ]
        for knob, value, why in self.derivation:
            lines.append(f"    {knob}={value}  <- {why}")
        lines.append(
            "  expert: deadline_ms is a recommendation -- pass it "
            "per-request (or --deadline-ms) to enforce shedding; "
            "cascade_keep left to the calibrated policy"
        )
        lines.append(
            f"    max_shards={self.max_shards}  cascade="
            f"{'on' if self.cascade else 'off'}"
        )
        lines[-1] = "  pinned:" + "\n  " + lines[-1]
        return "\n".join(lines)


@dataclass(frozen=True)
class ServingSLO:
    """Adopter-facing service-level objective: at most five inputs.

    Parameters
    ----------
    target_qps:
        Sustained throughput the deployment must absorb, in requests
        per second.
    p95_ms:
        End-to-end p95 latency budget for warm (cache-hit) traffic, in
        milliseconds.  Cold searches are governed by the derived
        deadline recommendation instead.
    memory_mb:
        Cap on serving-tier state (admission queue + profile cache).
    workload:
        One of ``steady`` / ``bursty`` / ``cold-heavy``; picks the
        calibrated :class:`WorkloadProfile`.
    workers:
        Optional worker-process count.  ``None`` means in-process
        execution (no worker tier); the compiler derives supervision
        timeouts only when workers are requested.
    """

    target_qps: float
    p95_ms: float
    memory_mb: float = 512.0
    workload: str = "steady"
    workers: int | None = None

    def compile(self) -> ServingPlan:
        """Derive the full knob set, or raise :class:`SLOConfigError`.

        All guard rails are evaluated before raising so the report
        names every violation, not just the first.
        """
        violations: list[Violation] = []

        qps_ok = _is_finite_number(self.target_qps) and self.target_qps > 0
        if not qps_ok:
            violations.append(
                Violation(
                    "qps-positive",
                    f"target_qps must be a positive finite number, got "
                    f"{self.target_qps!r}",
                )
            )
        p95_ok = _is_finite_number(self.p95_ms) and self.p95_ms > 0
        if not p95_ok:
            violations.append(
                Violation(
                    "p95-positive",
                    f"p95_ms must be a positive finite number, got "
                    f"{self.p95_ms!r}",
                )
            )
        mem_ok = (
            _is_finite_number(self.memory_mb)
            and self.memory_mb >= MEMORY_FLOOR_MB
        )
        if not mem_ok:
            violations.append(
                Violation(
                    "memory-floor",
                    f"memory_mb must be >= {MEMORY_FLOOR_MB:g} MB (the "
                    f"compiler will not plan below the floor), got "
                    f"{self.memory_mb!r}",
                )
            )
        profile = WORKLOAD_PROFILES.get(self.workload)
        if profile is None:
            known = ", ".join(sorted(WORKLOAD_PROFILES))
            violations.append(
                Violation(
                    "unknown-profile",
                    f"workload must be one of {known}, got "
                    f"{self.workload!r}",
                )
            )
        workers_ok = self.workers is None or (
            isinstance(self.workers, int)
            and 0 <= self.workers <= MAX_WORKER_PROCS
        )
        if not workers_ok:
            violations.append(
                Violation(
                    "workers-bound",
                    f"workers must be None or an int in "
                    f"[0, {MAX_WORKER_PROCS}], got {self.workers!r}",
                )
            )

        # Stand-ins let every remaining rail be evaluated even when an
        # input rail already fired -- the report must be complete.
        qps = self.target_qps if qps_ok else 1.0
        p95 = self.p95_ms if p95_ok else 100.0
        mem = self.memory_mb if mem_ok else MEMORY_FLOOR_MB
        prof = profile or WORKLOAD_PROFILES["steady"]
        workers = self.workers if workers_ok and self.workers else 0

        # --- window ---------------------------------------------------
        window_ms = _clamp(
            p95 * prof.window_frac, MIN_WINDOW_MS, MAX_WINDOW_MS
        )
        if p95_ok and self.p95_ms < 2 * MIN_WINDOW_MS:
            violations.append(
                Violation(
                    "window-vs-p95",
                    f"p95 budget {self.p95_ms:g} ms cannot fit one "
                    f"minimum flush window ({MIN_WINDOW_MS:g} ms) plus "
                    f"its flush; raise p95_ms to at least "
                    f"{2 * MIN_WINDOW_MS:g} ms",
                )
            )

        # --- batch / admission (Little's law) -------------------------
        max_batch = int(
            _clamp(
                math.ceil(qps * (window_ms / 1e3) * prof.burst),
                MIN_BATCH,
                MAX_BATCH,
            )
        )
        inflight = math.ceil(qps * (p95 / 1e3) * prof.burst)
        pending_budget = int(mem * 1024.0 * PENDING_SHARE / PENDING_KB)
        if inflight > pending_budget:
            violations.append(
                Violation(
                    "pending-vs-memory",
                    f"Little's-law in-flight estimate {inflight} "
                    f"(qps x p95 x burst {prof.burst:g}) exceeds the "
                    f"memory-derived admission budget {pending_budget} "
                    f"({PENDING_SHARE:.0%} of {mem:g} MB at "
                    f"{PENDING_KB:g} KiB/request); raise memory_mb or "
                    f"lower target_qps/p95_ms",
                )
            )
        max_pending = int(
            _clamp(max(inflight, max_batch), max_batch, pending_budget)
        )
        max_queue = int(
            _clamp(
                max(2 * max_batch, math.ceil(max_pending / 4)),
                max_batch,
                max_pending,
            )
        )

        # --- caches ---------------------------------------------------
        lru_budget = int(mem * 1024.0 * LRU_SHARE / LRU_KB)
        if prof.distinct_shapes > lru_budget:
            violations.append(
                Violation(
                    "lru-vs-shapes",
                    f"the {prof.name} profile expects "
                    f"{prof.distinct_shapes} distinct shapes but the "
                    f"memory-derived LRU budget is {lru_budget} entries "
                    f"({LRU_SHARE:.0%} of {mem:g} MB at {LRU_KB:g} "
                    f"KiB/entry); raise memory_mb or use a warmer "
                    f"profile",
                )
            )
        lru_capacity = int(
            _clamp(prof.distinct_shapes, MIN_LRU, max(lru_budget, MIN_LRU))
        )

        # --- threads / workers ----------------------------------------
        if workers > 0:
            flush_threads = int(_clamp(workers + 1, 2, MAX_FLUSH_THREADS))
        else:
            miss_qps = qps * prof.miss_ratio
            flush_threads = int(
                _clamp(math.ceil(miss_qps / 50.0) + 1, 2, MAX_FLUSH_THREADS)
            )
        engine_threads = flush_threads

        # --- deadlines / breaker / online cadence ---------------------
        deadline_ms = DEADLINE_P95_MULT * p95
        breaker_threshold = prof.breaker_threshold
        breaker_reset_s = _clamp(deadline_ms / 1e3 * 4.0, 5.0, 60.0)
        worker_timeout_s = (
            max(5.0, deadline_ms / 1e3 * 10.0) if workers > 0 else None
        )
        worker_heartbeat_s = (
            max(1.0, worker_timeout_s / 4.0) if workers > 0 else None
        )
        online_update_every = int(_clamp(math.ceil(qps), 64, 1024))

        if violations:
            raise SLOConfigError(violations)

        derivation = (
            (
                "window_ms",
                f"{window_ms:g}",
                f"p95 x {prof.window_frac:g} ({prof.name}), clamped to "
                f"[{MIN_WINDOW_MS:g}, {MAX_WINDOW_MS:g}] ms",
            ),
            (
                "max_batch",
                f"{max_batch}",
                f"qps x window x burst {prof.burst:g}, clamped to "
                f"[{MIN_BATCH}, {MAX_BATCH}]",
            ),
            (
                "max_pending",
                f"{max_pending}",
                f"Little's law in-flight {inflight} vs memory budget "
                f"{pending_budget}",
            ),
            (
                "max_queue",
                f"{max_queue}",
                "max(2 x batch, pending / 4) per shard",
            ),
            (
                "lru_capacity",
                f"{lru_capacity}",
                f"{prof.name} distinct-shape estimate "
                f"{prof.distinct_shapes} vs memory budget {lru_budget}",
            ),
            (
                "flush_threads",
                f"{flush_threads}",
                "workers + 1"
                if workers > 0
                else f"miss qps ({prof.miss_ratio:.0%} of target) / 50 "
                f"per thread",
            ),
            (
                "workers",
                f"{workers}",
                "SLO input" if self.workers else "in-process (no tier)",
            ),
            (
                "deadline_ms",
                f"{deadline_ms:g}",
                f"{DEADLINE_P95_MULT:g} x p95 budget (recommended "
                f"per-request shed point)",
            ),
            (
                "breaker",
                f"threshold={breaker_threshold} reset={breaker_reset_s:g}s",
                f"{prof.name} failure correlation; reset = 4 x deadline",
            ),
            (
                "online_update_every",
                f"{online_update_every}",
                "~1 s of traffic between fine-tune triggers",
            ),
        )

        return ServingPlan(
            slo=self,
            window_ms=window_ms,
            max_batch=max_batch,
            max_pending=max_pending,
            max_queue=max_queue,
            max_shards=64,
            lru_capacity=lru_capacity,
            flush_threads=flush_threads,
            engine_threads=engine_threads,
            workers=workers,
            worker_timeout_s=worker_timeout_s,
            worker_heartbeat_s=worker_heartbeat_s,
            deadline_ms=deadline_ms,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            online_update_every=online_update_every,
            derivation=derivation,
        )


def validate_serving_knobs(
    *,
    window_ms: float | None = None,
    max_batch: int | None = None,
    max_pending: int | None = None,
    deadline_ms: float | None = None,
    cascade_keep: int | None = None,
    workers: int | None = None,
    concurrency: int | None = None,
    passes: int | None = None,
    k: int | None = None,
    reps: int | None = None,
    online_every: int | None = None,
    online_epochs: int | None = None,
    breaker_threshold: int | None = None,
    breaker_reset_s: float | None = None,
) -> list[Violation]:
    """Check raw (non-SLO) serving knobs; return every violation.

    ``None`` means "not supplied, skip".  Used by the ``serve`` CLI so
    hand-set knobs go through the same guard-rail vocabulary as the
    compiler instead of reaching the constructors unchecked.
    """
    violations: list[Violation] = []

    def bad(rail: str, message: str) -> None:
        violations.append(Violation(rail, message))

    if window_ms is not None and (
        not _is_finite_number(window_ms) or window_ms < 0
    ):
        bad(
            "knob-window",
            f"window_ms must be >= 0 (0 = immediate flush), got "
            f"{window_ms!r}",
        )
    if max_batch is not None and max_batch < 1:
        bad("knob-max-batch", f"max_batch must be >= 1, got {max_batch!r}")
    if max_pending is not None and max_pending < 1:
        bad(
            "knob-max-pending",
            f"max_pending must be >= 1, got {max_pending!r}",
        )
    if (
        max_batch is not None
        and max_pending is not None
        and max_batch >= 1
        and max_pending >= 1
        and max_batch > max_pending
    ):
        bad(
            "batch-vs-pending",
            f"max_batch ({max_batch}) exceeds max_pending "
            f"({max_pending}): a full batch could never be admitted",
        )
    if deadline_ms is not None:
        if not _is_finite_number(deadline_ms) or deadline_ms <= 0:
            bad(
                "knob-deadline",
                f"deadline_ms must be > 0, got {deadline_ms!r}",
            )
        elif (
            window_ms is not None
            and _is_finite_number(window_ms)
            and deadline_ms <= window_ms
        ):
            bad(
                "deadline-vs-window",
                f"deadline_ms ({deadline_ms:g}) is not larger than the "
                f"flush window ({window_ms:g} ms): every batched "
                f"request would be shed before its flush",
            )
    if cascade_keep is not None and cascade_keep < 1:
        bad(
            "knob-cascade-keep",
            f"cascade_keep must be >= 1, got {cascade_keep!r}",
        )
    if workers is not None and workers < 0:
        bad("knob-workers", f"workers must be >= 0, got {workers!r}")
    if concurrency is not None and concurrency < 1:
        bad(
            "knob-concurrency",
            f"concurrency must be >= 1, got {concurrency!r}",
        )
    if passes is not None and passes < 1:
        bad("knob-passes", f"passes must be >= 1, got {passes!r}")
    if k is not None and k < 1:
        bad("knob-k", f"k must be >= 1, got {k!r}")
    if reps is not None and reps < 1:
        bad("knob-reps", f"reps must be >= 1, got {reps!r}")
    if online_every is not None and online_every < 1:
        bad(
            "knob-online-every",
            f"online update_every must be >= 1, got {online_every!r}",
        )
    if online_epochs is not None and online_epochs < 1:
        bad(
            "knob-online-epochs",
            f"online epochs must be >= 1, got {online_epochs!r}",
        )
    if breaker_threshold is not None and breaker_threshold < 1:
        bad(
            "knob-breaker-threshold",
            f"breaker_threshold must be >= 1, got {breaker_threshold!r}",
        )
    if breaker_reset_s is not None and (
        not _is_finite_number(breaker_reset_s) or breaker_reset_s <= 0
    ):
        bad(
            "knob-breaker-reset",
            f"breaker_reset_s must be > 0, got {breaker_reset_s!r}",
        )
    return violations


def check_serving_knobs(**knobs: object) -> None:
    """Raise :class:`SLOConfigError` if any raw knob violates a rail."""
    violations = validate_serving_knobs(**knobs)  # type: ignore[arg-type]
    if violations:
        raise SLOConfigError(violations)
