"""The sharded multi-process worker tier behind the async front door.

One saturated process is the serving tier's hard wall: the numpy MLP
forward passes hold the GIL, so dynamic micro-batching cannot scale past
a single core no matter how well it coalesces.  This module breaks the
wall with a pool of worker *processes* — each runs a
:class:`~repro.service.engine.WorkerEngine` rebuilt at warm boot from the
parent engine's exported state — and a consistent-hash ring that maps
request cache keys onto workers.

The expensive read-only state is **shared, not copied**: survivor
candidate columns and prescaled ``H0`` feature terms live in exactly one
:class:`~repro.core.soa.SharedArrayPack` segment created by the pool;
workers attach and rebuild numpy views over the same physical pages
(zero re-enumeration, zero per-worker copy).  Only the small artifacts —
fit bytes, record metadata, the manifest — travel over the boot pipe.

Lifecycle per worker: spawn (``spawn`` context; BLAS thread caps are set
in the child *before* numpy is imported, which is why this module's
import surface is stdlib-only), warm boot handshake (``ready`` with
zero-copy accounting, or ``boot-error``), then a lockstep RPC loop
driven by a parent-side manager thread.  A crash mid-flush (EOF, broken
pipe, dead process) respawns the worker and retries the same job up to
``retries`` times before failing its future with :class:`WorkerCrashed`;
a worker whose *respawn* fails is marked dead and every later job routed
to it fails fast, which the async engine answers by falling back to the
in-process path.  With ``reply_timeout_s`` set, a *hung-but-alive*
worker takes the same road: a reply that misses the deadline gets the
process killed, a fresh worker respawned from the same shared segment,
and the job replayed — hangs degrade into the crash path instead of
stalling a flush forever.  An optional watchdog (``heartbeat_s``) pings
each live worker between requests so a hang is caught even on an idle
pool.  ``close()`` drains each inbox, asks workers to exit, and unlinks
the shared segment exactly once — escalating ``terminate()`` to
``kill()`` for any worker that ignores it, so close never leaks a
process.

Determinism makes this tier safe: measurement noise is keyed BLAKE2b
(:mod:`repro.gpu.noise`), candidate materialization from shared columns
is bit-identical to the parent's, and fits round-trip bit-exactly — so a
worker's answer for any request equals the in-process answer, and retry
after a crash cannot change a result.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from concurrent.futures import Future
from typing import Any, Sequence

__all__ = ["WorkerCrashed", "WorkerPool"]

#: Virtual nodes per worker on the hash ring: enough that key ownership
#: stays near-uniform for small pools without measurable lookup cost.
_VNODES = 64

#: Seconds between liveness checks while waiting on a worker reply.  A
#: flush can legitimately run for seconds (device re-rank), so replies
#: have no deadline by default — death, or the pool's ``reply_timeout_s``
#: when one is configured, interrupts the wait.
_POLL_S = 0.1

#: Ceiling on one warm boot (imports + tuner rebuild + cache seeding).
_BOOT_TIMEOUT_S = 120.0

_CLOSE = object()


class WorkerCrashed(RuntimeError):
    """A worker died (and respawn/retry was exhausted) for this request."""


def _ring_hash(data: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


def _chaos(site: str) -> None:
    """Fault-injection checkpoint (:mod:`repro.service.faults`).

    Imported lazily: in the child this runs long after the BLAS env caps
    landed, and in the parent the service package is already up — either
    way the module's stdlib-only import surface stays intact.
    """
    from repro.service.faults import inject

    inject(site)


# ----------------------------------------------------------------------
# Child process entry point
# ----------------------------------------------------------------------

def _worker_main(conn, blas_threads: int) -> None:
    """Worker process: cap BLAS, warm-boot, then serve the RPC loop.

    The env caps must land before numpy's first import or they are
    ignored — the whole point of process sharding is one core per
    worker, and an oversubscribed BLAS pool would thrash it back away.
    """
    import os

    for var in (
        "OPENBLAS_NUM_THREADS",
        "OMP_NUM_THREADS",
        "MKL_NUM_THREADS",
        "NUMEXPR_NUM_THREADS",
    ):
        os.environ[var] = str(blas_threads)

    pack = None
    try:
        kind, boot = conn.recv()
        assert kind == "boot", kind
        from repro.core.soa import SharedArrayPack
        from repro.service.engine import WorkerEngine

        pack = SharedArrayPack.attach(boot["shm"], boot["manifest"])
        engine = WorkerEngine(
            boot["fits"],
            boot["records"],
            boot["prescaled"],
            pack.views(),
            shared_bytes=pack.nbytes,
            cascade=boot.get("cascade", ()),
            cascade_enabled=boot.get("cascade_enabled", True),
            cascade_keep=boot.get("cascade_keep"),
        )
        conn.send(("ready", engine.stats()))
    except BaseException:
        import traceback

        try:
            conn.send(("boot-error", traceback.format_exc()))
        except OSError:
            pass
        if pack is not None:
            pack.close()
        return

    try:
        while True:
            kind, payload = conn.recv()
            if kind == "exit":
                break
            if kind == "ping":
                conn.send(("pong", engine.stats()))
                continue
            if kind == "flush":
                device, op, shapes, k, reps = payload
                try:
                    _chaos("worker.flush")
                    results = engine.search_batch(device, op, shapes, k,
                                                  reps)
                    _chaos("worker.reply")
                    conn.send(("ok", results))
                except BaseException:
                    import traceback

                    conn.send(("error", traceback.format_exc()))
                continue
            if kind == "chaos":
                # Arm (or disarm, payload None) a FaultPlan inside this
                # live worker.  Deliberately *not* part of the boot
                # payload: a worker killed for a hang respawns clean, so
                # replay-after-kill completes instead of re-hanging.
                try:
                    from repro.service import faults

                    if payload is None:
                        faults.disarm()
                    else:
                        faults.arm(payload)
                    conn.send(("ok", None))
                except BaseException:
                    import traceback

                    conn.send(("error", traceback.format_exc()))
                continue
            if kind == "adopt":
                # A model hot-swap from the parent's online loop: rebuild
                # the named tuners from the shipped fit bytes.  Atomic
                # from the parent's view — the worker answers RPCs one at
                # a time, so no flush interleaves with the swap.
                try:
                    adopted = engine.adopt_fits(payload)
                    conn.send(("ok", sorted(adopted.values())))
                except BaseException:
                    import traceback

                    conn.send(("error", traceback.format_exc()))
                continue
            conn.send(("error", f"unknown message kind {kind!r}"))
    except (EOFError, OSError):
        pass  # parent went away; nothing to report to
    finally:
        pack.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent-side worker handle
# ----------------------------------------------------------------------

class _Worker:
    """One worker process + its lockstep manager thread.

    The worker process is single-threaded, so exactly one in-flight RPC
    per worker is the correct concurrency: the manager thread takes jobs
    off its inbox, sends, waits (interrupted only by process death), and
    resolves the job's future.  Respawn-and-retry lives here too — the
    job is not consumed until it has a definitive answer.
    """

    def __init__(self, pool: "WorkerPool", index: int):
        self._pool = pool
        self.index = index
        self.inbox: queue.Queue = queue.Queue()
        self.process = None
        self.conn = None
        self.dead = False
        self.boot_stats: dict = {}
        self.flushes = 0
        self.respawns = 0
        self.retries = 0
        self.hangs = 0
        self.heartbeats = 0
        self._spawn()
        self.thread = threading.Thread(
            target=self._run, name=f"repro-worker-mgr-{index}", daemon=True
        )
        self.thread.start()

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> None:
        """Start the process and complete the warm-boot handshake."""
        ctx = self._pool._ctx
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self._pool._blas_threads),
            name=f"repro-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            parent_conn.send(("boot", self._pool._boot))
            if not self._wait_readable(parent_conn, process,
                                       _BOOT_TIMEOUT_S):
                raise WorkerCrashed(
                    f"worker {self.index} died during warm boot"
                )
            kind, payload = parent_conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            parent_conn.close()
            self._reap(process)
            raise WorkerCrashed(
                f"worker {self.index} failed warm boot: {exc}"
            ) from exc
        if kind != "ready":
            parent_conn.close()
            self._reap(process)
            raise WorkerCrashed(
                f"worker {self.index} boot error:\n{payload}"
            )
        self.process = process
        self.conn = parent_conn
        self.boot_stats = dict(payload)

    @staticmethod
    def _wait_readable(conn, process, timeout: float | None) -> bool:
        """Poll for a reply, giving up only on death (or boot timeout)."""
        return _Worker._await_reply(conn, process, timeout) == "ready"

    @staticmethod
    def _await_reply(conn, process, timeout: float | None) -> str:
        """Poll for a reply: ``"ready"``, ``"dead"`` or ``"timeout"``.

        Death and deadline are distinct outcomes on purpose — a dead
        worker is already gone, while a timed-out one is *hung* and must
        be killed before its pipe can be reused.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.poll(_POLL_S):
            if not process.is_alive() and not conn.poll(0):
                return "dead"
            if deadline is not None and time.monotonic() > deadline:
                return "timeout"
        return "ready"

    @staticmethod
    def _reap(process) -> None:
        """Stop a worker process for good, escalating until the pid is gone.

        ``terminate()`` (SIGTERM) can leave a zombie if the child blocks
        with the signal pending — e.g. wedged in a C extension — so a
        failed ``join`` escalates to ``kill()`` (SIGKILL, uncatchable)
        and joins again.  The final join reaps the kernel zombie entry.
        """
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)
        if process.is_alive():
            process.kill()
            process.join(timeout=5)

    def _respawn(self) -> None:
        self.conn.close()
        self._reap(self.process)
        self.respawns += 1
        try:
            self._spawn()
        except WorkerCrashed:
            self.dead = True

    # -- RPC loop ------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self.inbox.get()
            if job is _CLOSE:
                break
            kind, payload, future, timeout_s = job
            if not future.set_running_or_notify_cancel():
                continue
            self._serve(kind, payload, future, timeout_s)
        self._shutdown()

    def _serve(
        self, kind: str, payload, future: Future,
        timeout_s: float | None,
    ) -> None:
        if timeout_s is None:
            timeout_s = self._pool._reply_timeout_s
        for attempt in range(self._pool._retries + 1):
            if self.dead:
                break
            if attempt:
                self.retries += 1
            try:
                self.conn.send((kind, payload))
                status = self._await_reply(self.conn, self.process,
                                           timeout_s)
                if status == "timeout":
                    # Hung but alive: only a kill frees the pipe.  The
                    # respawn below replays the job on a fresh worker
                    # booted from the same shared segment.
                    self.hangs += 1
                    if self.process.is_alive():
                        self.process.kill()
                    raise EOFError(
                        f"worker reply missed its {timeout_s}s deadline"
                    )
                if status == "dead":
                    raise EOFError("worker died mid-request")
                reply_kind, result = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                # Crash mid-flush: bring up a fresh worker (it attaches
                # the same shared state) and replay this exact job.
                self._respawn()
                continue
            if reply_kind == "error":
                future.set_exception(WorkerCrashed(
                    f"worker {self.index} request failed:\n{result}"
                ))
                return
            self.flushes += kind == "flush"
            future.set_result(result)
            return
        future.set_exception(WorkerCrashed(
            f"worker {self.index} unavailable after "
            f"{self._pool._retries + 1} attempts"
        ))

    def _shutdown(self) -> None:
        if not self.dead:
            try:
                self.conn.send(("exit", None))
            except (OSError, BrokenPipeError):
                pass
            self.conn.close()
            self._reap(self.process)
        # Anything still queued can never run.
        while True:
            try:
                job = self.inbox.get_nowait()
            except queue.Empty:
                break
            if job is not _CLOSE and job[2].set_running_or_notify_cancel():
                job[2].set_exception(WorkerCrashed("pool closed"))
        assert self.process is None or not self.process.is_alive()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class WorkerPool:
    """N worker processes sharing one read-only state segment.

    Built from a live :class:`~repro.service.engine.Engine`: its
    :meth:`~repro.service.engine.Engine.export_worker_state` is packed
    into shared memory once, then every worker warm-boots against the
    same segment.  ``route`` places request cache keys on a consistent
    hash ring (``_VNODES`` virtual nodes per worker), so the same key
    always lands on the same worker while distinct keys spread evenly —
    including keys *within* one (device, op, dtype) shard, which is what
    lets a single hot shard saturate the whole pool.
    """

    def __init__(
        self,
        engine,
        n_workers: int,
        *,
        blas_threads: int = 1,
        retries: int = 2,
        reply_timeout_s: float | None = None,
        heartbeat_s: float | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if reply_timeout_s is not None and reply_timeout_s <= 0:
            raise ValueError(
                f"reply_timeout_s must be positive, got {reply_timeout_s}"
            )
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be positive, got {heartbeat_s}"
            )
        if blas_threads < 1:
            raise ValueError(
                f"blas_threads must be >= 1, got {blas_threads}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        import multiprocessing

        from repro.core.soa import SharedArrayPack

        self._ctx = multiprocessing.get_context("spawn")
        self._blas_threads = int(blas_threads)
        self._retries = int(retries)
        self._reply_timeout_s = reply_timeout_s
        self._heartbeat_s = heartbeat_s
        self._closed = False
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        state = engine.export_worker_state()
        self.pairs = frozenset(state.fits)
        self._pack = SharedArrayPack.create(state.arrays)
        self._boot = {
            "fits": state.fits,
            "records": state.records,
            "prescaled": state.prescaled,
            "cascade": state.cascade,
            "cascade_enabled": state.cascade_enabled,
            "cascade_keep": state.cascade_keep,
            "shm": self._pack.name,
            "manifest": self._pack.manifest,
        }
        self._workers: list[_Worker] = []
        try:
            for i in range(n_workers):
                self._workers.append(_Worker(self, i))
        except BaseException:
            self.close()
            raise
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"{w}:{v}"), w)
            for w in range(n_workers)
            for v in range(_VNODES)
        )
        self._ring_keys = [h for h, _ in self._ring]
        if heartbeat_s is not None:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-worker-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    def _watch(self) -> None:
        """Watchdog: heartbeat-ping live workers between real traffic.

        The ping rides the normal RPC path, so a worker hung outside any
        request is detected by the manager's reply deadline (one
        heartbeat period) and killed/respawned exactly like a hung
        flush.  Each completed round increments ``heartbeats`` per
        worker probed.
        """
        while not self._watchdog_stop.wait(self._heartbeat_s):
            if self._closed:
                return
            for w in self._workers:
                if self._closed or w.dead:
                    continue
                future: Future = Future()
                w.inbox.put(("ping", None, future, self._heartbeat_s))
                try:
                    future.result(timeout=_BOOT_TIMEOUT_S)
                except Exception:
                    pass  # respawn/fail-fast handled by the manager
                w.heartbeats += 1

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def shared_bytes(self) -> int:
        """Size of the one shared segment all workers map (not copy)."""
        return self._pack.nbytes

    # ------------------------------------------------------------------
    def route(self, key: object) -> int:
        """The worker index owning ``key`` on the consistent-hash ring."""
        h = _ring_hash(repr(key))
        i = bisect.bisect(self._ring_keys, h) % len(self._ring)
        return self._ring[i][1]

    def alive(self, worker: int) -> bool:
        return not self._workers[worker].dead

    def submit_flush(
        self,
        worker: int,
        device: str,
        op: str,
        shapes: Sequence,
        k: int,
        reps: int,
        *,
        timeout_s: float | None = None,
    ) -> Future:
        """Queue one search batch on ``worker``.

        Resolves to per-shape ``(ok, payload)`` pairs (see
        :meth:`~repro.service.engine.WorkerEngine.search_batch`), or
        raises :class:`WorkerCrashed` if the worker cannot be kept alive
        long enough to answer.  ``timeout_s`` overrides the pool's
        ``reply_timeout_s`` for this job (a caller-side deadline budget);
        a reply missing it marks the worker hung and kills it.
        """
        if self._closed:
            raise WorkerCrashed("pool closed")
        _chaos("pool.submit")
        future: Future = Future()
        self._workers[worker].inbox.put(
            ("flush", (device, op, list(shapes), k, reps), future,
             timeout_s)
        )
        return future

    def arm_faults(
        self, worker: int, plan, timeout: float | None = 60.0
    ) -> None:
        """Arm a :class:`~repro.service.faults.FaultPlan` in one worker.

        Chaos-test plumbing: the plan is armed in the *live* process
        only, never added to the boot payload, so a worker killed by
        the watchdog or a reply deadline respawns clean and the replay
        completes.  ``plan=None`` disarms.
        """
        if self._closed:
            raise WorkerCrashed("pool closed")
        future: Future = Future()
        self._workers[worker].inbox.put(("chaos", plan, future, None))
        future.result(timeout=timeout)

    def broadcast_fits(
        self,
        fits: dict[tuple[str, str], tuple[bytes, tuple[str, ...]]],
        timeout: float | None = 120.0,
    ) -> int:
        """Propagate hot-swapped fits to every live worker; count adopters.

        The parent stays authoritative: the boot payload is updated
        *first*, so a worker that crashes mid-broadcast respawns straight
        onto the new fits (and never re-adopts prescaled ``H0`` terms
        folded through the old weights — those entries are dropped from
        the boot manifest for the updated pairs).  Then each live worker
        gets an ``adopt`` RPC; a worker that dies here is already marked
        dead by its manager and simply misses the update — its respawn
        path has the new state.

        The cascade's float32 twins are dropped for the updated pairs for
        the same reason as the prescaled terms: they were cast from the
        old weights' ``H0``.  Respawned workers recast lazily; margins
        travel inside the new fit bytes themselves.
        """
        if self._closed:
            raise WorkerCrashed("pool closed")
        if not fits:
            return 0
        updated = set(fits)
        self._boot["fits"] = {**self._boot["fits"], **fits}
        self._boot["prescaled"] = [
            p for p in self._boot["prescaled"]
            if (p["device"], p["op"]) not in updated
        ]
        self._boot["cascade"] = [
            c for c in self._boot["cascade"]
            if (c["device"], c["op"]) not in updated
        ]
        futures = []
        for w in self._workers:
            if w.dead:
                continue
            future: Future = Future()
            w.inbox.put(("adopt", fits, future, None))
            futures.append(future)
        adopted = 0
        for future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:
                continue  # dead/respawned workers boot onto the new fits
            adopted += 1
        return adopted

    def ping(self, worker: int, timeout: float | None = 30.0) -> dict:
        """Health check: the worker's live zero-copy/search accounting."""
        if self._closed:
            raise WorkerCrashed("pool closed")
        future: Future = Future()
        self._workers[worker].inbox.put(("ping", None, future, None))
        return future.result(timeout=timeout)

    def kill_worker(self, worker: int) -> None:
        """Failure injection (tests): hard-kill the worker process now."""
        process = self._workers[worker].process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    def stats(self) -> list[dict]:
        """Parent-side per-worker counters plus warm-boot accounting."""
        return [
            {
                "worker": w.index,
                "alive": not w.dead,
                "flushes": w.flushes,
                "respawns": w.respawns,
                "retries": w.retries,
                "hangs": w.hangs,
                "heartbeats": w.heartbeats,
                **{f"boot_{k}": v for k, v in w.boot_stats.items()},
            }
            for w in self._workers
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain inboxes, stop workers, free the shared segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=10)
        for w in self._workers:
            w.inbox.put(_CLOSE)
        for w in self._workers:
            w.thread.join(timeout=30)
        self._pack.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
