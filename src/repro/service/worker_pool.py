"""The sharded multi-process worker tier behind the async front door.

One saturated process is the serving tier's hard wall: the numpy MLP
forward passes hold the GIL, so dynamic micro-batching cannot scale past
a single core no matter how well it coalesces.  This module breaks the
wall with a pool of worker *processes* — each runs a
:class:`~repro.service.engine.WorkerEngine` rebuilt at warm boot from the
parent engine's exported state — and a consistent-hash ring that maps
request cache keys onto workers.

The expensive read-only state is **shared, not copied**: survivor
candidate columns and prescaled ``H0`` feature terms live in exactly one
:class:`~repro.core.soa.SharedArrayPack` segment created by the pool;
workers attach and rebuild numpy views over the same physical pages
(zero re-enumeration, zero per-worker copy).  Only the small artifacts —
fit bytes, record metadata, the manifest — travel over the boot pipe.

Lifecycle per worker: spawn (``spawn`` context; BLAS thread caps are set
in the child *before* numpy is imported, which is why this module's
import surface is stdlib-only), warm boot handshake (``ready`` with
zero-copy accounting, or ``boot-error``), then a lockstep RPC loop
driven by a parent-side manager thread.  A crash mid-flush (EOF, broken
pipe, dead process) respawns the worker and retries the same job up to
``retries`` times before failing its future with :class:`WorkerCrashed`;
a worker whose *respawn* fails is marked dead and every later job routed
to it fails fast, which the async engine answers by falling back to the
in-process path.  ``close()`` drains each inbox, asks workers to exit,
and unlinks the shared segment exactly once.

Determinism makes this tier safe: measurement noise is keyed BLAKE2b
(:mod:`repro.gpu.noise`), candidate materialization from shared columns
is bit-identical to the parent's, and fits round-trip bit-exactly — so a
worker's answer for any request equals the in-process answer, and retry
after a crash cannot change a result.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
from concurrent.futures import Future
from typing import Any, Sequence

__all__ = ["WorkerCrashed", "WorkerPool"]

#: Virtual nodes per worker on the hash ring: enough that key ownership
#: stays near-uniform for small pools without measurable lookup cost.
_VNODES = 64

#: Seconds between liveness checks while waiting on a worker reply.  A
#: flush can legitimately run for seconds (device re-rank), so replies
#: have no deadline — only death interrupts the wait.
_POLL_S = 0.1

#: Ceiling on one warm boot (imports + tuner rebuild + cache seeding).
_BOOT_TIMEOUT_S = 120.0

_CLOSE = object()


class WorkerCrashed(RuntimeError):
    """A worker died (and respawn/retry was exhausted) for this request."""


def _ring_hash(data: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(data.encode(), digest_size=8).digest(), "big"
    )


# ----------------------------------------------------------------------
# Child process entry point
# ----------------------------------------------------------------------

def _worker_main(conn, blas_threads: int) -> None:
    """Worker process: cap BLAS, warm-boot, then serve the RPC loop.

    The env caps must land before numpy's first import or they are
    ignored — the whole point of process sharding is one core per
    worker, and an oversubscribed BLAS pool would thrash it back away.
    """
    import os

    for var in (
        "OPENBLAS_NUM_THREADS",
        "OMP_NUM_THREADS",
        "MKL_NUM_THREADS",
        "NUMEXPR_NUM_THREADS",
    ):
        os.environ[var] = str(blas_threads)

    pack = None
    try:
        kind, boot = conn.recv()
        assert kind == "boot", kind
        from repro.core.soa import SharedArrayPack
        from repro.service.engine import WorkerEngine

        pack = SharedArrayPack.attach(boot["shm"], boot["manifest"])
        engine = WorkerEngine(
            boot["fits"],
            boot["records"],
            boot["prescaled"],
            pack.views(),
            shared_bytes=pack.nbytes,
            cascade=boot.get("cascade", ()),
            cascade_enabled=boot.get("cascade_enabled", True),
            cascade_keep=boot.get("cascade_keep"),
        )
        conn.send(("ready", engine.stats()))
    except BaseException:
        import traceback

        try:
            conn.send(("boot-error", traceback.format_exc()))
        except OSError:
            pass
        if pack is not None:
            pack.close()
        return

    try:
        while True:
            kind, payload = conn.recv()
            if kind == "exit":
                break
            if kind == "ping":
                conn.send(("pong", engine.stats()))
                continue
            if kind == "flush":
                device, op, shapes, k, reps = payload
                try:
                    results = engine.search_batch(device, op, shapes, k,
                                                  reps)
                    conn.send(("ok", results))
                except BaseException:
                    import traceback

                    conn.send(("error", traceback.format_exc()))
                continue
            if kind == "adopt":
                # A model hot-swap from the parent's online loop: rebuild
                # the named tuners from the shipped fit bytes.  Atomic
                # from the parent's view — the worker answers RPCs one at
                # a time, so no flush interleaves with the swap.
                try:
                    adopted = engine.adopt_fits(payload)
                    conn.send(("ok", sorted(adopted.values())))
                except BaseException:
                    import traceback

                    conn.send(("error", traceback.format_exc()))
                continue
            conn.send(("error", f"unknown message kind {kind!r}"))
    except (EOFError, OSError):
        pass  # parent went away; nothing to report to
    finally:
        pack.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent-side worker handle
# ----------------------------------------------------------------------

class _Worker:
    """One worker process + its lockstep manager thread.

    The worker process is single-threaded, so exactly one in-flight RPC
    per worker is the correct concurrency: the manager thread takes jobs
    off its inbox, sends, waits (interrupted only by process death), and
    resolves the job's future.  Respawn-and-retry lives here too — the
    job is not consumed until it has a definitive answer.
    """

    def __init__(self, pool: "WorkerPool", index: int):
        self._pool = pool
        self.index = index
        self.inbox: queue.Queue = queue.Queue()
        self.process = None
        self.conn = None
        self.dead = False
        self.boot_stats: dict = {}
        self.flushes = 0
        self.respawns = 0
        self.retries = 0
        self._spawn()
        self.thread = threading.Thread(
            target=self._run, name=f"repro-worker-mgr-{index}", daemon=True
        )
        self.thread.start()

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> None:
        """Start the process and complete the warm-boot handshake."""
        ctx = self._pool._ctx
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self._pool._blas_threads),
            name=f"repro-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            parent_conn.send(("boot", self._pool._boot))
            if not self._wait_readable(parent_conn, process,
                                       _BOOT_TIMEOUT_S):
                raise WorkerCrashed(
                    f"worker {self.index} died during warm boot"
                )
            kind, payload = parent_conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            parent_conn.close()
            self._reap(process)
            raise WorkerCrashed(
                f"worker {self.index} failed warm boot: {exc}"
            ) from exc
        if kind != "ready":
            parent_conn.close()
            self._reap(process)
            raise WorkerCrashed(
                f"worker {self.index} boot error:\n{payload}"
            )
        self.process = process
        self.conn = parent_conn
        self.boot_stats = dict(payload)

    @staticmethod
    def _wait_readable(conn, process, timeout: float | None) -> bool:
        """Poll for a reply, giving up only on death (or boot timeout)."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while not conn.poll(_POLL_S):
            if not process.is_alive() and not conn.poll(0):
                return False
            if deadline is not None and time.monotonic() > deadline:
                return False
        return True

    @staticmethod
    def _reap(process) -> None:
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)

    def _respawn(self) -> None:
        self.conn.close()
        self._reap(self.process)
        self.respawns += 1
        try:
            self._spawn()
        except WorkerCrashed:
            self.dead = True

    # -- RPC loop ------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self.inbox.get()
            if job is _CLOSE:
                break
            kind, payload, future = job
            if not future.set_running_or_notify_cancel():
                continue
            self._serve(kind, payload, future)
        self._shutdown()

    def _serve(self, kind: str, payload, future: Future) -> None:
        for attempt in range(self._pool._retries + 1):
            if self.dead:
                break
            if attempt:
                self.retries += 1
            try:
                self.conn.send((kind, payload))
                if not self._wait_readable(self.conn, self.process, None):
                    raise EOFError("worker died mid-request")
                reply_kind, result = self.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                # Crash mid-flush: bring up a fresh worker (it attaches
                # the same shared state) and replay this exact job.
                self._respawn()
                continue
            if reply_kind == "error":
                future.set_exception(WorkerCrashed(
                    f"worker {self.index} request failed:\n{result}"
                ))
                return
            self.flushes += kind == "flush"
            future.set_result(result)
            return
        future.set_exception(WorkerCrashed(
            f"worker {self.index} unavailable after "
            f"{self._pool._retries + 1} attempts"
        ))

    def _shutdown(self) -> None:
        if not self.dead:
            try:
                self.conn.send(("exit", None))
            except (OSError, BrokenPipeError):
                pass
            self.conn.close()
            self._reap(self.process)
        # Anything still queued can never run.
        while True:
            try:
                job = self.inbox.get_nowait()
            except queue.Empty:
                break
            if job is not _CLOSE and job[2].set_running_or_notify_cancel():
                job[2].set_exception(WorkerCrashed("pool closed"))


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class WorkerPool:
    """N worker processes sharing one read-only state segment.

    Built from a live :class:`~repro.service.engine.Engine`: its
    :meth:`~repro.service.engine.Engine.export_worker_state` is packed
    into shared memory once, then every worker warm-boots against the
    same segment.  ``route`` places request cache keys on a consistent
    hash ring (``_VNODES`` virtual nodes per worker), so the same key
    always lands on the same worker while distinct keys spread evenly —
    including keys *within* one (device, op, dtype) shard, which is what
    lets a single hot shard saturate the whole pool.
    """

    def __init__(
        self,
        engine,
        n_workers: int,
        *,
        blas_threads: int = 1,
        retries: int = 2,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        import multiprocessing

        from repro.core.soa import SharedArrayPack

        self._ctx = multiprocessing.get_context("spawn")
        self._blas_threads = int(blas_threads)
        self._retries = int(retries)
        self._closed = False
        state = engine.export_worker_state()
        self.pairs = frozenset(state.fits)
        self._pack = SharedArrayPack.create(state.arrays)
        self._boot = {
            "fits": state.fits,
            "records": state.records,
            "prescaled": state.prescaled,
            "cascade": state.cascade,
            "cascade_enabled": state.cascade_enabled,
            "cascade_keep": state.cascade_keep,
            "shm": self._pack.name,
            "manifest": self._pack.manifest,
        }
        self._workers: list[_Worker] = []
        try:
            for i in range(n_workers):
                self._workers.append(_Worker(self, i))
        except BaseException:
            self.close()
            raise
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"{w}:{v}"), w)
            for w in range(n_workers)
            for v in range(_VNODES)
        )
        self._ring_keys = [h for h, _ in self._ring]

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def shared_bytes(self) -> int:
        """Size of the one shared segment all workers map (not copy)."""
        return self._pack.nbytes

    # ------------------------------------------------------------------
    def route(self, key: object) -> int:
        """The worker index owning ``key`` on the consistent-hash ring."""
        h = _ring_hash(repr(key))
        i = bisect.bisect(self._ring_keys, h) % len(self._ring)
        return self._ring[i][1]

    def alive(self, worker: int) -> bool:
        return not self._workers[worker].dead

    def submit_flush(
        self,
        worker: int,
        device: str,
        op: str,
        shapes: Sequence,
        k: int,
        reps: int,
    ) -> Future:
        """Queue one search batch on ``worker``.

        Resolves to per-shape ``(ok, payload)`` pairs (see
        :meth:`~repro.service.engine.WorkerEngine.search_batch`), or
        raises :class:`WorkerCrashed` if the worker cannot be kept alive
        long enough to answer.
        """
        if self._closed:
            raise WorkerCrashed("pool closed")
        future: Future = Future()
        self._workers[worker].inbox.put(
            ("flush", (device, op, list(shapes), k, reps), future)
        )
        return future

    def broadcast_fits(
        self,
        fits: dict[tuple[str, str], tuple[bytes, tuple[str, ...]]],
        timeout: float | None = 120.0,
    ) -> int:
        """Propagate hot-swapped fits to every live worker; count adopters.

        The parent stays authoritative: the boot payload is updated
        *first*, so a worker that crashes mid-broadcast respawns straight
        onto the new fits (and never re-adopts prescaled ``H0`` terms
        folded through the old weights — those entries are dropped from
        the boot manifest for the updated pairs).  Then each live worker
        gets an ``adopt`` RPC; a worker that dies here is already marked
        dead by its manager and simply misses the update — its respawn
        path has the new state.

        The cascade's float32 twins are dropped for the updated pairs for
        the same reason as the prescaled terms: they were cast from the
        old weights' ``H0``.  Respawned workers recast lazily; margins
        travel inside the new fit bytes themselves.
        """
        if self._closed:
            raise WorkerCrashed("pool closed")
        if not fits:
            return 0
        updated = set(fits)
        self._boot["fits"] = {**self._boot["fits"], **fits}
        self._boot["prescaled"] = [
            p for p in self._boot["prescaled"]
            if (p["device"], p["op"]) not in updated
        ]
        self._boot["cascade"] = [
            c for c in self._boot["cascade"]
            if (c["device"], c["op"]) not in updated
        ]
        futures = []
        for w in self._workers:
            if w.dead:
                continue
            future: Future = Future()
            w.inbox.put(("adopt", fits, future))
            futures.append(future)
        adopted = 0
        for future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:
                continue  # dead/respawned workers boot onto the new fits
            adopted += 1
        return adopted

    def ping(self, worker: int, timeout: float | None = 30.0) -> dict:
        """Health check: the worker's live zero-copy/search accounting."""
        if self._closed:
            raise WorkerCrashed("pool closed")
        future: Future = Future()
        self._workers[worker].inbox.put(("ping", None, future))
        return future.result(timeout=timeout)

    def kill_worker(self, worker: int) -> None:
        """Failure injection (tests): hard-kill the worker process now."""
        process = self._workers[worker].process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    def stats(self) -> list[dict]:
        """Parent-side per-worker counters plus warm-boot accounting."""
        return [
            {
                "worker": w.index,
                "alive": not w.dead,
                "flushes": w.flushes,
                "respawns": w.respawns,
                "retries": w.retries,
                **{f"boot_{k}": v for k, v in w.boot_stats.items()},
            }
            for w in self._workers
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain inboxes, stop workers, free the shared segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            w.inbox.put(_CLOSE)
        for w in self._workers:
            w.thread.join(timeout=30)
        self._pack.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
