"""The CONV evaluation tasks of paper Table 5.

Fourteen DeepBench layers spanning six applications — DeepSpeech, OCR,
Face Recognition, Vision, Speaker ID and ResNET.  Shapes are given by
their output extents (N, P, Q, K, C, R, S); the paper's NPQ / CRS columns
are derived and cross-checked in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.types import ConvShape, DType


@dataclass(frozen=True)
class ConvTask:
    """One row of Table 5."""

    group: str
    label: str
    shape: ConvShape

    def with_dtype(self, dtype: DType) -> "ConvTask":
        return replace(self, shape=replace(self.shape, dtype=dtype))


def _t(group: str, label: str, n: int, p: int, q: int, k: int,
       c: int, r: int, s: int) -> ConvTask:
    return ConvTask(
        group=group,
        label=label,
        shape=ConvShape.from_output(n=n, p=p, q=q, k=k, c=c, r=r, s=s),
    )


#: Table 5, in paper order (Conv1..Conv14).
TABLE5_TASKS: tuple[ConvTask, ...] = (
    _t("DeepSpeech", "Conv1", 16, 79, 341, 32, 1, 5, 20),
    _t("DeepSpeech", "Conv2", 16, 38, 166, 32, 32, 5, 10),
    _t("OCR", "Conv3", 16, 24, 240, 32, 16, 3, 3),
    _t("OCR", "Conv4", 16, 12, 120, 64, 32, 3, 3),
    _t("Face Recognition", "Conv5", 8, 54, 54, 64, 64, 3, 3),
    _t("Face Recognition", "Conv6", 8, 27, 27, 128, 128, 3, 3),
    _t("Face Recognition", "Conv7", 16, 14, 14, 48, 512, 5, 5),
    _t("Face Recognition", "Conv8", 16, 7, 7, 128, 832, 5, 5),
    _t("Vision", "Conv9", 8, 112, 112, 128, 64, 3, 3),
    _t("Vision", "Conv10", 8, 56, 56, 256, 128, 3, 3),
    _t("Speaker ID", "Conv11", 16, 128, 39, 174, 64, 5, 5),
    _t("Speaker ID", "Conv12", 16, 256, 19, 87, 128, 5, 5),
    _t("ResNET", "Conv13", 16, 7, 7, 512, 512, 3, 3),
    _t("ResNET", "Conv14", 16, 7, 7, 2048, 1024, 1, 1),
)

#: The paper's published (NPQ, CRS) columns, for cross-checking the shapes.
TABLE5_NPQ_CRS: dict[str, tuple[int, int]] = {
    "Conv1": (431024, 100),
    "Conv2": (100928, 1600),
    "Conv3": (92160, 144),
    "Conv4": (23040, 288),
    "Conv5": (23328, 576),
    "Conv6": (5832, 1152),
    "Conv7": (3136, 12800),
    "Conv8": (784, 20800),
    "Conv9": (100352, 576),
    "Conv10": (25088, 1152),
    "Conv11": (79872, 1600),
    "Conv12": (77824, 3200),
    "Conv13": (784, 4608),
    "Conv14": (784, 1024),
}


def task(label: str) -> ConvTask:
    for t in TABLE5_TASKS:
        if t.label == label:
            return t
    raise KeyError(f"unknown conv task {label!r}")


def fp16_tasks() -> tuple[ConvTask, ...]:
    """Table 5 re-typed for the HCONV experiment (Figure 11)."""
    return tuple(t.with_dtype(DType.FP16) for t in TABLE5_TASKS)
