"""The GEMM evaluation tasks of paper Table 4.

Four application families: LINPACK square problems, DeepBench forward- and
backward-propagation shapes, ICA covariance accumulations, and LAPACK
blocked-SVD outer products.  Figure 6/7 use fp32 everywhere; Figure 8 uses
fp16 for LINPACK + DeepBench and fp64 for ICA + blocked SVD.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.types import DType, GemmShape


@dataclass(frozen=True)
class GemmTask:
    """One row of Table 4."""

    group: str
    label: str
    shape: GemmShape
    description: str

    def with_dtype(self, dtype: DType) -> "GemmTask":
        return replace(self, shape=replace(self.shape, dtype=dtype))


def _t(group: str, label: str, m: int, n: int, k: int,
       ta: bool, tb: bool, description: str) -> GemmTask:
    return GemmTask(
        group=group,
        label=label,
        shape=GemmShape(m=m, n=n, k=k, dtype=DType.FP32, ta=ta, tb=tb),
        description=description,
    )


#: Table 4, in paper order.  DeepBench uses M=K=2560 with batch-size N
#: (forward NN; backward with A transposed, i.e. TN).
TABLE4_TASKS: tuple[GemmTask, ...] = (
    _t("LINPACK", "512", 512, 512, 512, False, True, "Square case"),
    _t("LINPACK", "1024", 1024, 1024, 1024, False, True, "Square case"),
    _t("LINPACK", "2048", 2048, 2048, 2048, False, True, "Square case"),
    _t("DeepBench [F]", "16", 2560, 16, 2560, False, False, "Forward propagation"),
    _t("DeepBench [F]", "32", 2560, 32, 2560, False, False, "Forward propagation"),
    _t("DeepBench [F]", "64", 2560, 64, 2560, False, False, "Forward propagation"),
    _t("DeepBench [F]", "128", 2560, 128, 2560, False, False, "Forward propagation"),
    _t("DeepBench [B]", "16", 2560, 16, 2560, True, False, "Backward propagation"),
    _t("DeepBench [B]", "32", 2560, 32, 2560, True, False, "Backward propagation"),
    _t("DeepBench [B]", "64", 2560, 64, 2560, True, False, "Backward propagation"),
    _t("DeepBench [B]", "128", 2560, 128, 2560, True, False, "Backward propagation"),
    _t("ICA", "16", 16, 16, 60000, False, True, "16-channels"),
    _t("ICA", "64", 64, 64, 60000, False, True, "64-channels"),
    _t("ICA", "256", 256, 256, 60000, False, True, "256-channels"),
    _t("Blocked SVD", "896", 896, 896, 32, False, True, "Iteration 100"),
    _t("Blocked SVD", "2048", 2048, 2048, 32, False, True, "Iteration ~80"),
    _t("Blocked SVD", "4096", 4096, 4096, 32, False, True, "Iteration 0"),
)


#: Figure 8's precision assignment: half for the compute-bound DL/HPL
#: benchmarks, double for the scientific ones.
FIG8_DTYPES: dict[str, DType] = {
    "LINPACK": DType.FP16,
    "DeepBench [F]": DType.FP16,
    "DeepBench [B]": DType.FP16,
    "ICA": DType.FP64,
    "Blocked SVD": DType.FP64,
}


def tasks_by_group(group: str) -> tuple[GemmTask, ...]:
    out = tuple(t for t in TABLE4_TASKS if t.group == group)
    if not out:
        known = sorted({t.group for t in TABLE4_TASKS})
        raise KeyError(f"unknown group {group!r}; known: {known}")
    return out


def fig8_tasks() -> tuple[GemmTask, ...]:
    """Table 4 tasks re-typed for the half/double precision experiment."""
    return tuple(t.with_dtype(FIG8_DTYPES[t.group]) for t in TABLE4_TASKS)
