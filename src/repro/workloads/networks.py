"""End-to-end network workloads: sequences of kernels with real mixes.

The paper's motivation is applications, not isolated kernels: an RNN
training step is a chain of skinny GEMMs, a CNN forward pass a chain of
convolutions.  This module composes the Table 4/5 primitives into whole
per-step workloads so the harness can compare *application-level* time —
where a single mis-selected kernel (one slow layer) drags the whole step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import DType, GemmShape
from repro.workloads.conv_suites import task as conv_task


@dataclass(frozen=True)
class NetworkStep:
    """One application step: an ordered list of (label, shape) kernels."""

    name: str
    description: str
    kernels: tuple[tuple[str, object], ...]

    @property
    def total_flops(self) -> int:
        return sum(shape.flops for _, shape in self.kernels)


def rnn_training_step(
    hidden: int = 2560,
    batch: int = 32,
    timesteps: int = 4,
    dtype: DType = DType.FP32,
) -> NetworkStep:
    """A vanilla-RNN training step, DeepBench-style.

    Per timestep: input and recurrent projections forward (NN), plus the
    two transposed-operand backward passes (TN) — the exact shapes of the
    paper's DeepBench rows, repeated over the unrolled sequence.
    """
    kernels: list[tuple[str, GemmShape]] = []
    for t in range(timesteps):
        kernels.append(
            (f"t{t}-fwd-x", GemmShape(hidden, batch, hidden, dtype, False, False))
        )
        kernels.append(
            (f"t{t}-fwd-h", GemmShape(hidden, batch, hidden, dtype, False, False))
        )
        kernels.append(
            (f"t{t}-bwd-dx", GemmShape(hidden, batch, hidden, dtype, True, False))
        )
        kernels.append(
            (f"t{t}-bwd-dw", GemmShape(hidden, hidden, batch, dtype, False, True))
        )
    return NetworkStep(
        name=f"rnn-h{hidden}-b{batch}-t{timesteps}",
        description="vanilla RNN training step (DeepBench GEMM shapes)",
        kernels=tuple(kernels),
    )


def ica_pipeline_step(
    channels: int = 64, window: int = 60000, iters: int = 3,
    dtype: DType = DType.FP32,
) -> NetworkStep:
    """One FastICA iteration: covariance + unmixing updates.

    Dominated by the deep-reduction covariance GEMM the paper's ICA rows
    model, plus small square updates.
    """
    kernels: list[tuple[str, GemmShape]] = []
    for i in range(iters):
        kernels.append(
            (
                f"it{i}-cov",
                GemmShape(channels, channels, window, dtype, False, True),
            )
        )
        kernels.append(
            (
                f"it{i}-update",
                GemmShape(channels, channels, channels, dtype, False, False),
            )
        )
    return NetworkStep(
        name=f"ica-c{channels}-w{window}",
        description="FastICA iterations (deep-reduction covariances)",
        kernels=tuple(kernels),
    )


def face_recognition_forward(dtype: DType = DType.FP32) -> NetworkStep:
    """The Table 5 face-recognition column as one forward pass."""
    labels = ("Conv5", "Conv6", "Conv7", "Conv8")
    kernels = tuple(
        (label, conv_task(label).with_dtype(dtype).shape) for label in labels
    )
    return NetworkStep(
        name="face-recognition-fwd",
        description="face-recognition forward pass (Table 5 Conv5-Conv8)",
        kernels=kernels,
    )


def blocked_svd_sweep(dtype: DType = DType.FP32) -> NetworkStep:
    """Householder bidiagonalization outer products across iterations."""
    sizes = (4096, 3456, 2048, 896)
    kernels = tuple(
        (f"iter-{n}", GemmShape(n, n, 32, dtype, False, True))
        for n in sizes
    )
    return NetworkStep(
        name="blocked-svd-sweep",
        description="blocked SVD outer products (LAPACK, block size 32)",
        kernels=kernels,
    )
