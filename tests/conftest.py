"""Shared fixtures for the test suite.

Expensive artifacts (the enumerated legal-config cache, a small trained
tuner) are session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ConvConfig, GemmConfig
from repro.core.space import ParamSpace
from repro.core.tuner import Isaac
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(params=[GTX_980_TI, TESLA_P100], ids=["maxwell", "pascal"])
def device(request):
    return request.param


@pytest.fixture
def maxwell():
    return GTX_980_TI


@pytest.fixture
def pascal():
    return TESLA_P100


# ----------------------------------------------------------------------
# Canonical configs / shapes
# ----------------------------------------------------------------------

@pytest.fixture
def good_gemm_cfg() -> GemmConfig:
    """A known-good 64x64 kernel legal on both devices for all dtypes."""
    return GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2)


@pytest.fixture
def split_gemm_cfg() -> GemmConfig:
    """A reduction-splitting kernel exercising KS, KL and KG at once."""
    return GemmConfig(ms=2, ns=4, ml=32, nl=32, u=8, ks=2, kl=4, kg=8,
                      vec=1, db=2)


@pytest.fixture
def good_conv_cfg() -> ConvConfig:
    return ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                      u=8, vec=2, db=2)


@pytest.fixture
def square_shape() -> GemmShape:
    return GemmShape(512, 512, 512, DType.FP32, False, True)


@pytest.fixture
def skinny_shape() -> GemmShape:
    return GemmShape(2560, 16, 2560, DType.FP32, False, False)


@pytest.fixture
def deep_shape() -> GemmShape:
    return GemmShape(32, 32, 60000, DType.FP32, False, True)


@pytest.fixture
def small_conv_shape() -> ConvShape:
    return ConvShape.from_output(n=2, p=6, q=6, k=16, c=8, r=3, s=3)


#: A deliberately tiny GEMM space so search tests enumerate in milliseconds.
TINY_GEMM_SPACE = ParamSpace(
    name="gemm-tiny",
    params=(
        ("ms", (2, 4, 8)),
        ("ns", (4, 8)),
        ("ml", (32, 64)),
        ("nl", (16, 32, 64)),
        ("u", (8, 16)),
        ("ks", (1,)),
        ("kl", (1, 2)),
        ("kg", (1, 4, 16)),
        ("vec", (1, 2, 4)),
        ("db", (1, 2)),
    ),
)


@pytest.fixture
def tiny_space() -> ParamSpace:
    return TINY_GEMM_SPACE


# ----------------------------------------------------------------------
# A small trained tuner shared by inference / harness tests
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def trained_gemm_tuner() -> Isaac:
    """A P100 fp32 tuner trained at a tiny budget (shared session-wide)."""
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=2_500, seed=7, epochs=25, generative_target=200)
    return tuner


@pytest.fixture(scope="session")
def small_conv_tuner() -> Isaac:
    """A tiny-budget P100 fp32 CONV tuner (engine / equivalence tests)."""
    tuner = Isaac(TESLA_P100, op="conv", dtypes=(DType.FP32,))
    tuner.tune(n_samples=700, seed=5, epochs=12, generative_target=80)
    return tuner


@pytest.fixture(scope="session")
def small_bgemm_tuner() -> Isaac:
    """A tiny-budget P100 fp32 batched-GEMM tuner."""
    tuner = Isaac(TESLA_P100, op="bgemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=900, seed=6, epochs=12, generative_target=80)
    return tuner
