"""Tests for the AsyncEngine: micro-batching, coalescing, backpressure,
drain, the sync bridge, and the CLI ``serve`` verb."""

import asyncio
import threading
import time

import pytest

from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.harness.app_eval import run_network_step
from repro.service.async_engine import (
    AsyncEngine,
    BackpressureError,
)
from repro.service.engine import Engine, EngineError, KernelRequest
from repro.workloads.networks import rnn_training_step

SHAPES = [
    GemmShape(512, 512, 512, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 8192, DType.FP32, False, True),
    GemmShape(128, 256, 1024, DType.FP32, True, False),
]


def _async_engine(*tuners, **kwargs) -> AsyncEngine:
    kwargs.setdefault("max_workers", 2)
    engine = Engine(max_workers=0)
    for tuner in tuners:
        engine.register(tuner)
    return AsyncEngine(engine, own_engine=True, **kwargs)


def _requests(shapes=SHAPES, k=10, reps=2):
    return [KernelRequest("gemm", s, k=k, reps=reps) for s in shapes]


class TestQuery:
    def test_batches_form_and_answers_match_sync(self, trained_gemm_tuner):
        sync = Engine(max_workers=0)
        sync.register(trained_gemm_tuner)
        expected = [sync.query(r) for r in _requests()]

        async def main():
            async with _async_engine(trained_gemm_tuner,
                                     window_ms=5.0) as engine:
                replies = await engine.query_many(_requests())
                stats = engine.stats()
                return replies, stats

        replies, stats = asyncio.run(main())
        for got, want in zip(replies, expected):
            assert got.source == "search"
            assert got.config == want.config
            assert got.measured_tflops == want.measured_tflops
        # All four misses were admitted into one shard; batch sizes sum
        # to the number of searched requests.
        assert len(stats.shards) == 1
        shard = stats.shards[0]
        assert sum(s * c for s, c in shard.batch_sizes.items()) == 4
        assert shard.batches >= 1
        assert stats.pending == 0

    def test_repeat_served_from_cache_inline(self, trained_gemm_tuner):
        async def main():
            async with _async_engine(trained_gemm_tuner) as engine:
                first = await engine.query(_requests()[0])
                again = await engine.query(_requests()[0])
                return first, again, engine.stats()

        first, again, stats = asyncio.run(main())
        assert first.source == "search"
        assert again.source == "lru"
        assert again.config == first.config
        assert stats.cache_hits == 1

    def test_concurrent_duplicates_coalesce(self, trained_gemm_tuner):
        async def main():
            async with _async_engine(trained_gemm_tuner) as engine:
                replies = await asyncio.gather(
                    *(engine.query(_requests()[0]) for _ in range(16))
                )
                return replies, engine.stats()

        replies, stats = asyncio.run(main())
        assert len({str(r.config) for r in replies}) == 1
        assert stats.coalesced + stats.cache_hits == 15
        # Exactly one search reached the engine.
        assert stats.shards[0].submitted == 1

    def test_shards_split_by_k_and_reps(self, trained_gemm_tuner):
        async def main():
            async with _async_engine(trained_gemm_tuner) as engine:
                await engine.query_many([
                    KernelRequest("gemm", SHAPES[0], k=10, reps=2),
                    KernelRequest("gemm", SHAPES[1], k=20, reps=2),
                ])
                return engine.stats()

        stats = asyncio.run(main())
        assert len(stats.shards) == 2
        assert {s.shard[3] for s in stats.shards} == {10, 20}

    def test_rejects_degenerate_bounds(self, trained_gemm_tuner):
        for kwargs, match in [
            ({"window_ms": -1.0}, "window_ms"),
            ({"max_batch": 0}, "max_batch"),
            ({"max_pending": 0}, "max_pending"),
            # asyncio.Queue(0) would mean *unbounded* — must be refused.
            ({"max_queue": 0}, "max_queue"),
            # A batch larger than the admission bound can never fill.
            ({"max_batch": 64, "max_pending": 8}, "max_pending"),
            ({"max_workers": 0}, "max_workers"),
            ({"worker_timeout_s": 0.0}, "worker_timeout_s"),
            ({"worker_heartbeat_s": -1.0}, "worker_heartbeat_s"),
        ]:
            with pytest.raises(ValueError, match=match):
                _async_engine(trained_gemm_tuner, **kwargs)

    def test_stats_from_foreign_thread_with_caller_owned_loop(
        self, trained_gemm_tuner
    ):
        """stats() must snapshot on the serving loop even when that loop
        is caller-owned (no background bridge)."""
        results = {}

        async def main(engine):
            await engine.query_many(_requests())

            def prober():
                results["stats"] = engine.stats()

            thread = threading.Thread(target=prober)
            thread.start()
            # Keep the loop turning while the foreign thread snapshots.
            while thread.is_alive():
                await asyncio.sleep(0.001)
            thread.join()

        async def runner():
            async with _async_engine(trained_gemm_tuner) as engine:
                await main(engine)

        asyncio.run(runner())
        assert results["stats"].submitted == 4

    def test_closed_engine_rejects(self, trained_gemm_tuner):
        async def main():
            engine = _async_engine(trained_gemm_tuner)
            await engine.aclose()
            with pytest.raises(EngineError, match="closed"):
                await engine.query(_requests()[0])

        asyncio.run(main())

    def test_rejects_second_event_loop(self, trained_gemm_tuner):
        engine = _async_engine(trained_gemm_tuner)
        asyncio.run(engine.query(_requests()[0]))
        with pytest.raises(EngineError, match="event loop"):
            asyncio.run(engine.query(_requests()[1]))


class TestBackpressure:
    def test_pending_bound_rejects(self, trained_gemm_tuner, monkeypatch):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        orig = inner.query_many

        def slow_query_many(requests):
            time.sleep(0.05)
            return orig(requests)

        monkeypatch.setattr(inner, "query_many", slow_query_many)
        engine = AsyncEngine(inner, own_engine=True, window_ms=0.0,
                             max_batch=1, max_pending=2, max_workers=1)

        async def main():
            tasks = [
                asyncio.ensure_future(engine.query(_requests()[i % 4]))
                for i in range(4)
            ]
            # Let the submits land; two should be refused outright.
            results = await asyncio.gather(*tasks, return_exceptions=True)
            stats = engine.stats()
            await engine.aclose()
            return results, stats

        results, stats = asyncio.run(main())
        rejected = [r for r in results if isinstance(r, BackpressureError)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 2
        assert len(served) == 2
        assert stats.rejected == 2

    def test_shard_bound_rejects_knob_sweeps(self, trained_gemm_tuner):
        """k/reps are client-controlled shard-key parts; the shard bound
        stops a sweep from leaking one worker task per distinct tuple."""

        async def main():
            async with _async_engine(trained_gemm_tuner,
                                     max_shards=2) as engine:
                await engine.query(
                    KernelRequest("gemm", SHAPES[0], k=5, reps=2))
                await engine.query(
                    KernelRequest("gemm", SHAPES[1], k=6, reps=2))
                with pytest.raises(BackpressureError) as info:
                    await engine.query(
                        KernelRequest("gemm", SHAPES[2], k=7, reps=2))
                assert not info.value.transient
                return engine.stats()

        stats = asyncio.run(main())
        assert len(stats.shards) == 2
        assert stats.rejected == 1

    def test_query_many_retries_transient_backpressure(
        self, trained_gemm_tuner
    ):
        """The batch API waits out saturation instead of failing the
        whole batch (Engine.query_many can never fail that way)."""
        engine = _async_engine(trained_gemm_tuner, max_pending=1,
                               max_batch=1, window_ms=0.0)

        async def main():
            replies = await engine.query_many(_requests())
            stats = engine.stats()
            await engine.aclose()
            return replies, stats

        replies, stats = asyncio.run(main())
        assert len(replies) == 4
        assert all(r.config is not None for r in replies)
        assert stats.rejected > 0  # saturation really happened

    def test_zero_window_flushes_immediately_without_timers(
        self, trained_gemm_tuner, monkeypatch
    ):
        """window_ms=0 is an explicit immediate-flush mode: each batch
        is whatever is already queued when its leader is picked up — no
        flush timer is ever armed, and an idle shard parks on its queue
        (blocking get) instead of spinning."""
        import repro.service.async_engine as ae

        real_wait_for = asyncio.wait_for
        timers = {"armed": 0}

        def counting_wait_for(*args, **kwargs):
            timers["armed"] += 1
            return real_wait_for(*args, **kwargs)

        monkeypatch.setattr(ae.asyncio, "wait_for", counting_wait_for)
        engine = _async_engine(trained_gemm_tuner, window_ms=0.0)

        async def main():
            replies = await engine.query_many(_requests())
            stats = engine.stats()
            await engine.aclose()
            return replies, stats

        replies, stats = asyncio.run(main())
        assert all(r.config is not None for r in replies)
        reasons = stats.shards[0].flush_reasons
        assert timers["armed"] == 0          # no timer churn, ever
        assert "window" not in reasons       # the mode is explicit...
        assert reasons.get("immediate", 0) + reasons.get("full", 0) >= 1
        assert set(reasons) <= {"immediate", "full", "drain"}

    def test_poisoned_batch_falls_back_per_request(
        self, trained_gemm_tuner, monkeypatch
    ):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)

        def broken_query_many(requests):
            raise RuntimeError("batch path down")

        monkeypatch.setattr(inner, "query_many", broken_query_many)
        engine = AsyncEngine(inner, own_engine=True, window_ms=5.0,
                             max_workers=1)

        async def main():
            replies = await asyncio.gather(
                *(engine.query(r) for r in _requests()[:2])
            )
            stats = engine.stats()
            await engine.aclose()
            return replies, stats

        replies, stats = asyncio.run(main())
        assert all(r.source == "search" for r in replies)
        assert stats.batch_failures >= 1


class TestDrain:
    def test_aclose_answers_admitted_requests(self, trained_gemm_tuner,
                                              monkeypatch):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        orig = inner.query_many

        def slow_query_many(requests):
            time.sleep(0.05)
            return orig(requests)

        monkeypatch.setattr(inner, "query_many", slow_query_many)
        engine = AsyncEngine(inner, own_engine=True, window_ms=50.0,
                             max_batch=8, max_workers=1)

        async def main():
            tasks = [
                asyncio.ensure_future(engine.query(r)) for r in _requests()
            ]
            await asyncio.sleep(0)  # submits reach the shard queue
            await engine.aclose()   # drain: everything admitted answers
            return await asyncio.gather(*tasks), engine.stats()

        replies, stats = asyncio.run(main())
        assert all(r.config is not None for r in replies)
        assert stats.pending == 0
        assert stats.shards[0].flush_reasons.get("drain", 0) >= 1

    def test_aclose_idempotent_and_flushes_profiles(
        self, trained_gemm_tuner, tmp_path
    ):
        path = tmp_path / "profiles.json"
        inner = Engine(max_workers=0, profile_cache=path)
        inner.register(trained_gemm_tuner)
        engine = AsyncEngine(inner, own_engine=True)

        async def main():
            await engine.query(_requests()[0])
            await engine.aclose()
            await engine.aclose()

        asyncio.run(main())
        assert path.exists()


class TestSyncBridge:
    def test_query_sync_matches_engine(self, trained_gemm_tuner):
        sync = Engine(max_workers=0)
        sync.register(trained_gemm_tuner)
        want = sync.query(_requests()[0])

        with _async_engine(trained_gemm_tuner).start() as engine:
            got = engine.query_sync(_requests()[0])
            many = engine.query_many_sync(_requests())
            stats = engine.stats()  # snapshot taken on the loop thread
        assert got.config == want.config
        assert many[0].source == "lru"
        assert stats.submitted == 5

    def test_auto_start_and_threaded_clients(self, trained_gemm_tuner):
        engine = _async_engine(trained_gemm_tuner)
        replies = []
        lock = threading.Lock()

        def client(req):
            reply = engine.query_sync(req)
            with lock:
                replies.append(reply)

        threads = [
            threading.Thread(target=client, args=(r,))
            for r in _requests() * 3
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = engine.stats()
        engine.close()
        assert len(replies) == 12
        # 12 concurrent client threads over 4 shapes: one search each.
        assert stats.submitted == 12
        assert engine.engine.stats().searches == 4

    def test_close_without_use(self, trained_gemm_tuner):
        engine = _async_engine(trained_gemm_tuner)
        engine.close()
        engine.close()

    def test_aclose_from_foreign_loop_refused_without_bricking(
        self, trained_gemm_tuner, tmp_path
    ):
        """A wrong-loop aclose() must be refused before it marks the
        engine closed — a later close() still drains and flushes."""
        path = tmp_path / "profiles.json"
        inner = Engine(max_workers=0, profile_cache=path)
        inner.register(trained_gemm_tuner)
        engine = AsyncEngine(inner, own_engine=True, max_workers=2)
        engine.start()
        engine.query_sync(_requests()[0])
        with pytest.raises(EngineError, match="bound event loop"):
            asyncio.run(engine.aclose())
        # Not bricked: still serving, and close() flushes to disk.
        assert engine.query_sync(_requests()[0]).source == "lru"
        engine.close()
        assert path.exists()

    def test_query_sync_after_close_reports_closed(self,
                                                   trained_gemm_tuner):
        engine = _async_engine(trained_gemm_tuner).start()
        engine.query_sync(_requests()[0])
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.query_sync(_requests()[1])
        # stats() must not hang on the stopped loop either.
        assert engine.stats().submitted == 1

    def test_open_serves_saved_models(self, trained_gemm_tuner, tmp_path):
        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        with AsyncEngine.open(tmp_path, max_workers=2).start() as engine:
            assert engine.devices() == (TESLA_P100.name,)
            assert engine.ops() == ("gemm",)
            reply = engine.query_sync(_requests()[0])
            assert reply.source == "search"
        # close() drained and flushed the model-dir profile store.
        assert (tmp_path / "profiles.json").exists()


class TestAppEval:
    def test_run_network_step_accepts_async_engine(self,
                                                   trained_gemm_tuner):
        step = rnn_training_step(hidden=256, batch=16, timesteps=2)
        want = run_network_step(trained_gemm_tuner, step, k=10, reps=2)

        with _async_engine(trained_gemm_tuner) as engine:
            got = run_network_step(engine, step, k=10, reps=2)
        assert got.isaac_ms == want.isaac_ms
        assert got.per_kernel == want.per_kernel


class TestServeCli:
    def test_serve_replays_network(self, trained_gemm_tuner, tmp_path,
                                   capsys):
        from repro.harness.cli import main

        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        rc = main([
            "serve", "--models", str(tmp_path), "--network", "rnn",
            "--passes", "2", "--concurrency", "8", "-k", "10",
            "--reps", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "served 32 requests" in out
        assert "req/s" in out
        assert "p95=" in out

    def test_serve_retries_transient_backpressure(
        self, trained_gemm_tuner, tmp_path, capsys, monkeypatch
    ):
        """A saturated front door does not lose requests: the serve
        client backs off one window and retries until admitted."""
        from repro.harness.cli import main

        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")
        real_query = AsyncEngine.query
        rejected = {"n": 0}

        async def saturated_at_first(self, request):
            if rejected["n"] < 5:
                rejected["n"] += 1
                raise BackpressureError("synthetic saturation")
            return await real_query(self, request)

        monkeypatch.setattr(AsyncEngine, "query", saturated_at_first)
        rc = main([
            "serve", "--models", str(tmp_path), "--network", "rnn",
            "--passes", "1", "--concurrency", "4", "-k", "10",
            "--reps", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert rejected["n"] == 5  # the flaky window really was hit
        assert "served 16 requests" in out  # ...and nothing was dropped

    def test_serve_propagates_non_transient_backpressure(
        self, trained_gemm_tuner, tmp_path, monkeypatch
    ):
        """A shard-bound rejection is a config error, not load: the
        client must not spin on it."""
        from repro.harness.cli import main

        trained_gemm_tuner.save(tmp_path / "pascal--gemm.npz")

        async def misconfigured(self, request):
            raise BackpressureError("shard bound", transient=False)

        monkeypatch.setattr(AsyncEngine, "query", misconfigured)
        with pytest.raises(BackpressureError):
            main([
                "serve", "--models", str(tmp_path), "--network", "rnn",
                "--passes", "1", "--concurrency", "2", "-k", "10",
                "--reps", "2",
            ])
