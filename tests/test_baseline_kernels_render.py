"""Cross-module: every baseline library kernel renders to valid pseudo-PTX.

The cuBLAS/cuDNN stand-ins are built from the same generator as ISAAC's
kernels, so each of their static kernels must lower to a verifiable
instruction stream on both devices and all supported precisions.
"""

import pytest

from repro.baselines.cublas import CuBLASLike
from repro.baselines.cudnn import CuDNNLike
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.ptx.conv_codegen import ConvKernel
from repro.ptx.gemm_codegen import GemmKernel
from repro.ptx.verifier import verify_ptx

GEMM_SHAPE = GemmShape(2048, 512, 2048, DType.FP32, False, True)
CONV_SHAPE = ConvShape.from_output(n=8, p=28, q=28, k=64, c=64, r=3, s=3)


class TestCuBLASKernelsRender:
    @pytest.mark.parametrize("device", [GTX_980_TI, TESLA_P100],
                             ids=["maxwell", "pascal"])
    @pytest.mark.parametrize("dtype", list(DType), ids=lambda d: d.name)
    def test_all_kernels_verify(self, device, dtype):
        lib = CuBLASLike(device)
        shape = GemmShape(
            GEMM_SHAPE.m, GEMM_SHAPE.n, GEMM_SHAPE.k, dtype,
            GEMM_SHAPE.ta, GEMM_SHAPE.tb,
        )
        kernels = lib.kernels(dtype)
        assert kernels, (device.name, dtype)
        for k in kernels:
            kernel = GemmKernel(
                cfg=k.cfg, shape=shape, device=device,
                allow_fp16x2=k.fp16x2,
            )
            result = verify_ptx(kernel.emit(), device)
            assert result.ok, (k.name, result.errors)

    def test_fp16x2_kernels_emit_packed_opcode(self):
        lib = CuBLASLike(TESLA_P100)
        shape = GemmShape(2048, 512, 2048, DType.FP16, False, True)
        packed = [k for k in lib.kernels(DType.FP16) if k.fp16x2]
        assert packed
        for k in packed:
            text = GemmKernel(
                cfg=k.cfg, shape=shape, device=TESLA_P100,
                allow_fp16x2=True,
            ).emit()
            assert "fma.rn.f16x2" in text, k.name


class TestCuDNNKernelsRender:
    @pytest.mark.parametrize("device", [GTX_980_TI, TESLA_P100],
                             ids=["maxwell", "pascal"])
    @pytest.mark.parametrize("dtype", [DType.FP32, DType.FP16],
                             ids=lambda d: d.name)
    def test_all_kernels_verify(self, device, dtype):
        lib = CuDNNLike(device)
        shape = ConvShape.from_output(
            n=8, p=28, q=28, k=64, c=64, r=3, s=3, dtype=dtype
        )
        kernels = lib.kernels(dtype)
        assert kernels, (device.name, dtype)
        for k in kernels:
            kernel = ConvKernel(
                cfg=k.cfg, shape=shape, device=device,
                allow_fp16x2=k.fp16x2,
            )
            result = verify_ptx(kernel.emit(), device)
            assert result.ok, (k.name, result.errors)
