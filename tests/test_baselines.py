"""Tests for the cuBLAS-like and cuDNN-like baseline libraries."""

import pytest

from repro.baselines.cublas import CuBLASLike
from repro.baselines.cudnn import CuDNNLike
from repro.core.legality import is_legal_conv, is_legal_gemm
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100


class TestCuBLASKernelSet:
    def test_all_variants_legal_per_dtype(self, device):
        lib = CuBLASLike(device)
        for dtype in DType:
            for kernel in lib.kernels(dtype):
                assert is_legal_gemm(kernel.cfg, dtype, device), kernel.name

    def test_fp64_variants_narrow_vectors(self, pascal):
        lib = CuBLASLike(pascal)
        for kernel in lib.kernels(DType.FP64):
            assert kernel.cfg.vec * 8 <= 16

    def test_n_tiling_only_64_and_128(self, maxwell):
        """§8.1: cuBLAS only provides 64- and 128-way tiling along N."""
        lib = CuBLASLike(maxwell)
        for kernel in lib.kernels(DType.FP32):
            assert kernel.cfg.nl in (64, 128)

    def test_no_kl_splitting_anywhere(self, maxwell):
        """§7.3: cuBLAS has no within-SM reduction splitting."""
        lib = CuBLASLike(maxwell)
        for kernel in lib.kernels(DType.FP32):
            assert kernel.cfg.kl == 1

    def test_limited_fp16x2_support(self, pascal):
        """§7.3.2: only a limited set of kernels implements fp16x2."""
        lib = CuBLASLike(pascal)
        kernels = lib.kernels(DType.FP16)
        packed = [k for k in kernels if k.fp16x2]
        assert 0 < len(packed) < len(kernels)


class TestCuBLASHeuristics:
    def test_square_gets_big_tile(self, maxwell):
        lib = CuBLASLike(maxwell)
        k = lib.select(GemmShape(2048, 2048, 2048, DType.FP32, False, True))
        assert k.name == "sgemm_128x128"

    def test_skinny_n_gets_64_tile_without_split(self, maxwell):
        """The documented DeepBench blind spot."""
        lib = CuBLASLike(maxwell)
        for n in (16, 32, 64):
            k = lib.select(GemmShape(2560, n, 2560, DType.FP32, False, False))
            assert k.cfg.kg == 1
            assert k.cfg.nl == 64

    def test_small_ica_gets_split_kernel(self, maxwell):
        lib = CuBLASLike(maxwell)
        k = lib.select(GemmShape(32, 32, 60000, DType.FP32, False, True))
        assert k.cfg.kg > 1

    def test_large_ica_misses_split(self, maxwell):
        """The documented ICA pathology: 256 channels fall through to a
        non-split kernel (paper: order-of-magnitude slowdowns)."""
        lib = CuBLASLike(maxwell)
        k = lib.select(GemmShape(256, 256, 60000, DType.FP32, False, True))
        assert k.cfg.kg == 1

    def test_ica_heuristic_disaster_vs_best(self, maxwell):
        lib = CuBLASLike(maxwell)
        shape = GemmShape(256, 256, 60000, DType.FP32, False, True)
        heur = lib.tflops(shape, "heuristic")
        best = lib.tflops(shape, "best")
        assert best > 2 * heur

    def test_best_mode_at_least_heuristic(self, device):
        lib = CuBLASLike(device)
        for shape in (
            GemmShape(2048, 2048, 2048, DType.FP32, False, True),
            GemmShape(2560, 32, 2560, DType.FP32, False, False),
            GemmShape(64, 64, 60000, DType.FP32, False, True),
        ):
            # Same reps -> same deterministic noise per kernel, so best
            # must dominate.
            assert lib.tflops(shape, "best") >= lib.tflops(shape, "heuristic")

    def test_unknown_mode_rejected(self, maxwell, square_shape):
        with pytest.raises(ValueError):
            CuBLASLike(maxwell).tflops(square_shape, "oracle")


class TestCuDNN:
    def test_kernel_set_legal(self, device):
        lib = CuDNNLike(device)
        for dtype in (DType.FP32, DType.FP16):
            for kernel in lib.kernels(dtype):
                assert is_legal_conv(kernel.cfg, dtype, device), kernel.name

    def test_no_deep_reduction_splitting(self, maxwell):
        """cuDNN's only split kernel is the shallow 4-way variant."""
        lib = CuDNNLike(maxwell)
        assert max(k.cfg.cg for k in lib.kernels(DType.FP32)) <= 4
        assert all(k.cfg.cl == 1 for k in lib.kernels(DType.FP32))

    def test_select_big_npq(self, maxwell):
        lib = CuDNNLike(maxwell)
        shape = ConvShape.from_output(n=16, p=79, q=341, k=32, c=1, r=5, s=20)
        assert lib.select(shape).name == "conv_npq128_k64"

    def test_select_deep_reduction_gets_shallow_split_only(self, maxwell):
        lib = CuDNNLike(maxwell)
        shape = ConvShape.from_output(n=16, p=7, q=7, k=128, c=832, r=5, s=5)
        assert lib.select(shape).cfg.cg <= 4

    def test_same_rules_on_both_archs(self):
        """The Maxwell-tuned heuristics are applied verbatim on Pascal."""
        shape = ConvShape.from_output(n=8, p=54, q=54, k=64, c=64, r=3, s=3)
        assert (
            CuDNNLike(GTX_980_TI).select(shape).name
            == CuDNNLike(TESLA_P100).select(shape).name
        )

    def test_tflops_positive(self, device):
        lib = CuDNNLike(device)
        shape = ConvShape.from_output(n=8, p=28, q=28, k=64, c=64, r=3, s=3)
        assert lib.tflops(shape, "heuristic") > 0
        assert lib.tflops(shape, "best") >= lib.tflops(shape, "heuristic")
