"""Tests for batched GEMM launches."""

import pytest

from repro.core.batched import (
    BatchedGemmShape,
    benchmark_batched_gemm,
    simulate_batched_gemm,
    simulate_looped_gemm,
)
from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.gpu.simulator import IllegalKernelError, simulate_gemm

CFG = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=4, db=2)
SMALL = GemmShape(128, 128, 256, DType.FP32, False, True)


class TestShape:
    def test_flops_scale_with_batch(self):
        b = BatchedGemmShape(batch=12, base=SMALL)
        assert b.flops == 12 * SMALL.flops

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            BatchedGemmShape(batch=0, base=SMALL)

    def test_describe(self):
        assert "batched[4]" in BatchedGemmShape(4, SMALL).describe()


class TestBatchedSimulation:
    def test_grid_scales_with_batch(self):
        b = BatchedGemmShape(batch=16, base=SMALL)
        stats = simulate_batched_gemm(GTX_980_TI, CFG, b)
        single = simulate_gemm(GTX_980_TI, CFG, SMALL)
        assert stats.grid_size == 16 * single.grid_size

    def test_batching_beats_looping_for_small_elements(self):
        """The whole point of gemmStridedBatched: one small GEMM leaves the
        machine nearly idle, so batching amortizes both launch overhead and
        partial waves."""
        b = BatchedGemmShape(batch=64, base=SMALL)
        batched = simulate_batched_gemm(GTX_980_TI, CFG, b).time_ms
        looped = simulate_looped_gemm(GTX_980_TI, CFG, b)
        assert batched < 0.5 * looped

    def test_large_batch_time_roughly_linear(self):
        b1 = BatchedGemmShape(batch=256, base=SMALL)
        b2 = BatchedGemmShape(batch=512, base=SMALL)
        t1 = simulate_batched_gemm(TESLA_P100, CFG, b1).time_ms
        t2 = simulate_batched_gemm(TESLA_P100, CFG, b2).time_ms
        assert t2 / t1 == pytest.approx(2.0, rel=0.25)

    def test_throughput_bounded_by_peak(self):
        b = BatchedGemmShape(batch=128, base=SMALL)
        stats = simulate_batched_gemm(TESLA_P100, CFG, b)
        assert 0 < stats.tflops <= TESLA_P100.peak_tflops(DType.FP32)

    def test_dram_traffic_scales_with_batch(self):
        b1 = BatchedGemmShape(batch=8, base=SMALL)
        b2 = BatchedGemmShape(batch=16, base=SMALL)
        t1 = simulate_batched_gemm(GTX_980_TI, CFG, b1).traffic.dram_bytes
        t2 = simulate_batched_gemm(GTX_980_TI, CFG, b2).traffic.dram_bytes
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_illegal_config_raises(self):
        bad = GemmConfig(ms=1, ns=1, ml=256, nl=256, u=8)
        with pytest.raises(IllegalKernelError):
            simulate_batched_gemm(
                GTX_980_TI, bad, BatchedGemmShape(4, SMALL)
            )

    def test_benchmark_deterministic(self):
        b = BatchedGemmShape(batch=32, base=SMALL)
        assert benchmark_batched_gemm(
            GTX_980_TI, CFG, b
        ) == benchmark_batched_gemm(GTX_980_TI, CFG, b)
