"""Tests for the self-bootstrap analysis (§5) and the CLI."""

import pytest

from repro.core.tuner import Isaac
from repro.gpu.device import TESLA_P100
from repro.harness.bootstrap import bootstrap_report, inference_gemms
from repro.harness.cli import main
from repro.mlp.network import MLP


class TestBootstrap:
    def test_inference_gemms_shapes(self):
        net = MLP(16, (32, 64, 32), seed=0)
        gemms = inference_gemms(net, batch_rows=65_536)
        assert len(gemms) == 4  # 3 hidden + output layer
        label0, shape0 = gemms[0]
        assert shape0.m == 65_536 and shape0.k == 16 and shape0.n == 32
        # Highly rectangular, as §5 observes.
        assert shape0.m / shape0.n > 100

    def test_bootstrap_requires_tuned(self):
        with pytest.raises(RuntimeError):
            bootstrap_report(Isaac(TESLA_P100))

    def test_bootstrap_report(self, trained_gemm_tuner):
        rows = bootstrap_report(
            trained_gemm_tuner, batch_rows=16_384, k=30, reps=2
        )
        assert len(rows) == len(trained_gemm_tuner.fit_result.model.layers)
        for row in rows:
            assert row.isaac_tflops > 0
            assert row.cublas_tflops > 0
        # The tuner should at least match the baseline on its own GEMMs
        # somewhere (skinny layers are exactly its strength).
        assert max(r.speedup for r in rows) > 1.0


class TestCli:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "GTX 980 TI" in out and "took" in out

    def test_sec83(self, capsys):
        assert main(["sec83"]) == 0
        out = capsys.readouterr().out
        assert "predication" in out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_samples_flag_parsed(self, capsys):
        # table3 ignores --samples but the parser must accept it.
        assert main(["table3", "--samples", "5000", "--seed", "3"]) == 0
