"""Tests for the on-disk candidate store and zero-enumeration cold start."""

import numpy as np
import pytest

import repro.inference.conv_search as conv_search
import repro.inference.search as search
from repro.core.candidate_store import CandidateStore
from repro.core.space import ParamSpace
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import GTX_980_TI
from repro.service.engine import Engine, KernelRequest


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Candidate caches are process-global; isolate this module's tests."""
    search.clear_cache()
    yield
    search.clear_cache()


def _forbid_enumeration(monkeypatch) -> None:
    def _boom(self, *args, **kwargs):
        raise AssertionError("product-space enumeration ran on a store hit")

    monkeypatch.setattr(ParamSpace, "grid", _boom)
    monkeypatch.setattr(ParamSpace, "iter_points", _boom)


class TestCandidateStore:
    def test_enum_round_trip_without_enumeration(
        self, tiny_space, tmp_path, monkeypatch
    ):
        configs, matrix = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        store = CandidateStore(tmp_path / "candidates")
        assert store.save() == 1
        search.clear_cache()
        assert store.load() == 1
        _forbid_enumeration(monkeypatch)
        loaded, loaded_matrix = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert loaded == configs
        assert np.array_equal(loaded_matrix, matrix)

    def test_conv_bucket_round_trip(self, tmp_path, monkeypatch):
        shape = ConvShape.from_output(
            n=4, p=14, q=14, k=64, c=128, r=3, s=3
        )
        cfgs, matrix = conv_search.conv_candidates_batch(GTX_980_TI, shape)
        store = CandidateStore(tmp_path / "candidates")
        saved = store.save()
        assert saved == 2  # the gemm enumeration + the conv bucket
        search.clear_cache()
        assert store.load() == 2
        _forbid_enumeration(monkeypatch)
        loaded, loaded_matrix = conv_search.conv_candidates_batch(
            GTX_980_TI, shape
        )
        assert loaded == cfgs
        assert np.array_equal(loaded_matrix, matrix)

    def test_save_is_idempotent(self, tiny_space, tmp_path):
        search.legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        store = CandidateStore(tmp_path / "candidates")
        assert store.save() == 1
        assert store.save() == 0  # records are immutable, files kept
        assert len(store) == 1

    def test_seed_does_not_clobber_cached_records(self, tiny_space,
                                                  tmp_path):
        configs, _ = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        store = CandidateStore(tmp_path / "candidates")
        store.save()
        # The key is already cached in memory: load must keep the live
        # record (and report nothing seeded).
        assert store.load() == 0
        again, _ = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert again is configs

    def test_unreadable_record_is_skipped(self, tiny_space, tmp_path):
        search.legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        store = CandidateStore(tmp_path / "candidates")
        store.save()
        (tmp_path / "candidates" / "enum--garbage.npz").write_bytes(
            b"not an npz"
        )
        # A torn archive (valid PK magic, truncated body) raises
        # zipfile.BadZipFile rather than ValueError — must also skip.
        (tmp_path / "candidates" / "enum--torn.npz").write_bytes(
            b"PK\x03\x04" + b"\x00" * 16
        )
        search.clear_cache()
        with pytest.warns(UserWarning, match="unreadable"):
            assert store.load() == 1

    def test_missing_directory_is_empty(self, tmp_path):
        store = CandidateStore(tmp_path / "nope")
        assert store.load() == 0
        assert len(store) == 0

    def test_stale_space_definition_reenumerates(self, tiny_space,
                                                 tmp_path):
        """A record enumerated from different value sets must not be
        served for a space that now disagrees with them."""
        from dataclasses import replace

        configs, _ = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        store = CandidateStore(tmp_path / "candidates")
        store.save()
        search.clear_cache()
        store.load()
        # Same space *name*, edited value sets — as after a space change.
        edited = replace(
            tiny_space,
            params=tuple(
                (n, v if n != "u" else (8,)) for n, v in tiny_space.params
            ),
        )
        fresh, _ = search.legal_configs(GTX_980_TI, DType.FP32, "gemm",
                                        edited)
        assert all(c.u == 8 for c in fresh)  # re-enumerated, not stale
        assert fresh != configs

    def test_schema_mismatch_skipped_on_load(self, tiny_space, tmp_path):
        """Columns that no longer cover the config schema are not seeded
        (and so can never poison a cache key)."""
        search.legal_configs(GTX_980_TI, DType.FP32, "gemm", tiny_space)
        store = CandidateStore(tmp_path / "candidates")
        store.save()
        path = store.files()[0]
        with np.load(path, allow_pickle=False) as z:
            data = {k: z[k] for k in z.files}
        data.pop("ms")  # drop a column, as a config-schema change would
        np.savez(path, **data)
        search.clear_cache()
        assert store.load() == 0
        # The key re-enumerates normally.
        configs, _ = search.legal_configs(
            GTX_980_TI, DType.FP32, "gemm", tiny_space
        )
        assert len(configs) > 0


class TestEngineColdStart:
    def test_warmed_store_skips_enumeration(
        self, trained_gemm_tuner, tmp_path, monkeypatch
    ):
        """Engine cold start on a warmed cache dir performs zero
        product-space enumeration: the candidate store supplies the
        columns, only config materialization remains."""
        model_dir = tmp_path / "models"
        model_dir.mkdir()
        trained_gemm_tuner.save(model_dir / "pascal--gemm.npz")

        first = GemmShape(384, 384, 384, DType.FP32, False, True)
        with Engine.open(model_dir, max_workers=0) as engine:
            reply = engine.query(KernelRequest("gemm", first, k=5, reps=1))
            assert reply.source == "search"
        store = CandidateStore(model_dir / "candidates")
        assert len(store) >= 1  # close() persisted the enumeration

        # "New process": in-memory caches gone, enumeration forbidden.
        search.clear_cache()
        _forbid_enumeration(monkeypatch)
        second = GemmShape(640, 128, 640, DType.FP32, False, True)
        with Engine.open(model_dir, max_workers=0) as engine:
            reply = engine.query(KernelRequest("gemm", second, k=5, reps=1))
        assert reply.source == "search"
