"""The two-stage cascade search: provable parity, fallbacks, hot-swaps.

The cascade's whole contract is *bit-identical top-k for less time*:
stage 1 scores every candidate with the full model in float32, prunes to
a shortlist padded by an offline-calibrated margin, and stage 2 re-scores
only the shortlist in float64.  These tests pin the three legs:

* **parity** — cascade top-k equals exhaustive top-k exactly (configs
  *and* predicted TFLOPS) for gemm/conv/bgemm, single and batched,
  across hypothesis-random shapes and k;
* **safety fallbacks** — an uncalibrated fit, a stale weights digest, a
  failed query-time margin check, or a too-small candidate set each
  force the exhaustive path (correct answers, counted fallbacks), never
  a silently wrong shortlist;
* **hot-swap regression** — an online fine-tune (PR 7) drops the old
  margins inside the swap's critical section and recalibrates for the
  new weights, so mid-traffic swaps can never serve stale-margin
  results; the worker tier re-arms from the broadcast fit bytes alone.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedGemmShape
from repro.core.tuner import Isaac
from repro.core.types import ConvShape, DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.mlp.crossval import CascadeCalibration
from repro.mlp.serialize import (
    fit_from_bytes,
    fit_to_bytes,
    fit_weights_digest,
)
from repro.service.engine import Engine, KernelRequest, WorkerEngine
from repro.service.online import OnlineConfig

DEVICE = TESLA_P100.name

_DIMS = st.sampled_from([16, 32, 48, 64, 128, 256, 512, 1024, 2560])


@st.composite
def gemm_shapes(draw) -> GemmShape:
    return GemmShape(
        m=draw(_DIMS),
        n=draw(_DIMS),
        k=draw(_DIMS),
        dtype=DType.FP32,
        ta=draw(st.booleans()),
        tb=draw(st.booleans()),
    )


def _tops_equal(a, b) -> bool:
    """Exact (config, predicted) equality — the bit-identity contract."""
    return len(a) == len(b) and all(
        x.config == y.config and x.predicted_tflops == y.predicted_tflops
        for x, y in zip(a, b)
    )


def _cascade_vs_exhaustive(tuner, shapes, k):
    """Run top_k + top_k_batch both ways on one searcher; return pairs."""
    search = tuner.searcher
    try:
        search.set_cascade(True)
        cas_single = [tuner.top_k(s, k) for s in shapes]
        cas_batch = tuner.top_k_batch(list(shapes), k)
        search.set_cascade(False)
        exh_single = [tuner.top_k(s, k) for s in shapes]
        exh_batch = tuner.top_k_batch(list(shapes), k)
    finally:
        search.set_cascade(True)
    return cas_single, cas_batch, exh_single, exh_batch


# ----------------------------------------------------------------------
# Parity: cascade == exhaustive, exactly
# ----------------------------------------------------------------------

@given(shape=gemm_shapes(), k=st.sampled_from([1, 7, 60, 300]))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_gemm_cascade_parity_random_shapes(trained_gemm_tuner, shape, k):
    """Hypothesis: any legal shape, any k — identical top-k both ways."""
    cas_s, cas_b, exh_s, exh_b = _cascade_vs_exhaustive(
        trained_gemm_tuner, [shape], k
    )
    assert _tops_equal(cas_s[0], exh_s[0])
    assert _tops_equal(cas_b[0], exh_b[0])
    assert _tops_equal(cas_s[0], cas_b[0])


def _golden_shapes(op: str):
    if op == "gemm":
        return [
            GemmShape(2560, 16, 2560, DType.FP32, False, False),
            GemmShape(512, 512, 512, DType.FP32, False, True),
            GemmShape(32, 32, 60000, DType.FP32, False, True),
        ]
    if op == "conv":
        return [
            ConvShape.from_output(n=2, p=6, q=6, k=16, c=8, r=3, s=3),
            ConvShape.from_output(n=4, p=12, q=12, k=64, c=32, r=3, s=3),
        ]
    return [
        BatchedGemmShape(batch=16, base=GemmShape(64, 64, 128)),
        BatchedGemmShape(batch=64, base=GemmShape(128, 96, 256)),
    ]


@pytest.mark.parametrize("op", ["gemm", "conv", "bgemm"])
def test_golden_shortlist_parity_all_ops(
    op, trained_gemm_tuner, small_conv_tuner, small_bgemm_tuner
):
    """Fixed shapes per op: the cascade engages (prunes > 90%) and its
    top-k — single and batched — matches the exhaustive reference."""
    tuner = {"gemm": trained_gemm_tuner, "conv": small_conv_tuner,
             "bgemm": small_bgemm_tuner}[op]
    shapes = _golden_shapes(op)
    stats = tuner.searcher.cascade_stats
    before = stats.cascade_queries
    fallbacks_before = stats.fallbacks
    pruned_before = stats.pruned
    cas_s, cas_b, exh_s, exh_b = _cascade_vs_exhaustive(tuner, shapes, 25)
    for c, e in zip(cas_s, exh_s):
        assert _tops_equal(c, e)
    for c, e in zip(cas_b, exh_b):
        assert _tops_equal(c, e)
    # The shortlist path actually served these (not a silent fallback) …
    assert stats.cascade_queries >= before + 2 * len(shapes)
    assert stats.fallbacks == fallbacks_before
    # … and it pruned candidates while doing so.
    assert stats.pruned > pruned_before
    # Stage 2 also reproduces the unfolded reference ranking: the top-k
    # scores come from the same prediction vector (within the folded
    # path's regression tolerance, see test_ops_registry).
    ref = tuner.searcher.predictions_reference(shapes[0])
    want = np.sort(ref)[-25:][::-1]
    got = np.array([p.predicted_tflops for p in cas_s[0]])
    np.testing.assert_allclose(np.log2(got), want, rtol=0, atol=2e-9)


# ----------------------------------------------------------------------
# Safety fallbacks: wrong state must mean exhaustive, never wrong
# ----------------------------------------------------------------------

def _tiny_tuner() -> Isaac:
    """A mutable tiny-budget tuner (session fixtures are off limits for
    weight mutation and calibration stripping)."""
    tuner = Isaac(TESLA_P100, op="gemm", dtypes=(DType.FP32,))
    tuner.tune(n_samples=900, seed=7, epochs=8, generative_target=80)
    return tuner


@pytest.fixture(scope="module")
def mutable_tuner() -> Isaac:
    return _tiny_tuner()


def test_uncalibrated_fit_searches_exhaustively(mutable_tuner):
    shape = GemmShape(256, 64, 256, DType.FP32, False, True)
    search = mutable_tuner.searcher
    calib = mutable_tuner.fit_result.cascade
    assert calib is not None
    want = mutable_tuner.top_k(shape, 10)
    try:
        mutable_tuner.fit_result.cascade = None
        before = search.cascade_stats.exhaustive_queries
        got = mutable_tuner.top_k(shape, 10)
        assert search.cascade_stats.exhaustive_queries == before + 1
        assert _tops_equal(got, want)
    finally:
        mutable_tuner.fit_result.cascade = calib


def test_corrupted_margin_trips_runtime_fallback(mutable_tuner):
    """A margin far too small fails the query-time observed-margin check:
    the query falls back to exhaustive and still answers correctly."""
    shape = GemmShape(320, 96, 512, DType.FP32, False, True)
    search = mutable_tuner.searcher
    calib = mutable_tuner.fit_result.cascade
    want = mutable_tuner.top_k(shape, 10)
    try:
        mutable_tuner.fit_result.cascade = CascadeCalibration(
            margins={k: 1e-14 for k in calib.margins},
            weights_digest=calib.weights_digest,
            n_shapes=calib.n_shapes,
            safety=calib.safety,
        )
        before = search.cascade_stats.fallbacks
        got = mutable_tuner.top_k(shape, 10)
        assert search.cascade_stats.fallbacks == before + 1
        assert _tops_equal(got, want)
    finally:
        mutable_tuner.fit_result.cascade = calib


def test_stale_weights_digest_disarms_until_recalibration(mutable_tuner):
    """In-place weight mutation (what a hot-swap does) must disarm the
    cascade — the old margins hashed different weights — and a fresh
    calibration must re-arm it, still bit-identical."""
    shape = GemmShape(448, 64, 448, DType.FP32, False, True)
    search = mutable_tuner.searcher
    stats = search.cascade_stats
    layer = mutable_tuner.fit_result.model.layers[1]
    original = layer.w.copy()
    try:
        layer.w += 1e-4
        search.refold()
        assert (mutable_tuner.fit_result.cascade.weights_digest
                != fit_weights_digest(mutable_tuner.fit_result))
        before_cas = stats.cascade_queries
        before_exh = stats.exhaustive_queries
        got = mutable_tuner.top_k(shape, 10)
        assert stats.cascade_queries == before_cas
        assert stats.exhaustive_queries == before_exh + 1
        # Recalibrate for the mutated weights: the cascade re-arms and
        # agrees with the exhaustive ranking of the *new* model.
        mutable_tuner.calibrate_cascade()
        cas = mutable_tuner.top_k(shape, 10)
        assert stats.cascade_queries == before_cas + 1
        assert _tops_equal(cas, got)
    finally:
        layer.w[:] = original
        search.refold()
        mutable_tuner.calibrate_cascade()


def test_tiny_candidate_set_skips_cascade(mutable_tuner):
    """keep within 4x of the set size: two passes cost more than one."""
    shape = GemmShape(128, 64, 128, DType.FP32, False, True)
    search = mutable_tuner.searcher
    n = len(search._candidate_set(shape).configs)
    try:
        search.set_cascade(True, keep=n)  # keep * 4 >= n
        before = search.cascade_stats.exhaustive_queries
        mutable_tuner.top_k(shape, 5)
        assert search.cascade_stats.exhaustive_queries == before + 1
    finally:
        search.set_cascade(True, keep=256)


# ----------------------------------------------------------------------
# Serialization: margins ride the fit bytes, back-compat intact
# ----------------------------------------------------------------------

def test_calibration_round_trips_through_fit_bytes(mutable_tuner):
    fit = mutable_tuner.fit_result
    restored = fit_from_bytes(fit_to_bytes(fit))
    assert restored.cascade is not None
    assert restored.cascade.margins == fit.cascade.margins
    assert restored.cascade.weights_digest == fit.cascade.weights_digest
    assert restored.cascade.n_shapes == fit.cascade.n_shapes
    assert restored.cascade.safety == fit.cascade.safety
    # The restored digest still matches the restored weights: a rebuilt
    # search (worker boot) arms itself from the bytes alone.
    assert restored.cascade.weights_digest == fit_weights_digest(restored)


def test_uncalibrated_fit_bytes_stay_backward_compatible(mutable_tuner):
    """Fits without a calibration (pre-cascade stores) serialize without
    the optional header and load with ``cascade=None``."""
    fit = mutable_tuner.fit_result
    calib = fit.cascade
    try:
        fit.cascade = None
        restored = fit_from_bytes(fit_to_bytes(fit))
        assert restored.cascade is None
    finally:
        fit.cascade = calib


# ----------------------------------------------------------------------
# Engine integration: hot-swaps mid-traffic, policy knobs, warmup
# ----------------------------------------------------------------------

def _shape(m, n=128, k=256) -> GemmShape:
    return GemmShape(m, n, k, DType.FP32, False, True)


def test_hot_swap_mid_traffic_never_serves_stale_margins():
    """The PR 7 regression: queries before, between and after online
    hot-swaps — every swap drops the old margins and recalibrates, so
    the cascade stays armed with fresh ones and never trips a fallback
    (a stale margin would either disarm it or fail the runtime check)."""
    engine = Engine(
        online=OnlineConfig(update_every=8, epochs=2, anchor_size=64,
                            batch_size=32),
        max_workers=0,
    )
    engine.register(_tiny_tuner())
    tuner = engine._tuner(DEVICE, "gemm")
    swaps = 0
    for m in (256, 288, 320, 352, 384):
        reply = engine.query(
            KernelRequest("gemm", _shape(m), k=10, reps=2)
        )
        assert reply.source == "search"
        updates = engine.run_online_updates()
        if updates:
            swaps += len(updates)
            fit = tuner.fit_result
            # The swap recalibrated inside its critical section …
            assert fit.cascade is not None
            assert fit.cascade.weights_digest == fit_weights_digest(fit)
    assert swaps >= 1
    stats = engine.stats()
    assert stats.model_swaps == swaps
    assert stats.cascade_searches == 5
    assert stats.exhaustive_searches == 0
    assert stats.cascade_fallbacks == 0
    # … and the post-swap answers equal a clone built from the exported
    # bytes (margins included): the served state is exactly the bytes.
    blob, dtype_names = engine.export_fits([(DEVICE, "gemm")])[
        (DEVICE, "gemm")
    ]
    clone = Isaac.from_fit(
        TESLA_P100, "gemm", fit_from_bytes(blob),
        dtypes=tuple(DType[n] for n in dtype_names),
    )
    probe = _shape(500)
    reply = engine.query(KernelRequest("gemm", probe, k=10, reps=2))
    best = clone.best_kernel(probe, k=10, reps=2)
    assert reply.config == best.config
    assert clone.searcher.cascade_stats.cascade_queries == 1
    engine.close()


def test_engine_cascade_disabled_and_keep_override(mutable_tuner):
    try:
        stats = mutable_tuner.searcher.cascade_stats
        engine = Engine(cascade=False, max_workers=0)
        engine.register(mutable_tuner)
        before_cas, before_exh = stats.cascade_queries, stats.exhaustive_queries
        engine.query(KernelRequest("gemm", _shape(200), k=5, reps=1))
        assert stats.exhaustive_queries == before_exh + 1
        assert stats.cascade_queries == before_cas
        # The engine-level counters mirror the searcher's.
        assert engine.stats().exhaustive_searches == stats.exhaustive_queries
        engine.close()

        engine2 = Engine(cascade=True, cascade_keep=64, max_workers=0)
        engine2.register(mutable_tuner)
        assert mutable_tuner.searcher._cascade_keep == 64
        before = mutable_tuner.searcher.cascade_stats.cascade_queries
        engine2.query(KernelRequest("gemm", _shape(208), k=5, reps=1))
        assert (mutable_tuner.searcher.cascade_stats.cascade_queries
                == before + 1)
        assert (engine2.stats().cascade_searches
                == mutable_tuner.searcher.cascade_stats.cascade_queries)
        engine2.close()
    finally:
        # register() applies engine policy to the shared module tuner.
        mutable_tuner.searcher.set_cascade(True, keep=256)


def test_warmup_calibrates_and_persists_legacy_store(tmp_path):
    """A model store saved before the cascade existed: ``ensure_cascade``
    (the warmup path) calibrates the loaded fit and re-saves it, so the
    next process boots already armed."""
    tuner = _tiny_tuner()
    tuner.fit_result.cascade = None  # a pre-cascade fit on disk
    path = tmp_path / "legacy.npz"
    tuner.save(path)
    assert fit_from_bytes(path.read_bytes()).cascade is None

    with Engine.open(tmp_path) as engine:
        assert engine.ensure_cascade(DEVICE, "gemm")
        loaded = engine._tuner(DEVICE, "gemm")
        assert loaded.fit_result.cascade is not None
        reply = engine.query(
            KernelRequest("gemm", _shape(224), k=5, reps=1)
        )
        assert reply.source == "search"
        assert engine.stats().cascade_searches == 1
    # Persisted: a second open is calibrated without recalibrating.
    assert fit_from_bytes(path.read_bytes()).cascade is not None


# ----------------------------------------------------------------------
# Worker tier: cascade state ships zero-copy, policy follows the parent
# ----------------------------------------------------------------------

def test_worker_state_ships_and_adopts_cascade(trained_gemm_tuner):
    engine = Engine(max_workers=0)
    engine.register(trained_gemm_tuner)
    shape = GemmShape(96, 64, 96, DType.FP32, False, True)
    want = engine.query(KernelRequest("gemm", shape, k=8, reps=2))
    state = engine.export_worker_state()
    assert state.cascade_enabled
    assert len(state.cascade) >= 1
    assert all(item["name"].startswith("cas.") for item in state.cascade)

    worker = WorkerEngine(
        state.fits, state.records, state.prescaled, state.arrays,
        cascade=state.cascade, cascade_enabled=state.cascade_enabled,
        cascade_keep=state.cascade_keep,
    )
    assert worker.adopted_cascade == len(state.cascade)
    ((ok, payload),) = worker.search_batch(DEVICE, "gemm", [shape], 8, 2)
    assert ok
    assert payload[0] == want.config
    assert payload[2] == want.measured_tflops
    assert worker.stats()["cascade_searches"] == 1
    assert worker.stats()["cascade_fallbacks"] == 0
    engine.close()


def test_worker_inherits_disabled_cascade_policy(trained_gemm_tuner):
    engine = Engine(max_workers=0, cascade=False)
    engine.register(trained_gemm_tuner)
    try:
        state = engine.export_worker_state()
        assert not state.cascade_enabled
        worker = WorkerEngine(
            state.fits, state.records, state.prescaled, state.arrays,
            cascade=state.cascade, cascade_enabled=state.cascade_enabled,
            cascade_keep=state.cascade_keep,
        )
        shape = GemmShape(112, 64, 112, DType.FP32, False, True)
        ((ok, _),) = worker.search_batch(DEVICE, "gemm", [shape], 8, 2)
        assert ok
        assert worker.stats()["cascade_searches"] == 0
        assert worker.stats()["exhaustive_searches"] == 1
    finally:
        # register() flipped the shared session fixture's policy off.
        trained_gemm_tuner.searcher.set_cascade(True)
        engine.close()


def test_broadcast_drops_cascade_twins_for_updated_pairs():
    """After a hot-swap broadcast, the boot payload keeps no float32
    twin cast from the old weights for the updated pair — a respawned
    worker re-arms from the new fit bytes and recasts lazily."""
    from repro.service.worker_pool import WorkerPool

    engine = Engine(
        online=OnlineConfig(update_every=4, epochs=2, anchor_size=64),
        max_workers=0,
    )
    engine.register(_tiny_tuner())
    engine.query(KernelRequest("gemm", _shape(96, 96, 96), k=8, reps=2))
    try:
        with WorkerPool(engine, 1) as pool:
            assert pool._boot["cascade_enabled"]
            assert len(pool._boot["cascade"]) >= 1
            assert pool.ping(0)["adopted_cascade"] >= 1

            engine.query(
                KernelRequest("gemm", _shape(224, 96, 224), k=8, reps=2)
            )
            assert engine.run_online_updates()
            fits = engine.export_fits([(DEVICE, "gemm")])
            assert pool.broadcast_fits(fits) == 1
            assert pool._boot["cascade"] == []
            assert pool._boot["prescaled"] == []

            # The worker's rebuilt search armed itself from the shipped
            # calibration and serves the swap's answers via the cascade.
            shape = _shape(160, 80, 160)
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [shape], 8, 2
            ).result(timeout=300)
            assert ok
            want = engine._tuner(DEVICE, "gemm").best_kernel(
                shape, k=8, reps=2
            )
            assert payload[0] == want.config
            assert payload[2] == want.measured_tflops
            stats = pool.ping(0)
            assert stats["adopted_fits"] == 1
            assert stats["cascade_searches"] >= 1
            assert stats["cascade_fallbacks"] == 0
    finally:
        engine.close()
