"""The chaos plane end to end: every failure path, driven on purpose.

Each robustness mechanism in the serving stack is exercised here under a
deterministic seeded :class:`FaultPlan` (see docs/architecture.md,
"Failure model"):

* the plan itself — trigger windows, probabilistic firing, the fire log —
  is a pure function of (seed, site, hit), so chaos runs replay exactly;
* end-to-end deadlines — admission rejects, shard-queue shedding, and
  client-side timeouts that never cancel the underlying search;
* the hung-worker path — a worker that stops replying is killed,
  respawned from the same shared segment and the job replayed, with the
  final answer config-identical to the in-process search;
* the circuit breaker — repeated pool failures trip flushes onto the
  in-process path; a half-open probe re-arms the pool;
* corruption-safe state — rotted candidate records, profile caches, fit
  files and online update logs are quarantined and rebuilt, never a
  crashed boot;
* the randomized fuzz — seeded fault storms through the async front
  door: every answered request is config-identical to the direct search,
  every failure is typed, nothing deadlocks, and replaying the seed
  reproduces the run outcome for outcome.

Extra fuzz seeds can be supplied via ``REPRO_CHAOS_SEEDS=7,19`` (the CI
chaos smoke step does).
"""

import asyncio
import os
import time

import pytest

from repro.core import integrity
from repro.core.types import DType, GemmShape
from repro.gpu.device import TESLA_P100
from repro.service import faults
from repro.service.async_engine import AsyncEngine, BackpressureError
from repro.service.engine import (
    DeadlineExceeded,
    Engine,
    EngineError,
    KernelRequest,
)
from repro.service.faults import FaultPlan, FaultSpec, InjectedFault
from repro.service.worker_pool import WorkerCrashed, WorkerPool

DEVICE = TESLA_P100.name
K, REPS = 8, 2

#: Errors a client may legitimately see under chaos — anything else
#: (a bare KeyError, a deadlock, a swallowed None) is a bug.
TYPED_FAILURES = (
    InjectedFault,
    EngineError,  # includes DeadlineExceeded
    BackpressureError,
    WorkerCrashed,
)


def _shape(m, n=64, k=64, ta=False, tb=True) -> GemmShape:
    return GemmShape(m, n, k, DType.FP32, ta, tb)


def _req(m, n=64, k=64, *, deadline_ms=None, reps=REPS) -> KernelRequest:
    return KernelRequest(
        "gemm", _shape(m, n, k), k=K, reps=reps, deadline_ms=deadline_ms
    )


@pytest.fixture(autouse=True)
def _always_disarmed():
    """No chaos test may leak an armed plan into the rest of the suite."""
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def engine(trained_gemm_tuner) -> Engine:
    eng = Engine(max_workers=0)
    eng.register(trained_gemm_tuner)
    yield eng
    eng.close()


# ----------------------------------------------------------------------
# The plan itself: deterministic trigger windows and draws
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x", action="explode")
        with pytest.raises(ValueError):
            FaultSpec("")
        with pytest.raises(ValueError):
            FaultSpec("x", times=0)
        with pytest.raises(ValueError):
            FaultSpec("x", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("x", after=-1)

    def test_disarmed_checkpoint_is_a_noop(self):
        faults.inject("anything.at.all")  # must not raise
        assert faults.fire_log() == ()
        assert faults.fire_counts() == {}

    def test_trigger_window_after_and_times(self):
        plan = FaultPlan((FaultSpec("s", after=1, times=2),), seed=0)
        with faults.armed(plan):
            outcomes = []
            for _ in range(5):
                try:
                    faults.inject("s")
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("boom")
            # Skip the first hit, fire the next two, then stay quiet.
            assert outcomes == ["ok", "boom", "boom", "ok", "ok"]
            assert faults.fire_log() == (("s", 1, "raise"), ("s", 2, "raise"))
            assert faults.fire_counts() == {"s": 2}
        assert faults.fire_log() == ()  # context manager disarmed

    def test_probabilistic_firing_is_seed_deterministic(self):
        plan = FaultPlan(
            (FaultSpec("p", probability=0.4, times=None),), seed=42
        )

        def run() -> list[bool]:
            fired = []
            with faults.armed(plan):
                for _ in range(60):
                    try:
                        faults.inject("p")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        first, second = run(), run()
        assert first == second  # bit-identical replay
        assert 0 < sum(first) < 60  # the draw actually discriminates

        # A different seed fires a different subset.
        other = FaultPlan(
            (FaultSpec("p", probability=0.4, times=None),), seed=43
        )
        with faults.armed(other):
            fired = []
            for _ in range(60):
                try:
                    faults.inject("p")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
        assert fired != first

    def test_sleep_action_delays(self):
        plan = FaultPlan(
            (FaultSpec("z", action="sleep", delay_s=0.05),), seed=0
        )
        with faults.armed(plan):
            t0 = time.monotonic()
            faults.inject("z")
            assert time.monotonic() - t0 >= 0.045
            assert faults.fire_counts() == {"z": 1}

    def test_corrupt_action_breaks_the_digest(self, tmp_path):
        path = tmp_path / "state.bin"
        path.write_bytes(b"precious bytes that must survive" * 8)
        integrity.write_digest(path)
        assert integrity.check(path) is True
        plan = FaultPlan(
            (FaultSpec("w", action="corrupt"),), seed=9
        )
        with faults.armed(plan):
            faults.inject("w", path)
        assert integrity.check(path) is False


class TestIntegrity:
    def test_round_trip_and_tamper(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"\x00" * 256)
        digest = integrity.write_digest(path)
        assert len(digest) == 64  # blake2b-256 hex
        assert integrity.check(path) is True
        path.write_bytes(b"\x00" * 255 + b"\x01")
        assert integrity.check(path) is False

    def test_missing_sidecar_is_legacy_not_corrupt(self, tmp_path):
        path = tmp_path / "old-file"
        path.write_bytes(b"pre-digest era")
        assert integrity.check(path) is None

    def test_quarantine_renames_and_drops_sidecar(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"rotten")
        integrity.write_digest(path)
        target = integrity.quarantine(path)
        assert not path.exists()
        assert not integrity.digest_path(path).exists()
        assert target.exists() and ".corrupt-" in target.name


# ----------------------------------------------------------------------
# End-to-end deadlines
# ----------------------------------------------------------------------

class TestDeadlines:
    def test_admission_rejects_spent_budget(self, engine):
        for budget in (0.0, -5.0):
            with pytest.raises(DeadlineExceeded):
                engine.query(_req(64, deadline_ms=budget))
        # DeadlineExceeded is an EngineError: existing handlers catch it.
        assert issubclass(DeadlineExceeded, EngineError)

    def test_async_admission_counts(self, trained_gemm_tuner):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        with AsyncEngine(inner) as front:
            with pytest.raises(DeadlineExceeded):
                front.query_sync(_req(64, deadline_ms=0.0))
            assert front.stats().deadlines_exceeded == 1
        inner.close()

    def test_client_timeout_sheds_wait_not_search(self, trained_gemm_tuner):
        """An expired waiter gets DeadlineExceeded; the search it started
        still completes and warms the cache for the next caller."""
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        plan = FaultPlan(
            (FaultSpec("engine.search", action="sleep", delay_s=0.6),),
            seed=1,
        )
        want = trained_gemm_tuner.best_kernel(_shape(72), k=K, reps=REPS)
        with AsyncEngine(inner) as front:
            with faults.armed(plan):
                with pytest.raises(DeadlineExceeded):
                    front.query_sync(_req(72, deadline_ms=50.0))
                # The un-deadlined retry coalesces with (or is cached
                # behind) the still-running search — same answer, late.
                reply = front.query_sync(_req(72))
            assert reply.config == want.config
            assert reply.measured_tflops == want.measured_tflops
            stats = front.stats()
            assert stats.deadlines_exceeded >= 1
        inner.close()

    def test_expired_queue_entries_are_shed_before_flush(
        self, trained_gemm_tuner
    ):
        """A request whose deadline expires while queued behind a slow
        flush is shed with a typed error, not searched pointlessly."""
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        plan = FaultPlan(
            (FaultSpec("engine.search", action="sleep", delay_s=0.5),),
            seed=2,
        )

        async def main(front: AsyncEngine):
            slow = asyncio.ensure_future(front.query(_req(80)))
            await asyncio.sleep(0.05)  # let the slow flush start
            with pytest.raises(DeadlineExceeded):
                # Queued behind the sleeping flush; expires in the queue.
                await front.query(_req(88, deadline_ms=100.0))
            await slow

        inner_front = AsyncEngine(inner, max_batch=1)
        with inner_front as front:
            with faults.armed(plan):
                asyncio.run(main(front))
            stats = front.stats()
            assert stats.deadline_shed + stats.deadlines_exceeded >= 1
        inner.close()


# ----------------------------------------------------------------------
# Hung workers: kill -> respawn -> replay
# ----------------------------------------------------------------------

class TestWorkerHang:
    def test_hang_then_kill_then_crash_all_replay_identically(
        self, engine, trained_gemm_tuner
    ):
        """One pool, three injected disasters, three identical answers."""
        engine.query(_req(64))  # warm state for the shared segment
        want_a = trained_gemm_tuner.best_kernel(_shape(96), k=K, reps=REPS)
        want_b = trained_gemm_tuner.best_kernel(_shape(112), k=K, reps=REPS)
        with WorkerPool(engine, 1, reply_timeout_s=2.0) as pool:
            # (1) hang: the worker answers the search but never replies.
            pool.arm_faults(0, FaultPlan(
                (FaultSpec("worker.reply", action="hang", hang_s=120.0),),
                seed=5,
            ))
            t0 = time.monotonic()
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [_shape(96)], K, REPS
            ).result(timeout=300)
            elapsed = time.monotonic() - t0
            assert ok
            assert payload[0] == want_a.config
            assert payload[2] == want_a.measured_tflops
            assert elapsed < 120.0  # the hang was cut short by the kill
            stats = pool.stats()[0]
            assert stats["hangs"] >= 1
            assert stats["respawns"] >= 1
            assert pool.alive(0)

            # (2) kill: SIGKILL mid-flush takes the plain crash path.
            pool.arm_faults(0, FaultPlan(
                (FaultSpec("worker.flush", action="kill"),), seed=6,
            ))
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [_shape(112)], K, REPS
            ).result(timeout=300)
            assert ok
            assert payload[0] == want_b.config
            assert pool.stats()[0]["respawns"] >= 2

            # (3) after all that violence: a clean flush still matches.
            ((ok, payload),) = pool.submit_flush(
                0, DEVICE, "gemm", [_shape(96)], K, REPS
            ).result(timeout=300)
            assert ok and payload[0] == want_a.config

    def test_watchdog_pings_and_revives_an_idle_dead_worker(self, engine):
        engine.query(_req(64))
        with WorkerPool(engine, 1, reply_timeout_s=5.0,
                        heartbeat_s=0.2) as pool:
            deadline = time.monotonic() + 30
            while (pool.stats()[0]["heartbeats"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert pool.stats()[0]["heartbeats"] >= 1
            # Kill the idle worker out of band: no traffic is flowing,
            # so only the watchdog can notice and respawn it.
            pool.kill_worker(0)
            deadline = time.monotonic() + 60
            while (pool.stats()[0]["respawns"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            assert pool.stats()[0]["respawns"] >= 1
            assert pool.ping(0)["seeded_records"] >= 0  # fully serving

    def test_async_front_door_hang_completes_within_deadline(
        self, trained_gemm_tuner
    ):
        """The acceptance scenario: a hang in the worker reply path, a
        live end-to-end deadline, and the caller still gets the
        config-identical answer — via kill, respawn and replay."""
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        inner.query(_req(64))
        want = trained_gemm_tuner.best_kernel(_shape(104), k=K, reps=REPS)
        with AsyncEngine(inner, workers=1, worker_timeout_s=2.0) as front:
            assert front.start_workers() == 1
            front._pool.arm_faults(0, FaultPlan(
                (FaultSpec("worker.reply", action="hang", hang_s=300.0),),
                seed=8,
            ))
            reply = front.query_sync(
                _req(104, deadline_ms=120_000.0), timeout=300
            )
            assert reply.config == want.config
            assert reply.measured_tflops == want.measured_tflops
            stats = front.stats()
            assert stats.deadlines_exceeded == 0
            wstats = front._pool.stats()[0]
            assert wstats["hangs"] >= 1 and wstats["respawns"] >= 1
        inner.close()


# ----------------------------------------------------------------------
# The circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_falls_back_and_recovers_via_half_open_probe(
        self, trained_gemm_tuner
    ):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)
        inner.query(_req(64))
        shapes = [_shape(m) for m in (96, 128, 160, 192)]
        want = {
            s: trained_gemm_tuner.best_kernel(s, k=K, reps=REPS)
            for s in shapes
        }
        plan = FaultPlan(
            (FaultSpec("pool.submit", times=2),), seed=4,
        )
        with AsyncEngine(inner, workers=1, breaker_threshold=2,
                         breaker_reset_s=1.0) as front:
            assert front.start_workers() == 1
            with faults.armed(plan):
                # Two consecutive pool failures: answers still arrive
                # (in-process fallback), and the breaker trips open.
                r0 = front.query_sync(
                    KernelRequest("gemm", shapes[0], k=K, reps=REPS)
                )
                r1 = front.query_sync(
                    KernelRequest("gemm", shapes[1], k=K, reps=REPS)
                )
                stats = front.stats()
                assert stats.breaker_trips == 1
                assert stats.breaker_state == "open"
                assert stats.worker_fallbacks >= 2

                # Open: traffic routes in-process without pool RPCs.
                r2 = front.query_sync(
                    KernelRequest("gemm", shapes[2], k=K, reps=REPS)
                )

                # After the reset window a half-open probe flush runs;
                # the fault budget (times=2) is spent, so it succeeds
                # and re-closes the breaker.
                time.sleep(1.2)
                r3 = front.query_sync(
                    KernelRequest("gemm", shapes[3], k=K, reps=REPS)
                )
            stats = front.stats()
            assert stats.breaker_state == "closed"
            assert stats.breaker_recoveries == 1
            assert faults.fire_counts() == {}  # plan disarmed cleanly
            for reply, shape in zip((r0, r1, r2, r3), shapes):
                assert reply.config == want[shape].config
                assert reply.measured_tflops == want[shape].measured_tflops
        inner.close()


# ----------------------------------------------------------------------
# Corruption-safe persistent state
# ----------------------------------------------------------------------

class TestCorruptState:
    @pytest.fixture
    def model_dir(self, tmp_path, trained_gemm_tuner):
        trained_gemm_tuner.save(tmp_path / "p100-gemm.npz")
        return tmp_path

    def test_corrupt_candidate_record_quarantined_and_reenumerated(
        self, model_dir
    ):
        with Engine.open(model_dir) as eng:
            eng.query(_req(64))
        records = list((model_dir / "candidates").glob("*.npz"))
        assert records  # close persisted the enumerated store
        assert all(integrity.check(p) is True for p in records)

        # Rot every record as it is read back: the fresh boot must
        # quarantine them all and re-enumerate, never crash.
        plan = FaultPlan(
            (FaultSpec("candidate_store.load", action="corrupt",
                       times=None),),
            seed=12,
        )
        with faults.armed(plan):
            with pytest.warns(UserWarning, match="integrity"):
                eng = Engine.open(model_dir)
        quarantined = list(
            (model_dir / "candidates").glob("*.corrupt-*")
        )
        assert len(quarantined) == len(records)
        # Still serves (and re-enumerates the candidates it needs).
        reply = eng.query(_req(72))
        assert reply.config is not None
        eng.close()

    def test_corrupt_profile_cache_quarantined_and_boot_survives(
        self, model_dir
    ):
        with Engine.open(model_dir) as eng:
            want = eng.query(_req(64))
        profiles = model_dir / "profiles.json"
        assert profiles.exists()
        raw = bytearray(profiles.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        profiles.write_bytes(bytes(raw))

        with pytest.warns(UserWarning, match="quarantined"):
            eng = Engine.open(model_dir)
        assert list(model_dir.glob("profiles.json.corrupt-*"))
        # The profile hit is gone (cache started empty), but a fresh
        # search still lands on the identical answer.
        reply = eng.query(_req(64))
        assert reply.source == "search"
        assert reply.config == want.config
        eng.close()

    def test_unparseable_profile_cache_with_valid_digest(self, model_dir):
        profiles = model_dir / "profiles.json"
        profiles.write_text("{not json")
        integrity.write_digest(profiles)  # bytes intact, content garbage
        with pytest.warns(UserWarning, match="not valid JSON"):
            eng = Engine.open(model_dir)
        assert list(model_dir.glob("profiles.json.corrupt-*"))
        eng.close()

    def test_corrupt_fit_is_quarantined_at_boot(self, model_dir):
        fit = model_dir / "p100-gemm.npz"
        raw = bytearray(fit.read_bytes())
        for i in range(0, len(raw), max(1, len(raw) // 16)):
            raw[i] ^= 0xFF
        fit.write_bytes(bytes(raw))

        with pytest.warns(UserWarning, match="integrity"):
            eng = Engine.open(model_dir)
        assert list(model_dir.glob("p100-gemm.npz.corrupt-*"))
        assert not fit.exists()
        # The rotted pair is simply absent, not a crashed boot.
        assert eng.devices() == ()
        eng.close()

    def test_unreadable_legacy_fit_quarantined_on_first_use(
        self, model_dir
    ):
        """A pre-digest fit (no sidecar) that cannot be parsed fails its
        lazy load with a typed error and is quarantined then."""
        fit = model_dir / "p100-gemm.npz"
        fit.write_bytes(b"this was never an npz")
        integrity.digest_path(fit).unlink()  # legacy: no sidecar
        eng = Engine.open(model_dir)  # scan keeps it (check() is None)
        assert DEVICE in eng.devices()
        with pytest.warns(UserWarning, match="unreadable"):
            with pytest.raises(EngineError, match="quarantined"):
                eng.query(_req(64))
        assert list(model_dir.glob("p100-gemm.npz.corrupt-*"))
        eng.close()

    def test_tampered_online_log_quarantined_by_models_verb(
        self, model_dir, capsys
    ):
        from repro.harness.cli import main

        log_path = model_dir / "online_updates.json"
        log_path.write_text("[]")
        integrity.write_digest(log_path)
        log_path.write_text('[{"forged": true}]')  # tamper post-digest
        assert main(["models", "--models", str(model_dir)]) == 0
        out = capsys.readouterr().out
        assert "failed its integrity check" in out
        assert not log_path.exists()
        assert list(model_dir.glob("online_updates.json.corrupt-*"))


# ----------------------------------------------------------------------
# Randomized (but replayable) fault storms through the front door
# ----------------------------------------------------------------------

#: Seeds chosen so the storm produces both healed faults (the recovery
#: path answers anyway) and client-visible typed failures.
_FUZZ_SEEDS = [7, 11]
_env_seeds = os.environ.get("REPRO_CHAOS_SEEDS", "")
if _env_seeds.strip():
    _FUZZ_SEEDS += [
        int(s) for s in _env_seeds.replace(",", " ").split()
        if int(s) not in _FUZZ_SEEDS
    ]


def _storm_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec("engine.search", probability=0.25, times=None),
            FaultSpec("async.flush", probability=0.15, times=None),
            FaultSpec("engine.store", probability=0.1, times=None),
            FaultSpec("engine.search", action="sleep", probability=0.2,
                      times=None, delay_s=0.01),
        ),
        seed=seed,
    )


class TestChaosFuzz:
    @pytest.mark.parametrize("seed", _FUZZ_SEEDS)
    def test_storm_is_typed_deterministic_and_config_identical(
        self, seed, trained_gemm_tuner
    ):
        ms = [64, 96, 128, 64, 160, 96, 192, 128, 64, 224]
        want = {
            m: trained_gemm_tuner.best_kernel(_shape(m), k=K, reps=REPS)
            for m in sorted(set(ms))
        }

        def run_storm() -> tuple[list[tuple], tuple]:
            inner = Engine(max_workers=0)
            inner.register(trained_gemm_tuner)
            outcomes: list[tuple] = []
            with AsyncEngine(inner) as front:
                with faults.armed(_storm_plan(seed)):
                    for m in ms:
                        try:
                            reply = front.query_sync(_req(m), timeout=120)
                        except TYPED_FAILURES as exc:
                            outcomes.append(
                                ("fail", type(exc).__name__)
                            )
                        else:
                            assert reply.config == want[m].config
                            assert (reply.measured_tflops
                                    == want[m].measured_tflops)
                            outcomes.append(("ok", reply.config.short()))
                    log = faults.fire_log()
                # Disarmed again: the engine is fully functional and
                # still config-identical to the reference search.
                clean = front.query_sync(_req(64))
                assert clean.config == want[64].config
            inner.close()
            return outcomes, log

        first_outcomes, first_log = run_storm()
        assert first_log  # the storm really stormed
        if seed in (7, 11):
            # The built-in seeds are chosen to produce both: answered
            # requests *and* client-visible typed failures.  Extra env
            # seeds may heal every fault via the recovery path, which
            # is fine — they still must be typed and deterministic.
            assert any(kind == "fail" for kind, _ in first_outcomes)
            assert any(kind == "ok" for kind, _ in first_outcomes)

        # Same seed, fresh engine: bit-identical outcome sequence AND
        # fire log. This is what makes chaos failures debuggable.
        second_outcomes, second_log = run_storm()
        assert second_outcomes == first_outcomes
        assert second_log == first_log
