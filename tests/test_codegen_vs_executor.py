"""Cross-module invariants: static codegen accounting vs dynamic execution.

The code generator *predicts* how much work a kernel does; the functional
executor *performs* it.  For exactly-tiling problems the two must agree —
on staged operand volumes, on multiply-accumulate counts, and on the
reduction-merge structure.  These tests bind the two halves of the kernel
generator together.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.gpu.device import GTX_980_TI
from repro.kernels.gemm_ref import execute_gemm, make_operands
from repro.kernels.tiling import ExecutionTrace
from repro.ptx.gemm_codegen import GemmKernel


def _divisible_case(cfg: GemmConfig, bm: int, bn: int, bk: int) -> GemmShape:
    """A shape that tiles exactly: bm x bn blocks, K = bk * kg * kl * u."""
    return GemmShape(
        m=cfg.ml * bm,
        n=cfg.nl * bn,
        k=cfg.u * cfg.kl * cfg.kg * bk,
        dtype=DType.FP32,
    )


CASES = [
    (GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4), 2, 3, 4),
    (GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4, kl=2), 2, 2, 3),
    (GemmConfig(ms=2, ns=4, ml=16, nl=16, u=4, kg=4), 1, 2, 2),
    (GemmConfig(ms=4, ns=2, ml=16, nl=16, u=8, ks=2, kl=2, kg=2), 2, 1, 1),
]


class TestStagedVolumes:
    @pytest.mark.parametrize("cfg,bm,bn,bk", CASES,
                             ids=lambda c: str(c)[:24])
    def test_staged_elements_match_ideal_bytes(self, cfg, bm, bn, bk):
        """Executor-staged elements == codegen's compulsory load volume."""
        shape = _divisible_case(cfg, bm, bn, bk)
        a, b = make_operands(shape, seed=1)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)

        kernel = GemmKernel(cfg=cfg, shape=shape, device=GTX_980_TI)
        counts = kernel.kernel_counts()
        dsize = shape.dtype.size
        total_ideal_bytes = counts.block.ideal_ldg_bytes * counts.grid_size
        staged_bytes = (trace.staged_a_elems + trace.staged_b_elems) * dsize
        assert staged_bytes == pytest.approx(total_ideal_bytes, rel=1e-12)

    @pytest.mark.parametrize("cfg,bm,bn,bk", CASES,
                             ids=lambda c: str(c)[:24])
    def test_macs_match_padded_flops(self, cfg, bm, bn, bk):
        """Executor MACs x 2 == codegen padded FLOPs on divisible shapes."""
        shape = _divisible_case(cfg, bm, bn, bk)
        a, b = make_operands(shape, seed=2)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)
        assert 2 * trace.macs == cfg.padded_flops(shape) == shape.flops

    @pytest.mark.parametrize("cfg,bm,bn,bk", CASES,
                             ids=lambda c: str(c)[:24])
    def test_blocks_match_grid(self, cfg, bm, bn, bk):
        shape = _divisible_case(cfg, bm, bn, bk)
        a, b = make_operands(shape, seed=3)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)
        assert trace.blocks_executed == cfg.grid_size(shape)

    def test_edge_shapes_stage_less_than_ideal(self):
        """Clipped edge tiles stage fewer elements than the full-tile
        accounting — the volume predication saves vs padding."""
        cfg = GemmConfig(ms=4, ns=4, ml=16, nl=16, u=4)
        shape = GemmShape(17, 17, 20)  # heavy edge waste
        a, b = make_operands(shape, seed=4)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)

        kernel = GemmKernel(cfg=cfg, shape=shape, device=GTX_980_TI)
        counts = kernel.kernel_counts()
        dsize = shape.dtype.size
        total_ideal = counts.block.ideal_ldg_bytes * counts.grid_size
        staged = (trace.staged_a_elems + trace.staged_b_elems) * dsize
        assert staged < total_ideal


@st.composite
def divisible_cases(draw):
    ms = draw(st.sampled_from([2, 4]))
    ns = draw(st.sampled_from([2, 4]))
    cfg = GemmConfig(
        ms=ms,
        ns=ns,
        ml=ms * draw(st.sampled_from([2, 4])),
        nl=ns * draw(st.sampled_from([2, 4])),
        u=draw(st.sampled_from([2, 4])),
        kl=draw(st.sampled_from([1, 2])),
        kg=draw(st.sampled_from([1, 2, 4])),
    )
    return cfg, _divisible_case(
        cfg,
        draw(st.integers(1, 3)),
        draw(st.integers(1, 3)),
        draw(st.integers(1, 3)),
    )


class TestPropertyBased:
    @given(case=divisible_cases())
    @settings(max_examples=30, deadline=None)
    def test_volume_identity(self, case):
        cfg, shape = case
        a, b = make_operands(shape, seed=6)
        trace = ExecutionTrace()
        execute_gemm(cfg, shape, a, b, trace=trace)
        assert 2 * trace.macs == shape.flops
        kernel = GemmKernel(cfg=cfg, shape=shape, device=GTX_980_TI)
        counts = kernel.kernel_counts()
        staged = (trace.staged_a_elems + trace.staged_b_elems) * 4
        assert staged == pytest.approx(
            counts.block.ideal_ldg_bytes * counts.grid_size, rel=1e-12
        )
