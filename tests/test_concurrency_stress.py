"""Concurrency stress tests for the caching/dedup machinery.

PRs 2 and 4 built three concurrency guarantees the serving stack leans
on, and this module hammers each from many threads/tasks at once:

* :class:`KeyedRecordCache` builds every key exactly once, no matter how
  many threads race the first access (and ``seed`` never clobbers a
  built record into a broken state);
* the Engine's two-level cache never loses a write-through: every search
  result lands in the profile cache even while the tiny LRU is thrashing
  under concurrent traffic;
* in-flight dedup holds under mixed ``query``/``query_many`` fire and
  through the AsyncEngine's coalescing layer: N concurrent requests for
  one shape cost exactly one search.
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import GemmConfig
from repro.core.types import DType, GemmShape
from repro.inference.search import CandidateRecord, KeyedRecordCache
from repro.service.async_engine import AsyncEngine
from repro.service.engine import Engine, KernelRequest

N_THREADS = 16

SHAPES = [
    GemmShape(512, 512, 512, DType.FP32, False, True),
    GemmShape(2560, 16, 2560, DType.FP32, False, False),
    GemmShape(64, 64, 8192, DType.FP32, False, True),
    GemmShape(128, 256, 1024, DType.FP32, True, False),
    GemmShape(96, 96, 4096, DType.FP32, False, False),
    GemmShape(320, 48, 640, DType.FP32, False, True),
]


def _ready_record() -> CandidateRecord:
    cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, vec=2, db=2)
    return CandidateRecord(
        op="gemm",
        matrix=np.zeros((1, len(cfg.as_dict()))),
        configs=[cfg],
    )


class TestKeyedRecordCache:
    def test_exactly_one_build_per_key(self):
        cache = KeyedRecordCache()
        builds = []
        lock = threading.Lock()
        barrier = threading.Barrier(N_THREADS)

        def build():
            with lock:
                builds.append(threading.get_ident())
            time.sleep(0.01)  # widen the race window
            return _ready_record()

        def hit(_):
            barrier.wait()
            return cache.get("key", build)

        with ThreadPoolExecutor(N_THREADS) as pool:
            records = list(pool.map(hit, range(N_THREADS)))

        assert len(builds) == 1
        assert all(r is records[0] for r in records)

    def test_distinct_keys_build_once_each(self):
        cache = KeyedRecordCache()
        builds = []
        lock = threading.Lock()
        keys = [f"k{i % 4}" for i in range(N_THREADS * 4)]
        barrier = threading.Barrier(N_THREADS)

        def hit(chunk):
            barrier.wait()
            out = []
            for key in chunk:
                def build(key=key):
                    with lock:
                        builds.append(key)
                    time.sleep(0.002)
                    return _ready_record()
                out.append((key, cache.get(key, build)))
            return out

        chunks = [keys[i::N_THREADS] for i in range(N_THREADS)]
        with ThreadPoolExecutor(N_THREADS) as pool:
            results = [r for rs in pool.map(hit, chunks) for r in rs]

        assert sorted(builds) == ["k0", "k1", "k2", "k3"]
        by_key: dict = {}
        for key, rec in results:
            assert by_key.setdefault(key, rec) is rec  # one object per key

    def test_seed_race_never_double_builds(self):
        cache = KeyedRecordCache()
        builds = []
        lock = threading.Lock()
        barrier = threading.Barrier(N_THREADS + 1)

        def build():
            with lock:
                builds.append(1)
            time.sleep(0.01)
            return _ready_record()

        def getter(_):
            barrier.wait()
            return cache.get("key", build)

        def seeder():
            barrier.wait()
            cache.seed("key", _ready_record())

        seed_thread = threading.Thread(target=seeder)
        seed_thread.start()
        with ThreadPoolExecutor(N_THREADS) as pool:
            records = list(pool.map(getter, range(N_THREADS)))
        seed_thread.join()

        assert len(builds) <= 1
        assert all(rec.ready for rec in records)
        # Everyone converged on one published record.
        assert len({id(rec) for rec in records}) == 1


class TestEngineWriteThrough:
    def test_thrashing_lru_loses_no_profile_writes(
        self, trained_gemm_tuner, tmp_path
    ):
        """A 2-deep LRU under 16-thread fire: every result still lands
        in the profile cache, and repeat rounds never re-search."""
        path = tmp_path / "profiles.json"
        engine = Engine(max_workers=0, profile_cache=path, lru_capacity=2)
        engine.register(trained_gemm_tuner)

        rng = np.random.default_rng(0)
        rounds = [
            [SHAPES[i] for i in rng.permutation(len(SHAPES))]
            for _ in range(N_THREADS)
        ]
        barrier = threading.Barrier(N_THREADS)

        def client(order):
            barrier.wait()
            return [
                engine.query(KernelRequest("gemm", s, k=10, reps=2))
                for s in order
            ]

        with ThreadPoolExecutor(N_THREADS) as pool:
            all_replies = list(pool.map(client, rounds))

        stats = engine.stats()
        assert stats.searches == len(SHAPES)
        assert stats.evictions > 0  # the LRU really did thrash
        engine.close()

        # No lost writes: a fresh engine over the flushed profile cache
        # serves every shape without searching, with identical answers.
        fresh = Engine(max_workers=0, profile_cache=path)
        fresh.register(trained_gemm_tuner)
        by_shape = {
            r.request.shape: r for replies in all_replies for r in replies
        }
        for shape in SHAPES:
            reply = fresh.query(KernelRequest("gemm", shape, k=10, reps=2))
            assert reply.source == "profile"
            assert reply.config == by_shape[shape].config
            assert reply.measured_tflops == by_shape[shape].measured_tflops
        assert fresh.stats().searches == 0

    def test_all_threads_see_consistent_replies(self, trained_gemm_tuner):
        engine = Engine(max_workers=0, lru_capacity=3)
        engine.register(trained_gemm_tuner)
        barrier = threading.Barrier(N_THREADS)

        def client(i):
            barrier.wait()
            shape = SHAPES[i % len(SHAPES)]
            return i, engine.query(KernelRequest("gemm", shape, k=10,
                                                 reps=2))

        with ThreadPoolExecutor(N_THREADS) as pool:
            results = list(pool.map(client, range(N_THREADS)))

        canonical: dict = {}
        for i, reply in results:
            shape = SHAPES[i % len(SHAPES)]
            ref = canonical.setdefault(shape, reply)
            assert reply.config == ref.config
            assert reply.measured_tflops == ref.measured_tflops


class TestInflightDedup:
    def test_mixed_query_and_query_many_search_once_per_shape(
        self, trained_gemm_tuner, monkeypatch
    ):
        engine = Engine(lru_capacity=64)
        engine.register(trained_gemm_tuner)
        searches = []
        lock = threading.Lock()
        orig_top_k = trained_gemm_tuner.top_k
        orig_batch = trained_gemm_tuner.top_k_batch

        def counting_top_k(shape, k=100):
            with lock:
                searches.append(shape)
            time.sleep(0.003)
            return orig_top_k(shape, k)

        def counting_batch(shapes, k=100):
            with lock:
                searches.extend(shapes)
            time.sleep(0.003)
            return orig_batch(shapes, k)

        monkeypatch.setattr(trained_gemm_tuner, "top_k", counting_top_k)
        monkeypatch.setattr(trained_gemm_tuner, "top_k_batch",
                            counting_batch)

        subset = SHAPES[:4]
        barrier = threading.Barrier(N_THREADS)
        rng = np.random.default_rng(3)
        orders = [rng.permutation(4) for _ in range(N_THREADS)]

        def client(i):
            barrier.wait()
            order = [subset[j] for j in orders[i]]
            if i % 2:
                return engine.query_many([
                    KernelRequest("gemm", s, k=10, reps=2) for s in order
                ])
            return [
                engine.query(KernelRequest("gemm", s, k=10, reps=2))
                for s in order
            ]

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(client, range(N_THREADS)))
        engine.close()

        # Exactly one model search per distinct shape, across every
        # dispatch path at once.
        assert sorted(str(s) for s in searches) == sorted(
            str(s) for s in subset
        )
        assert engine.stats().searches == len(subset)

    def test_async_coalescing_searches_once_per_shape(
        self, trained_gemm_tuner
    ):
        inner = Engine(max_workers=0)
        inner.register(trained_gemm_tuner)

        async def main():
            async with AsyncEngine(inner, own_engine=True,
                                   max_workers=2) as engine:
                rng = np.random.default_rng(1)
                requests = [
                    KernelRequest("gemm", SHAPES[i], k=10, reps=2)
                    for i in rng.integers(0, len(SHAPES), size=64)
                ]
                replies = await engine.query_many(requests)
                return requests, replies, engine.stats()

        requests, replies, stats = asyncio.run(main())
        assert inner.stats().searches == len(SHAPES)
        assert stats.pending == 0
        canonical: dict = {}
        for req, reply in zip(requests, replies):
            ref = canonical.setdefault(req.shape, reply)
            assert reply.config == ref.config
        assert stats.coalesced + stats.cache_hits == 64 - len(SHAPES)
