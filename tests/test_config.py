"""Unit tests for repro.core.config."""


from repro.core.config import ConvConfig, GemmConfig
from repro.core.types import ConvShape, GemmShape


class TestGemmConfig:
    def test_threads(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        assert cfg.threads == (64 // 8) * (64 // 8) == 64

    def test_threads_scale_with_kl(self):
        base = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        split = base.with_(kl=4)
        assert split.threads == 4 * base.threads

    def test_warps(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        assert cfg.warps == 2

    def test_grid_exact_tiling(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        shape = GemmShape(256, 128, 512)
        assert cfg.grid(shape) == (4, 2, 1)

    def test_grid_rounds_up_and_kg(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, kg=4)
        shape = GemmShape(100, 65, 512)
        assert cfg.grid(shape) == (2, 2, 4)
        assert cfg.grid_size(shape) == 16

    def test_padded_flops_exact_when_divisible(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        shape = GemmShape(128, 128, 64)
        assert cfg.padded_flops(shape) == shape.flops

    def test_padded_flops_exceed_useful_on_edges(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        shape = GemmShape(65, 16, 64)
        assert cfg.padded_flops(shape) > shape.flops
        # 2 tiles x 64 wide vs 65 rows; 1 tile x 64 vs 16 cols
        assert cfg.padded_flops(shape) == 2 * (2 * 64) * 64 * 64

    def test_k_per_block_and_iters(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8, kl=2, kg=4)
        shape = GemmShape(64, 64, 4096)
        assert cfg.k_per_block(shape) == 1024
        assert cfg.main_loop_iters(shape) == 1024 // (2 * 8)

    def test_dict_round_trip(self):
        cfg = GemmConfig(ms=2, ns=4, ml=32, nl=64, u=16, ks=2, kl=2, kg=8,
                         vec=2, db=1)
        assert GemmConfig.from_dict(cfg.as_dict()) == cfg

    def test_param_names_order_matches_fields(self):
        assert GemmConfig.param_names() == (
            "ms", "ns", "ml", "nl", "u", "ks", "kl", "kg", "vec", "db"
        )

    def test_with_(self):
        cfg = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8)
        assert cfg.with_(kg=16).kg == 16
        assert cfg.kg == 1  # original untouched

    def test_short_is_compact(self):
        s = GemmConfig(ms=8, ns=8, ml=64, nl=64, u=8).short()
        assert "64x64" in s and s.startswith("gemm<")


class TestConvConfig:
    def _cfg(self, **kw) -> ConvConfig:
        base = dict(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2, u=8)
        base.update(kw)
        return ConvConfig(**base)

    def test_threads(self):
        cfg = self._cfg()
        assert cfg.threads == (32 // 4) * (4 // 2) * (4 // 2) * (2 // 1)

    def test_block_and_thread_products(self):
        cfg = self._cfg()
        assert cfg.block_m == 2 * 4 * 4
        assert cfg.block_n == 32
        assert cfg.thread_m == 1 * 2 * 2
        assert cfg.thread_n == 4

    def test_grid(self):
        cfg = self._cfg(cg=2)
        shape = ConvShape.from_output(n=4, p=8, q=8, k=64, c=16, r=3, s=3)
        gk, gp, gq, gn, gc = cfg.grid(shape)
        assert (gk, gp, gq, gn, gc) == (2, 2, 2, 2, 2)

    def test_padded_flops_at_least_useful(self):
        cfg = self._cfg()
        shape = ConvShape.from_output(n=3, p=5, q=9, k=48, c=16, r=3, s=3)
        assert cfg.padded_flops(shape) >= shape.flops

    def test_as_gemm_config_preserves_products(self):
        cfg = self._cfg(cs=2, cl=2, cg=4, vec=2, db=2)
        g = cfg.as_gemm_config()
        assert g.ml == cfg.block_m and g.nl == cfg.block_n
        assert g.ms == cfg.thread_m and g.ns == cfg.thread_n
        assert (g.ks, g.kl, g.kg) == (cfg.cs, cfg.cl, cfg.cg)
        assert g.threads == cfg.threads

    def test_dict_round_trip(self):
        cfg = self._cfg(cs=2, cl=2, cg=4, vec=2, db=2)
        assert ConvConfig.from_dict(cfg.as_dict()) == cfg

    def test_main_loop_iters(self):
        cfg = self._cfg(cl=2, cg=2)
        shape = ConvShape.from_output(n=4, p=8, q=8, k=64, c=64, r=3, s=3)
        # crs = 576 -> per block 288, per slice 144, u=8 -> 18 iterations
        assert cfg.main_loop_iters(shape) == 18
