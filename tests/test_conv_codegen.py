"""Tests for the CONV (implicit-GEMM) kernel generator."""

import pytest

from repro.core.config import ConvConfig
from repro.core.types import ConvShape, DType
from repro.gpu.device import GTX_980_TI, TESLA_P100
from repro.ptx.conv_codegen import ConvKernel, uses_packed_fp16


@pytest.fixture
def shape() -> ConvShape:
    return ConvShape.from_output(n=8, p=16, q=16, k=64, c=64, r=3, s=3)


def _kernel(cfg, shape, device=GTX_980_TI, **kw) -> ConvKernel:
    return ConvKernel(cfg=cfg, shape=shape, device=device, **kw)


class TestConvCounts:
    def test_fma_volume_reflects_padded_tiles(self, good_conv_cfg, shape):
        counts = _kernel(good_conv_cfg, shape).kernel_counts()
        total = counts.block.fma * counts.grid_size
        assert total >= shape.flops // 2  # FLOPs = 2 * MACs
        assert total * 2 >= shape.flops

    def test_indirection_lookups_add_smem_traffic(self, shape):
        """The conv kernel does strictly more shared-memory work than the
        equivalent GEMM tile because of the indirection table."""
        from repro.ptx.gemm_codegen import GemmKernel

        conv_cfg = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4,
                              nb=2, u=8, vec=2, db=2)
        conv = _kernel(conv_cfg, shape).block_counts()
        g = GemmKernel(
            cfg=conv_cfg.as_gemm_config(),
            shape=shape.implicit_gemm(),
            device=GTX_980_TI,
        ).block_counts()
        assert conv.lds > g.lds
        assert conv.iop > g.iop

    def test_cg_split_uses_atomics(self, shape):
        cfg = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                         u=8, cg=4, vec=2, db=2)
        block = _kernel(cfg, shape).block_counts()
        assert block.atom > 0
        assert block.st_bytes == pytest.approx(
            2.0 * cfg.block_m * cfg.block_n * 4
        )

    def test_grid_size_covers_output(self, good_conv_cfg, shape):
        counts = _kernel(good_conv_cfg, shape).kernel_counts()
        gk, gp, gq, gn, gc = good_conv_cfg.grid(shape)
        assert counts.grid_size == gk * gp * gq * gn * gc

    def test_bounds_mode_validation(self, good_conv_cfg, shape):
        with pytest.raises(ValueError):
            _kernel(good_conv_cfg, shape, bounds_mode="nope")


class TestConvPackedFp16:
    def test_requires_pascal_and_even_kt(self):
        shape16 = ConvShape.from_output(
            n=8, p=16, q=16, k=64, c=64, r=3, s=3, dtype=DType.FP16
        )
        even = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                          u=8, vec=2, db=2)
        odd = even.with_(kt=1, kb=8)
        assert uses_packed_fp16(even, shape16, TESLA_P100)
        assert not uses_packed_fp16(odd, shape16, TESLA_P100)
        assert not uses_packed_fp16(even, shape16, GTX_980_TI)

    def test_packed_halves_fma(self):
        shape16 = ConvShape.from_output(
            n=8, p=16, q=16, k=64, c=64, r=3, s=3, dtype=DType.FP16
        )
        cfg = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=32, pb=4, qb=4, nb=2,
                         u=8, vec=2, db=2)
        packed = _kernel(cfg, shape16, TESLA_P100).block_counts()
        plain = _kernel(cfg, shape16, TESLA_P100,
                        allow_fp16x2=False).block_counts()
        assert packed.fma * 2 == plain.fma
        assert packed.flops == plain.flops


class TestConvNaming:
    def test_name(self, good_conv_cfg, shape):
        name = _kernel(good_conv_cfg, shape).name()
        assert name.startswith("sconv_")
