"""Functional-correctness tests of the convolution executors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ConvConfig
from repro.core.types import ConvShape, DType
from repro.kernels.conv_ref import conv_reference, execute_conv, make_tensors
from repro.kernels.im2col import (
    build_indirection_table,
    filters_as_matrix,
    im2col,
    output_from_gemm,
    row_coords,
)
from repro.kernels.tiling import ExecutionTrace


SMALL = ConvShape.from_output(n=2, p=6, q=6, k=16, c=8, r=3, s=3)


def _direct(i_t, f_t, shape):
    """Brute-force loop evaluation of paper eq. (1) — the oracle's oracle."""
    out = np.zeros((shape.k, shape.p, shape.q, shape.n))
    for k in range(shape.k):
        for p in range(shape.p):
            for q in range(shape.q):
                for n in range(shape.n):
                    acc = 0.0
                    for c in range(shape.c):
                        for r in range(shape.r):
                            for s in range(shape.s):
                                acc += float(i_t[c, p + r, q + s, n]) * float(
                                    f_t[c, r, s, k]
                                )
                    out[k, p, q, n] = acc
    return out


class TestConvReference:
    def test_matches_bruteforce(self):
        shape = ConvShape.from_output(n=2, p=3, q=4, k=3, c=2, r=2, s=3)
        i_t, f_t = make_tensors(shape, seed=0)
        got = conv_reference(i_t, f_t, shape)
        want = _direct(i_t, f_t, shape)
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)

    def test_with_padding_and_stride(self):
        shape = ConvShape(n=2, c=3, h=9, w=9, k=4, r=3, s=3,
                          pad_h=1, pad_w=1, stride_h=2, stride_w=2)
        i_t, f_t = make_tensors(shape, seed=1)
        got = conv_reference(i_t, f_t, shape)
        assert got.shape == (4, shape.p, shape.q, 2)
        # Spot check one entry against explicit padded arithmetic.
        padded = np.zeros((3, 11, 11, 2), dtype=i_t.dtype)
        padded[:, 1:10, 1:10, :] = i_t
        acc = sum(
            float(padded[c, 0 + r, 0 + s, 0]) * float(f_t[c, r, s, 0])
            for c in range(3) for r in range(3) for s in range(3)
        )
        assert got[0, 0, 0, 0] == pytest.approx(acc, rel=1e-5)


class TestIm2col:
    def test_indirection_table_layout(self):
        table = build_indirection_table(SMALL)
        assert len(table) == SMALL.crs
        # c-major, then r, then s — matching F's memory order.
        assert table.c[0] == 0 and table.r[0] == 0 and table.s[0] == 0
        assert table.s[1] == 1
        idx = 1 * (3 * 3) + 2 * 3 + 1  # c=1, r=2, s=1
        assert (table.c[idx], table.r[idx], table.s[idx]) == (1, 2, 1)

    def test_row_coords_layout(self):
        n, p, q = row_coords(SMALL)
        assert n[0] == 0 and p[0] == 0 and q[0] == 0
        assert q[1] == 1
        idx = 1 * (6 * 6) + 2 * 6 + 3  # n=1, p=2, q=3
        assert (n[idx], p[idx], q[idx]) == (1, 2, 3)

    def test_im2col_matmul_equals_reference(self):
        i_t, f_t = make_tensors(SMALL, seed=2)
        lhs = im2col(i_t, SMALL)
        rhs = filters_as_matrix(f_t, SMALL)
        assert lhs.shape == (SMALL.npq, SMALL.crs)
        assert rhs.shape == (SMALL.crs, SMALL.k)
        got = output_from_gemm(lhs @ rhs, SMALL)
        want = conv_reference(i_t, f_t, SMALL)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_im2col_rejects_wrong_layout(self):
        i_t, f_t = make_tensors(SMALL)
        with pytest.raises(ValueError, match="I has shape"):
            im2col(np.transpose(i_t, (3, 0, 1, 2)), SMALL)
        with pytest.raises(ValueError, match="F has shape"):
            filters_as_matrix(np.transpose(f_t, (3, 0, 1, 2)), SMALL)

    def test_im2col_with_padding(self):
        shape = ConvShape(n=1, c=2, h=5, w=5, k=3, r=3, s=3,
                          pad_h=1, pad_w=1)
        i_t, f_t = make_tensors(shape, seed=4)
        got = output_from_gemm(
            im2col(i_t, shape) @ filters_as_matrix(f_t, shape), shape
        )
        want = conv_reference(i_t, f_t, shape)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)


class TestExecuteConv:
    def test_tiled_matches_reference(self, good_conv_cfg):
        shape = ConvShape.from_output(n=2, p=8, q=8, k=32, c=16, r=3, s=3)
        i_t, f_t = make_tensors(shape, seed=3)
        trace = ExecutionTrace()
        got = execute_conv(good_conv_cfg, shape, i_t, f_t, trace=trace)
        want = conv_reference(i_t, f_t, shape)
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)
        assert trace.macs == shape.npq * shape.k * shape.crs

    @pytest.mark.parametrize("cs,cl,cg", [(1, 1, 4), (2, 2, 1), (1, 4, 2)])
    def test_reduction_splits(self, cs, cl, cg):
        cfg = ConvConfig(kt=4, pt=2, qt=2, nt=1, kb=8, pb=2, qb=2, nb=2,
                         u=4, cs=cs, cl=cl, cg=cg)
        i_t, f_t = make_tensors(SMALL, seed=5)
        got = execute_conv(cfg, SMALL, i_t, f_t)
        want = conv_reference(i_t, f_t, SMALL)
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)

    def test_fp16_tolerant(self):
        shape = ConvShape.from_output(
            n=2, p=4, q=4, k=8, c=8, r=3, s=3, dtype=DType.FP16
        )
        cfg = ConvConfig(kt=2, pt=2, qt=2, nt=1, kb=8, pb=2, qb=2, nb=2, u=4)
        i_t, f_t = make_tensors(shape, seed=6)
        got = execute_conv(cfg, shape, i_t, f_t)
        want = conv_reference(i_t, f_t, shape)
        assert got.dtype == np.float16
        np.testing.assert_allclose(
            got.astype(np.float64), want.astype(np.float64),
            rtol=3e-2, atol=3e-1,
        )


@st.composite
def conv_cases(draw):
    kt = draw(st.sampled_from([1, 2, 4]))
    pt = draw(st.sampled_from([1, 2]))
    qt = draw(st.sampled_from([1, 2]))
    nt = draw(st.sampled_from([1, 2]))
    cfg = ConvConfig(
        kt=kt, pt=pt, qt=qt, nt=nt,
        kb=kt * draw(st.sampled_from([2, 4])),
        pb=pt * draw(st.sampled_from([1, 2])),
        qb=qt * draw(st.sampled_from([1, 2])),
        nb=nt * draw(st.sampled_from([1, 2])),
        u=draw(st.sampled_from([1, 2, 4, 8])),
        cl=draw(st.sampled_from([1, 2])),
        cg=draw(st.sampled_from([1, 2, 4])),
    )
    shape = ConvShape.from_output(
        n=draw(st.integers(1, 4)),
        p=draw(st.integers(1, 7)),
        q=draw(st.integers(1, 7)),
        k=draw(st.integers(1, 12)),
        c=draw(st.integers(1, 8)),
        r=draw(st.sampled_from([1, 2, 3])),
        s=draw(st.sampled_from([1, 2, 3])),
    )
    return cfg, shape


class TestConvPropertyBased:
    @given(case=conv_cases())
    @settings(max_examples=40, deadline=None)
    def test_any_decomposition_matches_reference(self, case):
        cfg, shape = case
        i_t, f_t = make_tensors(shape, seed=7)
        got = execute_conv(cfg, shape, i_t, f_t)
        want = conv_reference(i_t, f_t, shape)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)
