"""Unit tests for the instruction-count containers."""

import pytest

from repro.ptx.counts import BlockCounts, KernelCounts


def _block(**kw) -> BlockCounts:
    defaults = dict(
        fma=1000, iop=100, ldg=50, stg=10, atom=0, lds=200, sts=40,
        bar=8, ldg_bytes=4096.0, ideal_ldg_bytes=4096.0, st_bytes=512.0,
    )
    defaults.update(kw)
    return BlockCounts(**defaults)


class TestBlockCounts:
    def test_flops_scale_with_packing(self):
        assert _block().flops == 2000
        assert _block(flops_per_fma=4).flops == 4000

    def test_aggregates(self):
        b = _block(atom=5)
        assert b.arith == 1100
        assert b.smem_ops == 240
        assert b.global_ops == 65

    def test_scaled_shrinks_extensive_fields(self):
        b = _block()
        half = b.scaled(0.5)
        assert half.fma == 500
        assert half.ldg_bytes == pytest.approx(2048.0)
        assert half.flops_per_fma == b.flops_per_fma
        assert half.mlp == b.mlp and half.ilp == b.ilp

    def test_scaled_keeps_at_least_one_barrier(self):
        assert _block(bar=2).scaled(0.01).bar >= 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _block().fma = 5


class TestKernelCounts:
    def test_totals_multiply_by_grid(self):
        k = KernelCounts(block=_block(), grid_size=7, threads_per_block=64)
        assert k.total_flops == 7 * 2000
        assert k.total_ldg_bytes == pytest.approx(7 * 4096.0)
        assert k.total_ideal_ldg_bytes == pytest.approx(7 * 4096.0)
        assert k.total_st_bytes == pytest.approx(7 * 512.0)
