"""Tests for dataset synthesis (sampling.dataset)."""

import numpy as np
import pytest

from repro.core.types import DType
from repro.gpu.device import GTX_980_TI
from repro.sampling.dataset import (
    ConvShapeSampler,
    Dataset,
    GemmShapeSampler,
    fit_generative_models,
    generate_conv_dataset,
    generate_gemm_dataset,
)
from repro.sampling.features import CONV_FEATURES, GEMM_FEATURES


class TestShapeSamplers:
    def test_gemm_shapes_in_range(self, rng):
        sampler = GemmShapeSampler()
        for _ in range(100):
            s = sampler(rng)
            assert 16 <= s.m <= 4096
            assert 16 <= s.n <= 4096
            assert 16 <= s.k <= 65536

    def test_gemm_dtype_restriction(self, rng):
        sampler = GemmShapeSampler(dtypes=(DType.FP16,))
        assert all(sampler(rng).dtype is DType.FP16 for _ in range(20))

    def test_conv_shapes_valid(self, rng):
        sampler = ConvShapeSampler()
        for _ in range(100):
            s = sampler(rng)
            assert s.p >= 1 and s.q >= 1
            assert s.h >= s.r and s.w >= s.s


class TestDatasetContainer:
    def _ds(self, n=10):
        return Dataset(np.arange(n * 2.0).reshape(n, 2), np.arange(n * 1.0),
                       ("a", "b"))

    def test_len(self):
        assert len(self._ds(7)) == 7

    def test_subset(self):
        sub = self._ds(10).subset(4)
        assert len(sub) == 4
        with pytest.raises(ValueError):
            self._ds(3).subset(5)

    def test_split_partitions(self, rng):
        tr, va = self._ds(100).split(0.25, rng)
        assert len(va) == 25 and len(tr) == 75
        all_y = np.sort(np.concatenate([tr.y, va.y]))
        np.testing.assert_array_equal(all_y, np.arange(100.0))


class TestGeneration:
    def test_gemm_dataset_well_formed(self, rng):
        samplers = fit_generative_models(
            GTX_980_TI, op="gemm", dtypes=(DType.FP32,), rng=rng,
            target_accepted=100,
        )
        ds = generate_gemm_dataset(
            GTX_980_TI, 60, rng, samplers=samplers, dtypes=(DType.FP32,)
        )
        assert ds.x.shape == (60, len(GEMM_FEATURES))
        assert np.isfinite(ds.x).all() and np.isfinite(ds.y).all()
        # Raw features: all positive integers or flags.
        assert (ds.x >= 0).all()
        # y is log2(TFLOPS): plausible range for the simulator.
        assert (ds.y > -20).all() and (ds.y < 5).all()

    def test_gemm_dataset_has_spread(self, rng):
        samplers = fit_generative_models(
            GTX_980_TI, op="gemm", dtypes=(DType.FP32,), rng=rng,
            target_accepted=100,
        )
        ds = generate_gemm_dataset(
            GTX_980_TI, 80, rng, samplers=samplers, dtypes=(DType.FP32,)
        )
        assert ds.y.std() > 0.3  # performance varies by orders of magnitude

    def test_conv_dataset_well_formed(self, rng):
        samplers = fit_generative_models(
            GTX_980_TI, op="conv", dtypes=(DType.FP32,), rng=rng,
            target_accepted=60,
        )
        ds = generate_conv_dataset(
            GTX_980_TI, 30, rng, samplers=samplers, dtypes=(DType.FP32,)
        )
        assert ds.x.shape == (30, len(CONV_FEATURES))
        assert np.isfinite(ds.y).all()
